//! The economics campaign in miniature (§6): crawl the synthetic eSIM
//! market from three vantage points, compare providers, and check for
//! price discrimination.
//!
//! ```sh
//! cargo run --release --example esim_market
//! ```

use roamsim::econ::{
    continent_boxplots, local_sim_offers, provider_comparison, Crawler, Market, Vantage,
};

fn main() {
    let market = Market::generate(2024);
    println!(
        "market: {} providers, {} offers\n",
        market.provider_count(),
        market.offers().len()
    );

    // Fig. 16: continent-level $/GB on the first and last crawl days.
    for day in [0u32, 107] {
        let snap = Crawler::new(Vantage::NewJersey).crawl(&market, day);
        println!(
            "--- Airalo median $/GB by continent, {} ---",
            snap.date_label()
        );
        for (continent, b) in continent_boxplots(&snap, market.airalo()) {
            println!(
                "  {:<14} median {:>5.2}  IQR [{:>5.2}, {:>5.2}]",
                continent.name(),
                b.median,
                b.q1,
                b.q3
            );
        }
    }

    // Fig. 17: provider comparison on the May-1 snapshot.
    let snap = Crawler::new(Vantage::NewJersey).crawl(&market, 76);
    println!("\n--- provider comparison (2024-05-01 snapshot) ---");
    for p in provider_comparison(&market, &snap, 60) {
        println!(
            "  {:<18} median ${:>5.2}/GB  ({} countries, {:.1}% of offers)",
            p.name,
            p.median_per_gb,
            p.countries,
            p.offer_share * 100.0
        );
    }

    // The dashed line: locally-bought physical SIMs.
    let locals = local_sim_offers();
    let per_gb: Vec<f64> = locals.iter().map(|o| o.per_gb()).collect();
    println!(
        "\nlocal physical SIMs: median ${:.2}/GB across {} countries \
         (but higher total outlay: e.g. Spain {} GB for ${:.2})",
        roamsim::stats::median(&per_gb).expect("non-empty"),
        locals.len(),
        locals[0].data_gb,
        locals[0].total_usd()
    );

    // No price discrimination across vantage points.
    let a = Crawler::new(Vantage::Madrid).crawl(&market, 76);
    let b = Crawler::new(Vantage::AbuDhabi).crawl(&market, 76);
    let identical = a
        .records
        .iter()
        .zip(&b.records)
        .all(|(x, y)| x.price_usd == y.price_usd);
    println!(
        "\nprice discrimination across vantages: {}",
        if identical {
            "none observed"
        } else {
            "DETECTED (bug!)"
        }
    );
}
