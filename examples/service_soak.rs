//! A drifting-fault soak: the long-running agent rides out eight
//! sim-weeks on a hostile network (`FaultSpec::heavy`), and the
//! streaming query engine then asks the degradation-over-time question
//! directly of the soak table — per sim-week latency quantiles and
//! failure mix, no row re-walks.
//!
//! The agent's vantage probes tag every observation with its sim-week
//! (`w0`, `w1`, ...), so "is service getting worse?" is one
//! `group_sketch` over the sealed frame. The run itself is the usual
//! deterministic artifact: same seed, same knobs — same bytes, faults
//! and all.
//!
//! ```sh
//! cargo run --release --example service_soak
//! ```

use roamsim::columnar::{Query, TableView};
use roamsim::netsim::FaultSpec;
use roamsim::service::{Agent, Horizon, ServiceConfig};

fn main() {
    // Pin the hostile schedule process-wide (the `ROAM_FAULTS=heavy`
    // spelling), and restore whatever was installed when we're done.
    let prev = FaultSpec::override_faults(Some(FaultSpec::heavy()));

    let config = ServiceConfig {
        users: 600,
        cohorts: 3,
        probes: 6,
        ..ServiceConfig::default()
    };
    let mut agent = Agent::new(11, config).expect("sizing validates");
    let run = agent
        .run(Horizon::SimDays(8 * 7), None)
        .expect("horizon is finite");
    FaultSpec::override_faults(prev);

    println!(
        "soaked {} sim-days under heavy faults: {} job fires, {} soak rows",
        run.clock.as_nanos() / roamsim::service::task::DAY_NS,
        run.fires,
        run.soak.len()
    );

    // Seal the soak table and query the frame in place.
    let frame = run.soak_frame();
    let view = TableView::parse_frame(&frame).expect("sealed frames round-trip");

    // Degradation over time: RTT quantiles per sim-week. Blackholed and
    // dark-window probes carry no latency, so the sketch sees only the
    // sessions that completed — the failure mix below covers the rest.
    println!("\nweekly RTT among completed probes (drifting-fault soak):");
    println!(
        "  {:<6} {:>9} {:>9} {:>9}",
        "week", "p50 ms", "p90 ms", "probes"
    );
    for g in Query::new(&view)
        .eq("kind", "rtt")
        .group_sketch("week", "ms", 1.0, 60_000.0, 16)
    {
        let (Some(p50), Some(p90)) = (g.value.quantile(0.5), g.value.quantile(0.9)) else {
            continue;
        };
        println!(
            "  {:<6} {:>9.1} {:>9.1} {:>9}",
            g.key.label(),
            p50,
            p90,
            g.value.count()
        );
    }

    // The failure mix, over the same frame: how many probes each week
    // never produced a latency at all.
    println!("\nprobe status mix across the soak:");
    for g in Query::new(&view).group_count("status") {
        println!("  {:<16} {:>6}", g.key.label(), g.value);
    }

    // Byte-identity survives the fault plane: replaying the identical
    // soak yields the identical frame.
    let prev = FaultSpec::override_faults(Some(FaultSpec::heavy()));
    let mut replay = Agent::new(11, config).expect("sizing validates");
    let rerun = replay
        .run(Horizon::SimDays(8 * 7), None)
        .expect("horizon is finite");
    FaultSpec::override_faults(prev);
    assert_eq!(frame, rerun.soak_frame());
    assert_eq!(run.render(), rerun.render());
    println!(
        "\nreplay reproduced the soak frame byte-for-byte ({} bytes)",
        frame.len()
    );
}
