//! Frame round-trip for the columnar export: a campaign's datasets become
//! typed column pages, seal into a `roam-codec` frame, travel as bytes,
//! and come back as a zero-copy [`TableView`] the streaming query engine
//! scans in place — no CSV re-parsing, no row re-walks.
//!
//! ```sh
//! cargo run --release --example columnar_export
//! ```

use roam_bench::CampaignRunner;
use roamsim::columnar::{csv_header, render_csv, ColumnarSource, Query, TableView};
use roamsim::measure::{Dataset, Exporter};

fn main() {
    let run = CampaignRunner::new(11).scale(0.25).run();

    // One row walk per dataset builds the column pages.
    let tables = run.data.export_tables();
    println!("datasets exported as column pages:");
    for (ds, table) in &tables {
        println!("  {:<12} {:>6} rows", ds.file_stem(), table.rows());
    }

    // Seal the CDN table into a codec frame — the on-disk / on-wire form.
    let (_, cdn) = tables
        .iter()
        .find(|(ds, _)| *ds == Dataset::Cdn)
        .expect("device campaigns fetch CDN objects");
    let frame = cdn.to_frame();
    println!(
        "\ncdn table sealed: {} bytes for {} rows",
        frame.len(),
        cdn.rows()
    );

    // Parse it back without copying: the view's pages borrow the frame.
    let view = TableView::parse_frame(&frame).expect("sealed frames round-trip");

    // Queries run identically over the owned table and the borrowed view.
    // `status ∈ {ok, failover}` is the columnar spelling of
    // `MeasureStatus::is_ok`.
    let delivered = ["ok", "failover"];
    let hits = Query::new(&view)
        .any_of("status", &delivered)
        .eq("cache", "HIT")
        .count();
    println!("cache hits among delivered fetches: {hits}");
    for g in Query::new(&view).group_count("provider") {
        println!("  {:<12} {:>6} fetches", g.key.label(), g.value);
    }
    let sketch = Query::new(&view)
        .any_of("status", &delivered)
        .sketch("total_ms", 1.0, 60_000.0, 32);
    if let Some(p50) = sketch.quantile(0.5) {
        println!("median delivered fetch: {p50:.0} ms (streamed sketch, no sort)");
    }

    // The view still renders the exact bytes the CSV sink would have
    // written — columnar is a superset, not a fork, of the CSV export.
    let mut csv = csv_header(&view);
    render_csv(&view, &mut csv);
    assert_eq!(csv, run.data.export(Dataset::Cdn));
    println!(
        "\nround-tripped view re-renders the CSV export byte-for-byte ({} bytes)",
        csv.len()
    );
}
