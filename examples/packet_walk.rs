//! Watch a single packet cross the roaming ecosystem, pcap-style.
//!
//! Enables the simulator's packet tracing, pings Google from a Home-Routed
//! eSIM in Pakistan, and prints every hop event — the GTP tunnel to
//! Singapore shows up as the one enormous time gap.
//!
//! ```sh
//! cargo run --release --example packet_walk
//! ```

use roamsim::geo::Country;
use roamsim::measure::Service;
use roamsim::world::World;

fn main() {
    let mut world = World::build(99);
    let esim = world.attach_esim(Country::PAK);
    let google = world
        .internet
        .targets
        .nearest(&world.net, Service::Google, esim.att.breakout_city)
        .expect("Google edge exists");

    world.net.enable_tracing();
    let rtt = world.net.rtt_ms(esim.att.ue, google).expect("reachable");
    let events = world.net.take_trace();

    println!(
        "one ICMP echo, {} → Google ({} events, RTT {rtt:.1} ms)\n",
        esim.label,
        events.len()
    );
    let mut last_ms = 0.0;
    for e in &events {
        let node = world.net.node(e.node);
        let ms = e.at.as_ms();
        let gap = ms - last_ms;
        last_ms = ms;
        println!(
            "{:>9.3} ms  (+{:>7.3})  {:<28} {:<16} {}",
            ms,
            gap,
            node.name,
            node.ip,
            match e.kind {
                roamsim::netsim::PacketEventKind::Sent => "sent".to_string(),
                roamsim::netsim::PacketEventKind::Forwarded { ttl } =>
                    format!("forwarded, ttl now {ttl}"),
                roamsim::netsim::PacketEventKind::TtlExpired => "TTL EXPIRED".to_string(),
                roamsim::netsim::PacketEventKind::Delivered => "delivered".to_string(),
                roamsim::netsim::PacketEventKind::Dropped => "DROPPED".to_string(),
            }
        );
    }
    println!(
        "\nthe big gap is the GTP tunnel: {:.0} km from the SGW to the {} breakout.",
        esim.att.tunnel_km, esim.att.breakout_city
    );
}
