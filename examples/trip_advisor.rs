//! The traveller's view of §6: given an itinerary, what is the cheapest
//! way to stay connected — which aggregator's eSIM per country, or a local
//! SIM where the bundle math wins?
//!
//! ```sh
//! cargo run --release --example trip_advisor
//! ```

use roamsim::econ::{leg_options, plan_trip, Crawler, Market, TripLeg, Vantage};
use roamsim::geo::Country;

fn main() {
    let market = Market::generate(2024);
    let snapshot = Crawler::new(Vantage::Madrid).crawl(&market, 76);

    let itinerary = [
        TripLeg {
            country: Country::ESP,
            days: 6,
            data_gb: 4.0,
        },
        TripLeg {
            country: Country::DEU,
            days: 4,
            data_gb: 3.0,
        },
        TripLeg {
            country: Country::THA,
            days: 12,
            data_gb: 8.0,
        },
        TripLeg {
            country: Country::PAK,
            days: 7,
            data_gb: 5.0,
        },
    ];

    println!("itinerary pricing (2024-05-01 snapshot)\n");
    for leg in &itinerary {
        println!(
            "— {} for {} days, {} GB:",
            leg.country.name(),
            leg.days,
            leg.data_gb
        );
        for (i, o) in leg_options(&market, &snapshot, *leg)
            .iter()
            .take(4)
            .enumerate()
        {
            println!(
                "   {}. {:<18} {:>4} GB plan  ${:>6.2}  (${:.2}/GB used)",
                i + 1,
                o.seller,
                o.plan_gb,
                o.price_usd,
                o.effective_per_gb
            );
        }
    }

    let plan = plan_trip(&market, &snapshot, &itinerary);
    println!("\ncheapest full trip: ${:.2}", plan.total_usd);
    for l in &plan.legs {
        println!(
            "  {} → {} ({} GB for ${:.2})",
            l.leg.country.alpha3(),
            l.seller,
            l.plan_gb,
            l.price_usd
        );
    }
    println!("\nthe paper's takeaway in action: aggregators win on *total outlay* for");
    println!("small needs, local SIMs win on $/GB once the bundles get big.");
}
