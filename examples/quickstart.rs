//! Quickstart: buy an Airalo-style eSIM, attach it abroad, and dissect the
//! data path the way the paper does.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use roamsim::core::classify_architecture;
use roamsim::geo::Country;
use roamsim::measure::{mtr, Service};
use roamsim::world::World;

fn main() {
    // The calibrated 24-country world of the paper, fully deterministic.
    let mut world = World::build(2024);

    for country in [Country::PAK, Country::DEU, Country::THA] {
        let esim = world.attach_esim(country);
        println!("=== {} ===", esim.label);
        println!(
            "  b-MNO: {:<16} v-MNO: {:<18} architecture: {}",
            world.plan(country).b_mno,
            world.plan(country).v_mno,
            esim.att.arch
        );
        println!(
            "  breakout: {} ({} km from the user), public IP {}",
            esim.att.breakout_city,
            esim.att.tunnel_km.round(),
            esim.att.public_ip
        );

        // The paper's classification rule: match the public IP's ASN
        // against the b-MNO's and the v-MNO's.
        let ip_asn = world
            .breakout_asn(&esim)
            .expect("registered breakout prefix");
        let b_asn = world.ops.dir.get(esim.att.b_mno).asn;
        let v_asn = world.ops.dir.get(esim.att.v_mno).asn;
        println!(
            "  classification from ASNs: {} (public {}, b-MNO {}, v-MNO {})",
            classify_architecture(ip_asn, b_asn, v_asn),
            ip_asn,
            b_asn,
            v_asn
        );

        // mtr to Google, decomposed at the first public hop.
        let out = mtr(
            &mut world.net,
            &esim,
            &world.internet.targets,
            Service::Google,
        )
        .expect("Google edge exists");
        let a = &out.analysis;
        println!(
            "  traceroute to Google: {} private + {} public hops, PGW {} ({}), \
             PGW RTT {:.1} ms, total {:.1} ms ({:.0}% private)",
            a.private_len,
            a.public_len,
            a.pgw_ip
                .map(|ip| ip.to_string())
                .unwrap_or_else(|| "?".into()),
            a.pgw_city.map(|c| c.name()).unwrap_or("?"),
            a.pgw_rtt_ms.unwrap_or(f64::NAN),
            a.final_rtt_ms.unwrap_or(f64::NAN),
            a.private_share.unwrap_or(f64::NAN) * 100.0
        );
        println!();
    }
}
