//! A scaled-down device campaign: one rooted "phone" per country carrying
//! both the local physical SIM and the Airalo eSIM, alternating between
//! them, exactly like §3.2 — then the §5.1 comparison on the results.
//!
//! The campaign runs through [`CampaignRunner`] with a columnar
//! [`DataSink`](roamsim::measure::DataSink) attached: as the shards merge,
//! every record streams into typed column pages, and all the statistics
//! below are filter + `values` scans over those chunks — no per-question
//! record re-walks, no buffered CSV. The paper's CQI ≥ 7 quality filter is
//! the `u32_ge("cqi", 7)` spelling of `filtered_speedtests`.
//!
//! ```sh
//! cargo run --release --example device_campaign
//! ```

use std::sync::{Arc, Mutex};

use roam_bench::CampaignRunner;
use roamsim::cellular::Cqi;
use roamsim::columnar::{Query, Table};
use roamsim::geo::Country;
use roamsim::measure::{ColumnarSink, Dataset, SharedSink};
use roamsim::stats::{welch_t_test, Summary};
use roamsim::telemetry::TelemetryMode;

fn main() {
    // The sink rides along with the run: the builder knobs still choose
    // cost and reporting only, and the streamed rows are the same bytes
    // the buffered export would have rendered.
    let sink = Arc::new(Mutex::new(ColumnarSink::new()));
    let run = CampaignRunner::new(7)
        .scale(0.4)
        .parallel(4)
        .telemetry(TelemetryMode::Summary)
        .sink(sink.clone() as SharedSink)
        .run();
    let speed = Arc::try_unwrap(sink)
        .expect("runner releases its sink handle after run()")
        .into_inner()
        .expect("sink not poisoned")
        .into_table(Dataset::Speedtests)
        .expect("device campaigns record speedtests");

    // The paper's quality filter: failed runs carry a null CQI and never
    // pass, so this matches `CampaignData::filtered_speedtests` exactly.
    let filtered = || -> Query<'_, Table> {
        Query::new(&speed).u32_ge("cqi", u32::from(Cqi::QPSK_THRESHOLD.value()))
    };
    let countries = [
        Country::PAK,
        Country::ARE,
        Country::DEU,
        Country::GEO,
        Country::KOR,
    ];

    println!(
        "{:<6} {:>4}  {:>12} {:>12}  {:>12} {:>12}",
        "ctry", "kind", "down Mbps", "up Mbps", "latency ms", "n"
    );
    for country in countries {
        for (label, sim) in [("SIM", "sim"), ("eSIM", "esim")] {
            let of = |metric: &str| {
                filtered()
                    .eq("country", country.alpha3())
                    .eq("sim", sim)
                    .values(metric)
            };
            let downs = of("down_mbps");
            // Latency is reported unfiltered, like the paper's RTT panels.
            let lats = Query::new(&speed)
                .eq("country", country.alpha3())
                .eq("sim", sim)
                .values("latency_ms");
            if downs.is_empty() {
                continue;
            }
            let d = Summary::from(&downs).expect("non-empty");
            let u = Summary::from(&of("up_mbps")).expect("non-empty");
            let l = Summary::from(&lats).expect("non-empty");
            println!(
                "{:<6} {:>4}  {:>12.1} {:>12.1}  {:>12.1} {:>12}",
                country.alpha3(),
                label,
                d.median,
                u.median,
                l.median,
                d.n
            );
        }
    }

    // The paper's headline test: physical vs eSIM RTT in roaming countries.
    let rtt = |sim: &str| {
        Query::new(&speed)
            .eq("sim", sim)
            .none_of("country", &[Country::KOR.alpha3()])
            .values("latency_ms")
    };
    let t = welch_t_test(&rtt("sim"), &rtt("esim")).expect("enough samples");
    println!(
        "\nWelch t-test, SIM vs eSIM RTT in roaming countries: t = {:.2}, p = {:.2e} \
         ({}significant)",
        t.statistic,
        t.p_value,
        if t.significant() { "" } else { "not " }
    );

    // What the run cost, from the deterministic telemetry plane.
    println!();
    print!("{}", run.telemetry.render());
}
