//! A scaled-down device campaign: one rooted "phone" per country carrying
//! both the local physical SIM and the Airalo eSIM, alternating between
//! them, exactly like §3.2 — then the §5.1 comparison on the results.
//!
//! The campaign runs through [`CampaignRunner`]: seed in, builder knobs
//! for scale / workers / telemetry, merged records out. The knobs choose
//! cost and reporting only — the records are the same bytes either way.
//!
//! ```sh
//! cargo run --release --example device_campaign
//! ```

use roam_bench::CampaignRunner;
use roamsim::geo::Country;
use roamsim::stats::{welch_t_test, Summary};
use roamsim::telemetry::TelemetryMode;

fn main() {
    let run = CampaignRunner::new(7)
        .scale(0.4)
        .parallel(4)
        .telemetry(TelemetryMode::Summary)
        .run();
    let all = &run.data;
    let countries = [
        Country::PAK,
        Country::ARE,
        Country::DEU,
        Country::GEO,
        Country::KOR,
    ];

    println!(
        "{:<6} {:>4}  {:>12} {:>12}  {:>12} {:>12}",
        "ctry", "kind", "down Mbps", "up Mbps", "latency ms", "n"
    );
    for country in countries {
        for sim_type in [
            roamsim::cellular::SimType::Physical,
            roamsim::cellular::SimType::Esim,
        ] {
            let rows: Vec<f64> = all
                .filtered_speedtests()
                .iter()
                .filter(|r| r.tag.country == country && r.tag.sim_type == sim_type)
                .map(|r| r.down_mbps)
                .collect();
            let ups: Vec<f64> = all
                .filtered_speedtests()
                .iter()
                .filter(|r| r.tag.country == country && r.tag.sim_type == sim_type)
                .map(|r| r.up_mbps)
                .collect();
            let lats: Vec<f64> = all
                .speedtests
                .iter()
                .filter(|r| r.tag.country == country && r.tag.sim_type == sim_type)
                .map(|r| r.latency_ms)
                .collect();
            if rows.is_empty() {
                continue;
            }
            let d = Summary::from(&rows).expect("non-empty");
            let u = Summary::from(&ups).expect("non-empty");
            let l = Summary::from(&lats).expect("non-empty");
            println!(
                "{:<6} {:>4}  {:>12.1} {:>12.1}  {:>12.1} {:>12}",
                country.alpha3(),
                if sim_type == roamsim::cellular::SimType::Esim {
                    "eSIM"
                } else {
                    "SIM"
                },
                d.median,
                u.median,
                l.median,
                d.n
            );
        }
    }

    // The paper's headline test: physical vs eSIM RTT in roaming countries.
    let sim_rtt: Vec<f64> = all
        .speedtests
        .iter()
        .filter(|r| {
            r.tag.sim_type == roamsim::cellular::SimType::Physical && r.tag.country != Country::KOR
        })
        .map(|r| r.latency_ms)
        .collect();
    let esim_rtt: Vec<f64> = all
        .speedtests
        .iter()
        .filter(|r| {
            r.tag.sim_type == roamsim::cellular::SimType::Esim && r.tag.country != Country::KOR
        })
        .map(|r| r.latency_ms)
        .collect();
    let t = welch_t_test(&sim_rtt, &esim_rtt).expect("enough samples");
    println!(
        "\nWelch t-test, SIM vs eSIM RTT in roaming countries: t = {:.2}, p = {:.2e} \
         ({}significant)",
        t.statistic,
        t.p_value,
        if t.significant() { "" } else { "not " }
    );

    // What the run cost, from the deterministic telemetry plane.
    println!();
    print!("{}", run.telemetry.render());
}
