//! The §4.2 v-MNO visibility experiment: plant devices with known IMEIs,
//! recover the IMSI block the b-MNO leases to the aggregator, and compare
//! the traffic of the three user classes (Fig. 5).
//!
//! ```sh
//! cargo run --release --example vmno_visibility
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use roamsim::core::{
    infer_class, recover_imsi_ranges, simulate_core_records, CoreRecord, TrafficStats, UserClass,
    VisibilityExperiment,
};

fn main() {
    let exp = VisibilityExperiment::paper_setup();
    let mut rng = SmallRng::seed_from_u64(31337);
    let (records, planted) = simulate_core_records(&exp, &mut rng);
    println!(
        "v-MNO core: {} subscriber-days ({} natives, {} roamers, {} aggregator users), \
         {} planted devices",
        records.len(),
        exp.n_native,
        exp.n_roamers,
        exp.n_aggregator,
        planted.len()
    );

    // Step 1: look up the planted IMEIs, pattern-match the IMSI block.
    let ranges = recover_imsi_ranges(&records, &planted);
    for r in &ranges {
        println!(
            "recovered leased range: PLMN {} MSIN [{}, {}) ({} identities)",
            r.plmn,
            r.start,
            r.start + r.len,
            r.len
        );
    }

    // Step 2: classify everyone with the recovered ranges and compare.
    let stats_for = |class: UserClass| -> TrafficStats {
        let rs: Vec<&CoreRecord> = records
            .iter()
            .filter(|r| infer_class(r, exp.bmno_plmn, &ranges) == class)
            .collect();
        TrafficStats::from_records(&rs).expect("class populated")
    };
    println!(
        "\n{:<22} {:>14} {:>18} {:>8}",
        "inferred class", "median MB/day", "median sig MB/day", "days"
    );
    for (name, class) in [
        ("native", UserClass::Native),
        ("Play roamer", UserClass::BmnoRoamer),
        ("Airalo (recovered)", UserClass::AggregatorUser),
    ] {
        let s = stats_for(class);
        println!(
            "{:<22} {:>14.1} {:>18.2} {:>8}",
            name, s.median_data_mb, s.median_signalling_mb, s.n
        );
    }

    // Step 3: validate against ground truth.
    let correct = records
        .iter()
        .filter(|r| infer_class(r, exp.bmno_plmn, &ranges) == r.truth)
        .count();
    println!(
        "\nrecovery accuracy vs ground truth: {:.2}%",
        correct as f64 / records.len() as f64 * 100.0
    );
    println!(
        "takeaway: the recovered Airalo users consume like natives (data) but sign \
         slightly more — invisible inside the b-MNO's inbound-roamer bucket otherwise."
    );
}
