//! Offline, dependency-free re-implementation of the subset of the `bytes`
//! 1.x API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the byte-buffer surface it depends on: [`Bytes`] (cheaply
//! clonable shared buffer), [`BytesMut`] (growable buffer), and the
//! big-endian cursor traits [`Buf`] / [`BufMut`]. Semantics follow the
//! real crate for every operation used here; the internals are simpler
//! (an `Arc<[u8]>` with an offset window instead of a hand-rolled vtable).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply clonable, immutable, contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    inner: Inner,
    start: usize,
    end: usize,
}

#[derive(Clone)]
enum Inner {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer (no allocation).
    #[must_use]
    pub const fn new() -> Self {
        Bytes {
            inner: Inner::Static(&[]),
            start: 0,
            end: 0,
        }
    }

    /// Wrap a `'static` slice without copying.
    #[must_use]
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            inner: Inner::Static(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Copy a slice into a new shared buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same backing storage.
    #[must_use]
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            inner: self.inner.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        let all = match &self.inner {
            Inner::Static(s) => s,
            Inner::Shared(a) => &a[..],
        };
        &all[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let arc: Arc<[u8]> = v.into();
        let end = arc.len();
        Bytes {
            inner: Inner::Shared(arc),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// A unique, growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub const fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with pre-reserved capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Length of the initialized contents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Current capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Reserve space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Drop all contents, keeping capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Shorten to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len);
    }

    /// Grow or shrink to `new_len`, filling with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend);
    }

    /// Split off and return the first `at` bytes.
    #[must_use]
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.buf.split_off(at);
        BytesMut {
            buf: std::mem::replace(&mut self.buf, rest),
        }
    }

    /// Split off and return everything from `at` onward.
    #[must_use]
    pub fn split_off(&mut self, at: usize) -> BytesMut {
        BytesMut {
            buf: self.buf.split_off(at),
        }
    }

    /// Convert into an immutable, shareable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut { buf: s.to_vec() }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> Self {
        BytesMut { buf }
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.buf {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.buf.extend(iter);
    }
}

/// Read cursor over a byte source; all multi-byte getters are big-endian.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The current unread window.
    fn chunk(&self) -> &[u8];
    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "Buf::get_u8: buffer exhausted");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice_checked(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice_checked(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice_checked(&mut b);
        u64::from_be_bytes(b)
    }

    /// Copy exactly `dst.len()` bytes out, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        self.copy_to_slice_checked(dst);
    }

    #[doc(hidden)]
    fn copy_to_slice_checked(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "Buf::copy_to_slice: buffer exhausted"
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "Buf::advance past end");
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "Buf::advance past end");
        self.start += cnt;
    }
}

/// Write cursor; all multi-byte putters are big-endian.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.buf.resize(self.buf.len() + cnt, val);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.resize(self.len() + cnt, val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0102_0304_0506_0708);
        let frozen = buf.freeze();
        let mut rd: &[u8] = &frozen;
        assert_eq!(rd.get_u8(), 0xAB);
        assert_eq!(rd.get_u16(), 0x1234);
        assert_eq!(rd.get_u32(), 0xDEAD_BEEF);
        assert_eq!(rd.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn bytes_slice_shares_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let mid = b.slice(1..4);
        assert_eq!(&mid[..], &[2, 3, 4]);
        assert_eq!(b.len(), 5);
        let tail = mid.slice(2..);
        assert_eq!(&tail[..], &[4]);
    }

    #[test]
    fn bytes_advance_narrows_view() {
        let mut b = Bytes::from(vec![9u8, 8, 7]);
        b.advance(2);
        assert_eq!(&b[..], &[7]);
    }

    #[test]
    fn split_to_returns_prefix() {
        let mut m = BytesMut::from(&[1u8, 2, 3, 4][..]);
        let head = m.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&m[..], &[3, 4]);
    }

    #[test]
    fn equality_across_types() {
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(b, b"abc"[..]);
        assert_eq!(b, vec![b'a', b'b', b'c']);
        assert_eq!(b, Bytes::from_static(b"abc"));
    }

    #[test]
    #[should_panic(expected = "buffer exhausted")]
    fn get_past_end_panics() {
        let mut rd: &[u8] = &[1];
        let _ = rd.get_u16();
    }
}
