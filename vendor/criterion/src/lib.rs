//! Offline, dependency-free re-implementation of the subset of the
//! `criterion` 0.5 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the benchmarking surface it depends on: `Criterion`,
//! `BenchmarkGroup` (with `sample_size`), `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Results are written where the real crate puts them —
//! `target/criterion/<group>/<bench>/new/estimates.json` with
//! `mean`/`median`/`std_dev` point estimates in nanoseconds — so tooling
//! that consumes Criterion's JSON (e.g. `scripts/bench_json.sh`) works
//! unchanged. Statistical machinery is simpler: fixed warm-up, calibrated
//! iterations per sample, and plain sample statistics without bootstrap
//! confidence intervals.

use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped between setup calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Many small inputs per batch.
    SmallInput,
    /// Few large inputs per batch.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
    /// Explicit number of iterations per batch.
    NumIterations(u64),
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    output_root: PathBuf,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            test_mode: false,
            output_root: criterion_output_root(),
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Build a driver configured from the process arguments (`--test`
    /// from `cargo test`, an optional positional name filter from
    /// `cargo bench <filter>`).
    #[must_use]
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        c.configure_from_args();
        c
    }

    /// Apply CLI arguments to an existing driver.
    pub fn configure_from_args(&mut self) -> &mut Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                // Flags with a value we accept and ignore.
                "--save-baseline" | "--baseline" | "--measurement-time" | "--sample-size"
                | "--warm-up-time" => {
                    let _ = args.next();
                }
                a if a.starts_with('-') => {}
                a => self.filter = Some(a.to_string()),
            }
        }
        self
    }

    /// Override the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 100,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_bench(None, id, 100, f);
        self
    }

    fn run_bench<F: FnMut(&mut Bencher)>(
        &mut self,
        group: Option<&str>,
        id: &str,
        sample_size: usize,
        mut f: F,
    ) {
        let full_id = match group {
            Some(g) => format!("{g}/{id}"),
            None => id.to_string(),
        };
        if let Some(filter) = &self.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            test_mode: self.test_mode,
            sample_size,
            measurement_time: self.measurement_time,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        if self.test_mode {
            println!("{full_id}: test passed");
            return;
        }
        let est = Estimates::from_samples(&b.samples_ns);
        println!(
            "{full_id:<40} time: [{} {} {}]",
            format_ns(est.min),
            format_ns(est.mean),
            format_ns(est.max),
        );
        let mut dir = self.output_root.clone();
        if let Some(g) = group {
            dir.push(sanitize(g));
        }
        dir.push(sanitize(id));
        dir.push("new");
        if let Err(e) = est.write_json(&dir) {
            eprintln!("criterion: could not write {}: {e}", dir.display());
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 10, "sample_size must be at least 10");
        self.sample_size = n;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let (group, sample_size) = (self.name.clone(), self.sample_size);
        self.criterion.run_bench(Some(&group), id, sample_size, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Times the benchmarked routine.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Benchmark a routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up + calibration: how long does one call take?
        let per_iter_ns = {
            let start = Instant::now();
            let mut n = 0u64;
            while start.elapsed() < Duration::from_millis(50) && n < 10_000 {
                black_box(routine());
                n += 1;
            }
            (start.elapsed().as_nanos() as f64 / n as f64).max(1.0)
        };
        let (samples, iters) = self.plan(per_iter_ns);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Benchmark a routine with per-batch setup excluded from timing.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        let per_iter_ns = {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            (start.elapsed().as_nanos() as f64).max(1.0)
        };
        let (samples, iters) = self.plan(per_iter_ns);
        for _ in 0..samples {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Choose (samples, iterations per sample) so the run fits the
    /// measurement budget while keeping samples long enough to time.
    fn plan(&self, per_iter_ns: f64) -> (usize, u64) {
        let budget_ns = self.measurement_time.as_nanos() as f64;
        // Aim for samples of at least 1 ms so Instant resolution noise
        // stays under ~0.1 %.
        let iters = (1_000_000.0 / per_iter_ns).ceil().max(1.0) as u64;
        let per_sample = per_iter_ns * iters as f64;
        let affordable = (budget_ns / per_sample).floor() as usize;
        let samples = self.sample_size.min(affordable).max(5);
        (samples, iters)
    }
}

#[derive(Debug, Clone, Copy)]
struct Estimates {
    mean: f64,
    median: f64,
    std_dev: f64,
    min: f64,
    max: f64,
}

impl Estimates {
    fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "benchmark produced no samples");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        };
        Estimates {
            mean,
            median,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
        }
    }

    fn write_json(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut f = std::fs::File::create(dir.join("estimates.json"))?;
        let entry = |point: f64| {
            format!(
                concat!(
                    "{{\"confidence_interval\":{{\"confidence_level\":0.95,",
                    "\"lower_bound\":{lo},\"upper_bound\":{hi}}},",
                    "\"point_estimate\":{pt},\"standard_error\":{se}}}"
                ),
                lo = self.min,
                hi = self.max,
                pt = point,
                se = self.std_dev,
            )
        };
        write!(
            f,
            "{{\"mean\":{},\"median\":{},\"std_dev\":{}}}",
            entry(self.mean),
            entry(self.median),
            entry(self.std_dev),
        )
    }
}

fn sanitize(id: &str) -> String {
    id.chars()
        .map(|c| {
            if c == '/' || c.is_whitespace() {
                '_'
            } else {
                c
            }
        })
        .collect()
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Locate `<target>/criterion` by walking up from the bench executable
/// (which lives in `<target>/<profile>/deps/`).
fn criterion_output_root() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(dir).join("criterion");
    }
    if let Ok(exe) = std::env::current_exe() {
        let mut cur = exe.as_path();
        while let Some(parent) = cur.parent() {
            if parent.file_name().is_some_and(|n| n == "target") {
                return parent.join("criterion");
            }
            cur = parent;
        }
    }
    PathBuf::from("target").join("criterion")
}

/// Define a benchmark group function running each target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            criterion.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_are_sane() {
        let est = Estimates::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert!((est.mean - 2.5).abs() < 1e-12);
        assert!((est.median - 2.5).abs() < 1e-12);
        assert_eq!(est.min, 1.0);
        assert_eq!(est.max, 4.0);
    }

    #[test]
    fn json_is_written_with_point_estimates() {
        let dir = std::env::temp_dir().join("roamsim-criterion-test/new");
        let est = Estimates::from_samples(&[10.0, 20.0]);
        est.write_json(&dir).expect("writable temp dir");
        let body = std::fs::read_to_string(dir.join("estimates.json")).expect("written");
        assert!(body.contains("\"mean\""));
        assert!(body.contains("\"point_estimate\":15"));
        std::fs::remove_dir_all(dir.parent().expect("has parent")).ok();
    }

    #[test]
    fn sanitize_replaces_separators() {
        assert_eq!(sanitize("a/b c"), "a_b_c");
    }
}
