//! Offline, dependency-free re-implementation of the subset of the `rand`
//! 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the random-number surface it depends on. Algorithms are chosen
//! to be **bit-compatible with rand 0.8.5 on 64-bit platforms**:
//!
//! * `rngs::SmallRng` is xoshiro256++ with the SplitMix64 `seed_from_u64`
//!   seeding used by `rand_xoshiro` (what rand 0.8's `SmallRng` wraps);
//! * `Rng::gen` uses the `Standard` distribution's exact conversions
//!   (`u64 >> 11` scaled by 2⁻⁵³ for `f64`, high-bit sign test for `bool`);
//! * `Rng::gen_range` reproduces rand 0.8.5's widening-multiply uniform
//!   integer sampler (including the inclusive-range zone computation) and
//!   the `[1, 2)`-mantissa float sampler;
//! * `Rng::gen_bool` reproduces `Bernoulli`'s 2⁶⁴-scaled threshold test.
//!
//! Streams produced by seeded `SmallRng`s therefore match the values the
//! repository's calibrated tests were written against.

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Distribution, Standard};

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes (little-endian 64-bit chunks).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from an explicit seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` seed (PCG32 expansion, as in rand_core 0.6;
    /// generators may override with their reference seeding).
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let xb = x.to_le_bytes();
            chunk.copy_from_slice(&xb[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        if !(0.0..1.0).contains(&p) {
            assert!(
                (p - 1.0).abs() < f64::EPSILON,
                "gen_bool: p = {p} is outside [0, 1]"
            );
            return true;
        }
        // Bernoulli's integer threshold: p scaled into the full u64 range.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        if p_int == u64::MAX {
            return true;
        }
        self.next_u64() < p_int
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Prelude-style re-exports matching `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn splitmix_seeding_matches_reference_vector() {
        // SplitMix64 of 0 produces this well-known first output.
        let rng = SmallRng::seed_from_u64(0);
        assert_eq!(rng.state()[0], 0xe220a8397b1dcdaf);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1u8..=15);
            assert!((1..=15).contains(&w));
            let f = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
            let u = rng.gen_range(0..7usize);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_f64_is_half_open_unit() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
