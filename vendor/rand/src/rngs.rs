//! The small, fast generator: xoshiro256++, exactly as rand 0.8's
//! `SmallRng` resolves on 64-bit platforms.

use crate::{RngCore, SeedableRng};

/// Xoshiro256++ — rand 0.8's `SmallRng` on 64-bit targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Internal state accessor (used by the vendored test suite only).
    #[doc(hidden)]
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            // xoshiro state must not be all zero; rand_xoshiro re-seeds
            // through SplitMix64 in that case.
            return Self::seed_from_u64(0);
        }
        SmallRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        // rand_xoshiro's reference seeding: four SplitMix64 outputs.
        let mut sm = state;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        // rand_xoshiro takes the upper half of the 64-bit output.
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let res = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector for xoshiro256++ seeded with s = [1, 2, 3, 4]
    /// (from the xoshiro reference implementation / rand_xoshiro tests).
    #[test]
    fn matches_xoshiro256plusplus_reference() {
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = SmallRng::from_seed(seed);
        let expected: [u64; 10] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
            15849039046786891736,
            10450023813501588000,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = SmallRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
    }
}
