//! Distributions: `Standard` conversions and the uniform samplers, matching
//! rand 0.8.5 bit for bit on 64-bit platforms.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: full integer range, `[0, 1)` for
/// floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int_from_u32 {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u32() as $ty
            }
        }
    )*};
}

macro_rules! standard_int_from_u64 {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

standard_int_from_u32!(u8, i8, u16, i16, u32, i32);
standard_int_from_u64!(u64, i64, usize, isize);

impl Distribution<u128> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        // rand 0.8: low word first.
        let lo = rng.next_u64() as u128;
        let hi = rng.next_u64() as u128;
        (hi << 64) | lo
    }
}

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53-bit precision multiply method.
        let scale = 1.0 / ((1u64 << 53) as f64);
        (rng.next_u64() >> 11) as f64 * scale
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        let scale = 1.0 / ((1u32 << 24) as f32);
        (rng.next_u32() >> 8) as f32 * scale
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // Sign test against the most significant bit of a u32.
        (rng.next_u32() as i32) < 0
    }
}

/// Uniform samplers over ranges.
pub mod uniform {
    use crate::{Rng, RngCore};
    use std::ops::{Range, RangeInclusive};

    /// Types that can be sampled uniformly from a range.
    pub trait SampleUniform: PartialOrd + Sized {
        /// Uniform draw from `[low, high)`.
        fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Uniform draw from `[low, high]`.
        fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R)
            -> Self;
    }

    /// Range shapes accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draw one sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "gen_range: empty range");
            T::sample_single(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(
                self.start() <= self.end(),
                "gen_range: empty inclusive range"
            );
            T::sample_single_inclusive(*self.start(), *self.end(), rng)
        }
    }

    /// Widening multiply returning `(high_word, low_word)`.
    trait WideningMul: Copy {
        fn wmul(self, other: Self) -> (Self, Self);
    }

    impl WideningMul for u32 {
        #[inline]
        fn wmul(self, other: Self) -> (Self, Self) {
            let t = (self as u64) * (other as u64);
            ((t >> 32) as u32, t as u32)
        }
    }

    impl WideningMul for u64 {
        #[inline]
        fn wmul(self, other: Self) -> (Self, Self) {
            let t = (self as u128) * (other as u128);
            ((t >> 64) as u64, t as u64)
        }
    }

    macro_rules! uniform_int_impl {
        ($ty:ty, $unsigned:ty, $u_large:ty) => {
            impl SampleUniform for $ty {
                fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    // rand 0.8.5 delegates the exclusive case to the
                    // inclusive sampler with `high - 1`.
                    Self::sample_single_inclusive(low, high - 1, rng)
                }

                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    let range = (high as $unsigned)
                        .wrapping_sub(low as $unsigned)
                        .wrapping_add(1) as $u_large;
                    if range == 0 {
                        // The whole domain: any draw is uniform.
                        return rng.gen();
                    }
                    let zone = if <$unsigned>::MAX <= u16::MAX as $unsigned {
                        // Small types compute the exact rejection zone.
                        let unsigned_max: $u_large = <$u_large>::MAX;
                        let ints_to_reject = (unsigned_max - range + 1) % range;
                        unsigned_max - ints_to_reject
                    } else {
                        (range << range.leading_zeros()).wrapping_sub(1)
                    };
                    loop {
                        let v: $u_large = rng.gen();
                        let (hi, lo) = v.wmul(range);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        };
    }

    uniform_int_impl!(u8, u8, u32);
    uniform_int_impl!(i8, u8, u32);
    uniform_int_impl!(u16, u16, u32);
    uniform_int_impl!(i16, u16, u32);
    uniform_int_impl!(u32, u32, u32);
    uniform_int_impl!(i32, u32, u32);
    uniform_int_impl!(u64, u64, u64);
    uniform_int_impl!(i64, u64, u64);
    uniform_int_impl!(usize, usize, u64);
    uniform_int_impl!(isize, usize, u64);

    macro_rules! uniform_float_impl {
        ($ty:ty, $uty:ty, $bits_to_discard:expr) => {
            impl SampleUniform for $ty {
                fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    let mut scale = high - low;
                    loop {
                        // Mantissa bits give a value in [1, 2); shift to
                        // [0, 1) then scale — rand 0.8's exact sequence.
                        let mant = rng.gen::<$uty>() >> $bits_to_discard;
                        let one_bits = <$ty>::to_bits(1.0);
                        let value1_2 = <$ty>::from_bits(one_bits | mant);
                        let value0_1 = value1_2 - 1.0;
                        let res = value0_1 * scale + low;
                        if res < high {
                            return res;
                        }
                        // Pathological rounding: shrink the scale one ULP
                        // and retry (rand's decrease_masked edge handling).
                        scale = <$ty>::from_bits(scale.to_bits() - 1);
                    }
                }

                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    // Largest value0_1 can take is 1 - ε/2; dividing the
                    // span by it makes `high` reachable.
                    let max_rand: $ty = 1.0 - <$ty>::EPSILON / 2.0;
                    let mut scale = (high - low) / max_rand;
                    loop {
                        let mant = rng.gen::<$uty>() >> $bits_to_discard;
                        let one_bits = <$ty>::to_bits(1.0);
                        let value1_2 = <$ty>::from_bits(one_bits | mant);
                        let value0_1 = value1_2 - 1.0;
                        let res = value0_1 * scale + low;
                        if res <= high {
                            return res;
                        }
                        scale = <$ty>::from_bits(scale.to_bits() - 1);
                    }
                }
            }
        };
    }

    uniform_float_impl!(f64, u64, 12);
    uniform_float_impl!(f32, u32, 9);
}

#[cfg(test)]
mod tests {
    use super::uniform::SampleUniform;
    use super::*;
    use crate::rngs::SmallRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn standard_f64_uses_53_bits() {
        let mut rng = SmallRng::seed_from_u64(1);
        let raw = {
            let mut probe = SmallRng::seed_from_u64(1);
            probe.next_u64()
        };
        let expect = (raw >> 11) as f64 / (1u64 << 53) as f64;
        let got: f64 = rng.gen();
        assert_eq!(got.to_bits(), expect.to_bits());
    }

    #[test]
    fn inclusive_covers_endpoints() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2_000 {
            match u8::sample_single_inclusive(0, 3, &mut rng) {
                0 => seen_lo = true,
                3 => seen_hi = true,
                _ => {}
            }
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn full_domain_inclusive_is_a_plain_draw() {
        let mut a = SmallRng::seed_from_u64(4);
        let mut b = SmallRng::seed_from_u64(4);
        let x = u8::sample_single_inclusive(0, u8::MAX, &mut a);
        let y: u8 = b.gen::<u32>() as u8;
        assert_eq!(x, y);
    }
}
