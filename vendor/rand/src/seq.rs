//! Sequence helpers (`SliceRandom` subset): uniform element choice and
//! Fisher–Yates shuffling, matching rand 0.8.5 draw-for-draw.

use crate::distributions::uniform::SampleUniform;
use crate::RngCore;

/// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Uniformly choose one element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffle in place (Fisher–Yates, walking down from the end, exactly
    /// as rand 0.8.5 does).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let idx = usize::sample_single(0, self.len(), rng);
            self.get(idx)
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_single_inclusive(0, i, rng);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn choose_is_none_on_empty_and_some_otherwise() {
        let mut rng = SmallRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let xs = [1u8, 2, 3];
        assert!(xs.contains(xs.choose(&mut rng).unwrap()));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.as_mut_slice().shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
