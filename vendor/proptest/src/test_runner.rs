//! The deterministic generator driving case generation.

/// SplitMix64-based RNG. Seeded from the test name so every property gets
/// an independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a label (the test function name).
    #[must_use]
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw from `[0, bound)` (Lemire-style widening multiply with
    /// rejection; exact uniformity).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below: zero bound");
        let zone = (bound << bound.leading_zeros()).wrapping_sub(1);
        loop {
            let v = self.next_u64();
            let t = (v as u128) * (bound as u128);
            if (t as u64) <= zone {
                return (t >> 64) as u64;
            }
        }
    }

    /// Uniform draw from `[0, 1)` with 53-bit precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_label_dependent_and_reproducible() {
        let mut a = TestRng::deterministic("alpha");
        let mut b = TestRng::deterministic("alpha");
        let mut c = TestRng::deterministic("beta");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = TestRng::deterministic("below");
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }
}
