//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derive a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// A strategy behind a vtable (what [`crate::prop_oneof!`] arms become).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Erase a strategy's concrete type.
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among strategies with the same value type.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from pre-boxed arms (at least one).
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Full-domain generation, the backing of [`any`].
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_from_u64 {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_from_u64!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's whole domain.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T` (`any::<u32>()` etc.).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = rng.below(span as u64);
                (self.start as i128 + off as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Whole 64-bit domain: a raw draw is uniform.
                    return rng.next_u64() as $ty;
                }
                let off = rng.below(span as u64);
                (*self.start() as i128 + off as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64() as $ty;
                let res = self.start + unit * (self.end - self.start);
                if res < self.end { res } else {
                    // Rounding hit the open bound; fall back to the start.
                    self.start
                }
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let unit = rng.unit_f64() as $ty;
                let res = self.start() + unit * (self.end() - self.start());
                res.clamp(*self.start(), *self.end())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// `&str` regex-subset strategy: `[class]{m,n}` patterns (plus plain
/// literals), the forms used by this workspace's tests.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (class, min, max) = parse_pattern(self);
        match class {
            None => (*self).to_string(),
            Some(chars) => {
                let len = min + rng.below((max - min + 1) as u64) as usize;
                (0..len)
                    .map(|_| chars[rng.below(chars.len() as u64) as usize])
                    .collect()
            }
        }
    }
}

/// Parse `[class]{m,n}` / `[class]{m}` / `[class]`; anything else is a
/// literal (returns `None` for the class).
fn parse_pattern(pattern: &str) -> (Option<Vec<char>>, usize, usize) {
    let rest = match pattern.strip_prefix('[') {
        Some(r) => r,
        None => return (None, 1, 1),
    };
    let close = rest
        .find(']')
        .unwrap_or_else(|| panic!("string strategy {pattern:?}: unclosed character class"));
    let class_src = &rest[..close];
    let tail = &rest[close + 1..];

    let mut chars = Vec::new();
    let src: Vec<char> = class_src.chars().collect();
    let mut i = 0;
    while i < src.len() {
        if i + 2 < src.len() && src[i + 1] == '-' {
            let (lo, hi) = (src[i], src[i + 2]);
            assert!(lo <= hi, "string strategy {pattern:?}: inverted range");
            for c in lo..=hi {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(src[i]);
            i += 1;
        }
    }
    assert!(
        !chars.is_empty(),
        "string strategy {pattern:?}: empty character class"
    );

    let (min, max) = if tail.is_empty() {
        (1, 1)
    } else {
        let inner = tail
            .strip_prefix('{')
            .and_then(|t| t.strip_suffix('}'))
            .unwrap_or_else(|| panic!("string strategy {pattern:?}: expected {{m,n}} repetition"));
        match inner.split_once(',') {
            Some((m, n)) => (
                m.trim().parse().expect("repetition lower bound"),
                n.trim().parse().expect("repetition upper bound"),
            ),
            None => {
                let k = inner.trim().parse().expect("repetition count");
                (k, k)
            }
        }
    };
    assert!(min <= max, "string strategy {pattern:?}: min > max");
    (Some(chars), min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_parser_handles_the_supported_forms() {
        let (class, min, max) = parse_pattern("[a-c]{2,4}");
        assert_eq!(class.unwrap(), vec!['a', 'b', 'c']);
        assert_eq!((min, max), (2, 4));

        let (class, min, max) = parse_pattern("[xy0-1]");
        assert_eq!(class.unwrap(), vec!['x', 'y', '0', '1']);
        assert_eq!((min, max), (1, 1));

        let (class, ..) = parse_pattern("literal.example");
        assert!(class.is_none());
    }
}
