//! Offline, dependency-free re-implementation of the subset of the
//! `proptest` 1.x API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the property-testing surface it depends on: the [`proptest!`]
//! macro, [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! range and tuple strategies, [`collection::vec`], a regex-subset string
//! strategy (`[class]{m,n}` patterns), and the `prop_assert*` macros.
//!
//! Differences from the real crate: case generation is deterministic
//! (seeded from the test name), and failing cases panic immediately
//! instead of shrinking. Properties that hold for all inputs pass
//! identically; failures lose minimization, not detection.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Everything a property-test file normally imports.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($config:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_config: $crate::ProptestConfig = $config;
                let mut __pt_rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __pt_case in 0..__pt_config.cases {
                    let _ = __pt_case;
                    $(let $arg = $crate::strategy::Strategy::generate(
                        &$strat, &mut __pt_rng);)*
                    $body
                }
            }
        )*
    };
}

/// Assert a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u8, u8)> {
        (0u8..10, 0u8..10).prop_map(|(a, b)| (a.min(b), a.max(b)))
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u32..25, y in -3i64..=3, f in 0.25f64..0.75) {
            prop_assert!((5..25).contains(&x));
            prop_assert!((-3..=3).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn mapped_pairs_are_ordered(p in arb_pair()) {
            prop_assert!(p.0 <= p.1);
        }

        #[test]
        fn oneof_picks_only_listed(v in prop_oneof![Just(2u8), Just(3u8)]) {
            prop_assert!(v == 2 || v == 3);
        }

        #[test]
        fn vec_respects_size(xs in crate::collection::vec(0u8..5, 2..7)) {
            prop_assert!((2..7).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&x| x < 5));
        }

        #[test]
        fn string_pattern_subset(s in "[a-z0-9]{1,20}") {
            prop_assert!((1..=20).contains(&s.len()));
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit()));
        }

        #[test]
        fn flat_map_respects_dependency(pair in (1u16..50).prop_flat_map(|n| (Just(n), 0u16..n))) {
            prop_assert!(pair.1 < pair.0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_override_is_accepted(x in any::<u64>()) {
            let _ = x;
        }
    }
}
