#!/usr/bin/env bash
# Kill-and-resume determinism harness for the fleet checkpoint plane.
#
# One invocation = one scenario, shaped entirely by the environment
# (ROAM_PARALLEL, ROAM_CALENDAR, ROAM_FAULTS, ROAM_FLEET_WORKERS, ...):
#
#   1. run fleet_smoke straight through (no checkpointing) as reference;
#   2. run it again with ROAM_CHECKPOINT_DIR set, poll for the first
#      shard checkpoint file, then SIGKILL the whole process group —
#      a real kill, not a cooperative shutdown;
#   3. resume with ROAM_RESUME=1 and `cmp` the resumed stdout against
#      the reference byte for byte.
#
# fleet_smoke's stdout carries only the byte-stable report render (the
# throughput gate line goes to stderr), so the cmp needs no filtering.
# If the run finishes before the kill lands, the scenario degrades to
# resuming a finished directory — which must *still* reproduce the
# reference bytes, so the check stays meaningful either way; the log
# line says which variant actually ran.
#
# Usage: ci/kill_and_resume.sh <tag>
#   FLEET_SMOKE            path to the fleet_smoke binary
#                          (default target/release/fleet_smoke)
#   ROAM_CHECKPOINT_EVERY  checkpoint cadence in sim-days (default
#                          60000: one write per ~1000 users/shard at
#                          the default 60-day calendar)
set -euo pipefail

tag=${1:?usage: ci/kill_and_resume.sh <tag>}
bin=${FLEET_SMOKE:-target/release/fleet_smoke}
export ROAM_CHECKPOINT_EVERY=${ROAM_CHECKPOINT_EVERY:-60000}

work=$(mktemp -d)
ckpt="$work/ckpt"
trap 'rm -rf "$work"' EXIT

# Reference: the uninterrupted run, checkpointing off.
"$bin" >"$work/straight.txt" 2>/dev/null

# Victim: same knobs plus a checkpoint directory, killed as a group
# (setsid) so worker-mode children die with the parent and cannot keep
# writing into the directory the resume is about to read.
setsid env ROAM_CHECKPOINT_DIR="$ckpt" "$bin" >"$work/killed.txt" 2>"$work/killed.err" &
pid=$!
for _ in $(seq 1 600); do
  ls "$ckpt"/shard-*.ckpt >/dev/null 2>&1 && break
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.02
done
if kill -0 "$pid" 2>/dev/null; then
  kill -9 -- "-$pid" 2>/dev/null || kill -9 "$pid"
  variant="killed mid-run"
else
  variant="finished before the kill"
fi
wait "$pid" 2>/dev/null || true

test -f "$ckpt/manifest.ckpt" || {
  echo "kill_and_resume[$tag]: no manifest was written" >&2
  exit 1
}

# Resume: must refuse nothing and land on the reference bytes.
ROAM_RESUME=1 ROAM_CHECKPOINT_DIR="$ckpt" "$bin" >"$work/resumed.txt" 2>"$work/resumed.err" || {
  echo "kill_and_resume[$tag]: resume refused:" >&2
  cat "$work/resumed.err" >&2
  exit 1
}
cmp "$work/straight.txt" "$work/resumed.txt"
echo "kill_and_resume[$tag]: ok ($variant, $(ls "$ckpt" | wc -l) checkpoint files)"
