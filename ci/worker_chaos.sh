#!/usr/bin/env bash
# Worker-fault chaos harness for the supervised fleet backend.
#
# One invocation = two scenarios against one clean reference, shaped by
# the environment (ROAM_FLEET_USERS, ROAM_FAULTS, ROAM_TRANSPORT, ...):
#
#   1. injected chaos: fleet_smoke on the worker backend under
#      ROAM_WORKER_FAULTS=heavy — keyed crashes, stalls, torn result
#      frames, spurious nonzero exits. The supervisor must recover
#      (respawn / retry / quarantine) and stdout must `cmp` clean
#      against the in-process reference. The stderr line
#      `fleet_smoke_worker_restarts: N (...)` proves recovery actually
#      ran rather than the chaos plane silently not firing.
#
#   2. external violence: the same run with chaos off while this script
#      SIGKILLs up to two live `fleet_worker` children mid-flight — a
#      real `kill -9` from outside, not an injected abort. Same bytes
#      required. If the run finishes before a kill lands the scenario
#      degrades to a plain worker run (still a meaningful cmp); the log
#      line says which variant ran.
#
# fleet_smoke's stdout carries only the byte-stable report render, so
# the cmps need no filtering.
#
# Usage: ci/worker_chaos.sh <tag>
#   FLEET_SMOKE             path to fleet_smoke (default target/release/fleet_smoke)
#   ROAM_WORKER_DEADLINE_MS stall-detection deadline for the chaos run
#                           (default 15000; must exceed one shard's wall time)
set -euo pipefail

tag=${1:?usage: ci/worker_chaos.sh <tag>}
bin=${FLEET_SMOKE:-target/release/fleet_smoke}
workers=${ROAM_FLEET_WORKERS:-4}
deadline=${ROAM_WORKER_DEADLINE_MS:-15000}

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

# Reference: the clean in-process run.
ROAM_FLEET_WORKERS=0 "$bin" >"$work/clean.txt" 2>/dev/null

# Scenario 1: heavy injected worker chaos, supervised recovery.
ROAM_FLEET_WORKERS=$workers ROAM_WORKER_FAULTS=heavy \
    ROAM_WORKER_DEADLINE_MS=$deadline \
    "$bin" >"$work/chaos.txt" 2>"$work/chaos.err"
cmp "$work/clean.txt" "$work/chaos.txt"
restarts=$(sed -n 's/^fleet_smoke_worker_restarts: \([0-9]*\).*/\1/p' "$work/chaos.err")
if [ -z "${restarts:-}" ]; then
  echo "worker_chaos[$tag]: heavy chaos reported no recovery work:" >&2
  cat "$work/chaos.err" >&2
  exit 1
fi

# Scenario 2: external SIGKILLs of live worker children.
ROAM_FLEET_WORKERS=2 ROAM_WORKER_DEADLINE_MS=$deadline \
    "$bin" >"$work/shot.txt" 2>"$work/shot.err" &
pid=$!
killed=0
for _ in $(seq 1 600); do
  kill -0 "$pid" 2>/dev/null || break
  if [ "$killed" -lt 2 ]; then
    for child in $(pgrep -P "$pid" -x fleet_worker 2>/dev/null || true); do
      if kill -9 "$child" 2>/dev/null; then
        killed=$((killed + 1))
      fi
      [ "$killed" -ge 2 ] && break
    done
  fi
  sleep 0.05
done
if ! wait "$pid"; then
  echo "worker_chaos[$tag]: parent did not survive $killed SIGKILLed children:" >&2
  cat "$work/shot.err" >&2
  exit 1
fi
cmp "$work/clean.txt" "$work/shot.txt"
if [ "$killed" -gt 0 ]; then
  variant="$killed children SIGKILLed"
else
  variant="finished before a kill landed"
fi

echo "worker_chaos[$tag]: ok (injected chaos: $restarts restarts; external: $variant)"
