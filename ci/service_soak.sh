#!/usr/bin/env bash
# SIGTERM-and-resume soak harness for the long-running measurement agent.
#
# One invocation = one scenario, shaped entirely by the environment
# (ROAM_PARALLEL, ROAM_TRANSPORT, ROAM_CALENDAR, ROAM_FAULTS,
# ROAM_SERVICE_*):
#
#   1. run roam_agent straight through for the full horizon (no
#      checkpoint plane) as reference;
#   2. run it again with ROAM_CHECKPOINT_DIR set, poll for agent.ckpt,
#      then SIGTERM it — the agent drains the export queue, writes a
#      final checkpoint, and exits 75;
#   3. re-invoke with the same checkpoint dir (the agent auto-resumes,
#      truncating sessions.csv to the durable offset the frame
#      recorded) and `cmp` every artifact against the reference:
#      report.txt, sessions.csv, soak.csv, soak.frame — byte for byte.
#
# If the victim finishes before the signal lands, the scenario degrades
# to resuming a finished directory from its last cadence checkpoint —
# which must *still* reproduce the reference bytes, so the check stays
# meaningful either way; the log line says which variant actually ran.
#
# Usage: ci/service_soak.sh <tag>
#   ROAM_AGENT          path to the roam_agent binary
#                       (default target/release/roam_agent)
#   ROAM_SOAK_DAYS      horizon in sim-days (default 30)
#   ROAM_SERVICE_CKPT   checkpoint cadence in sim-days (default 2 here,
#                       so the signal has a frame to land after)
set -euo pipefail

tag=${1:?usage: ci/service_soak.sh <tag>}
bin=${ROAM_AGENT:-target/release/roam_agent}
days=${ROAM_SOAK_DAYS:-30}
export ROAM_SERVICE_CKPT=${ROAM_SERVICE_CKPT:-2}

work=$(mktemp -d)
ckpt="$work/ckpt"
trap 'rm -rf "$work"' EXIT

# Reference: the uninterrupted run, checkpoint plane off.
env -u ROAM_CHECKPOINT_DIR "$bin" run --sim-days "$days" --out "$work/straight" >/dev/null 2>&1

# Victim: same knobs plus a checkpoint directory. SIGTERM is the
# cooperative path — the agent must drain, checkpoint, and exit 75.
ROAM_CHECKPOINT_DIR="$ckpt" "$bin" run --sim-days "$days" --out "$work/split" \
  >/dev/null 2>"$work/victim.err" &
pid=$!
for _ in $(seq 1 600); do
  test -f "$ckpt/agent.ckpt" && break
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.02
done
if kill -0 "$pid" 2>/dev/null; then
  kill -TERM "$pid" 2>/dev/null || true
  variant="drained on SIGTERM"
else
  variant="finished before the signal"
fi
rc=0
wait "$pid" || rc=$?
case "$variant/$rc" in
  "drained on SIGTERM/75" | "drained on SIGTERM/0" | "finished before the signal/0") ;;
  *)
    echo "service_soak[$tag]: victim exited $rc ($variant):" >&2
    cat "$work/victim.err" >&2
    exit 1
    ;;
esac

test -f "$ckpt/agent.ckpt" || {
  echo "service_soak[$tag]: no agent.ckpt was written" >&2
  exit 1
}

# Resume: must pick up the schedule mid-flight and land on the
# reference bytes for every artifact.
ROAM_CHECKPOINT_DIR="$ckpt" "$bin" run --sim-days "$days" --out "$work/split" \
  >/dev/null 2>"$work/resumed.err" || {
  echo "service_soak[$tag]: resume refused:" >&2
  cat "$work/resumed.err" >&2
  exit 1
}
for artifact in report.txt sessions.csv soak.csv soak.frame; do
  cmp "$work/straight/$artifact" "$work/split/$artifact" || {
    echo "service_soak[$tag]: $artifact diverged after resume" >&2
    exit 1
  }
done
echo "service_soak[$tag]: ok ($variant, $(wc -l <"$work/split/sessions.csv") session lines)"
