#!/usr/bin/env bash
# Run the Criterion suite and flatten the estimates into BENCH_netsim.json
# at the repo root: one entry per benchmark (mean/median/std-dev in ns)
# plus the derived sequential-vs-Parallel(4) campaign speedup. The two
# campaign modes produce bit-identical data, so the ratio of their mean
# times is a pure wall-clock number — it scales with the host's cores
# (on a single-core host it sits near 1.0), which is why the host CPU
# count is recorded next to it.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo bench -p roam-bench --offline "$@"

# Population-scale throughput headline: time fleet_smoke itself (the
# criterion fleet group runs 2k users, too small to expose the hot path).
# Best-of-three 100k-user runs, on the default knobs and on both shard
# backends — worker threads (ROAM_PARALLEL=4) and worker processes
# (ROAM_FLEET_WORKERS=4) — all gated against ROAM_FLEET_FLOOR below.
# The gate line is on stderr (roam_bench::emit_users_per_sec), hence the
# `2>&1 >/dev/null` redirect.
cargo build -q --release --offline -p roam-bench --bin fleet_smoke
cargo build -q --release --offline -p roam-fleet --bin fleet_worker
export ROAM_FLEET_WORKER_BIN=target/release/fleet_worker
smoke_users=${ROAM_FLEET_BENCH_USERS:-100000}
floor=${ROAM_FLEET_FLOOR:-250000}

best_of_three() {
    local best=0 ups
    for _ in 1 2 3; do
        ups=$(env "$@" ROAM_FLEET_USERS="$smoke_users" target/release/fleet_smoke 2>&1 >/dev/null \
              | sed -n 's/^fleet_smoke_users_per_sec: //p')
        if [ "${ups%.*}" -gt "${best%.*}" ]; then best=$ups; fi
    done
    echo "$best"
}
best_ups=$(best_of_three ROAM_FLEET_WORKERS=0)
best_threads=$(best_of_three ROAM_PARALLEL=4)
best_workers=$(best_of_three ROAM_FLEET_WORKERS=4)

# Crash-recovery cost: the same harness under a 50% worker-crash chaos
# plane, against a clean run of the same shape. Restarts come from the
# fleet_smoke_worker_restarts stderr line; ms_per_restart bundles
# detection + backoff + respawn + shard re-execution and is
# informational (wall-clock noise can even make it negative), not a
# gate — the gates are byte identity (ci/worker_chaos.sh) and the
# supervised-throughput floor below.
recovery_users=${ROAM_RECOVERY_BENCH_USERS:-20000}
rec_env=(ROAM_FLEET_USERS="$recovery_users" ROAM_FLEET_SHARDS=8 ROAM_FLEET_WORKERS=2)
rec_clean_start=$(date +%s%N)
env "${rec_env[@]}" target/release/fleet_smoke >/dev/null 2>&1
rec_clean_ns=$(( $(date +%s%N) - rec_clean_start ))
rec_start=$(date +%s%N)
rec_err=$(env "${rec_env[@]}" ROAM_WORKER_FAULTS="crash=0.5" target/release/fleet_smoke 2>&1 >/dev/null)
rec_chaos_ns=$(( $(date +%s%N) - rec_start ))
rec_restarts=$(sed -n 's/^fleet_smoke_worker_restarts: \([0-9]*\).*/\1/p' <<<"$rec_err")
rec_restarts=${rec_restarts:-0}

# Export + analyze end-to-end: the columnar sink/frame/query pipeline
# against CSV render + re-parse on the same streamed session table
# (export_bench is best-of-three per phase internally, and asserts both
# pipelines compute the same answer). The speedup gate keeps the
# columnar path honest: it must stay >= ROAM_EXPORT_FLOOR x CSV end to
# end, at the same 100k-user scale as the throughput gate.
# The long-running agent end-to-end: scheduler fires + bounded-queue
# session streaming over a 30-sim-day horizon (service_smoke). Best of
# three, gated against ROAM_SERVICE_FLOOR events/sec below.
cargo build -q --release --offline -p roam-bench --bin service_smoke
service_days=${ROAM_SERVICE_BENCH_DAYS:-30}
service_floor=${ROAM_SERVICE_FLOOR:-20000}
best_eps=0
for _ in 1 2 3; do
    eps=$(ROAM_SERVICE_BENCH_DAYS="$service_days" target/release/service_smoke 2>&1 >/dev/null \
          | sed -n 's/^service_events_per_sec: //p')
    if [ "${eps%.*}" -gt "${best_eps%.*}" ]; then best_eps=$eps; fi
done

cargo build -q --release --offline -p roam-bench --bin export_bench
export_floor=${ROAM_EXPORT_FLOOR:-2.0}
eb=$(ROAM_FLEET_USERS="$smoke_users" target/release/export_bench 2>&1 >/dev/null)
eb_csv_mbps=$(sed -n 's/^export_bench_csv_mb_per_sec: //p' <<<"$eb")
eb_col_mbps=$(sed -n 's/^export_bench_columnar_mb_per_sec: //p' <<<"$eb")
eb_export_sp=$(sed -n 's/^export_bench_export_speedup: //p' <<<"$eb")
eb_analyze_sp=$(sed -n 's/^export_bench_analyze_speedup: //p' <<<"$eb")
eb_total_sp=$(sed -n 's/^export_bench_speedup: //p' <<<"$eb")

crit=target/criterion
out=BENCH_netsim.json
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

for est in "$crit"/*/*/new/estimates.json; do
    [ -f "$est" ] || continue
    name_dir=$(dirname "$(dirname "$est")")
    group=$(basename "$(dirname "$name_dir")")
    name=$(basename "$name_dir")
    jq --arg id "$group/$name" \
       '{($id): {mean_ns: .mean.point_estimate,
                 median_ns: .median.point_estimate,
                 std_dev_ns: .std_dev.point_estimate}}' "$est"
done | jq -s 'add // {}' > "$tmp"

jq -n \
   --slurpfile b "$tmp" \
   --argjson cpus "$(nproc)" \
   --argjson smoke "$best_ups" \
   --argjson smoke_threads "$best_threads" \
   --argjson smoke_workers "$best_workers" \
   --argjson floor "$floor" \
   --argjson smoke_users "$smoke_users" \
   --argjson eb_csv_mbps "$eb_csv_mbps" \
   --argjson eb_col_mbps "$eb_col_mbps" \
   --argjson eb_export_sp "$eb_export_sp" \
   --argjson eb_analyze_sp "$eb_analyze_sp" \
   --argjson eb_total_sp "$eb_total_sp" \
   --argjson export_floor "$export_floor" \
   --argjson service_eps "$best_eps" \
   --argjson service_floor "$service_floor" \
   --argjson service_days "$service_days" \
   --argjson rec_clean_ns "$rec_clean_ns" \
   --argjson rec_chaos_ns "$rec_chaos_ns" \
   --argjson rec_restarts "$rec_restarts" \
   --argjson rec_users "$recovery_users" \
   '($b[0]."campaign/device_campaign_seq".mean_ns) as $seq
    | ($b[0]."campaign/device_campaign_par4".mean_ns) as $par
    | ($b[0]."engine/transfer_closed_form".mean_ns) as $cf
    | ($b[0]."engine/transfer_engine_stepped".mean_ns) as $es
    | ($b[0]."telemetry/ping_recorder_off".mean_ns) as $toff
    | ($b[0]."telemetry/ping_recorder_summary".mean_ns) as $tsum
    | ($b[0]."netsim/packet_forward".mean_ns) as $fwd
    | ($b[0]."telemetry/sink_noop_1k".mean_ns) as $noop
    | ($b[0]."telemetry/sink_recorder_off_1k".mean_ns) as $roff
    | ($b[0]."fleet/run_2k_users_sequential".mean_ns) as $fseq
    | ($b[0]."fleet/run_2k_users_4_shards_parallel".mean_ns) as $fpar
    | ($b[0]."faults/ping_faults_off".mean_ns) as $poff
    | ($b[0]."faults/ping_faults_heavy".mean_ns) as $pheavy
    | ($b[0]."event_core/uniform_4k_wheel".mean_ns) as $ecuw
    | ($b[0]."event_core/uniform_4k_heap".mean_ns) as $ecuh
    | ($b[0]."event_core/bursty_4k_wheel".mean_ns) as $ecbw
    | ($b[0]."event_core/bursty_4k_heap".mean_ns) as $ecbh
    | ($b[0]."event_core/longtail_4k_wheel".mean_ns) as $eclw
    | ($b[0]."event_core/longtail_4k_heap".mean_ns) as $eclh
    | ($b[0]."checkpoint/shard_encode_2k".mean_ns) as $cke
    | ($b[0]."checkpoint/shard_decode_2k".mean_ns) as $ckd
    | ($b[0]."checkpoint/shard_write_2k".mean_ns) as $ckw
    | ($b[0]."checkpoint/resume_validate_2k".mean_ns) as $ckr
    | {schema: "roamsim-bench-v1",
       host: {cpus: $cpus},
       telemetry: {
         note: "recorder-off ping over the bare packet_forward path gates the disabled-telemetry overhead (~1.0 = free); summary_over_off is what turning counters on costs; recorder_off_over_noop_1k compares the mode-gated recorder against the statically-dispatched empty sink",
         ping_recorder_off_ns: $toff,
         ping_recorder_summary_ns: $tsum,
         off_over_bare_ping: (if $toff != null and $fwd != null then ($toff / $fwd) else null end),
         summary_over_off: (if $tsum != null and $toff != null then ($tsum / $toff) else null end),
         recorder_off_over_noop_1k: (if $roff != null and $noop != null then ($roff / $noop) else null end)
       },
       parallel: {
         note: "seq and par4 runs export bit-identical data; speedup is wall-clock only and scales with host cores",
         device_campaign_seq_ns: $seq,
         device_campaign_par4_ns: $par,
         speedup_seq_over_par4: (if $seq != null and $par != null then ($seq / $par) else null end)
       },
       engine: {
         note: "both transports time the same transfer to sub-microsecond agreement; the ratio is what stepping the event calendar costs over the closed form",
         transfer_closed_form_ns: $cf,
         transfer_engine_stepped_ns: $es,
         engine_over_closed_form: (if $cf != null and $es != null then ($es / $cf) else null end)
       },
       faults: {
         note: "ping with a pinned-off fault spec over the bare packet_forward path gates the disabled-fault-plane overhead (the contract is one always-false branch per walk, <= 1.02); heavy_over_off is what a fully materialised heavy calendar set costs on the same walk",
         ping_faults_off_ns: $poff,
         ping_faults_heavy_ns: $pheavy,
         off_over_bare_ping: (if $poff != null and $fwd != null then ($poff / $fwd) else null end),
         heavy_over_off: (if $pheavy != null and $poff != null then ($pheavy / $poff) else null end),
         disabled_overhead_within_2pct: (if $poff != null and $fwd != null then ($poff / $fwd) <= 1.02 else null end)
       },
       event_core: {
         note: "schedule+pop of 4k events on a rewound (capacity-retaining) calendar, per mix; wheel_over_heap < 1.0 means the timing wheel beats the binary heap on that mix",
         uniform_4k_wheel_ns: $ecuw,
         uniform_4k_heap_ns: $ecuh,
         bursty_4k_wheel_ns: $ecbw,
         bursty_4k_heap_ns: $ecbh,
         longtail_4k_wheel_ns: $eclw,
         longtail_4k_heap_ns: $eclh,
         wheel_over_heap_uniform: (if $ecuw != null and $ecuh != null then ($ecuw / $ecuh) else null end),
         wheel_over_heap_bursty: (if $ecbw != null and $ecbh != null then ($ecbw / $ecbh) else null end),
         wheel_over_heap_longtail: (if $eclw != null and $eclh != null then ($eclw / $eclh) else null end)
       },
       fleet: {
         note: "2k-user run timed end-to-end (synthesis, purchases, sessions, sketches); users_per_sec_smoke is the population-scale throughput headline (best of three 100k-user fleet_smoke runs), gated against floor_users_per_sec on both backends; _threads4 spreads shards over 4 threads, _workers4 over 4 worker processes (pipes + codec frames), and workers4_over_threads4 is the process-backend tax (or win) — every mode produces byte-identical reports",
         run_2k_users_sequential_ns: $fseq,
         run_2k_users_4_shards_parallel_ns: $fpar,
         users_per_sec_sequential: (if $fseq != null then (2000 / ($fseq / 1e9)) else null end),
         users_per_sec_4_shards: (if $fpar != null then (2000 / ($fpar / 1e9)) else null end),
         users_per_sec_smoke: $smoke,
         users_per_sec_smoke_threads4: $smoke_threads,
         users_per_sec_smoke_workers4: $smoke_workers,
         workers4_over_threads4: (if $smoke_threads > 0 then ($smoke_workers / $smoke_threads) else null end),
         floor_users_per_sec: $floor,
         smoke_users: $smoke_users,
         above_floor: ($smoke >= $floor),
         above_floor_workers: ($smoke_workers >= $floor)
       },
       service: {
         note: "the measurement agent run end-to-end for a 30-sim-day horizon on default sizing: an event is one scheduler job fire (cohort tick, vantage probe, fault advance) or one session record through the bounded export queue; best of three service_smoke runs, gated against floor_events_per_sec",
         events_per_sec: $service_eps,
         sim_days: $service_days,
         floor_events_per_sec: $service_floor,
         above_floor: ($service_eps >= $service_floor)
       },
       export: {
         note: "the session table streamed from one fleet run, exported and analyzed both ways: CSV render + text re-parse vs columnar frame seal + zero-copy view + streaming query; export_speedup and analyze_speedup are per-phase CSV-over-columnar time ratios, speedup is end to end (export + analyze), gated against floor_speedup",
         csv_mb_per_sec: $eb_csv_mbps,
         columnar_mb_per_sec: $eb_col_mbps,
         export_speedup: $eb_export_sp,
         analyze_speedup: $eb_analyze_sp,
         speedup: $eb_total_sp,
         floor_speedup: $export_floor,
         above_floor: ($eb_total_sp >= $export_floor)
       },
       supervision: {
         note: "the worker backend is always supervised now (heartbeat frames between shards, one reader thread per child, liveness sweep, generation-tagged events); the gate holds supervised worker throughput within 2% of the worker-backend floor recorded before supervision landed",
         users_per_sec_supervised_workers4: $smoke_workers,
         pre_supervision_floor: $floor,
         within_2pct_of_floor: ($smoke_workers >= 0.98 * $floor)
       },
       recovery: {
         note: "one fleet_smoke shape run clean and under ROAM_WORKER_FAULTS=crash=0.5 (2 supervised workers, 8 shards); restarts from the fleet_smoke_worker_restarts stderr line; ms_per_restart = wall delta / restarts, informational only — it bundles crash detection, backoff, respawn and shard re-execution, and wall noise can push it negative",
         users: $rec_users,
         clean_ns: $rec_clean_ns,
         chaos_ns: $rec_chaos_ns,
         worker_restarts: $rec_restarts,
         ms_per_restart: (if $rec_restarts > 0 then (($rec_chaos_ns - $rec_clean_ns) / $rec_restarts / 1e6) else null end)
       },
       checkpoint: {
         note: "shard checkpoint frame for a 500-user shard state: encode (codec only), decode (parse + integrity hash + field decode), write (temp + fsync + rename, the torn-write protocol), and resume_validate (everything FleetRunner::resume pays before the first user: manifest decode, fingerprint recompute incl. world+market build, all shard loads)",
         shard_encode_2k_ns: $cke,
         shard_decode_2k_ns: $ckd,
         shard_write_2k_ns: $ckw,
         resume_validate_2k_ns: $ckr,
         write_over_encode: (if $ckw != null and $cke != null then ($ckw / $cke) else null end)
       },
       benchmarks: $b[0]}' > "$out"

echo "wrote $out"
jq '.parallel, .engine, .telemetry, .faults, .event_core, .fleet, .service, .export, .supervision, .recovery, .checkpoint' "$out"

if [ "$(jq '.faults.disabled_overhead_within_2pct' "$out")" = "false" ]; then
    echo "WARNING: disabled fault plane costs >2% over the bare ping path" >&2
    echo "         (faults/ping_faults_off vs netsim/packet_forward)" >&2
    exit 1
fi

if [ "$(jq '.fleet.above_floor' "$out")" = "false" ]; then
    echo "FAIL: fleet_smoke throughput ${best_ups} users/sec is below the" >&2
    echo "      floor of ${floor} (override with ROAM_FLEET_FLOOR)" >&2
    exit 1
fi

if [ "$(jq '.fleet.above_floor_workers' "$out")" = "false" ]; then
    echo "FAIL: fleet_smoke worker-process throughput ${best_workers} users/sec" >&2
    echo "      is below the floor of ${floor} (override with ROAM_FLEET_FLOOR)" >&2
    exit 1
fi

if [ "$(jq '.supervision.within_2pct_of_floor' "$out")" = "false" ]; then
    echo "FAIL: supervised worker throughput ${best_workers} users/sec fell more" >&2
    echo "      than 2% below the worker-backend floor of ${floor} — the" >&2
    echo "      supervision plane (heartbeats, reader threads, liveness sweep)" >&2
    echo "      is costing real throughput (override with ROAM_FLEET_FLOOR)" >&2
    exit 1
fi

if [ "$(jq '.service.above_floor' "$out")" = "false" ]; then
    echo "FAIL: service_smoke throughput ${best_eps} events/sec is below the" >&2
    echo "      floor of ${service_floor} (override with ROAM_SERVICE_FLOOR)" >&2
    exit 1
fi

if [ "$(jq '.export.above_floor' "$out")" = "false" ]; then
    echo "FAIL: columnar export+analyze is only ${eb_total_sp}x the CSV path," >&2
    echo "      below the floor of ${export_floor}x (override with ROAM_EXPORT_FLOOR)" >&2
    exit 1
fi
