#!/usr/bin/env bash
# Run the Criterion suite and flatten the estimates into BENCH_netsim.json
# at the repo root: one entry per benchmark (mean/median/std-dev in ns)
# plus the derived sequential-vs-Parallel(4) campaign speedup. The two
# campaign modes produce bit-identical data, so the ratio of their mean
# times is a pure wall-clock number — it scales with the host's cores
# (on a single-core host it sits near 1.0), which is why the host CPU
# count is recorded next to it.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo bench -p roam-bench --offline "$@"

crit=target/criterion
out=BENCH_netsim.json
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

for est in "$crit"/*/*/new/estimates.json; do
    [ -f "$est" ] || continue
    name_dir=$(dirname "$(dirname "$est")")
    group=$(basename "$(dirname "$name_dir")")
    name=$(basename "$name_dir")
    jq --arg id "$group/$name" \
       '{($id): {mean_ns: .mean.point_estimate,
                 median_ns: .median.point_estimate,
                 std_dev_ns: .std_dev.point_estimate}}' "$est"
done | jq -s 'add // {}' > "$tmp"

jq -n \
   --slurpfile b "$tmp" \
   --argjson cpus "$(nproc)" \
   '($b[0]."campaign/device_campaign_seq".mean_ns) as $seq
    | ($b[0]."campaign/device_campaign_par4".mean_ns) as $par
    | ($b[0]."engine/transfer_closed_form".mean_ns) as $cf
    | ($b[0]."engine/transfer_engine_stepped".mean_ns) as $es
    | {schema: "roamsim-bench-v1",
       host: {cpus: $cpus},
       parallel: {
         note: "seq and par4 runs export bit-identical data; speedup is wall-clock only and scales with host cores",
         device_campaign_seq_ns: $seq,
         device_campaign_par4_ns: $par,
         speedup_seq_over_par4: (if $seq != null and $par != null then ($seq / $par) else null end)
       },
       engine: {
         note: "both transports time the same transfer to sub-microsecond agreement; the ratio is what stepping the event calendar costs over the closed form",
         transfer_closed_form_ns: $cf,
         transfer_engine_stepped_ns: $es,
         engine_over_closed_form: (if $cf != null and $es != null then ($es / $cf) else null end)
       },
       benchmarks: $b[0]}' > "$out"

echo "wrote $out"
jq '.parallel, .engine' "$out"
