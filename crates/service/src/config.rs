//! Service sizing knobs: how many users the agent tends, how they are
//! grouped into cohorts, and the cadences its recurring jobs run at.
//!
//! Every field has a `ROAM_SERVICE_*` environment counterpart read by
//! [`ServiceConfig::from_env`]. Like the fleet knobs, none of them can
//! change a *user's* byte stream — they size the population, the tick
//! calendar and the export queue. The measurement mix and journey-sample
//! capacity are shared with the fleet plane (`ROAM_FLEET_MIX`,
//! `ROAM_FLEET_SAMPLE`) because cohort ticks run through the same
//! plan/exec/merge pipeline.

use roam_fleet::{FleetConfig, SessionMix};

/// Parse an environment variable, treating absent/malformed as `None`.
fn env_parse<T: std::str::FromStr>(key: &str) -> Option<T> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// Everything that sizes the long-running agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Users across all cohorts at start (`ROAM_SERVICE_USERS`).
    pub users: u64,
    /// Cohorts the population is split into (`ROAM_SERVICE_COHORTS`).
    /// Each owns a disjoint uid namespace, so the split never changes
    /// any user's streams — only which tick they ride on.
    pub cohorts: usize,
    /// Sim-days between cohort ticks, which is also the calendar window
    /// each tick plays out (`ROAM_SERVICE_TICK_DAYS`).
    pub tick_days: u32,
    /// Vantage probe sessions per country per probe fire
    /// (`ROAM_SERVICE_PROBES`). Probes alternate RTT and DNS.
    pub probes: u32,
    /// Cohort time-to-live in ticks (`ROAM_SERVICE_TTL`); `0` means
    /// cohorts never expire (incompatible with `--until-idle`).
    pub ttl_ticks: u64,
    /// Per-tick churn bound, percent of the cohort's live users
    /// (`ROAM_SERVICE_CHURN`). Departures and arrivals are drawn
    /// independently from `0..=live*pct/100` on the tick's own stream.
    pub churn_pct: u32,
    /// Export queue capacity in records (`ROAM_SERVICE_QUEUE`). When the
    /// queue fills, the virtual clock blocks while it drains into the
    /// sink — records are never dropped.
    pub queue_cap: usize,
    /// Sim-days between agent checkpoints (`ROAM_SERVICE_CKPT`), when a
    /// checkpoint directory is configured.
    pub ckpt_days: u64,
    /// Journey-sample capacity, shared knob (`ROAM_FLEET_SAMPLE`).
    pub sample: usize,
    /// Measurement mix per session, shared knob (`ROAM_FLEET_MIX`).
    pub mix: SessionMix,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            users: 2_000,
            cohorts: 3,
            tick_days: 7,
            probes: 4,
            ttl_ticks: 0,
            churn_pct: 10,
            queue_cap: 8_192,
            ckpt_days: 7,
            sample: 16,
            mix: SessionMix::default(),
        }
    }
}

/// Why a [`ServiceConfig`] cannot drive an agent. Every variant is a
/// startup refusal with the offending value in the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceConfigError {
    /// `cohorts == 0`: there is nobody to tick.
    NoCohorts,
    /// `users == 0`: an empty population never produces a record.
    NoUsers,
    /// `churn_pct > 100`: a tick cannot retire more users than live.
    ChurnOverFull {
        /// The out-of-range percentage.
        pct: u32,
    },
    /// `--until-idle` with `ttl_ticks == 0`: immortal cohorts never
    /// drain, so the run would have no end.
    UntilIdleNeedsTtl,
}

impl std::fmt::Display for ServiceConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceConfigError::NoCohorts => write!(f, "ROAM_SERVICE_COHORTS must be >= 1"),
            ServiceConfigError::NoUsers => write!(f, "ROAM_SERVICE_USERS must be >= 1"),
            ServiceConfigError::ChurnOverFull { pct } => {
                write!(f, "ROAM_SERVICE_CHURN must be <= 100 percent; got {pct}")
            }
            ServiceConfigError::UntilIdleNeedsTtl => write!(
                f,
                "--until-idle requires a finite cohort TTL (ROAM_SERVICE_TTL >= 1): \
                 immortal cohorts never drain"
            ),
        }
    }
}

impl std::error::Error for ServiceConfigError {}

impl ServiceConfig {
    /// Defaults overridden by whichever `ROAM_SERVICE_*` (and shared
    /// `ROAM_FLEET_MIX` / `ROAM_FLEET_SAMPLE`) variables are set.
    /// Malformed values fall back to the default.
    #[must_use]
    pub fn from_env() -> Self {
        let d = ServiceConfig::default();
        ServiceConfig {
            users: env_parse("ROAM_SERVICE_USERS").unwrap_or(d.users),
            cohorts: env_parse("ROAM_SERVICE_COHORTS").unwrap_or(d.cohorts),
            tick_days: env_parse("ROAM_SERVICE_TICK_DAYS")
                .unwrap_or(d.tick_days)
                .max(1),
            probes: env_parse("ROAM_SERVICE_PROBES").unwrap_or(d.probes).max(1),
            ttl_ticks: env_parse("ROAM_SERVICE_TTL").unwrap_or(d.ttl_ticks),
            churn_pct: env_parse("ROAM_SERVICE_CHURN").unwrap_or(d.churn_pct),
            queue_cap: env_parse("ROAM_SERVICE_QUEUE")
                .unwrap_or(d.queue_cap)
                .max(1),
            ckpt_days: env_parse("ROAM_SERVICE_CKPT").unwrap_or(d.ckpt_days).max(1),
            sample: env_parse("ROAM_FLEET_SAMPLE").unwrap_or(d.sample),
            mix: std::env::var("ROAM_FLEET_MIX")
                .ok()
                .and_then(|s| SessionMix::parse(&s))
                .unwrap_or(d.mix),
        }
    }

    /// Structural validation shared by the agent constructor and the
    /// checkpoint decoder.
    pub fn validate(&self) -> Result<(), ServiceConfigError> {
        if self.cohorts == 0 {
            return Err(ServiceConfigError::NoCohorts);
        }
        if self.users == 0 {
            return Err(ServiceConfigError::NoUsers);
        }
        if self.churn_pct > 100 {
            return Err(ServiceConfigError::ChurnOverFull {
                pct: self.churn_pct,
            });
        }
        Ok(())
    }

    /// The fleet sizing a cohort tick runs under: the tick window is the
    /// calendar window, the mix and sample are the shared knobs, and the
    /// fleet's own `users`/`shards` are ignored by [`UserBatch`]
    /// (the batch's uid range and sub-shard split replace them).
    ///
    /// [`UserBatch`]: roam_fleet::UserBatch
    #[must_use]
    pub fn fleet(&self) -> FleetConfig {
        FleetConfig {
            users: self.users,
            shards: 1,
            days: self.tick_days,
            sample: self.sample,
            mix: self.mix,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        let c = ServiceConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.fleet().days, c.tick_days);
        assert_eq!(c.fleet().mix, c.mix);
    }

    #[test]
    fn out_of_range_knobs_are_refused() {
        let c = ServiceConfig {
            cohorts: 0,
            ..ServiceConfig::default()
        };
        assert_eq!(c.validate(), Err(ServiceConfigError::NoCohorts));
        let c = ServiceConfig {
            users: 0,
            ..ServiceConfig::default()
        };
        assert_eq!(c.validate(), Err(ServiceConfigError::NoUsers));
        let c = ServiceConfig {
            churn_pct: 101,
            ..ServiceConfig::default()
        };
        assert_eq!(
            c.validate(),
            Err(ServiceConfigError::ChurnOverFull { pct: 101 })
        );
        let msg = ServiceConfigError::ChurnOverFull { pct: 101 }.to_string();
        assert!(msg.contains("101"), "{msg}");
    }
}
