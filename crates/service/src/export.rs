//! Backpressured sink streaming: the bounded queue between the virtual
//! clock and the export plane.
//!
//! Records produced by jobs land in a [`BoundedSink`] — a bounded
//! in-memory queue in front of any [`DataSink`]. The overflow policy is
//! deterministic and lossless: when the queue reaches capacity it
//! *blocks the virtual clock* (the push call drains the queue into the
//! sink before returning) rather than dropping records. Sim-time never
//! advances past an undrained queue, so the export stream's content and
//! order are a pure function of the schedule, not of sink speed.
//!
//! [`CsvFile`] is the durable endpoint the agent binary uses: a
//! single-dataset CSV file that counts every byte it accepts, so the
//! agent checkpoint can record a durable offset and a resumed process
//! can truncate back to exactly the synced prefix.
//!
//! A write failure never aborts a drain mid-flight: [`CsvFile`] goes
//! *sick* (sticky) — further rows become no-ops and [`CsvFile::sync`]
//! returns the stored error — so the agent can still cut a final
//! checkpoint at the last durable offset and surface the failure as a
//! typed value instead of a panic.

use roam_fleet::{SessionRecord, SessionRows};
use roam_measure::{DataSink, Dataset, Exporter, SharedSink};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

/// A bounded queue of session records in front of a shared sink.
pub struct BoundedSink {
    target: SharedSink,
    cap: usize,
    buf: Vec<SessionRecord>,
    records: u64,
    flushes: u64,
}

impl BoundedSink {
    /// A queue of at most `cap` records (clamped to ≥ 1) draining into
    /// `target`.
    #[must_use]
    pub fn new(target: SharedSink, cap: usize) -> Self {
        let cap = cap.max(1);
        BoundedSink {
            target,
            cap,
            buf: Vec::with_capacity(cap),
            records: 0,
            flushes: 0,
        }
    }

    /// Queue records; whenever the queue reaches capacity it drains
    /// synchronously (the "block the clock" policy — the caller does not
    /// get control back until the sink has absorbed the overflow).
    pub fn extend(&mut self, records: &[SessionRecord]) {
        for &rec in records {
            self.buf.push(rec);
            self.records += 1;
            if self.buf.len() >= self.cap {
                self.flush();
            }
        }
    }

    /// Drain the queue into the sink now (checkpoint and shutdown path).
    pub fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let mut sink = self.target.lock().expect("export sink poisoned");
        SessionRows(&self.buf).export_rows(Dataset::Sessions, &mut *sink);
        self.buf.clear();
        self.flushes += 1;
    }

    /// Records accepted over the queue's lifetime.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Times the queue drained into the sink.
    #[must_use]
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Records currently queued (always `< cap` between calls).
    #[must_use]
    pub fn queued(&self) -> usize {
        self.buf.len()
    }
}

/// A single-dataset CSV file sink that counts accepted bytes.
///
/// Rows render through the same `String` thin view every other CSV
/// export uses, then append to an internal write buffer; [`CsvFile::sync`]
/// pushes the buffer to disk and fsyncs, returning the durable byte
/// offset. [`CsvFile::resume`] reopens a file at a recorded offset,
/// truncating any unsynced tail a crash may have left behind.
pub struct CsvFile {
    file: File,
    ds: Dataset,
    line: String,
    pending: Vec<u8>,
    bytes: u64,
    /// First write failure, sticky: once set, rows no-op and `sync`
    /// keeps returning it. `bytes` stops advancing at the same instant,
    /// so a checkpoint cut afterwards records the last honest offset.
    sick: Option<std::io::Error>,
}

/// Flush the write buffer once it holds this much.
const PENDING_FLUSH: usize = 64 * 1024;

impl CsvFile {
    /// Create (truncate) `path` and write the dataset header.
    pub fn create(path: &Path, ds: Dataset) -> std::io::Result<Self> {
        let file = File::create(path)?;
        let mut sink = CsvFile {
            file,
            ds,
            line: String::with_capacity(96),
            pending: Vec::with_capacity(PENDING_FLUSH + 256),
            bytes: 0,
            sick: None,
        };
        let header = ds.header_csv();
        sink.pending.extend_from_slice(header.as_bytes());
        sink.bytes += header.len() as u64;
        Ok(sink)
    }

    /// Reopen `path` with `bytes` of durable prefix: refuse a file
    /// shorter than the recorded offset (the checkpoint is then ahead of
    /// the data — unrecoverable), truncate anything past it.
    pub fn resume(path: &Path, ds: Dataset, bytes: u64) -> std::io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len < bytes {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "{}: {len} bytes on disk but the checkpoint recorded {bytes}",
                    path.display()
                ),
            ));
        }
        file.set_len(bytes)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(CsvFile {
            file,
            ds,
            line: String::with_capacity(96),
            pending: Vec::with_capacity(PENDING_FLUSH + 256),
            bytes,
            sick: None,
        })
    }

    /// Bytes accepted (buffered + written) since the header.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The first write failure, if the sink has gone sick. Sticky:
    /// stays set until the sink is dropped.
    #[must_use]
    pub fn sick_error(&self) -> Option<&std::io::Error> {
        self.sick.as_ref()
    }

    /// Write the buffer through and fsync; returns the durable offset.
    /// A sick sink returns its stored error (and keeps it) instead of
    /// pretending the offset advanced.
    pub fn sync(&mut self) -> std::io::Result<u64> {
        if let Some(e) = &self.sick {
            return Err(std::io::Error::new(e.kind(), e.to_string()));
        }
        if !self.pending.is_empty() {
            if let Err(e) = self.file.write_all(&self.pending) {
                return Err(self.go_sick(e));
            }
            self.pending.clear();
        }
        if let Err(e) = self.file.sync_data() {
            return Err(self.go_sick(e));
        }
        Ok(self.bytes)
    }

    /// Enter the sticky failure state: drop the unwritable buffer and
    /// roll `bytes` back to the durable prefix so checkpoints record an
    /// honest offset. Returns a copy of the error for the caller.
    fn go_sick(&mut self, e: std::io::Error) -> std::io::Error {
        let copy = std::io::Error::new(e.kind(), e.to_string());
        self.bytes -= self.pending.len() as u64;
        self.pending.clear();
        self.sick = Some(e);
        copy
    }
}

impl DataSink for CsvFile {
    fn row(&mut self, ds: Dataset, cells: &[roam_measure::CellValue<'_>]) {
        debug_assert_eq!(ds, self.ds, "CsvFile is single-dataset");
        if self.sick.is_some() {
            return; // sticky: the first failure already froze the offset
        }
        self.line.clear();
        self.line.row(ds, cells);
        self.pending.extend_from_slice(self.line.as_bytes());
        self.bytes += self.line.len() as u64;
        if self.pending.len() >= PENDING_FLUSH {
            if let Err(e) = self.file.write_all(&self.pending) {
                self.go_sick(e);
                return;
            }
            self.pending.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roam_fleet::SessionKind;
    use roam_measure::campaign::RecordTag;
    use roam_measure::{MeasureStatus, MemorySink};
    use std::sync::{Arc, Mutex};

    fn rec(rtt: f64) -> SessionRecord {
        use roam_cellular::{Rat, SimType};
        use roam_ipx::RoamingArch;

        SessionRecord {
            tag: RecordTag {
                country: roam_geo::Country::MEASURED[0],
                sim_type: SimType::Esim,
                arch: RoamingArch::LocalBreakout,
                rat: Rat::Lte,
            },
            kind: SessionKind::Rtt,
            rtt_ms: Some(rtt),
            lookup_ms: None,
            mb: None,
            status: MeasureStatus::Ok,
        }
    }

    #[test]
    fn queue_blocks_at_capacity_and_never_drops() {
        let mem = Arc::new(Mutex::new(MemorySink::default()));
        let mut q = BoundedSink::new(mem.clone(), 4);
        let records: Vec<SessionRecord> = (0..10).map(|i| rec(f64::from(i))).collect();
        q.extend(&records[..3]);
        assert_eq!(q.queued(), 3, "under capacity: nothing drained yet");
        assert_eq!(q.flushes(), 0);
        q.extend(&records[3..]);
        // 10 records through a cap of 4: flushed at 4 and 8, 2 left.
        assert_eq!(q.flushes(), 2);
        assert_eq!(q.queued(), 2);
        q.flush();
        assert_eq!(q.records(), 10);
        let tables = mem.lock().unwrap().clone().into_tables();
        let (_, csv) = &tables[0];
        assert_eq!(
            csv.lines().count(),
            11,
            "header + all 10 records, none dropped"
        );
    }

    #[test]
    fn flush_boundaries_do_not_change_the_bytes() {
        let through = {
            let mem = Arc::new(Mutex::new(MemorySink::default()));
            let mut q = BoundedSink::new(mem.clone(), 1_000);
            q.extend(&(0..25).map(|i| rec(f64::from(i))).collect::<Vec<_>>());
            q.flush();
            let tables = mem.lock().unwrap().clone().into_tables();
            tables
        };
        let chopped = {
            let mem = Arc::new(Mutex::new(MemorySink::default()));
            let mut q = BoundedSink::new(mem.clone(), 3);
            q.extend(&(0..25).map(|i| rec(f64::from(i))).collect::<Vec<_>>());
            q.flush();
            let tables = mem.lock().unwrap().clone().into_tables();
            tables
        };
        assert_eq!(through, chopped);
    }

    #[test]
    fn csv_file_round_trips_and_resumes_at_the_synced_offset() {
        let dir = std::env::temp_dir().join(format!("roam-service-csv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sessions.csv");

        let mut sink = CsvFile::create(&path, Dataset::Sessions).unwrap();
        SessionRows(&[rec(1.0), rec(2.0)]).export_rows(Dataset::Sessions, &mut sink);
        let synced = sink.sync().unwrap();
        // Unsynced tail, then a simulated crash (drop without sync).
        SessionRows(&[rec(3.0)]).export_rows(Dataset::Sessions, &mut sink);
        drop(sink);

        let mut resumed = CsvFile::resume(&path, Dataset::Sessions, synced).unwrap();
        SessionRows(&[rec(3.0)]).export_rows(Dataset::Sessions, &mut resumed);
        let total = resumed.sync().unwrap();
        drop(resumed);

        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.len() as u64, total);
        assert_eq!(text.lines().count(), 4, "header + 3 records exactly once");

        // A checkpoint ahead of the file is a refusal, not a restart.
        assert!(CsvFile::resume(&path, Dataset::Sessions, total + 10).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A full device (`/dev/full` reports `ENOSPC` on every write) must
    /// flip the sink sick, not panic: rows become no-ops, the byte
    /// counter freezes at the durable prefix (here zero — nothing ever
    /// landed), and every `sync` after the first failure returns the
    /// same stored error.
    #[test]
    #[cfg(unix)]
    fn write_failure_goes_sticky_instead_of_panicking() {
        let dev_full = Path::new("/dev/full");
        if !dev_full.exists() {
            return; // minimal container without /dev/full
        }
        let mut sink = CsvFile::create(dev_full, Dataset::Sessions).unwrap();
        // Push well past the pending-flush threshold: the internal
        // flush hits ENOSPC and must go sick, not panic.
        let records: Vec<SessionRecord> = (0..20_000).map(|i| rec(f64::from(i))).collect();
        SessionRows(&records).export_rows(Dataset::Sessions, &mut sink);
        assert!(sink.sick_error().is_some(), "ENOSPC must stick");
        assert_eq!(sink.bytes(), 0, "no byte was ever durable");
        let before = sink.bytes();
        SessionRows(&[rec(1.0)]).export_rows(Dataset::Sessions, &mut sink);
        assert_eq!(sink.bytes(), before, "sick sink no-ops new rows");
        assert!(sink.sync().is_err(), "sync reports the stored error");
        assert!(sink.sync().is_err(), "and keeps reporting it (sticky)");
    }
}
