//! The agent checkpoint: one sealed frame holding the whole service
//! state, written through the fleet checkpoint plane.
//!
//! Unlike a fleet run — whose state is spread over a manifest plus one
//! file per shard — the agent's resumable state fits one frame
//! (`agent.ckpt`, kind [`KIND_AGENT`]): the resolved knobs, the
//! scheduler's job cursors, the cohort windows, the cumulative report,
//! the soak rows and the durable export offset. Everything else — the
//! world, the endpoint pool, per-fire randomness — is rebuilt
//! deterministically from the seed, which is the same split the fleet
//! shard checkpoint makes.
//!
//! The frame embeds a [`service_fingerprint`] and the decoder recomputes
//! it: a checkpoint written under different knob semantics, a different
//! world build, or a different config is *refused*
//! ([`ResumeError::FingerprintMismatch`]), never silently restarted.

use crate::config::ServiceConfig;
use roam_codec::{hash64_fold, CodecError, Decoder, Encoder, Frame};
use roam_fleet::checkpoint::{read_frame, run_fingerprint, write_atomic, CKPT_VERSION, KIND_AGENT};
use roam_fleet::{FleetReport, ResumeError, SessionMix};
use roam_geo::Country;
use roam_netsim::{FaultSpec, SimTime};
use roam_telemetry::TelemetryMode;
use std::path::Path;

/// File name of the agent checkpoint inside the checkpoint directory.
pub const AGENT_FILE: &str = "agent.ckpt";

/// One aggregated vantage-probe observation for the degradation-over-
/// time analysis: which sim-week, which country, which probe kind, and
/// what came back.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoakRow {
    /// Sim-week of the fire (`at / 7 days`).
    pub week: u64,
    /// Vantage country (alpha-3, interned to the measured set).
    pub country: &'static str,
    /// Probe kind: `0` = RTT, `1` = DNS.
    pub kind: u8,
    /// The metric, ms (`None` when the probe failed).
    pub ms: Option<f64>,
    /// Outcome code, [`STATUS_LABELS`](roam_measure::STATUS_LABELS)
    /// order.
    pub status: u8,
}

/// Field tags for the agent frame. Append-only, like every other
/// checkpoint section.
mod agent_tag {
    pub const SEED: u32 = 1;
    pub const FINGERPRINT: u32 = 2;
    pub const CONFIG: u32 = 3;
    pub const TELEMETRY: u32 = 4;
    pub const FAULTS: u32 = 5;
    pub const CLOCK_NS: u32 = 6;
    pub const WEEK: u32 = 7;
    pub const EXPORT_BYTES: u32 = 8;
    pub const STREAMED: u32 = 9;
    pub const REPORT: u32 = 10;
    pub const JOB: u32 = 11;
    pub const COHORT: u32 = 12;
    pub const SOAK: u32 = 13;
}

mod config_tag {
    pub const USERS: u32 = 1;
    pub const COHORTS: u32 = 2;
    pub const TICK_DAYS: u32 = 3;
    pub const PROBES: u32 = 4;
    pub const TTL: u32 = 5;
    pub const CHURN: u32 = 6;
    pub const QUEUE: u32 = 7;
    pub const CKPT: u32 = 8;
    pub const SAMPLE: u32 = 9;
    pub const MIX_RTT: u32 = 10;
    pub const MIX_DNS: u32 = 11;
    pub const MIX_TRANSFER: u32 = 12;
}

mod job_tag {
    pub const ID: u32 = 1;
    pub const PERIOD_NS: u32 = 2;
    pub const FIRES: u32 = 3;
    pub const NEXT_NS: u32 = 4;
}

mod cohort_tag {
    pub const INDEX: u32 = 1;
    pub const RETIRED: u32 = 2;
    pub const GROWN: u32 = 3;
    pub const TICKS: u32 = 4;
    pub const EXPIRED: u32 = 5;
}

mod soak_tag {
    pub const WEEK: u32 = 1;
    pub const COUNTRY: u32 = 2;
    pub const KIND: u32 = 3;
    pub const MS: u32 = 4;
    pub const STATUS: u32 = 5;
}

/// The world/knob fingerprint the agent frame is keyed by: the fleet
/// plane's [`run_fingerprint`] over the tick-shaped [`FleetConfig`]
/// (covering the seeded world, the market and the shared knobs) folded
/// with every service-only knob that can reach the output bytes.
///
/// [`FleetConfig`]: roam_fleet::FleetConfig
#[must_use]
pub fn service_fingerprint(
    seed: u64,
    config: &ServiceConfig,
    telemetry: TelemetryMode,
    faults: &FaultSpec,
) -> u64 {
    let mut h = run_fingerprint(seed, &config.fleet(), telemetry, faults);
    for knob in [
        config.users,
        config.cohorts as u64,
        u64::from(config.tick_days),
        u64::from(config.probes),
        config.ttl_ticks,
        u64::from(config.churn_pct),
    ] {
        h = hash64_fold(h, knob);
    }
    h
}

fn telemetry_to_wire(mode: TelemetryMode) -> u64 {
    match mode {
        TelemetryMode::Off => 0,
        TelemetryMode::Summary => 1,
        TelemetryMode::Jsonl => 2,
    }
}

fn telemetry_from_wire(v: u64) -> Result<TelemetryMode, CodecError> {
    match v {
        0 => Ok(TelemetryMode::Off),
        1 => Ok(TelemetryMode::Summary),
        2 => Ok(TelemetryMode::Jsonl),
        _ => Err(CodecError::BadValue("telemetry mode")),
    }
}

fn encode_config(e: &mut Encoder, c: &ServiceConfig) {
    e.u64(config_tag::USERS, c.users);
    e.u64(config_tag::COHORTS, c.cohorts as u64);
    e.u64(config_tag::TICK_DAYS, u64::from(c.tick_days));
    e.u64(config_tag::PROBES, u64::from(c.probes));
    e.u64(config_tag::TTL, c.ttl_ticks);
    e.u64(config_tag::CHURN, u64::from(c.churn_pct));
    e.u64(config_tag::QUEUE, c.queue_cap as u64);
    e.u64(config_tag::CKPT, c.ckpt_days);
    e.u64(config_tag::SAMPLE, c.sample as u64);
    e.u64(config_tag::MIX_RTT, u64::from(c.mix.rtt));
    e.u64(config_tag::MIX_DNS, u64::from(c.mix.dns));
    e.u64(config_tag::MIX_TRANSFER, u64::from(c.mix.transfer));
}

fn as_u32(v: u64, what: &'static str) -> Result<u32, CodecError> {
    u32::try_from(v).map_err(|_| CodecError::BadValue(what))
}

fn as_usize(v: u64, what: &'static str) -> Result<usize, CodecError> {
    usize::try_from(v).map_err(|_| CodecError::BadValue(what))
}

fn decode_config(d: &mut Decoder<'_>) -> Result<ServiceConfig, CodecError> {
    let mut c = ServiceConfig::default();
    let (mut rtt, mut dns, mut transfer) = (c.mix.rtt, c.mix.dns, c.mix.transfer);
    while let Some((tag, v)) = d.next_field()? {
        match tag {
            config_tag::USERS => c.users = v.as_u64(tag)?,
            config_tag::COHORTS => c.cohorts = as_usize(v.as_u64(tag)?, "cohorts")?,
            config_tag::TICK_DAYS => c.tick_days = as_u32(v.as_u64(tag)?, "tick_days")?,
            config_tag::PROBES => c.probes = as_u32(v.as_u64(tag)?, "probes")?,
            config_tag::TTL => c.ttl_ticks = v.as_u64(tag)?,
            config_tag::CHURN => c.churn_pct = as_u32(v.as_u64(tag)?, "churn")?,
            config_tag::QUEUE => c.queue_cap = as_usize(v.as_u64(tag)?, "queue")?,
            config_tag::CKPT => c.ckpt_days = v.as_u64(tag)?,
            config_tag::SAMPLE => c.sample = as_usize(v.as_u64(tag)?, "sample")?,
            config_tag::MIX_RTT => rtt = as_u32(v.as_u64(tag)?, "mix")?,
            config_tag::MIX_DNS => dns = as_u32(v.as_u64(tag)?, "mix")?,
            config_tag::MIX_TRANSFER => transfer = as_u32(v.as_u64(tag)?, "mix")?,
            _ => {}
        }
    }
    if rtt + dns + transfer == 0 {
        return Err(CodecError::BadValue("all-zero mix"));
    }
    c.mix = SessionMix::new(rtt, dns, transfer);
    c.validate()
        .map_err(|_| CodecError::BadValue("service config"))?;
    Ok(c)
}

/// Encode a [`FaultSpec`] as consecutive f64 fields, tags 1..=12 in
/// declaration order.
fn encode_faults(e: &mut Encoder, s: &FaultSpec) {
    for (i, v) in fault_fields(s).into_iter().enumerate() {
        e.f64(i as u32 + 1, v);
    }
}

fn fault_fields(s: &FaultSpec) -> [f64; 12] {
    [
        s.link_flap_rate,
        s.flap_bad_loss,
        s.flap_good_ms,
        s.flap_bad_ms,
        s.gateway_outage_rate,
        s.outage_up_ms,
        s.outage_dark_ms,
        s.dns_blackhole_rate,
        s.cgnat_rebind_rate,
        s.rebind_up_ms,
        s.rebind_dark_ms,
        s.period_ms,
    ]
}

fn decode_faults(d: &mut Decoder<'_>) -> Result<FaultSpec, CodecError> {
    let mut f = fault_fields(&FaultSpec::off());
    while let Some((tag, v)) = d.next_field()? {
        let i = tag as usize;
        if (1..=f.len()).contains(&i) {
            f[i - 1] = v.as_f64(tag)?;
        }
    }
    Ok(FaultSpec {
        link_flap_rate: f[0],
        flap_bad_loss: f[1],
        flap_good_ms: f[2],
        flap_bad_ms: f[3],
        gateway_outage_rate: f[4],
        outage_up_ms: f[5],
        outage_dark_ms: f[6],
        dns_blackhole_rate: f[7],
        cgnat_rebind_rate: f[8],
        rebind_up_ms: f[9],
        rebind_dark_ms: f[10],
        period_ms: f[11],
    })
}

/// `SimTime` options on the wire: `u64::MAX` = `None` (no fire time can
/// reach it — that is 585 sim-years).
fn opt_time_to_wire(t: Option<SimTime>) -> u64 {
    t.map_or(u64::MAX, |t| t.as_nanos())
}

fn opt_time_from_wire(v: u64) -> Option<SimTime> {
    (v != u64::MAX).then(|| SimTime::from_nanos(v))
}

/// Intern an alpha-3 code to the measured set's `&'static str`.
fn intern_country(s: &str) -> Result<&'static str, CodecError> {
    Country::MEASURED
        .iter()
        .map(|c| c.alpha3())
        .find(|a3| *a3 == s)
        .ok_or(CodecError::BadValue("soak country"))
}

/// One scheduler job's resumable cursor, as stored in the frame —
/// exactly the [`Scheduler::job_states`](crate::Scheduler::job_states)
/// tuple.
pub type JobState = (String, Option<SimTime>, u64, Option<SimTime>);

/// Everything a killed agent needs to continue as if uninterrupted.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentState {
    /// Master seed.
    pub seed: u64,
    /// The resolved service knobs (env is *not* re-read on resume).
    pub config: ServiceConfig,
    /// The resolved telemetry mode.
    pub telemetry: TelemetryMode,
    /// The resolved fault spec.
    pub faults: FaultSpec,
    /// Virtual time of the last processed batch.
    pub clock: SimTime,
    /// Fault-calendar week counter.
    pub week: u64,
    /// Durable byte offset of the streamed session CSV (0 when the run
    /// has no file sink).
    pub export_bytes: u64,
    /// Records streamed through the bounded sink so far.
    pub streamed: u64,
    /// Cumulative fleet report across all cohort ticks.
    pub report: FleetReport,
    /// Scheduler cursors in registration order.
    pub jobs: Vec<JobState>,
    /// Cohort windows in cohort order.
    pub cohorts: Vec<crate::cohort::Cohort>,
    /// Vantage soak rows accumulated so far.
    pub soak: Vec<SoakRow>,
}

impl AgentState {
    /// The fingerprint this state is keyed by.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        service_fingerprint(self.seed, &self.config, self.telemetry, &self.faults)
    }

    /// Serialize into a sealed [`KIND_AGENT`] frame.
    #[must_use]
    pub fn to_frame(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(agent_tag::SEED, self.seed);
        e.u64(agent_tag::FINGERPRINT, self.fingerprint());
        e.section(agent_tag::CONFIG, |se| encode_config(se, &self.config));
        e.u64(agent_tag::TELEMETRY, telemetry_to_wire(self.telemetry));
        e.section(agent_tag::FAULTS, |se| encode_faults(se, &self.faults));
        e.u64(agent_tag::CLOCK_NS, self.clock.as_nanos());
        e.u64(agent_tag::WEEK, self.week);
        e.u64(agent_tag::EXPORT_BYTES, self.export_bytes);
        e.u64(agent_tag::STREAMED, self.streamed);
        e.section(agent_tag::REPORT, |se| self.report.encode_fields(se));
        for (id, period, fires, next) in &self.jobs {
            e.section(agent_tag::JOB, |se| {
                se.str(job_tag::ID, id);
                se.u64(job_tag::PERIOD_NS, opt_time_to_wire(*period));
                se.u64(job_tag::FIRES, *fires);
                se.u64(job_tag::NEXT_NS, opt_time_to_wire(*next));
            });
        }
        for c in &self.cohorts {
            e.section(agent_tag::COHORT, |se| {
                se.u64(cohort_tag::INDEX, c.index as u64);
                se.u64(cohort_tag::RETIRED, c.retired);
                se.u64(cohort_tag::GROWN, c.grown);
                se.u64(cohort_tag::TICKS, c.ticks);
                se.u64(cohort_tag::EXPIRED, u64::from(c.expired));
            });
        }
        for r in &self.soak {
            e.section(agent_tag::SOAK, |se| {
                se.u64(soak_tag::WEEK, r.week);
                se.str(soak_tag::COUNTRY, r.country);
                se.u64(soak_tag::KIND, u64::from(r.kind));
                if let Some(ms) = r.ms {
                    se.f64(soak_tag::MS, ms);
                }
                se.u64(soak_tag::STATUS, u64::from(r.status));
            });
        }
        Frame::seal(KIND_AGENT, CKPT_VERSION, &e.into_bytes())
    }

    /// Decode a frame payload, enforcing the fingerprint.
    pub fn decode(payload: &[u8]) -> Result<Self, ResumeError> {
        let corrupt = |e: CodecError| ResumeError::Corrupt(std::path::PathBuf::from(AGENT_FILE), e);
        let mut d = Decoder::new(payload);
        let mut seed = None;
        let mut stored_fp = None;
        let mut config = None;
        let mut telemetry = TelemetryMode::Off;
        let mut faults = None;
        let mut clock = SimTime::ZERO;
        let mut week = 0;
        let mut export_bytes = 0;
        let mut streamed = 0;
        let mut report = None;
        let mut jobs = Vec::new();
        let mut cohorts = Vec::new();
        let mut soak = Vec::new();
        while let Some((tag, v)) = d.next_field().map_err(corrupt)? {
            match tag {
                agent_tag::SEED => seed = Some(v.as_u64(tag).map_err(corrupt)?),
                agent_tag::FINGERPRINT => stored_fp = Some(v.as_u64(tag).map_err(corrupt)?),
                agent_tag::CONFIG => {
                    let mut sd = v.as_section(tag).map_err(corrupt)?;
                    config = Some(decode_config(&mut sd).map_err(corrupt)?);
                }
                agent_tag::TELEMETRY => {
                    telemetry =
                        telemetry_from_wire(v.as_u64(tag).map_err(corrupt)?).map_err(corrupt)?;
                }
                agent_tag::FAULTS => {
                    let mut sd = v.as_section(tag).map_err(corrupt)?;
                    faults = Some(decode_faults(&mut sd).map_err(corrupt)?);
                }
                agent_tag::CLOCK_NS => {
                    clock = SimTime::from_nanos(v.as_u64(tag).map_err(corrupt)?);
                }
                agent_tag::WEEK => week = v.as_u64(tag).map_err(corrupt)?,
                agent_tag::EXPORT_BYTES => export_bytes = v.as_u64(tag).map_err(corrupt)?,
                agent_tag::STREAMED => streamed = v.as_u64(tag).map_err(corrupt)?,
                agent_tag::REPORT => {
                    let mut sd = v.as_section(tag).map_err(corrupt)?;
                    report = Some(FleetReport::decode_fields(&mut sd).map_err(corrupt)?);
                }
                agent_tag::JOB => {
                    let mut sd = v.as_section(tag).map_err(corrupt)?;
                    let (mut id, mut period, mut fires, mut next) = (None, u64::MAX, 0, u64::MAX);
                    while let Some((jt, jv)) = sd.next_field().map_err(corrupt)? {
                        match jt {
                            job_tag::ID => id = Some(jv.as_str(jt).map_err(corrupt)?.to_string()),
                            job_tag::PERIOD_NS => period = jv.as_u64(jt).map_err(corrupt)?,
                            job_tag::FIRES => fires = jv.as_u64(jt).map_err(corrupt)?,
                            job_tag::NEXT_NS => next = jv.as_u64(jt).map_err(corrupt)?,
                            _ => {}
                        }
                    }
                    jobs.push((
                        id.ok_or_else(|| corrupt(CodecError::MissingField("job id")))?,
                        opt_time_from_wire(period),
                        fires,
                        opt_time_from_wire(next),
                    ));
                }
                agent_tag::COHORT => {
                    let mut sd = v.as_section(tag).map_err(corrupt)?;
                    let mut c = crate::cohort::Cohort::new(0, 0);
                    while let Some((ct, cv)) = sd.next_field().map_err(corrupt)? {
                        match ct {
                            cohort_tag::INDEX => {
                                c.index = as_usize(cv.as_u64(ct).map_err(corrupt)?, "cohort index")
                                    .map_err(corrupt)?;
                            }
                            cohort_tag::RETIRED => c.retired = cv.as_u64(ct).map_err(corrupt)?,
                            cohort_tag::GROWN => c.grown = cv.as_u64(ct).map_err(corrupt)?,
                            cohort_tag::TICKS => c.ticks = cv.as_u64(ct).map_err(corrupt)?,
                            cohort_tag::EXPIRED => c.expired = cv.as_u64(ct).map_err(corrupt)? != 0,
                            _ => {}
                        }
                    }
                    if c.retired > c.grown {
                        return Err(corrupt(CodecError::BadValue("cohort window")));
                    }
                    cohorts.push(c);
                }
                agent_tag::SOAK => {
                    let mut sd = v.as_section(tag).map_err(corrupt)?;
                    let mut r = SoakRow {
                        week: 0,
                        country: "",
                        kind: 0,
                        ms: None,
                        status: 0,
                    };
                    let mut seen_country = false;
                    while let Some((st, sv)) = sd.next_field().map_err(corrupt)? {
                        match st {
                            soak_tag::WEEK => r.week = sv.as_u64(st).map_err(corrupt)?,
                            soak_tag::COUNTRY => {
                                r.country = intern_country(sv.as_str(st).map_err(corrupt)?)
                                    .map_err(corrupt)?;
                                seen_country = true;
                            }
                            soak_tag::KIND => {
                                r.kind = u8::try_from(sv.as_u64(st).map_err(corrupt)?)
                                    .map_err(|_| corrupt(CodecError::BadValue("soak kind")))?;
                            }
                            soak_tag::MS => r.ms = Some(sv.as_f64(st).map_err(corrupt)?),
                            soak_tag::STATUS => {
                                r.status = u8::try_from(sv.as_u64(st).map_err(corrupt)?)
                                    .map_err(|_| corrupt(CodecError::BadValue("soak status")))?;
                            }
                            _ => {}
                        }
                    }
                    if !seen_country {
                        return Err(corrupt(CodecError::MissingField("soak country")));
                    }
                    soak.push(r);
                }
                _ => {}
            }
        }
        let state = AgentState {
            seed: seed.ok_or_else(|| corrupt(CodecError::MissingField("seed")))?,
            config: config.ok_or_else(|| corrupt(CodecError::MissingField("config")))?,
            telemetry,
            faults: faults.ok_or_else(|| corrupt(CodecError::MissingField("faults")))?,
            clock,
            week,
            export_bytes,
            streamed,
            report: report.ok_or_else(|| corrupt(CodecError::MissingField("report")))?,
            jobs,
            cohorts,
            soak,
        };
        let stored = stored_fp.ok_or_else(|| corrupt(CodecError::MissingField("fingerprint")))?;
        let computed = state.fingerprint();
        if stored != computed {
            return Err(ResumeError::FingerprintMismatch { stored, computed });
        }
        Ok(state)
    }

    /// Atomically persist into `dir/agent.ckpt`, creating `dir` first.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        write_atomic(&dir.join(AGENT_FILE), &self.to_frame())
    }

    /// Load from `dir/agent.ckpt`; `Ok(None)` when no agent checkpoint
    /// exists (a fresh start, not an error).
    pub fn load(dir: &Path) -> Result<Option<Self>, ResumeError> {
        let path = dir.join(AGENT_FILE);
        if !path.exists() {
            return Ok(None);
        }
        let payload = read_frame(&path, KIND_AGENT)?;
        Self::decode(&payload).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cohort::Cohort;
    use crate::task::days;

    fn state() -> AgentState {
        let config = ServiceConfig::default();
        let mut report = FleetReport::new(config.sample);
        report.users = 42;
        report.rtt_ms.observe(33.0);
        AgentState {
            seed: 11,
            config,
            telemetry: TelemetryMode::Summary,
            faults: FaultSpec::heavy(),
            clock: days(9),
            week: 1,
            export_bytes: 12_345,
            streamed: 678,
            report,
            jobs: vec![
                ("cohort/0".into(), Some(days(7)), 2, Some(days(14))),
                ("probe/PAK".into(), Some(days(1)), 9, Some(days(10))),
                ("done".into(), None, 1, None),
            ],
            cohorts: vec![Cohort::new(0, 500), {
                let mut c = Cohort::new(1, 400);
                c.retired = 30;
                c.ticks = 2;
                c
            }],
            soak: vec![
                SoakRow {
                    week: 0,
                    country: Country::MEASURED[0].alpha3(),
                    kind: 0,
                    ms: Some(41.5),
                    status: 0,
                },
                SoakRow {
                    week: 1,
                    country: Country::MEASURED[1].alpha3(),
                    kind: 1,
                    ms: None,
                    status: 2,
                },
            ],
        }
    }

    #[test]
    fn frame_round_trip_is_identity() {
        let s = state();
        let frame = s.to_frame();
        let (parsed, used) = Frame::parse(&frame).expect("sealed frame parses");
        assert_eq!(used, frame.len());
        assert_eq!(parsed.kind, KIND_AGENT);
        let back = AgentState::decode(parsed.payload).expect("clean round trip");
        assert_eq!(back, s);
    }

    #[test]
    fn save_load_round_trips_and_missing_is_none() {
        let dir = std::env::temp_dir().join(format!("roam-service-ckpt-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        assert!(matches!(AgentState::load(&dir), Ok(None)));
        let s = state();
        s.save(&dir).expect("save");
        let back = AgentState::load(&dir).expect("load").expect("present");
        assert_eq!(back, s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drifted_knobs_are_refused_by_fingerprint() {
        let s = state();
        let frame = s.to_frame();
        let (parsed, _) = Frame::parse(&frame).unwrap();
        // Re-encode with one knob changed but the *stored* fingerprint
        // kept: the decoder must notice the mismatch.
        let mut drifted = s.clone();
        drifted.config.probes += 1;
        let mut e = Encoder::new();
        e.u64(agent_tag::SEED, drifted.seed);
        e.u64(agent_tag::FINGERPRINT, s.fingerprint());
        e.section(agent_tag::CONFIG, |se| encode_config(se, &drifted.config));
        e.section(agent_tag::FAULTS, |se| encode_faults(se, &drifted.faults));
        e.section(agent_tag::REPORT, |se| drifted.report.encode_fields(se));
        let tampered = e.into_bytes();
        assert!(matches!(
            AgentState::decode(&tampered),
            Err(ResumeError::FingerprintMismatch { .. })
        ));
        // The untampered payload still decodes.
        assert!(AgentState::decode(parsed.payload).is_ok());
    }

    #[test]
    fn fingerprint_covers_service_knobs() {
        let s = state();
        let base = s.fingerprint();
        for mutate in [
            (|c: &mut ServiceConfig| c.users += 1) as fn(&mut ServiceConfig),
            |c| c.cohorts += 1,
            |c| c.tick_days += 1,
            |c| c.probes += 1,
            |c| c.ttl_ticks += 1,
            |c| c.churn_pct += 1,
        ] {
            let mut config = s.config;
            mutate(&mut config);
            assert_ne!(
                service_fingerprint(s.seed, &config, s.telemetry, &s.faults),
                base
            );
        }
        // Queue capacity and checkpoint cadence are execution shape, not
        // output shape: they must NOT invalidate a checkpoint.
        let mut config = s.config;
        config.queue_cap *= 2;
        config.ckpt_days += 3;
        assert_eq!(
            service_fingerprint(s.seed, &config, s.telemetry, &s.faults),
            base
        );
    }
}
