//! The long-running measurement agent.
//!
//! ```text
//! roam_agent run --sim-days 30 [--seed 42] [--out agent-out]
//! roam_agent run --until-idle  [--seed 42] [--out agent-out]
//! ```
//!
//! Service knobs come from `ROAM_SERVICE_*` (see `ServiceConfig`);
//! execution knobs from the repo-wide `ROAM_PARALLEL`, `ROAM_TRANSPORT`,
//! `ROAM_CALENDAR`, `ROAM_FAULTS`, `ROAM_TELEMETRY`. When
//! `ROAM_CHECKPOINT_DIR` is set the agent writes `agent.ckpt` there
//! every `ROAM_SERVICE_CKPT` sim-days — and on SIGTERM/SIGINT, after
//! draining the export queue. Restarting with the same checkpoint dir
//! resumes mid-schedule: the session CSV is truncated to the durable
//! offset the frame recorded and the run continues byte-for-byte as if
//! never interrupted.
//!
//! Artifacts in `--out`: `sessions.csv` (streamed session records),
//! `soak.frame` + `soak.csv` (per-vantage soak table, sim-week keyed),
//! `report.txt` (the fixed-layout agent report, also printed to
//! stdout). Exit status: 0 completed, 75 drained-on-signal (resume to
//! continue), 74 the export sink went sick mid-run (the report and
//! checkpoint are complete; `sessions.csv` stops at the durable
//! offset), 1 error.

use roam_measure::{Dataset, SharedSink};
use roam_service::{Agent, AgentState, CsvFile, Horizon, Outcome, ServiceConfig};
use std::path::PathBuf;
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

static HALT: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signals() {
    extern "C" fn on_signal(_sig: i32) {
        HALT.store(true, Ordering::Relaxed);
    }
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signals() {}

fn die(msg: &str) -> ! {
    eprintln!("roam_agent: {msg}");
    exit(1);
}

fn usage() -> ! {
    eprintln!("usage: roam_agent run (--sim-days N | --until-idle) [--seed N] [--out DIR]");
    exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    if args.next().as_deref() != Some("run") {
        usage();
    }
    let mut seed: u64 = 42;
    let mut horizon: Option<Horizon> = None;
    let mut out = PathBuf::from("agent-out");
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--seed" => {
                seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed: not a u64"));
            }
            "--sim-days" => {
                let n = value("--sim-days")
                    .parse()
                    .unwrap_or_else(|_| die("--sim-days: not a u64"));
                horizon = Some(Horizon::SimDays(n));
            }
            "--until-idle" => horizon = Some(Horizon::UntilIdle),
            "--out" => out = PathBuf::from(value("--out")),
            _ => usage(),
        }
    }
    let Some(horizon) = horizon else { usage() };

    let config = ServiceConfig::from_env();
    if let Err(e) = config.validate() {
        die(&e.to_string());
    }
    std::fs::create_dir_all(&out).unwrap_or_else(|e| die(&format!("{}: {e}", out.display())));
    let sessions_path = out.join("sessions.csv");
    let ckpt_dir = std::env::var("ROAM_CHECKPOINT_DIR").ok().map(PathBuf::from);

    // Resume when a checkpoint plane is configured and holds a frame;
    // refuse drifted knobs rather than silently diverging from it.
    let resumed = match &ckpt_dir {
        Some(dir) => match AgentState::load(dir) {
            Ok(state) => state,
            Err(e) => die(&format!("refusing to resume: {e}")),
        },
        None => None,
    };
    let (agent, csv) = match resumed {
        Some(state) => {
            if state.seed != seed {
                die(&format!(
                    "refusing to resume: checkpoint seed {} != --seed {seed}",
                    state.seed
                ));
            }
            if state.config != config {
                die("refusing to resume: ROAM_SERVICE_* knobs drifted from the checkpoint");
            }
            eprintln!(
                "roam_agent: resuming at sim-day {} ({} sessions streamed)",
                state.clock.as_nanos() / roam_service::task::DAY_NS,
                state.streamed
            );
            let bytes = state.export_bytes;
            let agent = Agent::resume(state).unwrap_or_else(|e| die(&format!("resume: {e}")));
            let csv = CsvFile::resume(&sessions_path, Dataset::Sessions, bytes)
                .unwrap_or_else(|e| die(&format!("{}: {e}", sessions_path.display())));
            (agent, csv)
        }
        None => {
            let agent = Agent::new(seed, config).unwrap_or_else(|e| die(&e.to_string()));
            let csv = CsvFile::create(&sessions_path, Dataset::Sessions)
                .unwrap_or_else(|e| die(&format!("{}: {e}", sessions_path.display())));
            (agent, csv)
        }
    };

    let shared = Arc::new(Mutex::new(csv));
    let sink: SharedSink = shared.clone();
    let hook_target = Arc::clone(&shared);
    let mut agent = agent
        .sink(sink)
        .sync_hook(move || hook_target.lock().expect("csv sink poisoned").sync());
    if let Some(dir) = ckpt_dir {
        agent = agent.checkpoint(dir);
    }

    install_signals();
    let run = match agent.run(horizon, Some(&HALT)) {
        Ok(run) => run,
        Err(e) => die(&e.to_string()),
    };

    let report = run.render();
    let frame = run.soak_frame();
    let mut soak_csv = String::new();
    match roam_columnar::TableView::parse_frame(&frame) {
        Ok(view) => roam_columnar::render_csv(&view, &mut soak_csv),
        Err(e) => die(&format!("soak frame: {e}")),
    }
    for (name, bytes) in [
        ("report.txt", report.as_bytes()),
        ("soak.frame", frame.as_slice()),
        ("soak.csv", soak_csv.as_bytes()),
    ] {
        let path = out.join(name);
        std::fs::write(&path, bytes).unwrap_or_else(|e| die(&format!("{}: {e}", path.display())));
    }
    print!("{report}");
    if let Outcome::Drained = run.outcome {
        eprintln!(
            "roam_agent: drained on signal at sim-day {}; resume with the same checkpoint dir",
            run.clock.as_nanos() / roam_service::task::DAY_NS
        );
        if run.sink_error.is_none() {
            exit(75);
        }
    }
    if let Some(err) = &run.sink_error {
        eprintln!(
            "roam_agent: export sink went sick mid-run ({err}); sessions.csv is durable up to byte {}",
            run.export_bytes
        );
        exit(74);
    }
}
