//! roam-service: the long-running deterministic measurement agent.
//!
//! Everything below the fleet plane simulates one bounded run: build a
//! world, drive a population through it once, render a report. A real
//! measurement operation is not bounded — it is a *service*: recurring
//! campaigns, cohorts of devices that join and leave, exports that
//! stream continuously, processes that get restarted. This crate adds
//! that mode without giving up a byte of determinism:
//!
//! * [`task`] — a virtual-clock task scheduler on the netsim timing
//!   wheel. Recurring jobs fire in strict `(sim-time, registration)`
//!   order, and every fire owns a keyed RNG stream derived from
//!   `(master seed, job id, fire index)` alone — registering or
//!   cancelling one job can never perturb another's draws, and a
//!   resumed schedule replays the uninterrupted one exactly.
//! * [`cohort`] — cohort lifecycle over the fleet plane: each cohort
//!   owns a disjoint uid namespace and ticks through
//!   [`UserBatch`](roam_fleet::UserBatch); churn and TTL move the uid
//!   window without touching any user's streams.
//! * [`export`] — backpressured sink streaming: a bounded queue in
//!   front of any [`DataSink`](roam_measure::DataSink) whose overflow
//!   policy is to block the virtual clock, never to drop records.
//! * [`agent`] + [`checkpoint`] — the [`Agent`] event loop tying the
//!   three together, with SIGTERM-drain checkpoints through the fleet
//!   checkpoint plane (`agent.ckpt`, frame kind [`KIND_AGENT`]) and
//!   resume that picks up mid-schedule.
//!
//! The determinism contract is the repo-wide one: the agent's report,
//! session stream and soak table are byte-identical across thread
//! counts, transport backends, calendar backends, and any
//! kill-at-a-checkpoint/resume split of the run.
//!
//! [`KIND_AGENT`]: roam_fleet::checkpoint::KIND_AGENT

pub mod agent;
pub mod checkpoint;
pub mod cohort;
pub mod config;
pub mod export;
pub mod task;

pub use agent::{Agent, AgentRun, Horizon, Outcome, ServiceError};
pub use checkpoint::{AgentState, SoakRow, AGENT_FILE};
pub use cohort::{Cohort, COHORT_STRIDE};
pub use config::{ServiceConfig, ServiceConfigError};
pub use export::{BoundedSink, CsvFile};
pub use task::{days, Fire, JobHandle, Scheduler};
