//! Cohort lifecycle: named user groups with TTL expiry and churn.
//!
//! A cohort owns a window into its own disjoint uid namespace
//! (`index << 40`), so no two cohorts — and no two *generations* of the
//! same cohort — ever share a user stream with another. Churn moves the
//! window: departures advance the low edge (`retired`), arrivals advance
//! the high edge (`grown`). Because fleet user streams are keyed by uid
//! alone, shifting the window changes *which* deterministic users tick,
//! never what any individual user does — that is the whole trick that
//! makes a churning, long-running service byte-stable.

use rand::rngs::SmallRng;
use rand::Rng;

/// Spacing between cohort uid namespaces. A cohort would need to admit
/// a trillion users to collide with its neighbour.
pub const COHORT_STRIDE: u64 = 1 << 40;

/// One cohort's live state: a uid window plus its tick odometer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cohort {
    /// Cohort index; fixes the uid namespace base.
    pub index: usize,
    /// Users departed so far — the window's low edge offset.
    pub retired: u64,
    /// Users ever admitted — the window's high edge offset.
    pub grown: u64,
    /// Ticks completed.
    pub ticks: u64,
    /// Whether the TTL has retired the whole cohort.
    pub expired: bool,
}

impl Cohort {
    /// A fresh cohort of `initial` users.
    #[must_use]
    pub fn new(index: usize, initial: u64) -> Self {
        Cohort {
            index,
            retired: 0,
            grown: initial,
            ticks: 0,
            expired: false,
        }
    }

    /// First uid of this cohort's namespace.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.index as u64 * COHORT_STRIDE
    }

    /// The live uid window `[lo, hi)`.
    #[must_use]
    pub fn live_range(&self) -> (u64, u64) {
        (self.base() + self.retired, self.base() + self.grown)
    }

    /// Live users.
    #[must_use]
    pub fn live(&self) -> u64 {
        self.grown - self.retired
    }

    /// Apply one tick's churn from the tick's own RNG stream: departures
    /// and arrivals drawn independently from `0..=live*pct/100`. Returns
    /// `(departures, arrivals)`.
    pub fn churn(&mut self, pct: u32, rng: &mut SmallRng) -> (u64, u64) {
        let cap = self.live() * u64::from(pct) / 100;
        if cap == 0 {
            return (0, 0);
        }
        let departures = rng.gen_range(0..=cap);
        let arrivals = rng.gen_range(0..=cap);
        self.retired += departures;
        self.grown += arrivals;
        (departures, arrivals)
    }

    /// Retire every live user at once — the TTL expiry path.
    pub fn expire(&mut self) {
        self.retired = self.grown;
        self.expired = true;
    }

    /// The proportional initial split of `users` across `cohorts` —
    /// the same arithmetic the fleet uses for shard ranges, so sizes
    /// differ by at most one.
    #[must_use]
    pub fn initial_sizes(users: u64, cohorts: usize) -> Vec<u64> {
        let n = cohorts as u64;
        (0..n)
            .map(|k| users * (k + 1) / n - users * k / n)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn initial_sizes_tile_the_population() {
        for (users, cohorts) in [(10u64, 3usize), (1, 4), (100_000, 7), (5, 5)] {
            let sizes = Cohort::initial_sizes(users, cohorts);
            assert_eq!(sizes.len(), cohorts);
            assert_eq!(sizes.iter().sum::<u64>(), users);
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "{users}/{cohorts}: {sizes:?}");
        }
    }

    #[test]
    fn churn_moves_the_window_within_bounds() {
        let mut c = Cohort::new(2, 1_000);
        assert_eq!(c.base(), 2 * COHORT_STRIDE);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..50 {
            let live_before = c.live();
            let (dep, arr) = c.churn(10, &mut rng);
            assert!(dep <= live_before / 10 && arr <= live_before / 10);
            assert_eq!(c.live(), live_before - dep + arr);
            assert!(c.retired <= c.grown);
        }
        let (lo, hi) = c.live_range();
        assert!(lo >= c.base() && hi >= lo);
    }

    #[test]
    fn zero_churn_and_tiny_cohorts_are_stable() {
        let mut c = Cohort::new(0, 5);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(c.churn(0, &mut rng), (0, 0));
        // live*pct/100 == 0 below 10 users at 10% — no draws at all.
        assert_eq!(c.churn(10, &mut rng), (0, 0));
        assert_eq!(c.live(), 5);
    }

    #[test]
    fn expire_empties_the_window() {
        let mut c = Cohort::new(1, 10);
        c.expire();
        assert!(c.expired);
        assert_eq!(c.live(), 0);
        let (lo, hi) = c.live_range();
        assert_eq!(lo, hi);
    }
}
