//! The agent event loop: recurring jobs over the virtual clock.
//!
//! An [`Agent`] owns one [`Scheduler`] driving three job families:
//!
//! * `cohort/<k>` — every `tick_days`, cohort `k`'s live uid window
//!   runs one [`UserBatch`] through the fleet plane; the batch report
//!   merges into the cumulative report, its session records stream
//!   through the bounded export queue, and the tick's own RNG stream
//!   draws the churn that shifts the window. A finite TTL retires the
//!   cohort after `ttl_ticks` ticks.
//! * `probe/<alpha3>` — daily vantage probes per measured country,
//!   alternating RTT and DNS. Labels are stamped with the sim-week
//!   (`service/w<week>/…`), so under an active fault plane the per-flow
//!   fault phases *drift* week over week — the drifting-fault soak the
//!   degradation-over-time analysis queries.
//! * `faults/advance` — the weekly calendar advancement: bumps the
//!   agent's week counter and drains the export queue.
//!
//! Determinism: every fire's randomness is a pure function of
//! `(seed, job id, fire index)` ([`Scheduler::fire_rng`]), batches are
//! sub-shard- and thread-invariant ([`UserBatch`]), probes run on
//! label-keyed flow streams, and same-instant fires order by
//! registration. Nothing observable depends on wall time, thread
//! interleaving, transport backend, or where a run was cut by a
//! checkpoint.

use crate::checkpoint::{AgentState, SoakRow};
use crate::cohort::Cohort;
use crate::config::{ServiceConfig, ServiceConfigError};
use crate::export::BoundedSink;
use crate::task::{days, Fire, JobHandle, Scheduler, DAY_NS};
use roam_codec::CodecError;
use roam_fleet::{FleetReport, ResumeError, SessionKind, SessionRecord, UserBatch};
use roam_geo::Country;
use roam_measure::campaign::RecordTag;
use roam_measure::{
    resolve_timing, status_code, Endpoint, MeasureError, ResolverPlan, RunMode, Service,
    STATUS_LABELS,
};
use roam_netsim::{FaultSpec, NodeId, SimTime};
use roam_telemetry::{Counter, Recorder, Sink as _, TelemetryMode, TelemetryReport};
use roam_world::World;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

/// Nanoseconds per sim-week — the fault-calendar advancement period.
pub const WEEK_NS: u64 = 7 * DAY_NS;

/// How long the agent runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Horizon {
    /// Process every fire up to and including this sim-day.
    SimDays(u64),
    /// Run until every cohort has expired and the queue is drained
    /// (requires a finite TTL).
    UntilIdle,
}

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The horizon was reached (or the schedule drained).
    Completed,
    /// A halt was requested (SIGTERM); the queue was drained and a
    /// final checkpoint written.
    Drained,
}

/// Why a run refused to start or could not continue. Export-plane
/// sickness is deliberately *not* here: a failing sink parks its error
/// in [`AgentRun::sink_error`] so the drain and the final checkpoint
/// still happen.
#[derive(Debug)]
pub enum ServiceError {
    /// The configuration refused pre-flight (nothing ran).
    Config(ServiceConfigError),
    /// The agent checkpoint could not be written. The run stops here:
    /// continuing would silently widen the window a crash loses.
    Checkpoint {
        /// Checkpoint directory the write targeted.
        dir: PathBuf,
        /// The underlying I/O failure.
        source: std::io::Error,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Config(e) => write!(f, "{e}"),
            ServiceError::Checkpoint { dir, source } => {
                write!(f, "agent checkpoint in {}: {source}", dir.display())
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Config(e) => Some(e),
            ServiceError::Checkpoint { source, .. } => Some(source),
        }
    }
}

impl From<ServiceConfigError> for ServiceError {
    fn from(e: ServiceConfigError) -> Self {
        ServiceError::Config(e)
    }
}

/// What a fire does — parallel to the scheduler's registration order.
#[derive(Debug, Clone, Copy)]
enum JobKind {
    Cohort(usize),
    Probe(usize),
    Faults,
}

/// One vantage country's fixed probe stage, mirroring the fleet shard's
/// `CountrySlot`: two eSIM attachments with precomputed targets/plans.
struct VantageSlot {
    endpoints: [Endpoint; 2],
    rtt_targets: [Option<NodeId>; 2],
    dns_plans: [ResolverPlan; 2],
}

/// Restore guard for the process-wide fault override.
struct FaultsPin(Option<Option<FaultSpec>>);

impl FaultsPin {
    fn install(spec: FaultSpec) -> Self {
        FaultsPin(Some(FaultSpec::override_faults(Some(spec))))
    }
}

impl Drop for FaultsPin {
    fn drop(&mut self) {
        if let Some(prev) = self.0.take() {
            FaultSpec::override_faults(prev);
        }
    }
}

/// The long-running measurement agent. Construct with [`Agent::new`]
/// (fresh) or [`Agent::resume`] (from a checkpoint), configure with the
/// builder methods, then [`Agent::run`].
pub struct Agent {
    seed: u64,
    config: ServiceConfig,
    telemetry_mode: TelemetryMode,
    faults: FaultSpec,
    mode: RunMode,
    batch_shards: usize,
    ckpt_dir: Option<PathBuf>,
    sched: Scheduler,
    kinds: Vec<JobKind>,
    cohorts: Vec<Cohort>,
    week: u64,
    clock: SimTime,
    report: FleetReport,
    soak: Vec<SoakRow>,
    streamed: u64,
    export_bytes: u64,
    last_ckpt_day: u64,
    sink: Option<BoundedSink>,
    #[allow(clippy::type_complexity)]
    sync_hook: Option<Box<dyn FnMut() -> std::io::Result<u64>>>,
    /// First export-sync failure, sticky for the rest of the run. While
    /// set, `export_bytes` freezes at the last offset a successful sync
    /// reported, so checkpoints keep recording an honest durable prefix.
    sink_error: Option<String>,
    tel: Recorder,
    world: World,
    pool: Vec<VantageSlot>,
    countries: Vec<Country>,
}

/// The expected job id list for `config`, in registration order.
fn expected_job_ids(config: &ServiceConfig, countries: &[Country]) -> Vec<String> {
    let mut ids: Vec<String> = (0..config.cohorts).map(|k| format!("cohort/{k}")).collect();
    ids.extend(countries.iter().map(|c| format!("probe/{}", c.alpha3())));
    ids.push("faults/advance".to_string());
    ids
}

impl Agent {
    /// A fresh agent: cohorts split proportionally, every job at fire
    /// count zero. The fault spec and telemetry mode resolve from the
    /// environment here (override with the builder methods before
    /// [`Agent::run`]).
    pub fn new(seed: u64, config: ServiceConfig) -> Result<Self, ServiceConfigError> {
        config.validate()?;
        let faults = FaultSpec::current();
        let telemetry_mode = TelemetryMode::from_env();
        let mut agent = Self::shell(seed, config, telemetry_mode, faults);
        let sizes = Cohort::initial_sizes(config.users, config.cohorts);
        agent.cohorts = sizes
            .into_iter()
            .enumerate()
            .map(|(k, n)| Cohort::new(k, n))
            .collect();
        for id in expected_job_ids(&config, &agent.countries) {
            let (first, period) = if id == "faults/advance" {
                (SimTime::from_nanos(WEEK_NS), SimTime::from_nanos(WEEK_NS))
            } else if id.starts_with("cohort/") {
                (SimTime::ZERO, days(u64::from(config.tick_days)))
            } else {
                (SimTime::ZERO, days(1))
            };
            agent.sched.register(&id, first, Some(period));
        }
        Ok(agent)
    }

    /// Rebuild an agent from a decoded checkpoint: the world and pool
    /// are rebuilt from the seed, every cursor restores from the frame,
    /// and the scheduler replays the saved job states in registration
    /// order. The frame's knobs win over the environment.
    pub fn resume(state: AgentState) -> Result<Self, ResumeError> {
        let corrupt = |what| {
            ResumeError::Corrupt(
                PathBuf::from(crate::checkpoint::AGENT_FILE),
                CodecError::BadValue(what),
            )
        };
        let mut agent = Self::shell(state.seed, state.config, state.telemetry, state.faults);
        let expected = expected_job_ids(&state.config, &agent.countries);
        if state.jobs.len() != expected.len() {
            return Err(corrupt("job count"));
        }
        for ((id, period, fires, next), want) in state.jobs.into_iter().zip(&expected) {
            if id != *want {
                return Err(corrupt("job id order"));
            }
            agent.sched.resume_job(&id, period, fires, next);
        }
        if state.cohorts.len() != state.config.cohorts
            || state.cohorts.iter().enumerate().any(|(k, c)| c.index != k)
        {
            return Err(corrupt("cohort list"));
        }
        agent.cohorts = state.cohorts;
        agent.week = state.week;
        agent.clock = state.clock;
        agent.report = state.report;
        agent.soak = state.soak;
        agent.streamed = state.streamed;
        agent.export_bytes = state.export_bytes;
        agent.last_ckpt_day = state.clock.as_nanos() / DAY_NS;
        Ok(agent)
    }

    /// The shared skeleton: world, vantage pool, empty scheduler, job
    /// kind table (jobs themselves are registered by the caller).
    fn shell(
        seed: u64,
        config: ServiceConfig,
        telemetry: TelemetryMode,
        faults: FaultSpec,
    ) -> Self {
        // Build the world under the resolved fault spec so the fault
        // plane the probe network carries matches the pin `run`
        // installs.
        let pin = FaultsPin::install(faults);
        let mut world = World::build(seed);
        world.net.set_telemetry_mode(telemetry);
        let countries = world.measured_countries();
        let mut pool_eps: Vec<[Endpoint; 2]> = Vec::with_capacity(countries.len());
        for &country in &countries {
            pool_eps.push([world.attach_esim(country), world.attach_esim(country)]);
        }
        let pool: Vec<VantageSlot> = pool_eps
            .into_iter()
            .map(|endpoints| {
                let rtt_targets = [0, 1].map(|i| {
                    world.internet.targets.nearest(
                        &world.net,
                        Service::Google,
                        endpoints[i].att.breakout_city,
                    )
                });
                let dns_plans = [0, 1]
                    .map(|i| ResolverPlan::new(&world.net, &endpoints[i], &world.internet.targets));
                VantageSlot {
                    endpoints,
                    rtt_targets,
                    dns_plans,
                }
            })
            .collect();
        drop(pin);
        let mut kinds: Vec<JobKind> = (0..config.cohorts).map(JobKind::Cohort).collect();
        kinds.extend((0..countries.len()).map(JobKind::Probe));
        kinds.push(JobKind::Faults);
        Agent {
            seed,
            config,
            telemetry_mode: telemetry,
            faults,
            mode: RunMode::from_env(),
            batch_shards: 4,
            ckpt_dir: None,
            sched: Scheduler::new(seed),
            kinds,
            cohorts: Vec::new(),
            week: 0,
            clock: SimTime::ZERO,
            report: FleetReport::new(config.sample),
            soak: Vec::new(),
            streamed: 0,
            export_bytes: 0,
            last_ckpt_day: 0,
            sink: None,
            sync_hook: None,
            sink_error: None,
            tel: Recorder::new(telemetry),
            world,
            pool,
            countries,
        }
    }

    /// Thread-level execution mode for cohort batches (default: from
    /// `ROAM_PARALLEL`). Never changes the bytes.
    #[must_use]
    pub fn mode(mut self, mode: RunMode) -> Self {
        self.mode = mode;
        self
    }

    /// Stream session records through a bounded queue into `sink`.
    #[must_use]
    pub fn sink(mut self, sink: roam_measure::SharedSink) -> Self {
        self.sink = Some(BoundedSink::new(sink, self.config.queue_cap));
        self
    }

    /// Durable-sync hook called at each checkpoint (after the queue
    /// drains): must push the sink's target to stable storage and
    /// return the durable byte offset recorded in the frame.
    #[must_use]
    pub fn sync_hook(mut self, hook: impl FnMut() -> std::io::Result<u64> + 'static) -> Self {
        self.sync_hook = Some(Box::new(hook));
        self
    }

    /// Write `agent.ckpt` into `dir` every `ckpt_days` sim-days and on
    /// halt.
    #[must_use]
    pub fn checkpoint(mut self, dir: PathBuf) -> Self {
        self.ckpt_dir = Some(dir);
        self
    }

    /// The resolved fault spec this agent runs (and checkpoints) under.
    #[must_use]
    pub fn fault_spec(&self) -> FaultSpec {
        self.faults
    }

    /// Run to `horizon`, checking `halt` between batches: when it flips,
    /// the queue drains, a final checkpoint is written, and the run
    /// returns [`Outcome::Drained`]. A sick export sink does not stop
    /// the run (see [`AgentRun::sink_error`]); an unwritable checkpoint
    /// does, as a typed [`ServiceError::Checkpoint`].
    pub fn run(
        &mut self,
        horizon: Horizon,
        halt: Option<&AtomicBool>,
    ) -> Result<AgentRun, ServiceError> {
        if horizon == Horizon::UntilIdle && self.config.ttl_ticks == 0 {
            return Err(ServiceConfigError::UntilIdleNeedsTtl.into());
        }
        let _pin = FaultsPin::install(self.faults);
        let horizon_end = match horizon {
            Horizon::SimDays(n) => Some(days(n)),
            Horizon::UntilIdle => None,
        };
        let mut fires: Vec<Fire> = Vec::new();
        loop {
            if halt.is_some_and(|h| h.load(Ordering::Relaxed)) {
                self.write_checkpoint()?;
                return Ok(self.finish(Outcome::Drained));
            }
            let Some(next) = self.sched.next_fire() else {
                break;
            };
            if horizon_end.is_some_and(|end| next > end) {
                break;
            }
            let at = self.sched.pop_batch(&mut fires).expect("peeked non-empty");
            self.clock = at;
            for &fire in &fires {
                self.dispatch(fire);
            }
            if self.ckpt_dir.is_some() {
                let day = at.as_nanos() / DAY_NS;
                if day >= self.last_ckpt_day + self.config.ckpt_days {
                    self.last_ckpt_day = day;
                    self.write_checkpoint()?;
                }
            }
            if horizon == Horizon::UntilIdle && self.cohorts.iter().all(|c| c.expired) {
                // Nobody left to measure for: retire the probe and
                // calendar jobs so the schedule drains.
                for i in self.config.cohorts..self.kinds.len() {
                    self.sched.cancel(JobHandle(i));
                }
            }
        }
        self.drain_sink();
        Ok(self.finish(Outcome::Completed))
    }

    fn dispatch(&mut self, fire: Fire) {
        self.tel.add(Counter::ServiceJobFires, 1);
        match self.kinds[fire.job.index()] {
            JobKind::Cohort(k) => self.tick_cohort(k, fire),
            JobKind::Probe(ci) => self.probe_vantage(ci, fire),
            JobKind::Faults => {
                self.week = fire.index + 1;
                self.drain_sink();
            }
        }
    }

    /// One cohort tick: batch the live window through the fleet plane,
    /// then draw churn (and possibly the TTL expiry) on the tick's own
    /// stream.
    fn tick_cohort(&mut self, k: usize, fire: Fire) {
        let (lo, hi) = self.cohorts[k].live_range();
        let batch = UserBatch {
            seed: self.seed,
            config: self.config.fleet(),
            lo,
            hi,
            shards: self.batch_shards,
            mode: self.mode,
            telemetry: TelemetryMode::Off,
            record_sessions: self.sink.is_some(),
        };
        let run = batch.run();
        self.report.merge(&run.report);
        self.push_records(&run.sessions);
        let ttl = self.config.ttl_ticks;
        let churn_pct = self.config.churn_pct;
        let mut rng = self.sched.fire_rng(&fire);
        let cohort = &mut self.cohorts[k];
        cohort.ticks += 1;
        let (departures, arrivals) = cohort.churn(churn_pct, &mut rng);
        self.tel
            .add(Counter::ServiceCohortChurn, departures + arrivals);
        if ttl > 0 && cohort.ticks >= ttl {
            cohort.expire();
            self.sched.cancel(fire.job);
        }
    }

    /// One vantage fire: `probes` sessions against the country's fixed
    /// endpoints, alternating RTT and DNS, on week-stamped flow labels.
    fn probe_vantage(&mut self, ci: usize, fire: Fire) {
        let week = fire.at.as_nanos() / WEEK_NS;
        let which = (fire.index % 2) as usize;
        let alpha3 = self.countries[ci].alpha3();
        let slot = &self.pool[ci];
        let ep = &slot.endpoints[which];
        let mut records: Vec<SessionRecord> = Vec::with_capacity(self.config.probes as usize);
        let mut label = String::with_capacity(48);
        for s in 0..self.config.probes {
            label.clear();
            let _ = write!(label, "service/w{week}/{alpha3}/f{}/s{s}", fire.index);
            if s % 2 == 0 {
                let Some(target) = slot.rtt_targets[which] else {
                    continue;
                };
                let mut probe = ep.probe(&mut self.world.net, &label);
                match probe.rtt_checked(target) {
                    Ok(sample) => {
                        self.soak.push(SoakRow {
                            week,
                            country: alpha3,
                            kind: 0,
                            ms: Some(sample.rtt_ms),
                            status: status_code(sample.status()),
                        });
                        records.push(session(ep, SessionKind::Rtt, |r| {
                            r.rtt_ms = Some(sample.rtt_ms);
                            r.status = sample.status();
                        }));
                    }
                    Err(e) => {
                        if matches!(e, MeasureError::NoTarget) {
                            continue;
                        }
                        self.soak.push(SoakRow {
                            week,
                            country: alpha3,
                            kind: 0,
                            ms: None,
                            status: status_code(e.status()),
                        });
                        records.push(session(ep, SessionKind::Rtt, |r| r.status = e.status()));
                    }
                }
            } else {
                match resolve_timing(&mut self.world.net, ep, &slot.dns_plans[which], &label) {
                    Ok(r) => {
                        self.soak.push(SoakRow {
                            week,
                            country: alpha3,
                            kind: 1,
                            ms: Some(r.lookup_ms),
                            status: status_code(r.status),
                        });
                        records.push(session(ep, SessionKind::Dns, |rec| {
                            rec.lookup_ms = Some(r.lookup_ms);
                            rec.status = r.status;
                        }));
                    }
                    Err(e) => {
                        if matches!(e, MeasureError::NoTarget) {
                            continue;
                        }
                        self.soak.push(SoakRow {
                            week,
                            country: alpha3,
                            kind: 1,
                            ms: None,
                            status: status_code(e.status()),
                        });
                        records.push(session(ep, SessionKind::Dns, |rec| rec.status = e.status()));
                    }
                }
            }
        }
        self.push_records(&records);
    }

    fn push_records(&mut self, records: &[SessionRecord]) {
        self.streamed += records.len() as u64;
        if let Some(sink) = &mut self.sink {
            let before = sink.flushes();
            sink.extend(records);
            let drained = sink.flushes() - before;
            if drained > 0 {
                self.tel.add(Counter::ServiceSinkFlushes, drained);
            }
        }
    }

    fn drain_sink(&mut self) {
        if let Some(sink) = &mut self.sink {
            let before = sink.flushes();
            sink.flush();
            let drained = sink.flushes() - before;
            if drained > 0 {
                self.tel.add(Counter::ServiceSinkFlushes, drained);
            }
        }
    }

    /// The resumable snapshot of the current state (queue drained and
    /// durable offset refreshed first). This is exactly what a cadence
    /// checkpoint writes; [`Agent::resume`] accepts it back.
    pub fn state(&mut self) -> AgentState {
        self.snapshot_state()
    }

    fn snapshot_state(&mut self) -> AgentState {
        self.drain_sink();
        self.sync_export();
        AgentState {
            seed: self.seed,
            config: self.config,
            telemetry: self.telemetry_mode,
            faults: self.faults,
            clock: self.clock,
            week: self.week,
            export_bytes: self.export_bytes,
            streamed: self.streamed,
            report: self.report.clone(),
            jobs: self.sched.job_states(),
            cohorts: self.cohorts.clone(),
            soak: self.soak.clone(),
        }
    }

    /// Run the durable-sync hook, tolerating a sick sink: on failure
    /// the first error is parked (sticky) and `export_bytes` keeps the
    /// last offset a *successful* sync reported — the honest durable
    /// prefix a resume can truncate to.
    fn sync_export(&mut self) {
        if let Some(hook) = &mut self.sync_hook {
            match hook() {
                Ok(bytes) => self.export_bytes = bytes,
                Err(e) => {
                    if self.sink_error.is_none() {
                        eprintln!("roam-service agent: export sink sick: {e}; draining without it");
                        self.sink_error = Some(e.to_string());
                    }
                }
            }
        }
    }

    fn write_checkpoint(&mut self) -> Result<(), ServiceError> {
        let Some(dir) = self.ckpt_dir.clone() else {
            // No checkpoint plane configured: a halt still drains.
            self.drain_sink();
            return Ok(());
        };
        let state = self.snapshot_state();
        state
            .save(&dir)
            .map_err(|source| ServiceError::Checkpoint { dir, source })
    }

    fn finish(&mut self, outcome: Outcome) -> AgentRun {
        self.sync_export();
        let mut telemetry = TelemetryReport::new(self.telemetry_mode);
        telemetry.absorb(self.world.net.take_telemetry());
        telemetry.absorb(self.tel.take());
        AgentRun {
            outcome,
            seed: self.seed,
            clock: self.clock,
            weeks: self.week,
            fires: self.sched.job_states().iter().map(|j| j.2).sum(),
            cohorts: self.cohorts.clone(),
            streamed: self.streamed,
            export_bytes: self.export_bytes,
            soak: self.soak.clone(),
            report: self.report.clone(),
            telemetry,
            sink_error: self.sink_error.clone(),
        }
    }
}

/// Build one probe session record for the export stream.
fn session(
    ep: &Endpoint,
    kind: SessionKind,
    fill: impl FnOnce(&mut SessionRecord),
) -> SessionRecord {
    let mut rec = SessionRecord {
        tag: RecordTag {
            country: ep.country,
            sim_type: ep.sim_type,
            arch: ep.att.arch,
            rat: ep.rat(),
        },
        kind,
        rtt_ms: None,
        lookup_ms: None,
        mb: None,
        status: roam_measure::MeasureStatus::Ok,
    };
    fill(&mut rec);
    rec
}

/// What one agent run hands back.
pub struct AgentRun {
    /// How the run ended.
    pub outcome: Outcome,
    /// Master seed.
    pub seed: u64,
    /// Virtual time of the last processed batch.
    pub clock: SimTime,
    /// Fault-calendar weeks advanced.
    pub weeks: u64,
    /// Total job fires across the run (cumulative over resumes).
    pub fires: u64,
    /// Final cohort windows.
    pub cohorts: Vec<Cohort>,
    /// Session records streamed (cumulative over resumes).
    pub streamed: u64,
    /// Durable bytes in the session CSV (0 without a file sink).
    pub export_bytes: u64,
    /// Vantage soak rows.
    pub soak: Vec<SoakRow>,
    /// Cumulative fleet report.
    pub report: FleetReport,
    /// Diagnostics (never part of the byte-identity boundary).
    pub telemetry: TelemetryReport,
    /// First export-sync failure, if the sink went sick mid-run. The
    /// report and checkpoints are still complete — only the streamed
    /// CSV past `export_bytes` is missing — so callers decide whether
    /// that is fatal (the agent binary exits 74).
    pub sink_error: Option<String>,
}

impl AgentRun {
    /// The fixed-layout agent report: the byte-identity boundary the
    /// service determinism tests and the CI soak compare. Wall time,
    /// thread mode, transport, queue capacity and outcome-independent
    /// diagnostics are deliberately absent.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== roam-service agent ==");
        let _ = writeln!(out, "seed                 {}", self.seed);
        let _ = writeln!(
            out,
            "clock_days           {}",
            self.clock.as_nanos() / DAY_NS
        );
        let _ = writeln!(out, "weeks                {}", self.weeks);
        let _ = writeln!(out, "jobs_fired           {}", self.fires);
        let _ = writeln!(out, "cohorts:");
        for c in &self.cohorts {
            let _ = writeln!(
                out,
                "  c{:<18} live={} ticks={} expired={}",
                c.index,
                c.live(),
                c.ticks,
                c.expired
            );
        }
        let _ = writeln!(out, "sessions_streamed    {}", self.streamed);
        let _ = writeln!(out, "soak_rows            {}", self.soak.len());
        let _ = writeln!(out);
        out.push_str(&self.report.render());
        out
    }

    /// The soak table as a sealed columnar frame: one row per vantage
    /// probe, keyed by sim-week for the degradation-over-time query
    /// (`group_sketch("week", "ms", …)`).
    #[must_use]
    pub fn soak_frame(&self) -> Vec<u8> {
        soak_frame(&self.soak)
    }
}

/// Build the soak table frame from rows (also used by tests).
#[must_use]
pub fn soak_frame(rows: &[SoakRow]) -> Vec<u8> {
    use roam_columnar::{field, CellValue, ColKind, Schema, TableBuilder};
    let schema = Schema::new(vec![
        field("week", ColKind::Dict),
        field("country", ColKind::Dict),
        field("kind", ColKind::enumeration(&["rtt", "dns"])),
        field("ms", ColKind::F64 { prec: 3 }),
        field("status", ColKind::enumeration(&STATUS_LABELS)),
    ]);
    let mut t = TableBuilder::new(schema);
    let mut week_label = String::with_capacity(8);
    for r in rows {
        week_label.clear();
        let _ = write!(week_label, "w{}", r.week);
        t.push_row(&[
            CellValue::Str(Some(&week_label)),
            CellValue::Str(Some(r.country)),
            CellValue::Code(r.kind),
            CellValue::F64(r.ms),
            CellValue::Code(r.status),
        ]);
    }
    t.finish().to_frame()
}
