//! The virtual-clock task scheduler.
//!
//! A long-running agent is a set of recurring [`Job`]s — cohort ticks,
//! vantage probes, fault-calendar advancement — fired in simulated time
//! by a [`Scheduler`] built on `roam-netsim`'s event calendar
//! ([`EventQueue`]): the same hierarchical timing wheel (or heap
//! fallback, `ROAM_CALENDAR=heap`) that orders packet walks orders job
//! fires here, just at sim-day instead of sub-millisecond scale.
//!
//! Two contracts make the scheduler deterministic:
//!
//! 1. **Pop order is `(sim_time, job_seq)`.** Fires come out in strict
//!    virtual-time order; same-instant fires break ties by *registration
//!    order* (the stable `job_seq` assigned by [`Scheduler::register`]),
//!    never by internal calendar history. This is what keeps a resumed
//!    scheduler — whose calendar was rebuilt from scratch — firing in
//!    exactly the order the uninterrupted one would have.
//! 2. **Per-job keyed RNG streams.** A job's randomness derives from
//!    `flow_seed(master, "service/job/<id>")` and each fire's from that
//!    stream plus the fire index ([`Scheduler::fire_rng`]) — a pure
//!    function of `(master, id, index)`. Registering, cancelling or
//!    reordering *other* jobs cannot perturb it, and nothing about a
//!    fire's randomness needs checkpointing beyond the fire count.
//!
//! `tests/prop_scheduler.rs` pins both properties against reference
//! models, mirroring `prop_event_order.rs` in `roam-netsim`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use roam_netsim::engine::{flow_seed, flow_seed_args};
use roam_netsim::EventQueue;
use roam_netsim::SimTime;

/// Nanoseconds per simulated day — the scheduler's natural unit.
pub const DAY_NS: u64 = 86_400_000_000_000;

/// A simulated-day count as a [`SimTime`].
#[must_use]
pub fn days(n: u64) -> SimTime {
    SimTime::from_nanos(n * DAY_NS)
}

/// Stable handle to a registered job: its registration index
/// (`job_seq`), which is also the same-instant tie-break rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct JobHandle(pub(crate) usize);

impl JobHandle {
    /// The registration index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// One registered job.
#[derive(Debug, Clone)]
struct Slot {
    /// Stable string id — the RNG stream key.
    id: String,
    /// `flow_seed(master, "service/job/<id>")`.
    stream: u64,
    /// Fire-to-fire period; `None` = one-shot.
    period: Option<SimTime>,
    /// The pending fire time; `None` = cancelled, expired one-shot, or
    /// never armed.
    next: Option<SimTime>,
    /// Fires delivered so far (the complete resumable RNG cursor).
    fires: u64,
}

/// One delivered fire: which job, when, and its per-job fire index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fire {
    /// The fired job.
    pub job: JobHandle,
    /// Virtual time of the fire.
    pub at: SimTime,
    /// This job's fire count *before* this fire (0 for the first).
    pub index: u64,
}

/// The virtual-clock scheduler. See the module docs for the contract.
#[derive(Debug)]
pub struct Scheduler {
    master: u64,
    /// Calendar of pending fires; payload is the `job_seq`. Cancelled
    /// jobs leave stale entries behind (the calendar has no removal) —
    /// they are skipped lazily on pop by checking `Slot::next`.
    queue: EventQueue<u64>,
    slots: Vec<Slot>,
}

impl Scheduler {
    /// An empty scheduler at virtual time zero, drawing job streams from
    /// `master` and its calendar backend from `ROAM_CALENDAR`.
    #[must_use]
    pub fn new(master: u64) -> Self {
        Scheduler {
            master,
            queue: EventQueue::new(),
            slots: Vec::new(),
        }
    }

    /// The master seed job streams derive from.
    #[must_use]
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Current virtual time: the timestamp of the last delivered batch.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Register a job: first fire at `first`, then every `period`
    /// (`None` = one-shot). Returns the job's stable handle; handles
    /// are assigned in registration order and never reused.
    ///
    /// # Panics
    /// If `first` is in the scheduler's past, or `period` is zero.
    pub fn register(&mut self, id: &str, first: SimTime, period: Option<SimTime>) -> JobHandle {
        self.resume_job(id, period, 0, Some(first))
    }

    /// Register a job mid-stream — the resume path. `fires` fires have
    /// already been delivered (so the next fire's RNG picks up at index
    /// `fires`) and the next fire is at `next` (`None` = the job is
    /// done: cancelled or an expired one-shot).
    ///
    /// Call in original registration order: the handle (and with it the
    /// same-instant rank) is assigned sequentially.
    ///
    /// # Panics
    /// Same conditions as [`Scheduler::register`].
    pub fn resume_job(
        &mut self,
        id: &str,
        period: Option<SimTime>,
        fires: u64,
        next: Option<SimTime>,
    ) -> JobHandle {
        assert!(
            period.is_none_or(|p| p > SimTime::ZERO),
            "job {id:?}: zero period would fire forever at one instant"
        );
        let seq = self.slots.len();
        self.slots.push(Slot {
            id: id.to_string(),
            stream: flow_seed_args(self.master, format_args!("service/job/{id}")),
            period,
            next,
            fires,
        });
        if let Some(at) = next {
            self.queue.schedule(at, seq as u64);
        }
        JobHandle(seq)
    }

    /// Cancel a job: it will not fire again. Idempotent; the calendar
    /// entry (if any) is dropped lazily on pop.
    pub fn cancel(&mut self, job: JobHandle) {
        self.slots[job.0].next = None;
    }

    /// Whether `job` still has a pending fire.
    #[must_use]
    pub fn is_live(&self, job: JobHandle) -> bool {
        self.slots[job.0].next.is_some()
    }

    /// Jobs with a pending fire.
    #[must_use]
    pub fn live_jobs(&self) -> usize {
        self.slots.iter().filter(|s| s.next.is_some()).count()
    }

    /// The job's stable string id.
    #[must_use]
    pub fn job_id(&self, job: JobHandle) -> &str {
        &self.slots[job.0].id
    }

    /// Snapshot every registered job in registration order:
    /// `(id, period, fires, next)` — exactly what a checkpoint stores
    /// and [`Scheduler::resume_job`] replays.
    #[must_use]
    pub fn job_states(&self) -> Vec<(String, Option<SimTime>, u64, Option<SimTime>)> {
        self.slots
            .iter()
            .map(|s| (s.id.clone(), s.period, s.fires, s.next))
            .collect()
    }

    /// The virtual time of the next fire, without delivering it
    /// (stale entries from cancellations are discarded on the way).
    pub fn next_fire(&mut self) -> Option<SimTime> {
        loop {
            let (at, &seq) = self.queue.peek()?;
            if self.slots[seq as usize].next == Some(at) {
                return Some(at);
            }
            self.queue.pop();
        }
    }

    /// Deliver the next batch: every live fire at the next occupied
    /// instant, in `job_seq` order, appended to `fires` (which is
    /// cleared first). Recurring jobs are rescheduled one period out
    /// *before* this returns, so callers observe a consistent calendar.
    /// Advances the virtual clock to the batch instant; returns it, or
    /// `None` when nothing is pending.
    pub fn pop_batch(&mut self, fires: &mut Vec<Fire>) -> Option<SimTime> {
        fires.clear();
        let at = self.next_fire()?;
        let mut batch: Vec<usize> = Vec::new();
        loop {
            match self.queue.peek() {
                Some((t, &seq)) if t == at => {
                    self.queue.pop();
                    let seq = seq as usize;
                    if self.slots[seq].next == Some(at) {
                        batch.push(seq);
                    }
                }
                _ => break,
            }
        }
        // Same-instant rank is registration order, not calendar history:
        // a rescheduled old job still outranks a newer job.
        batch.sort_unstable();
        for seq in batch {
            let slot = &mut self.slots[seq];
            let index = slot.fires;
            slot.fires += 1;
            slot.next = slot.period.map(|p| at.after(p));
            if let Some(next) = slot.next {
                self.queue.schedule(next, seq as u64);
            }
            fires.push(Fire {
                job: JobHandle(seq),
                at,
                index,
            });
        }
        Some(at)
    }

    /// The deterministic RNG for one fire: seeded from the job's keyed
    /// stream and the fire index alone. A pure function of
    /// `(master, job id, index)` — schedule-order-free, other-job-free,
    /// and resumable by fire count.
    #[must_use]
    pub fn fire_rng(&self, fire: &Fire) -> SmallRng {
        SmallRng::seed_from_u64(self.fire_seed(fire))
    }

    /// The raw seed behind [`Scheduler::fire_rng`].
    #[must_use]
    pub fn fire_seed(&self, fire: &Fire) -> u64 {
        flow_seed_args(
            self.slots[fire.job.0].stream,
            format_args!("f{}", fire.index),
        )
    }

    /// The job's stream seed — `flow_seed(master, "service/job/<id>")`,
    /// exposed for derived per-entity streams (cohort uid draws).
    #[must_use]
    pub fn job_stream(&self, job: JobHandle) -> u64 {
        self.slots[job.0].stream
    }
}

/// The reference derivation [`Scheduler::fire_seed`] must equal —
/// exported so tests (and embedders that need a fire's stream without a
/// scheduler) can derive it independently.
#[must_use]
pub fn fire_seed_of(master: u64, job_id: &str, fire_index: u64) -> u64 {
    let stream = flow_seed(master, &format!("service/job/{job_id}"));
    flow_seed(stream, &format!("f{fire_index}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_deliver_in_time_then_registration_order() {
        let mut s = Scheduler::new(7);
        // b registered after a, both first-fire at day 2; c earlier.
        let a = s.register("a", days(2), Some(days(2)));
        let b = s.register("b", days(2), Some(days(1)));
        let c = s.register("c", days(1), None);
        let mut fires = Vec::new();
        assert_eq!(s.pop_batch(&mut fires), Some(days(1)));
        assert_eq!(fires.len(), 1);
        assert_eq!(fires[0].job, c);
        assert_eq!(s.pop_batch(&mut fires), Some(days(2)));
        assert_eq!(
            fires.iter().map(|f| f.job).collect::<Vec<_>>(),
            vec![a, b],
            "same-instant ties break by registration order"
        );
        // Day 3: only b (period 1). Day 4: b rescheduled *after* a was,
        // but a still ranks first by registration order.
        assert_eq!(s.pop_batch(&mut fires), Some(days(3)));
        assert_eq!(fires[0].job, b);
        assert_eq!(s.pop_batch(&mut fires), Some(days(4)));
        assert_eq!(fires.iter().map(|f| f.job).collect::<Vec<_>>(), vec![a, b]);
    }

    #[test]
    fn cancelled_jobs_never_fire_and_leave_no_trace() {
        let mut s = Scheduler::new(7);
        let a = s.register("a", days(1), Some(days(1)));
        let doomed = s.register("doomed", days(1), Some(days(1)));
        s.cancel(doomed);
        assert!(!s.is_live(doomed));
        let mut fires = Vec::new();
        for day in 1..=3u64 {
            assert_eq!(s.pop_batch(&mut fires), Some(days(day)));
            assert_eq!(fires.iter().map(|f| f.job).collect::<Vec<_>>(), vec![a]);
        }
        assert_eq!(s.live_jobs(), 1);
    }

    #[test]
    fn one_shot_jobs_expire_after_firing() {
        let mut s = Scheduler::new(7);
        let one = s.register("once", days(5), None);
        let mut fires = Vec::new();
        assert_eq!(s.pop_batch(&mut fires), Some(days(5)));
        assert_eq!(fires[0].job, one);
        assert!(!s.is_live(one));
        assert_eq!(s.pop_batch(&mut fires), None);
    }

    #[test]
    fn fire_rng_is_a_pure_function_of_master_id_and_index() {
        let mut s = Scheduler::new(99);
        let job = s.register("cohort/3", days(1), Some(days(1)));
        let mut fires = Vec::new();
        for expect in 0..4u64 {
            s.pop_batch(&mut fires).expect("job is recurring");
            let fire = fires[0];
            assert_eq!(fire.index, expect);
            assert_eq!(fire.job, job);
            assert_eq!(s.fire_seed(&fire), fire_seed_of(99, "cohort/3", expect));
        }
    }

    #[test]
    fn resume_replays_the_uninterrupted_schedule() {
        let mut full = Scheduler::new(11);
        full.register("tick", days(1), Some(days(2)));
        full.register("probe", days(2), Some(days(3)));
        let mut fires = Vec::new();
        let mut log_full = Vec::new();
        for _ in 0..8 {
            let at = full.pop_batch(&mut fires).expect("recurring");
            for f in &fires {
                log_full.push((at, f.job.index(), f.index, full.fire_seed(f)));
            }
        }
        // Interrupt after 3 batches: rebuild from job_states().
        let mut first = Scheduler::new(11);
        first.register("tick", days(1), Some(days(2)));
        first.register("probe", days(2), Some(days(3)));
        for _ in 0..3 {
            first.pop_batch(&mut fires);
        }
        let mut resumed = Scheduler::new(11);
        for (id, period, n, next) in first.job_states() {
            resumed.resume_job(&id, period, n, next);
        }
        let mut log_resumed = Vec::new();
        let mut replay = Scheduler::new(11);
        replay.register("tick", days(1), Some(days(2)));
        replay.register("probe", days(2), Some(days(3)));
        for _ in 0..3 {
            let at = replay.pop_batch(&mut fires).expect("recurring");
            for f in &fires {
                log_resumed.push((at, f.job.index(), f.index, replay.fire_seed(f)));
            }
        }
        for _ in 0..5 {
            let at = resumed.pop_batch(&mut fires).expect("recurring");
            for f in &fires {
                log_resumed.push((at, f.job.index(), f.index, resumed.fire_seed(f)));
            }
        }
        assert_eq!(log_resumed, log_full);
    }
}
