//! The agent's byte-identity boundary: report, session stream and soak
//! table are invariant across thread modes and queue capacities.

use roam_measure::{Dataset, MemorySink, RunMode};
use roam_service::{Agent, Horizon, Outcome, ServiceConfig};
use std::sync::{Arc, Mutex};

fn small() -> ServiceConfig {
    ServiceConfig {
        users: 120,
        cohorts: 2,
        ..ServiceConfig::default()
    }
}

/// Run a small agent for `days` and return (report, sessions csv, soak frame).
fn run_once(mode: RunMode, queue_cap: usize, days: u64) -> (String, String, Vec<u8>) {
    let mut config = small();
    config.queue_cap = queue_cap;
    let mem = Arc::new(Mutex::new(MemorySink::default()));
    let mut agent = Agent::new(11, config).unwrap().mode(mode).sink(mem.clone());
    let run = agent.run(Horizon::SimDays(days), None).unwrap();
    assert_eq!(run.outcome, Outcome::Completed);
    let tables = mem.lock().unwrap().clone().into_tables();
    let sessions = tables
        .into_iter()
        .find(|(ds, _)| *ds == Dataset::Sessions)
        .map(|(_, csv)| csv)
        .unwrap_or_default();
    (run.render(), sessions, run.soak_frame())
}

#[test]
fn report_stream_and_soak_are_mode_and_queue_invariant() {
    let base = run_once(RunMode::Sequential, 8_192, 14);
    assert!(base.0.contains("jobs_fired"), "report renders:\n{}", base.0);
    assert!(
        base.1.lines().count() > 1,
        "session stream is non-empty: {} lines",
        base.1.lines().count()
    );
    for (mode, cap) in [
        (RunMode::Parallel(4), 8_192),
        (RunMode::Sequential, 3),
        (RunMode::Parallel(2), 1),
    ] {
        let other = run_once(mode, cap, 14);
        assert_eq!(base.0, other.0, "report drifted under {mode:?}/cap={cap}");
        assert_eq!(base.1, other.1, "sessions drifted under {mode:?}/cap={cap}");
        assert_eq!(base.2, other.2, "soak drifted under {mode:?}/cap={cap}");
    }
}

#[test]
fn until_idle_drains_after_every_cohort_expires() {
    let mut config = small();
    config.ttl_ticks = 2;
    let mut agent = Agent::new(5, config).unwrap();
    let run = agent.run(Horizon::UntilIdle, None).unwrap();
    assert_eq!(run.outcome, Outcome::Completed);
    assert!(run.cohorts.iter().all(|c| c.expired && c.live() == 0));
    // Two ticks per cohort: the second lands on day 7, after which the
    // probe and calendar jobs retire; nothing fires past that instant.
    assert_eq!(run.clock.as_nanos(), 7 * 86_400_000_000_000);
}

#[test]
fn until_idle_without_a_ttl_is_refused() {
    let mut agent = Agent::new(5, small()).unwrap();
    let err = agent.run(Horizon::UntilIdle, None).err().expect("refused");
    assert!(err.to_string().contains("TTL"), "{err}");
}
