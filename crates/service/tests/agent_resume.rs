//! The kill/resume split: a run cut at a checkpoint and resumed must
//! reproduce the uninterrupted run's report, session stream and soak
//! table byte-for-byte. Plus the failure half of the contract: a sick
//! export plane must not cost the final checkpoint.

use roam_measure::{Dataset, MemorySink, RunMode};
use roam_service::{Agent, AgentState, Horizon, Outcome, ServiceConfig};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};

fn sessions_of(mem: &Arc<Mutex<MemorySink>>) -> String {
    mem.lock()
        .unwrap()
        .clone()
        .into_tables()
        .into_iter()
        .find(|(ds, _)| *ds == Dataset::Sessions)
        .map(|(_, csv)| csv)
        .unwrap_or_default()
}

#[test]
fn a_run_split_at_a_checkpoint_matches_the_straight_run() {
    let config = ServiceConfig {
        users: 150,
        cohorts: 3,
        ..ServiceConfig::default()
    };

    // Straight through: 21 sim-days in one process.
    let mem_a = Arc::new(Mutex::new(MemorySink::default()));
    let mut straight = Agent::new(77, config).unwrap().sink(mem_a.clone());
    let run_a = straight.run(Horizon::SimDays(21), None).unwrap();

    // Split: 10 days, snapshot (the exact frame a cadence checkpoint
    // writes), decode through the wire format, resume, finish to 21.
    let mem_b = Arc::new(Mutex::new(MemorySink::default()));
    let mut first = Agent::new(77, config)
        .unwrap()
        .mode(RunMode::Parallel(3))
        .sink(mem_b.clone());
    first.run(Horizon::SimDays(10), None).unwrap();
    let frame = first.state().to_frame();
    drop(first);
    let (parsed, _) = roam_codec::Frame::parse(&frame).unwrap();
    let state = AgentState::decode(parsed.payload).unwrap();
    let mut second = Agent::resume(state).unwrap().sink(mem_b.clone());
    let run_b = second.run(Horizon::SimDays(21), None).unwrap();

    assert_eq!(run_a.render(), run_b.render(), "split run drifted");
    assert_eq!(run_a.soak_frame(), run_b.soak_frame());
    assert_eq!(sessions_of(&mem_a), sessions_of(&mem_b));
    assert_eq!(run_a.fires, run_b.fires, "fire counts are cumulative");
}

/// A SIGTERM drain with a *sick* export plane (every durable sync
/// fails) must still write the final checkpoint and come back as a
/// typed outcome — never a panic mid-drain. The sink failure rides
/// along in `AgentRun::sink_error` and the recorded durable offset
/// stays at the last successful sync (here: zero).
#[test]
fn halt_with_a_sick_sink_still_cuts_the_final_checkpoint() {
    let dir = std::env::temp_dir().join(format!("roam-sick-sink-ckpt-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let config = ServiceConfig {
        users: 40,
        cohorts: 2,
        ..ServiceConfig::default()
    };
    let mem = Arc::new(Mutex::new(MemorySink::default()));
    let mut agent = Agent::new(9, config)
        .unwrap()
        .sink(mem)
        .sync_hook(|| Err(std::io::Error::other("disk on fire")))
        .checkpoint(dir.clone());
    // Halt pre-set: the very first loop iteration takes the drain path.
    let halt = AtomicBool::new(true);
    let run = agent.run(Horizon::SimDays(30), Some(&halt)).unwrap();
    assert_eq!(run.outcome, Outcome::Drained);
    let err = run.sink_error.as_deref().expect("sync failure surfaced");
    assert!(err.contains("disk on fire"), "{err}");
    assert_eq!(run.export_bytes, 0, "no sync ever succeeded");
    assert!(
        dir.join(roam_service::AGENT_FILE).exists(),
        "the final checkpoint was still written"
    );
    // And the frame is loadable: the sick sink cost the CSV tail, not
    // the resume path.
    let state = AgentState::load(&dir).unwrap().expect("frame present");
    assert_eq!(state.export_bytes, 0);
    std::fs::remove_dir_all(&dir).ok();
}
