//! The kill/resume split: a run cut at a checkpoint and resumed must
//! reproduce the uninterrupted run's report, session stream and soak
//! table byte-for-byte.

use roam_measure::{Dataset, MemorySink, RunMode};
use roam_service::{Agent, AgentState, Horizon, ServiceConfig};
use std::sync::{Arc, Mutex};

fn sessions_of(mem: &Arc<Mutex<MemorySink>>) -> String {
    mem.lock()
        .unwrap()
        .clone()
        .into_tables()
        .into_iter()
        .find(|(ds, _)| *ds == Dataset::Sessions)
        .map(|(_, csv)| csv)
        .unwrap_or_default()
}

#[test]
fn a_run_split_at_a_checkpoint_matches_the_straight_run() {
    let config = ServiceConfig {
        users: 150,
        cohorts: 3,
        ..ServiceConfig::default()
    };

    // Straight through: 21 sim-days in one process.
    let mem_a = Arc::new(Mutex::new(MemorySink::default()));
    let mut straight = Agent::new(77, config).unwrap().sink(mem_a.clone());
    let run_a = straight.run(Horizon::SimDays(21), None).unwrap();

    // Split: 10 days, snapshot (the exact frame a cadence checkpoint
    // writes), decode through the wire format, resume, finish to 21.
    let mem_b = Arc::new(Mutex::new(MemorySink::default()));
    let mut first = Agent::new(77, config)
        .unwrap()
        .mode(RunMode::Parallel(3))
        .sink(mem_b.clone());
    first.run(Horizon::SimDays(10), None).unwrap();
    let frame = first.state().to_frame();
    drop(first);
    let (parsed, _) = roam_codec::Frame::parse(&frame).unwrap();
    let state = AgentState::decode(parsed.payload).unwrap();
    let mut second = Agent::resume(state).unwrap().sink(mem_b.clone());
    let run_b = second.run(Horizon::SimDays(21), None).unwrap();

    assert_eq!(run_a.render(), run_b.render(), "split run drifted");
    assert_eq!(run_a.soak_frame(), run_b.soak_frame());
    assert_eq!(sessions_of(&mem_a), sessions_of(&mem_b));
    assert_eq!(run_a.fires, run_b.fires, "fire counts are cumulative");
}
