//! Scheduler contracts, property-tested the way the calendar backends
//! are (`prop_event_order.rs`):
//!
//! * **Pop order** — arbitrary register/cancel/advance scripts deliver
//!   fires in strict `(sim-time, registration-order)` order, exactly
//!   matching a naive reference model over the job table.
//! * **Stream isolation** — registering and cancelling an interloper job
//!   never perturbs any other job's fire times, indices, or RNG seeds:
//!   a fire's seed is a pure function of `(master, job id, fire index)`.

use proptest::prelude::*;
use roam_netsim::SimTime;
use roam_service::task::{days, fire_seed_of, Fire, JobHandle, Scheduler};

const DAY: u64 = 86_400_000_000_000;

/// One scripted action against the scheduler.
#[derive(Debug, Clone)]
enum Op {
    /// Register a job at `now + first_days`, recurring every
    /// `period_days` (None = one-shot).
    Register {
        first_days: u64,
        period_days: Option<u64>,
    },
    /// Cancel the `n`-th registered job (mod live registrations).
    Cancel(usize),
    /// Deliver one batch.
    Advance,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Small day offsets force same-instant collisions across jobs;
        // period 0 encodes a one-shot job.
        ((0u64..4), (0u64..4)).prop_map(|(first_days, period)| Op::Register {
            first_days,
            period_days: (period > 0).then_some(period),
        }),
        (0usize..8).prop_map(Op::Cancel),
        Just(Op::Advance),
        Just(Op::Advance),
        Just(Op::Advance),
    ]
}

/// The reference model: a plain job table popped by linear scan.
#[derive(Default)]
struct Model {
    /// Per job in registration order: (next fire ns, period ns, fires).
    jobs: Vec<(Option<u64>, Option<u64>, u64)>,
}

impl Model {
    /// Deliver the next batch: all live jobs at the minimum pending
    /// instant, in registration order.
    fn pop_batch(&mut self) -> Option<(u64, Vec<(usize, u64)>)> {
        let at = self.jobs.iter().filter_map(|(next, _, _)| *next).min()?;
        let mut fires = Vec::new();
        for (seq, job) in self.jobs.iter_mut().enumerate() {
            if job.0 == Some(at) {
                fires.push((seq, job.2));
                job.2 += 1;
                job.0 = job.1.map(|p| at + p);
            }
        }
        Some((at, fires))
    }
}

/// Replay `ops`, then drain every remaining fire up to a fixed horizon;
/// returns the delivered fires as `(job id, at ns, index, seed)`. Every
/// scripted job registers up-front at an absolute time (registration
/// bases must not depend on calendar consumption, which the interloper
/// legitimately skews); the script phase then interleaves cancels and
/// batch deliveries. When `interloper` is set, one extra daily job
/// registers first and cancels halfway through the script, and the
/// final drain makes both fire sequences complete over the horizon.
fn run_script(ops: &[Op], interloper: bool) -> Vec<(String, u64, u64, u64)> {
    let mut sched = Scheduler::new(0xD1CE);
    let mut intruder: Option<JobHandle> = None;
    if interloper {
        intruder = Some(sched.register("intruder", SimTime::ZERO, Some(days(1))));
    }
    let mut handles: Vec<JobHandle> = Vec::new();
    for (k, op) in ops.iter().enumerate() {
        if let Op::Register {
            first_days,
            period_days,
        } = op
        {
            let id = format!("job/{k}");
            let h = sched.register(&id, days(*first_days), period_days.map(days));
            handles.push(h);
        }
    }
    let mut delivered = Vec::new();
    let mut fires: Vec<Fire> = Vec::new();
    let half = ops.len() / 2;
    let deliver = |sched: &Scheduler, fires: &[Fire], out: &mut Vec<(String, u64, u64, u64)>| {
        for f in fires {
            out.push((
                sched.job_id(f.job).to_string(),
                f.at.as_nanos(),
                f.index,
                sched.fire_seed(f),
            ));
        }
    };
    for (step, op) in ops.iter().enumerate() {
        if interloper && step == half {
            sched.cancel(intruder.unwrap());
        }
        match op {
            Op::Register { .. } => {}
            Op::Cancel(n) => {
                if !handles.is_empty() {
                    sched.cancel(handles[n % handles.len()]);
                }
            }
            Op::Advance => {
                if sched.pop_batch(&mut fires).is_some() {
                    deliver(&sched, &fires, &mut delivered);
                }
            }
        }
    }
    // Drain to the horizon so both passes see every shared job's full
    // fire sequence, regardless of how script-phase batches interleaved.
    while let Some(at) = sched.next_fire() {
        if at > days(90) {
            break;
        }
        sched.pop_batch(&mut fires);
        deliver(&sched, &fires, &mut delivered);
    }
    delivered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The scheduler and the naive model deliver identical fire
    /// sequences: same batch instants, same registration-order ranks,
    /// same per-job fire indices.
    #[test]
    fn fires_match_the_reference_model(ops in proptest::collection::vec(op(), 1..60)) {
        let mut sched = Scheduler::new(7);
        let mut model = Model::default();
        let mut handles: Vec<JobHandle> = Vec::new();
        let mut fires: Vec<Fire> = Vec::new();
        for op in &ops {
            match op {
                Op::Register { first_days, period_days } => {
                    let id = format!("job/{}", handles.len());
                    // Registrations must not predate the consumed calendar
                    // (sched.now() can sit past the last delivered batch
                    // after stale entries were discarded).
                    let first = sched.now().as_nanos() + first_days * DAY;
                    let h = sched.register(&id, SimTime::from_nanos(first), period_days.map(days));
                    prop_assert_eq!(h.index(), model.jobs.len());
                    model.jobs.push((Some(first), period_days.map(|d| d * DAY), 0));
                    handles.push(h);
                }
                Op::Cancel(n) => {
                    if !handles.is_empty() {
                        let k = n % handles.len();
                        sched.cancel(handles[k]);
                        model.jobs[k].0 = None;
                    }
                }
                Op::Advance => {
                    let got = sched.pop_batch(&mut fires);
                    let want = model.pop_batch();
                    match (got, &want) {
                        (None, None) => {}
                        (Some(at), Some((wat, wfires))) => {
                            prop_assert_eq!(at.as_nanos(), *wat, "batch instant diverged");
                            let got_fires: Vec<(usize, u64)> =
                                fires.iter().map(|f| (f.job.index(), f.index)).collect();
                            prop_assert_eq!(&got_fires, wfires, "batch contents diverged");
                        }
                        (g, w) => prop_assert!(false, "presence diverged: {g:?} vs {w:?}"),
                    }
                }
            }
        }
    }

    /// An interloper job registering first and cancelling mid-script
    /// never changes what any other job's stream *is*: per job, the
    /// noisy run's fire sequence (times, indices, seeds) is a prefix of
    /// the clean run's — shorter only when a script cancel landed while
    /// the interloper had skewed batch progress, never different. And
    /// every seed is the advertised pure function of (master, id, index).
    #[test]
    fn other_jobs_streams_survive_register_and_cancel(ops in proptest::collection::vec(op(), 1..60)) {
        let clean = run_script(&ops, false);
        let noisy = run_script(&ops, true);
        let mut by_id: std::collections::BTreeMap<&str, (Vec<_>, Vec<_>)> = Default::default();
        for (id, at, index, seed) in &clean {
            by_id.entry(id).or_default().0.push((*at, *index, *seed));
        }
        for (id, at, index, seed) in &noisy {
            if id != "intruder" {
                by_id.entry(id).or_default().1.push((*at, *index, *seed));
            }
        }
        for (id, (clean_seq, noisy_seq)) in &by_id {
            prop_assert!(
                noisy_seq.len() <= clean_seq.len()
                    && clean_seq[..noisy_seq.len()] == noisy_seq[..],
                "interloper perturbed {id}: clean {clean_seq:?} vs noisy {noisy_seq:?}"
            );
        }
        for (id, _, index, seed) in &clean {
            prop_assert_eq!(*seed, fire_seed_of(0xD1CE, id, *index), "seed not a pure function");
        }
    }
}
