//! Traceroute decomposition: the private/public demarcation of §4.3.
//!
//! "We use the first public IP address as the demarcation point in our
//! analysis; we label preceding hops as the *private path* and subsequent
//! hops as the *public path*." Everything Figs. 6, 7, 10 and 12 plot falls
//! out of that split:
//!
//! * **private path length** — hops before the first public responder;
//! * **public path length** — hops from the demarcation point on;
//! * **PGW RTT** — best RTT at the demarcation hop (the "PGW IP address");
//! * **private share** — PGW RTT over final-hop RTT (Fig. 12's CDFs);
//! * **unique public ASNs** — distinct ASNs among public hops (Fig. 6).

use roam_geo::City;
use roam_netsim::{Asn, IpRegistry, Traceroute};
use std::net::Ipv4Addr;

/// The decomposition of one traceroute.
#[derive(Debug, Clone, PartialEq)]
pub struct PathAnalysis {
    /// Hops before the first public responder (includes silent hops that
    /// sit between private responders, as in real mtr output).
    pub private_len: usize,
    /// Hops from the demarcation point to the end of the trace.
    pub public_len: usize,
    /// The demarcation address — the paper's "PGW IP address".
    pub pgw_ip: Option<Ipv4Addr>,
    /// ASN of the demarcation address, from the registry.
    pub pgw_asn: Option<Asn>,
    /// Geolocation of the demarcation address, from the registry.
    pub pgw_city: Option<City>,
    /// Best RTT at the demarcation hop, ms.
    pub pgw_rtt_ms: Option<f64>,
    /// Best RTT at the final responding hop, ms.
    pub final_rtt_ms: Option<f64>,
    /// `pgw_rtt / final_rtt` — the fraction of end-to-end latency incurred
    /// before internet breakout (Fig. 12). `None` when either RTT is
    /// missing or the final RTT is zero.
    pub private_share: Option<f64>,
    /// Distinct ASNs among public responding hops.
    pub unique_public_asns: usize,
    /// Did the traceroute reach its destination?
    pub reached: bool,
}

/// Decompose a traceroute against the registry.
#[must_use]
pub fn analyze_traceroute(tr: &Traceroute, registry: &IpRegistry) -> PathAnalysis {
    let demarcation = tr.first_public_hop();
    let (private_len, public_len) = match demarcation {
        Some(i) => (i, tr.hops.len() - i),
        None => (tr.hops.len(), 0),
    };

    let pgw_hop = demarcation.map(|i| &tr.hops[i]);
    let pgw_ip = pgw_hop.and_then(|h| h.ip);
    let info = pgw_ip.and_then(|ip| registry.lookup(ip));
    let pgw_rtt_ms = pgw_hop.and_then(|h| h.best_rtt());
    let final_rtt_ms = tr.final_rtt();
    // The private share is judged on *mean* probe RTTs: best-of-N erases
    // every transient queueing event on the public side, which is exactly
    // the variability Fig. 12's SIM curves are designed to capture.
    let private_share = match (pgw_hop.and_then(|h| h.avg_rtt()), tr.final_avg_rtt()) {
        (Some(p), Some(f)) if f > 0.0 => Some((p / f).min(1.0)),
        _ => None,
    };

    let mut asns: Vec<Asn> = Vec::new();
    if let Some(i) = demarcation {
        for hop in &tr.hops[i..] {
            if let Some(asn) = hop.ip.and_then(|ip| registry.asn_of(ip)) {
                if !asns.contains(&asn) {
                    asns.push(asn);
                }
            }
        }
    }

    PathAnalysis {
        private_len,
        public_len,
        pgw_ip,
        pgw_asn: info.map(|i| i.asn),
        pgw_city: info.map(|i| i.city),
        pgw_rtt_ms,
        final_rtt_ms,
        private_share,
        unique_public_asns: asns.len(),
        reached: tr.reached,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roam_netsim::link::{LatencyModel, LinkClass};
    use roam_netsim::registry::well_known;
    use roam_netsim::{Ipv4Net, Network, NodeKind, TracerouteOpts};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    /// host → r1(private) → r2(private) → nat(public, AS54825) →
    /// transit(public, AS54825) → sp(public, AS15169)
    fn build() -> (Network, roam_netsim::NodeId, roam_netsim::NodeId) {
        let mut net = Network::new(17);
        let h = net.add_node("h", NodeKind::Host, City::Berlin, ip("10.1.0.2"));
        let r1 = net.add_node("r1", NodeKind::Router, City::Berlin, ip("10.1.0.1"));
        let r2 = net.add_node("r2", NodeKind::Router, City::Amsterdam, ip("10.1.0.3"));
        let nat = net.add_node("nat", NodeKind::CgNat, City::Amsterdam, ip("147.75.81.9"));
        let t = net.add_node("t", NodeKind::Router, City::Amsterdam, ip("147.75.82.1"));
        let sp = net.add_node("sp", NodeKind::SpEdge, City::Frankfurt, ip("142.250.1.1"));
        net.link_with(
            h,
            r1,
            LinkClass::RadioAccess,
            LatencyModel::fixed(15.0, 0.0),
            0.0,
        );
        net.link_with(
            r1,
            r2,
            LinkClass::Tunnel,
            LatencyModel::fixed(20.0, 0.0),
            0.0,
        );
        net.link_with(
            r2,
            nat,
            LinkClass::Metro,
            LatencyModel::fixed(0.4, 0.0),
            0.0,
        );
        net.link_with(nat, t, LinkClass::Metro, LatencyModel::fixed(0.4, 0.0), 0.0);
        net.link_with(
            t,
            sp,
            LinkClass::Peering,
            LatencyModel::fixed(3.0, 0.0),
            0.0,
        );
        let reg = net.registry_mut();
        reg.register(
            Ipv4Net::parse("147.75.80.0/22").unwrap(),
            well_known::PACKET_HOST,
            "Packet Host",
            City::Amsterdam,
        );
        reg.register(
            Ipv4Net::parse("142.250.0.0/16").unwrap(),
            well_known::GOOGLE,
            "Google",
            City::Frankfurt,
        );
        (net, h, sp)
    }

    #[test]
    fn demarcation_and_lengths() {
        let (mut net, h, sp) = build();
        let tr = net.traceroute(h, sp, TracerouteOpts::default());
        let pa = analyze_traceroute(&tr, net.registry());
        assert!(pa.reached);
        assert_eq!(pa.private_len, 2, "r1 and r2 are private");
        assert_eq!(pa.public_len, 3, "nat, transit, sp");
        assert_eq!(pa.pgw_ip, Some(ip("147.75.81.9")));
        assert_eq!(pa.pgw_asn, Some(well_known::PACKET_HOST));
        assert_eq!(pa.pgw_city, Some(City::Amsterdam));
    }

    #[test]
    fn private_share_reflects_tunnel_dominance() {
        let (mut net, h, sp) = build();
        let tr = net.traceroute(h, sp, TracerouteOpts::default());
        let pa = analyze_traceroute(&tr, net.registry());
        let share = pa.private_share.unwrap();
        // One-way: private 35.4 of 39.2 total → share ≈ 0.9.
        assert!((0.80..1.0).contains(&share), "share {share}");
        assert!(pa.pgw_rtt_ms.unwrap() <= pa.final_rtt_ms.unwrap());
    }

    #[test]
    fn unique_asns_counts_distinct_public_networks() {
        let (mut net, h, sp) = build();
        let tr = net.traceroute(h, sp, TracerouteOpts::default());
        let pa = analyze_traceroute(&tr, net.registry());
        assert_eq!(pa.unique_public_asns, 2, "Packet Host + Google");
    }

    #[test]
    fn all_private_trace_has_no_demarcation() {
        let mut net = Network::new(3);
        let a = net.add_node("a", NodeKind::Host, City::Berlin, ip("10.0.0.1"));
        let m = net.add_node("m", NodeKind::Router, City::Berlin, ip("10.0.0.2"));
        let b = net.add_node("b", NodeKind::Host, City::Berlin, ip("10.0.0.3"));
        net.link_with(a, m, LinkClass::Metro, LatencyModel::fixed(1.0, 0.0), 0.0);
        net.link_with(m, b, LinkClass::Metro, LatencyModel::fixed(1.0, 0.0), 0.0);
        let tr = net.traceroute(a, b, TracerouteOpts::default());
        let pa = analyze_traceroute(&tr, net.registry());
        assert_eq!(pa.public_len, 0);
        assert!(pa.pgw_ip.is_none());
        assert!(pa.private_share.is_none());
        assert_eq!(pa.unique_public_asns, 0);
    }

    #[test]
    fn silent_cgnat_shifts_demarcation_to_next_public_hop() {
        let (mut net, h, sp) = build();
        // Make the NAT ICMP-silent, as in the Germany/Qatar observation.
        let nat_id = roam_netsim::NodeId(3);
        net.set_icmp_responds(nat_id, false);
        let tr = net.traceroute(h, sp, TracerouteOpts::default());
        let pa = analyze_traceroute(&tr, net.registry());
        // The silent hop hides the NAT; first public responder is transit.
        assert_eq!(pa.pgw_ip, Some(ip("147.75.82.1")));
        assert_eq!(pa.private_len, 3, "silent hop counted into the private run");
        assert!(pa.reached);
    }

    #[test]
    fn unregistered_pgw_ip_yields_no_asn() {
        let mut net = Network::new(3);
        let a = net.add_node("a", NodeKind::Host, City::Berlin, ip("10.0.0.1"));
        let n = net.add_node("n", NodeKind::CgNat, City::Berlin, ip("203.0.113.9"));
        let b = net.add_node("b", NodeKind::SpEdge, City::Berlin, ip("203.0.113.77"));
        net.link_with(a, n, LinkClass::Metro, LatencyModel::fixed(1.0, 0.0), 0.0);
        net.link_with(n, b, LinkClass::Metro, LatencyModel::fixed(1.0, 0.0), 0.0);
        let tr = net.traceroute(a, b, TracerouteOpts::default());
        let pa = analyze_traceroute(&tr, net.registry());
        assert_eq!(pa.pgw_ip, Some(ip("203.0.113.9")));
        assert!(pa.pgw_asn.is_none());
        assert_eq!(pa.unique_public_asns, 0);
    }
}
