//! Roaming-architecture classification from public-IP observations.
//!
//! The paper's decision rule (§3.1): take the public IP an eSIM gets, map it
//! to an ASN, then match that ASN "against the b-MNO's (HR), the v-MNO
//! (LBO), or a third party such as an IPX-P (IHBO)". When the b-MNO *is*
//! the v-MNO the session is simply native. [`classify_architecture`] is
//! that rule; [`TomographyReport`] applies it across a campaign's worth of
//! observations and regenerates Table 2.

use roam_geo::{City, Country, GeoPoint};
use roam_ipx::RoamingArch;
use roam_netsim::{Asn, IpRegistry};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Classify one session from ASNs alone — the paper's exact rule.
#[must_use]
pub fn classify_architecture(public_ip_asn: Asn, b_mno_asn: Asn, v_mno_asn: Asn) -> RoamingArch {
    if public_ip_asn == b_mno_asn {
        if b_mno_asn == v_mno_asn {
            RoamingArch::Native
        } else {
            RoamingArch::HomeRouted
        }
    } else if public_ip_asn == v_mno_asn {
        RoamingArch::LocalBreakout
    } else {
        RoamingArch::IpxHubBreakout
    }
}

/// What a campaign learned about one eSIM: identity of its operators plus
/// every public IP its measurements surfaced.
#[derive(Debug, Clone)]
pub struct EsimObservation {
    /// Country the eSIM was used in.
    pub visited: Country,
    /// b-MNO name (from the APN's MCC-MNC, §3.1).
    pub b_mno_name: String,
    /// b-MNO home country.
    pub b_mno_country: Country,
    /// b-MNO ASN.
    pub b_mno_asn: Asn,
    /// v-MNO ASN (the operator displayed on the phone).
    pub v_mno_asn: Asn,
    /// Where the measurements were taken (approximates the SGW).
    pub user_city: City,
    /// Public IPs observed across the eSIM's measurements.
    pub public_ips: Vec<Ipv4Addr>,
}

/// One classified eSIM: a row of the Table-2 inventory.
#[derive(Debug, Clone)]
pub struct TomographyRow {
    /// Visited country.
    pub visited: Country,
    /// b-MNO name and home country.
    pub b_mno: (String, Country),
    /// PGW providers seen: (org, ASN, geolocated city) per distinct AS.
    pub pgw_providers: Vec<(String, Asn, City)>,
    /// Classified architecture (from the first public IP; the paper never
    /// observed one eSIM mixing architectures).
    pub arch: RoamingArch,
    /// SGW→PGW great-circle distance for the primary provider, km.
    pub tunnel_km: f64,
    /// Is the breakout farther from the user than the b-MNO's country?
    /// (§4.2: true for 8 of 16 IHBO eSIMs.)
    pub breakout_farther_than_home: bool,
}

/// The classified inventory of a campaign.
#[derive(Debug, Clone)]
pub struct TomographyReport {
    /// One row per eSIM, ordered by visited country.
    pub rows: Vec<TomographyRow>,
}

impl TomographyReport {
    /// Classify a set of observations against the registry.
    ///
    /// Observations whose public IPs are unknown to the registry are
    /// dropped (a real campaign cannot classify an unmapped address
    /// either).
    #[must_use]
    pub fn build(observations: &[EsimObservation], registry: &IpRegistry) -> Self {
        let mut rows: Vec<TomographyRow> = observations
            .iter()
            .filter_map(|obs| Self::classify_one(obs, registry))
            .collect();
        rows.sort_by_key(|r| r.visited);
        TomographyReport { rows }
    }

    fn classify_one(obs: &EsimObservation, registry: &IpRegistry) -> Option<TomographyRow> {
        let infos: Vec<_> = obs
            .public_ips
            .iter()
            .filter_map(|ip| registry.lookup(*ip))
            .collect();
        let first = infos.first()?;
        let arch = classify_architecture(first.asn, obs.b_mno_asn, obs.v_mno_asn);

        // Distinct providers across the observation's measurements.
        let mut providers: Vec<(String, Asn, City)> = Vec::new();
        for info in &infos {
            if !providers
                .iter()
                .any(|(_, asn, city)| *asn == info.asn && *city == info.city)
            {
                providers.push((info.org.clone(), info.asn, info.city));
            }
        }

        let user = obs.user_city.location();
        let tunnel_km = user.distance_km(providers[0].2.location());
        let home_km = user.distance_km(obs.b_mno_country.centroid());
        Some(TomographyRow {
            visited: obs.visited,
            b_mno: (obs.b_mno_name.clone(), obs.b_mno_country),
            pgw_providers: providers,
            arch,
            tunnel_km,
            breakout_farther_than_home: arch == RoamingArch::IpxHubBreakout && tunnel_km > home_km,
        })
    }

    /// Rows using a given architecture.
    #[must_use]
    pub fn by_arch(&self, arch: RoamingArch) -> Vec<&TomographyRow> {
        self.rows.iter().filter(|r| r.arch == arch).collect()
    }

    /// §4.2's headline: how many IHBO eSIMs break out farther away than the
    /// b-MNO country, over the total number of IHBO eSIMs.
    #[must_use]
    pub fn suboptimal_breakouts(&self) -> (usize, usize) {
        let ihbo = self.by_arch(RoamingArch::IpxHubBreakout);
        let far = ihbo.iter().filter(|r| r.breakout_farther_than_home).count();
        (far, ihbo.len())
    }

    /// Format the Table-2 view: group visited countries that share a b-MNO
    /// and provider set, like the paper does.
    #[must_use]
    pub fn table2(&self) -> String {
        // Group key: (b-MNO name, provider ASN list, arch).
        let mut groups: BTreeMap<(String, Vec<u32>, &'static str), Vec<&TomographyRow>> =
            BTreeMap::new();
        for row in &self.rows {
            let mut asns: Vec<u32> = row.pgw_providers.iter().map(|(_, a, _)| a.0).collect();
            asns.sort_unstable();
            asns.dedup();
            groups
                .entry((row.b_mno.0.clone(), asns, row.arch.label()))
                .or_default()
                .push(row);
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:<26} {:<34} {:<14} {}\n",
            "Visited Countries", "b-MNO (Country)", "PGW Provider(s) (ASN)", "PGW Country", "Type"
        ));
        for ((bmno, _asns, arch), rows) in &groups {
            let visited: Vec<&str> = rows.iter().map(|r| r.visited.alpha3()).collect();
            let bc = rows[0].b_mno.1.alpha3();
            let mut provs: Vec<String> = Vec::new();
            let mut pgw_countries: Vec<&str> = Vec::new();
            for r in rows {
                for (org, asn, city) in &r.pgw_providers {
                    let label = format!("{org} ({asn})");
                    if !provs.contains(&label) {
                        provs.push(label);
                    }
                    let cc = city.country().alpha3();
                    if !pgw_countries.contains(&cc) {
                        pgw_countries.push(cc);
                    }
                }
            }
            out.push_str(&format!(
                "{:<28} {:<26} {:<34} {:<14} {}\n",
                visited.join(", "),
                format!("{bmno} ({bc})"),
                provs.join(", "),
                pgw_countries.join(", "),
                arch
            ));
        }
        out
    }
}

/// Convenience used by several reports: the great-circle distance between a
/// user city and a breakout city.
#[must_use]
pub fn breakout_distance_km(user: City, pgw: City) -> f64 {
    let a: GeoPoint = user.location();
    a.distance_km(pgw.location())
}

#[cfg(test)]
mod tests {
    use super::*;
    use roam_netsim::registry::well_known;
    use roam_netsim::Ipv4Net;

    fn registry() -> IpRegistry {
        let mut r = IpRegistry::new();
        r.register(
            Ipv4Net::parse("202.166.126.0/24").unwrap(),
            well_known::SINGTEL,
            "Singtel",
            City::Singapore,
        );
        r.register(
            Ipv4Net::parse("147.75.80.0/22").unwrap(),
            well_known::PACKET_HOST,
            "Packet Host",
            City::Amsterdam,
        );
        r.register(
            Ipv4Net::parse("141.95.0.0/16").unwrap(),
            well_known::OVH,
            "OVH SAS",
            City::Lille,
        );
        r
    }

    const ETISALAT: Asn = Asn(8966);

    #[test]
    fn classification_rule_matches_paper() {
        // HR: public IP in the b-MNO's AS.
        assert_eq!(
            classify_architecture(well_known::SINGTEL, well_known::SINGTEL, ETISALAT),
            RoamingArch::HomeRouted
        );
        // LBO: public IP in the v-MNO's AS.
        assert_eq!(
            classify_architecture(ETISALAT, well_known::SINGTEL, ETISALAT),
            RoamingArch::LocalBreakout
        );
        // IHBO: a third party's AS.
        assert_eq!(
            classify_architecture(well_known::PACKET_HOST, well_known::SINGTEL, ETISALAT),
            RoamingArch::IpxHubBreakout
        );
        // Native: b == v and the IP belongs to them.
        assert_eq!(
            classify_architecture(well_known::DTAC, well_known::DTAC, well_known::DTAC),
            RoamingArch::Native
        );
    }

    fn hr_obs() -> EsimObservation {
        EsimObservation {
            visited: Country::ARE,
            b_mno_name: "Singtel".into(),
            b_mno_country: Country::SGP,
            b_mno_asn: well_known::SINGTEL,
            v_mno_asn: ETISALAT,
            user_city: City::Dubai,
            public_ips: vec!["202.166.126.9".parse().unwrap()],
        }
    }

    fn ihbo_obs(visited: Country, city: City, ips: &[&str]) -> EsimObservation {
        EsimObservation {
            visited,
            b_mno_name: "Play".into(),
            b_mno_country: Country::POL,
            b_mno_asn: Asn(12912),
            v_mno_asn: Asn(64999),
            user_city: city,
            public_ips: ips.iter().map(|s| s.parse().unwrap()).collect(),
        }
    }

    #[test]
    fn report_classifies_and_groups() {
        let reg = registry();
        let obs = vec![
            hr_obs(),
            ihbo_obs(Country::DEU, City::Berlin, &["147.75.81.2", "141.95.3.4"]),
            ihbo_obs(Country::ESP, City::Madrid, &["147.75.81.7"]),
        ];
        let report = TomographyReport::build(&obs, &reg);
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.by_arch(RoamingArch::HomeRouted).len(), 1);
        assert_eq!(report.by_arch(RoamingArch::IpxHubBreakout).len(), 2);
        let t2 = report.table2();
        assert!(t2.contains("Singtel (AS45143)"), "{t2}");
        assert!(t2.contains("Packet Host (AS54825)"));
        assert!(t2.contains("OVH SAS (AS16276)"));
        assert!(t2.contains("HR") && t2.contains("IHBO"));
        // Germany and Spain share b-MNO + provider set → same group row.
        assert!(
            t2.lines().any(|l| l.contains("DEU") && l.contains("ESP"))
                || t2.lines().filter(|l| l.contains("Play")).count() >= 1
        );
    }

    #[test]
    fn alternating_providers_both_appear() {
        let reg = registry();
        let report = TomographyReport::build(
            &[ihbo_obs(
                Country::DEU,
                City::Berlin,
                &["147.75.81.2", "141.95.3.4"],
            )],
            &reg,
        );
        let row = &report.rows[0];
        assert_eq!(
            row.pgw_providers.len(),
            2,
            "Packet Host and OVH both observed"
        );
    }

    #[test]
    fn suboptimal_breakout_detection() {
        let reg = registry();
        // Berlin→Amsterdam (~577 km) is closer than Berlin→Poland centroid?
        // Poland centroid is ~520 km from Berlin, Amsterdam ~577 km: farther.
        let report = TomographyReport::build(
            &[ihbo_obs(Country::DEU, City::Berlin, &["147.75.81.2"])],
            &reg,
        );
        let (far, total) = report.suboptimal_breakouts();
        assert_eq!(total, 1);
        assert_eq!(far, 1, "Amsterdam is farther from Berlin than Poland is");
    }

    #[test]
    fn unknown_ips_are_dropped() {
        let reg = registry();
        let obs = ihbo_obs(Country::DEU, City::Berlin, &["8.8.8.8"]);
        let report = TomographyReport::build(&[obs], &reg);
        assert!(report.rows.is_empty());
    }

    #[test]
    fn hr_is_never_flagged_suboptimal() {
        let reg = registry();
        let report = TomographyReport::build(&[hr_obs()], &reg);
        assert!(!report.rows[0].breakout_farther_than_home);
        assert_eq!(report.suboptimal_breakouts(), (0, 0));
    }
}
