//! The paper's contribution: the thick-MNA model and the tomography
//! methodology used to dissect it.
//!
//! Four pieces:
//!
//! * [`taxonomy`] — the MNA classification of Fig. 2 (light / thick / full),
//!   capturing who runs sales, core and RAN in each flavour;
//! * [`marketplace`] — the thick aggregator itself: a per-country catalogue
//!   of eSIM offers, each backed by a b-MNO, an IMSI lease, and a
//!   pre-arranged breakout configuration. Buying an eSIM redeems an RSP
//!   activation code and returns a profile ready to attach;
//! * [`tomography`] — the measurement methodology of §3/§4: classify a
//!   session's roaming architecture from the ASN of its public IP, infer
//!   PGW geolocation, and build Table-2-style inventories;
//! * [`path_analysis`] — the traceroute decomposition of §4.3: private vs
//!   public demarcation at the first public hop, path lengths, unique-ASN
//!   counts and the private-latency share of Fig. 12;
//! * [`vmno_visibility`] — the §4.2 collaboration experiment: generate
//!   v-MNO core records for native users, ordinary b-MNO roamers and
//!   aggregator users, then *recover* the aggregator's leased IMSI ranges
//!   by pattern matching, exactly as the authors did with the UK operator.

pub mod marketplace;
pub mod path_analysis;
pub mod taxonomy;
pub mod tomography;
pub mod vmno_visibility;

pub use marketplace::{Aggregator, CountryOffer};
pub use path_analysis::{analyze_traceroute, PathAnalysis};
pub use taxonomy::{MnaFlavor, NetworkRole, RoleOwner};
pub use tomography::{classify_architecture, EsimObservation, TomographyReport, TomographyRow};
pub use vmno_visibility::{
    infer_class, recover_imsi_ranges, simulate_core_records, CoreRecord, SignallingProfile,
    TrafficStats, UserClass, VisibilityExperiment,
};
