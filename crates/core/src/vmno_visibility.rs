//! The v-MNO visibility experiment of §4.2 (Fig. 5).
//!
//! A v-MNO sees an aggregator's customer only as an inbound roamer of the
//! b-MNO whose IMSI the profile carries. The paper, collaborating with a UK
//! operator, (1) planted devices with known IMEIs carrying Airalo-on-Play
//! eSIMs, (2) looked those IMEIs up in the v-MNO core to learn their IMSIs,
//! (3) pattern-matched MCC/MNC + MSIN sub-ranges to recover the block Play
//! leases to Airalo, and (4) compared the traffic of everyone in that block
//! against ordinary Play roamers and native subscribers. The punchline:
//! aggregator users consume like natives (with slightly *more* signalling),
//! not like roamers — so the v-MNO's inbound-roamer statistics are polluted.
//!
//! This module generates synthetic core records with those distributional
//! properties and implements the recovery + comparison pipeline.

use rand::rngs::SmallRng;
use rand::Rng;
use roam_cellular::{Imei, Imsi, ImsiRange, Plmn};
use roam_stats::{median, Summary};

/// Ground-truth class of a subscriber in the synthetic core data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UserClass {
    /// A native subscriber of the v-MNO.
    Native,
    /// An ordinary inbound roamer from the b-MNO (a Pole visiting the UK).
    BmnoRoamer,
    /// An aggregator customer riding a leased b-MNO IMSI.
    AggregatorUser,
}

/// One subscriber-day as the v-MNO core records it.
#[derive(Debug, Clone, Copy)]
pub struct CoreRecord {
    /// Subscriber identity.
    pub imsi: Imsi,
    /// Device identity.
    pub imei: Imei,
    /// User-plane volume, MB/day.
    pub data_mb: f64,
    /// Control-plane volume, MB/day.
    pub signalling_mb: f64,
    /// Ground truth (not available to the analysis; used for validation).
    pub truth: UserClass,
}

/// Distributional summary per class — the Fig. 5 panels.
#[derive(Debug, Clone, Copy)]
pub struct TrafficStats {
    /// Median data volume, MB/day.
    pub median_data_mb: f64,
    /// Median signalling volume, MB/day.
    pub median_signalling_mb: f64,
    /// Mean data volume, MB/day.
    pub mean_data_mb: f64,
    /// Mean signalling volume, MB/day.
    pub mean_signalling_mb: f64,
    /// Number of subscriber-days.
    pub n: usize,
}

impl TrafficStats {
    /// Summarise a set of records.
    #[must_use]
    pub fn from_records(records: &[&CoreRecord]) -> Option<TrafficStats> {
        if records.is_empty() {
            return None;
        }
        let data: Vec<f64> = records.iter().map(|r| r.data_mb).collect();
        let sig: Vec<f64> = records.iter().map(|r| r.signalling_mb).collect();
        Some(TrafficStats {
            median_data_mb: median(&data).expect("non-empty"),
            median_signalling_mb: median(&sig).expect("non-empty"),
            mean_data_mb: Summary::from(&data).expect("non-empty").mean,
            mean_signalling_mb: Summary::from(&sig).expect("non-empty").mean,
            n: records.len(),
        })
    }
}

/// Parameters of the synthetic month of core data.
#[derive(Debug, Clone)]
pub struct VisibilityExperiment {
    /// Native v-MNO subscribers.
    pub n_native: usize,
    /// Ordinary b-MNO inbound roamers.
    pub n_roamers: usize,
    /// Aggregator users (on leased b-MNO IMSIs).
    pub n_aggregator: usize,
    /// Days of records per subscriber.
    pub days: usize,
    /// The v-MNO's own PLMN.
    pub native_plmn: Plmn,
    /// The b-MNO's PLMN (Play).
    pub bmno_plmn: Plmn,
    /// The MSIN block the b-MNO leased to the aggregator.
    pub leased_range: ImsiRange,
    /// IMEIs of the researchers' planted devices (must be aggregator
    /// users; their IMSIs seed the recovery).
    pub planted_devices: usize,
}

impl VisibilityExperiment {
    /// A configuration matching the paper's setup: 10 planted devices on
    /// Play-Poland IMSIs, April-2024-sized populations.
    #[must_use]
    pub fn paper_setup() -> Self {
        let bmno_plmn = Plmn::new(260, 6, 2); // Play Poland
        VisibilityExperiment {
            n_native: 4000,
            n_roamers: 900,
            n_aggregator: 600,
            days: 30,
            native_plmn: Plmn::new(234, 30, 2), // a UK PLMN
            bmno_plmn,
            leased_range: ImsiRange {
                plmn: bmno_plmn,
                start: 7_700_000_000,
                len: 1_000_000,
            },
            planted_devices: 10,
        }
    }
}

/// Event-based signalling model: a subscriber-day's control-plane volume,
/// composed from the events that actually generate it. The GTP-C component
/// is priced with the real encoded message sizes from
/// [`roam_ipx::gtpc::signalling_bytes_per_attach`]; the dominant RRC/NAS
/// chatter rides on top. Per-class event rates encode §4.2's observations:
///
/// * natives camp on one network: few attaches, steady RRC churn;
/// * ordinary roamers bounce between v-MNOs: many reattaches and periodic
///   TAU storms;
/// * aggregator users sit in between — they camp like natives but carry the
///   roaming registration machinery, which is why the v-MNO sees "slightly
///   higher" signalling from them.
#[derive(Debug, Clone, Copy)]
pub struct SignallingProfile {
    /// Mean session attaches per day (each costs a GTP-C exchange plus the
    /// associated NAS registration burst).
    pub attaches_per_day: f64,
    /// Mean RRC connection events per day (idle↔connected transitions).
    pub rrc_events_per_day: f64,
    /// KB of NAS/RRC chatter per RRC event.
    pub kb_per_rrc_event: f64,
    /// KB of registration burst accompanying each attach (authentication,
    /// security mode, bearer setup — dwarfs the GTP-C bytes themselves).
    pub kb_per_attach: f64,
}

impl SignallingProfile {
    /// The per-class event rates.
    #[must_use]
    pub fn for_class(class: UserClass) -> SignallingProfile {
        match class {
            UserClass::Native => SignallingProfile {
                attaches_per_day: 2.0,
                rrc_events_per_day: 55.0,
                kb_per_rrc_event: 28.0,
                kb_per_attach: 180.0,
            },
            UserClass::AggregatorUser => SignallingProfile {
                attaches_per_day: 3.0,
                rrc_events_per_day: 60.0,
                kb_per_rrc_event: 28.0,
                kb_per_attach: 260.0, // roaming registration is heavier
            },
            UserClass::BmnoRoamer => SignallingProfile {
                attaches_per_day: 7.0,
                rrc_events_per_day: 62.0,
                kb_per_rrc_event: 30.0,
                kb_per_attach: 280.0,
            },
        }
    }

    /// Draw one day of signalling volume, MB.
    #[must_use]
    pub fn daily_volume_mb(&self, imsi: Imsi, rng: &mut SmallRng) -> f64 {
        // Event counts wobble ±40% day to day.
        let wobble = |rng: &mut SmallRng, mean: f64| mean * (0.6 + 0.8 * rng.gen::<f64>());
        let attaches = wobble(rng, self.attaches_per_day);
        let rrc = wobble(rng, self.rrc_events_per_day);
        // The GTP-C component uses the real encoded message sizes.
        let gtpc_bytes = roam_ipx::gtpc::signalling_bytes_per_attach(
            imsi,
            std::net::Ipv4Addr::new(10, 0, 0, 3),
            std::net::Ipv4Addr::new(10, 0, 0, 10),
            std::net::Ipv4Addr::new(100, 64, 0, 1),
        ) as f64;
        let kb =
            attaches * (self.kb_per_attach + gtpc_bytes / 1024.0) + rrc * self.kb_per_rrc_event;
        kb / 1024.0
    }
}

/// Generate the synthetic core records.
///
/// Distribution targets (shape of Fig. 5): aggregator users ≈ natives on
/// data; ordinary roamers lighter and burstier on data (they also split
/// across other v-MNOs); aggregator signalling slightly above native,
/// roamer signalling higher still (registration churn).
#[must_use]
pub fn simulate_core_records(
    exp: &VisibilityExperiment,
    rng: &mut SmallRng,
) -> (Vec<CoreRecord>, Vec<Imei>) {
    let mut records = Vec::new();
    let mut planted_imeis = Vec::new();
    let mut next_imei: u64 = 350_000_000_000_001;

    // Log-normal-ish draw: exp(N(mu, sigma)) scaled.
    let lognorm = |rng: &mut SmallRng, median: f64, sigma: f64| -> f64 {
        let u: f64 = rng.gen::<f64>().max(1e-9);
        let v: f64 = rng.gen::<f64>().max(1e-9);
        // Box-Muller standard normal.
        let z = (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos();
        median * (sigma * z).exp()
    };

    let push_user = |rng: &mut SmallRng,
                     records: &mut Vec<CoreRecord>,
                     imsi: Imsi,
                     imei: Imei,
                     truth: UserClass,
                     days: usize| {
        let profile = SignallingProfile::for_class(truth);
        for _ in 0..days {
            let data = match truth {
                // Natives: healthy daily usage.
                UserClass::Native => lognorm(rng, 350.0, 0.8),
                // Aggregator users behave like natives on data (§4.2).
                UserClass::AggregatorUser => lognorm(rng, 330.0, 0.8),
                // Ordinary roamers: lighter data (split across v-MNOs).
                UserClass::BmnoRoamer => lognorm(rng, 120.0, 1.1),
            };
            let sig = profile.daily_volume_mb(imsi, rng);
            records.push(CoreRecord {
                imsi,
                imei,
                data_mb: data,
                signalling_mb: sig,
                truth,
            });
        }
    };

    for i in 0..exp.n_native {
        let imsi = Imsi::new(exp.native_plmn, 100_000_000 + i as u64);
        let imei = Imei(next_imei);
        next_imei += 1;
        push_user(rng, &mut records, imsi, imei, UserClass::Native, exp.days);
    }
    for i in 0..exp.n_roamers {
        // Roamers draw from the b-MNO's general numbering space, outside
        // the leased block.
        let imsi = Imsi::new(exp.bmno_plmn, 1_000_000_000 + i as u64 * 37);
        debug_assert!(!exp.leased_range.contains(imsi));
        let imei = Imei(next_imei);
        next_imei += 1;
        push_user(
            rng,
            &mut records,
            imsi,
            imei,
            UserClass::BmnoRoamer,
            exp.days,
        );
    }
    for i in 0..exp.n_aggregator {
        let imsi = exp
            .leased_range
            .nth(rng.gen_range(0..exp.leased_range.len / 2) * 2 + (i as u64 % 2))
            .expect("within lease");
        let imei = Imei(next_imei);
        next_imei += 1;
        if planted_imeis.len() < exp.planted_devices {
            planted_imeis.push(imei);
        }
        push_user(
            rng,
            &mut records,
            imsi,
            imei,
            UserClass::AggregatorUser,
            exp.days,
        );
    }
    (records, planted_imeis)
}

/// Recover candidate leased IMSI ranges from the core records, given the
/// IMEIs of the planted devices — the paper's pattern-matching step.
///
/// Strategy: collect the MSINs the planted IMEIs map to, take the longest
/// common decimal prefix, and return the whole block under that prefix
/// (under the b-MNO's PLMN).
#[must_use]
pub fn recover_imsi_ranges(records: &[CoreRecord], planted: &[Imei]) -> Vec<ImsiRange> {
    let seeds: Vec<Imsi> = records
        .iter()
        .filter(|r| planted.contains(&r.imei))
        .map(|r| r.imsi)
        .collect();
    if seeds.is_empty() {
        return vec![];
    }
    let plmn = seeds[0].plmn();
    if seeds.iter().any(|s| s.plmn() != plmn) {
        // Multiple PLMNs among the seeds would mean multiple leases;
        // the paper's case has one.
        return vec![];
    }
    // MSIN width for this PLMN: derive from a formatted IMSI.
    let msin_width = seeds[0].to_string().len() - 3 - 2; // mcc + 2-digit mnc
    let strings: Vec<String> = seeds
        .iter()
        .map(|s| format!("{:0width$}", s.msin(), width = msin_width))
        .collect();
    let mut prefix_len = strings[0].len();
    for s in &strings[1..] {
        let common = strings[0]
            .bytes()
            .zip(s.bytes())
            .take_while(|(a, b)| a == b)
            .count();
        prefix_len = prefix_len.min(common);
    }
    if prefix_len == 0 {
        return vec![];
    }
    let prefix: u64 = strings[0][..prefix_len].parse().expect("digits");
    let block = 10u64.pow((msin_width - prefix_len) as u32);
    vec![ImsiRange {
        plmn,
        start: prefix * block,
        len: block,
    }]
}

/// Classify every record using recovered ranges, as the v-MNO analysis
/// would: inside a recovered range → aggregator; same PLMN as the b-MNO →
/// ordinary roamer; otherwise native.
#[must_use]
pub fn infer_class(record: &CoreRecord, bmno_plmn: Plmn, ranges: &[ImsiRange]) -> UserClass {
    if ranges.iter().any(|r| r.contains(record.imsi)) {
        UserClass::AggregatorUser
    } else if record.imsi.plmn() == bmno_plmn {
        UserClass::BmnoRoamer
    } else {
        UserClass::Native
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small_exp() -> VisibilityExperiment {
        VisibilityExperiment {
            n_native: 300,
            n_roamers: 150,
            n_aggregator: 120,
            days: 5,
            ..VisibilityExperiment::paper_setup()
        }
    }

    #[test]
    fn generation_produces_expected_volume() {
        let exp = small_exp();
        let mut rng = SmallRng::seed_from_u64(42);
        let (records, planted) = simulate_core_records(&exp, &mut rng);
        assert_eq!(records.len(), (300 + 150 + 120) * 5);
        assert_eq!(planted.len(), 10);
    }

    #[test]
    fn planted_devices_are_aggregator_users() {
        let exp = small_exp();
        let mut rng = SmallRng::seed_from_u64(42);
        let (records, planted) = simulate_core_records(&exp, &mut rng);
        for r in records.iter().filter(|r| planted.contains(&r.imei)) {
            assert_eq!(r.truth, UserClass::AggregatorUser);
            assert!(exp.leased_range.contains(r.imsi));
        }
    }

    #[test]
    fn recovery_finds_a_range_covering_the_lease_seeds() {
        let exp = small_exp();
        let mut rng = SmallRng::seed_from_u64(42);
        let (records, planted) = simulate_core_records(&exp, &mut rng);
        let ranges = recover_imsi_ranges(&records, &planted);
        assert_eq!(ranges.len(), 1);
        let range = ranges[0];
        assert_eq!(range.plmn, exp.bmno_plmn);
        // Every aggregator record must fall inside the recovered range.
        for r in records
            .iter()
            .filter(|r| r.truth == UserClass::AggregatorUser)
        {
            assert!(range.contains(r.imsi), "missed aggregator IMSI {}", r.imsi);
        }
    }

    #[test]
    fn recovered_classification_is_accurate() {
        let exp = small_exp();
        let mut rng = SmallRng::seed_from_u64(42);
        let (records, planted) = simulate_core_records(&exp, &mut rng);
        let ranges = recover_imsi_ranges(&records, &planted);
        let correct = records
            .iter()
            .filter(|r| infer_class(r, exp.bmno_plmn, &ranges) == r.truth)
            .count();
        let acc = correct as f64 / records.len() as f64;
        // Ordinary roamers outside the recovered block and all natives are
        // always right; aggregator accuracy depends on prefix tightness.
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn traffic_stats_reproduce_fig5_shape() {
        let exp = small_exp();
        let mut rng = SmallRng::seed_from_u64(7);
        let (records, _) = simulate_core_records(&exp, &mut rng);
        let class_stats = |c: UserClass| {
            let rs: Vec<&CoreRecord> = records.iter().filter(|r| r.truth == c).collect();
            TrafficStats::from_records(&rs).unwrap()
        };
        let native = class_stats(UserClass::Native);
        let agg = class_stats(UserClass::AggregatorUser);
        let roam = class_stats(UserClass::BmnoRoamer);
        // Aggregator ≈ native on data; roamers clearly lighter.
        let ratio = agg.median_data_mb / native.median_data_mb;
        assert!((0.8..1.2).contains(&ratio), "agg/native data ratio {ratio}");
        assert!(roam.median_data_mb < native.median_data_mb * 0.6);
        // Aggregator signalling slightly above native; roamers above both.
        assert!(agg.median_signalling_mb > native.median_signalling_mb);
        assert!(roam.median_signalling_mb > agg.median_signalling_mb);
    }

    #[test]
    fn signalling_profile_orders_classes_like_fig5() {
        let mut rng = SmallRng::seed_from_u64(3);
        let imsi = Imsi::new(Plmn::new(260, 6, 2), 1);
        let mean_of = |class: UserClass, rng: &mut SmallRng| {
            let p = SignallingProfile::for_class(class);
            let v: Vec<f64> = (0..2000).map(|_| p.daily_volume_mb(imsi, rng)).collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let native = mean_of(UserClass::Native, &mut rng);
        let agg = mean_of(UserClass::AggregatorUser, &mut rng);
        let roam = mean_of(UserClass::BmnoRoamer, &mut rng);
        assert!(
            native < agg,
            "aggregator users sign slightly more: {native} vs {agg}"
        );
        assert!(
            agg < roam,
            "ordinary roamers churn hardest: {agg} vs {roam}"
        );
        // All in the single-digit-MB/day regime the v-MNO core reports.
        for v in [native, agg, roam] {
            assert!((0.5..10.0).contains(&v), "implausible volume {v}");
        }
    }

    #[test]
    fn signalling_includes_the_gtpc_component() {
        // The per-attach GTP-C bytes are tiny but must be non-zero and come
        // from the real encoder.
        let imsi = Imsi::new(Plmn::new(260, 6, 2), 1);
        let bytes = roam_ipx::gtpc::signalling_bytes_per_attach(
            imsi,
            std::net::Ipv4Addr::new(10, 0, 0, 3),
            std::net::Ipv4Addr::new(10, 0, 0, 10),
            std::net::Ipv4Addr::new(100, 64, 0, 1),
        );
        assert!((40..200).contains(&bytes));
    }

    #[test]
    fn recovery_without_seeds_returns_nothing() {
        let exp = small_exp();
        let mut rng = SmallRng::seed_from_u64(42);
        let (records, _) = simulate_core_records(&exp, &mut rng);
        assert!(recover_imsi_ranges(&records, &[Imei(1)]).is_empty());
        assert!(recover_imsi_ranges(&[], &[Imei(1)]).is_empty());
    }

    #[test]
    fn stats_of_empty_set_is_none() {
        assert!(TrafficStats::from_records(&[]).is_none());
    }
}
