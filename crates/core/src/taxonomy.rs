//! The MNA taxonomy of Fig. 2: who runs which part of the network.
//!
//! The figure's grid has three global-service rows (sales, core network,
//! radio access network) and five columns (traditional MNO, roaming MNO
//! subscriber, light MNA, thick MNA, full MNA). The paper's definitional
//! contribution is the *thick* column: the MNA runs sales **and a limited
//! part of the core** (the internet gateway), while RAN and the rest of the
//! core still belong to the b-/v-MNOs.

/// A row of Fig. 2: a function someone has to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkRole {
    /// Customer acquisition, plans, billing.
    Sales,
    /// The mobile core (session management, gateways…).
    CoreNetwork,
    /// Towers and spectrum.
    RadioAccess,
}

impl NetworkRole {
    /// All roles, in the paper's row order.
    pub const ALL: [NetworkRole; 3] = [
        NetworkRole::Sales,
        NetworkRole::CoreNetwork,
        NetworkRole::RadioAccess,
    ];

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            NetworkRole::Sales => "Sales",
            NetworkRole::CoreNetwork => "Core Network",
            NetworkRole::RadioAccess => "Radio Access Network",
        }
    }
}

/// Who runs a role for a given operating model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoleOwner {
    /// The (single) traditional operator.
    Mno,
    /// The operator that issued the profile.
    BMno,
    /// The operator whose RAN serves the user.
    VMno,
    /// The aggregator itself.
    Mna,
    /// Split: the aggregator runs part (the internet gateway), the b-MNO
    /// runs the rest — the thick-MNA core row.
    MnaAndBMno,
}

impl RoleOwner {
    /// Display label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            RoleOwner::Mno => "MNO",
            RoleOwner::BMno => "b-MNO",
            RoleOwner::VMno => "v-MNO",
            RoleOwner::Mna => "MNA",
            RoleOwner::MnaAndBMno => "MNA + b-MNO",
        }
    }
}

/// The MNA flavours of the paper (plus the two non-MNA baselines that
/// complete the figure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MnaFlavor {
    /// A classical operator serving its own customer at home.
    TraditionalMno,
    /// A classical operator's customer roaming abroad.
    RoamingMno,
    /// Light MNA: sales only, everything else from the b-/v-MNOs
    /// (Google Fi's model, per the MNA taxonomy paper).
    Light,
    /// Thick MNA: sales plus a limited core function — the internet
    /// gateway. **Airalo's model, first documented by this paper.**
    Thick,
    /// Full MNA: sales and a full core deployment, direct IPX access for
    /// roaming-hub service (Twilio/Truphone's model).
    Full,
}

impl MnaFlavor {
    /// All flavours, in the paper's column order.
    pub const ALL: [MnaFlavor; 5] = [
        MnaFlavor::TraditionalMno,
        MnaFlavor::RoamingMno,
        MnaFlavor::Light,
        MnaFlavor::Thick,
        MnaFlavor::Full,
    ];

    /// Column heading.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            MnaFlavor::TraditionalMno => "Traditional MNO",
            MnaFlavor::RoamingMno => "MNO (roaming)",
            MnaFlavor::Light => "Light MNA",
            MnaFlavor::Thick => "Thick MNA",
            MnaFlavor::Full => "Full MNA",
        }
    }

    /// Who runs `role` under this model — the cell content of Fig. 2.
    #[must_use]
    pub fn owner(&self, role: NetworkRole) -> RoleOwner {
        use MnaFlavor::*;
        use NetworkRole::*;
        match (self, role) {
            (TraditionalMno, _) => RoleOwner::Mno,
            (RoamingMno, Sales | CoreNetwork) => RoleOwner::Mno,
            (RoamingMno, RadioAccess) => RoleOwner::VMno,
            (Light | Thick | Full, Sales) => RoleOwner::Mna,
            (Light, CoreNetwork) => RoleOwner::BMno,
            (Thick, CoreNetwork) => RoleOwner::MnaAndBMno,
            (Full, CoreNetwork) => RoleOwner::Mna,
            (Light | Thick, RadioAccess) => RoleOwner::VMno,
            (Full, RadioAccess) => RoleOwner::VMno,
        }
    }

    /// Does the aggregator run any core function itself?
    #[must_use]
    pub fn runs_core_function(&self) -> bool {
        matches!(
            self.owner(NetworkRole::CoreNetwork),
            RoleOwner::Mna | RoleOwner::MnaAndBMno
        )
    }
}

/// Render the Fig. 2 grid as an aligned text table.
#[must_use]
pub fn taxonomy_table() -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<24}", "Role"));
    for f in MnaFlavor::ALL {
        out.push_str(&format!("{:<18}", f.name()));
    }
    out.push('\n');
    for role in NetworkRole::ALL {
        out.push_str(&format!("{:<24}", role.name()));
        for f in MnaFlavor::ALL {
            out.push_str(&format!("{:<18}", f.owner(role).label()));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thick_mna_splits_the_core() {
        assert_eq!(
            MnaFlavor::Thick.owner(NetworkRole::CoreNetwork),
            RoleOwner::MnaAndBMno
        );
        assert_eq!(MnaFlavor::Thick.owner(NetworkRole::Sales), RoleOwner::Mna);
        assert_eq!(
            MnaFlavor::Thick.owner(NetworkRole::RadioAccess),
            RoleOwner::VMno
        );
    }

    #[test]
    fn light_runs_no_core_full_runs_all_core() {
        assert!(!MnaFlavor::Light.runs_core_function());
        assert!(MnaFlavor::Thick.runs_core_function());
        assert!(MnaFlavor::Full.runs_core_function());
        assert_eq!(
            MnaFlavor::Full.owner(NetworkRole::CoreNetwork),
            RoleOwner::Mna
        );
        assert_eq!(
            MnaFlavor::Light.owner(NetworkRole::CoreNetwork),
            RoleOwner::BMno
        );
    }

    #[test]
    fn traditional_mno_runs_everything() {
        for role in NetworkRole::ALL {
            assert_eq!(MnaFlavor::TraditionalMno.owner(role), RoleOwner::Mno);
        }
    }

    #[test]
    fn every_mna_flavor_outsources_the_ran() {
        for f in [MnaFlavor::Light, MnaFlavor::Thick, MnaFlavor::Full] {
            assert_eq!(f.owner(NetworkRole::RadioAccess), RoleOwner::VMno);
        }
    }

    #[test]
    fn table_contains_all_headings_and_cells() {
        let t = taxonomy_table();
        for f in MnaFlavor::ALL {
            assert!(t.contains(f.name()), "missing column {}", f.name());
        }
        for r in NetworkRole::ALL {
            assert!(t.contains(r.name()), "missing row {}", r.name());
        }
        assert!(
            t.contains("MNA + b-MNO"),
            "the thick core cell is the point of the figure"
        );
        assert_eq!(t.lines().count(), 4);
    }
}
