//! The thick-MNA marketplace: a per-country catalogue of eSIM offers.
//!
//! This is the Airalo model as the paper reverse-engineers it:
//!
//! * for most countries, the aggregator leases an IMSI range from one of a
//!   handful of b-MNOs with wide roaming footprints, bundles it with a
//!   pre-arranged breakout configuration (HR through the b-MNO, or IHBO
//!   through a contracted third-party PGW provider), and sells it as "the
//!   Japan eSIM", "the Germany eSIM", …;
//! * for a few countries the aggregator has a *native* (sponsored) deal:
//!   the local operator issues the profile and the user is simply a native
//!   subscriber (LG U+ in Korea, Ooredoo in the Maldives, dtac in Thailand,
//!   §4.1).
//!
//! Buying an eSIM redeems an RSP activation code against the SM-DP+ and
//! hands back a profile plus the offer metadata the attachment layer needs.

use roam_cellular::sim::ActivationCode;
use roam_cellular::{MnoId, SimProfile, Smdp};
use roam_geo::Country;
use roam_ipx::BreakoutConfig;
use std::collections::BTreeMap;

/// One country's eSIM offer in the catalogue.
#[derive(Debug, Clone)]
pub struct CountryOffer {
    /// Destination country the offer is sold for.
    pub country: Country,
    /// The operator issuing the profiles (b-MNO).
    pub b_mno: MnoId,
    /// Breakout arrangement subscribers of this offer get.
    pub config: BreakoutConfig,
    /// True when the b-MNO is local to `country` (native/sponsored eSIM).
    pub native: bool,
    /// Activation-code batch at the SM-DP+.
    code: ActivationCode,
}

/// A thick MNA: storefront + SM-DP+ + per-country offers.
#[derive(Debug)]
pub struct Aggregator {
    /// Brand name.
    pub name: String,
    smdp: Smdp,
    offers: BTreeMap<Country, CountryOffer>,
}

impl Aggregator {
    /// A new aggregator with an empty catalogue.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Aggregator {
            name: name.to_string(),
            smdp: Smdp::new(),
            offers: BTreeMap::new(),
        }
    }

    /// List a country offer backed by an IMSI range leased from `b_mno`.
    ///
    /// The range is deposited at the SM-DP+; the returned offer's activation
    /// codes draw from it. Replaces any previous offer for the country.
    pub fn list_offer(
        &mut self,
        country: Country,
        b_mno: MnoId,
        b_mno_country: Country,
        range: roam_cellular::ImsiRange,
        config: BreakoutConfig,
    ) {
        let code = self.smdp.deposit(b_mno, range);
        let native = b_mno_country == country;
        self.offers.insert(
            country,
            CountryOffer {
                country,
                b_mno,
                config,
                native,
                code,
            },
        );
    }

    /// The catalogue, ordered by country.
    pub fn offers(&self) -> impl Iterator<Item = &CountryOffer> {
        self.offers.values()
    }

    /// Offer for one country.
    #[must_use]
    pub fn offer(&self, country: Country) -> Option<&CountryOffer> {
        self.offers.get(&country)
    }

    /// Number of countries served.
    #[must_use]
    pub fn countries_served(&self) -> usize {
        self.offers.len()
    }

    /// Buy an eSIM for `country`: redeems an activation code and returns
    /// the downloaded profile together with the offer it came from.
    /// `None` when the country is not served or the lease is exhausted.
    pub fn buy_esim(&mut self, country: Country) -> Option<(SimProfile, CountryOffer)> {
        let offer = self.offers.get(&country)?.clone();
        let profile = self.smdp.redeem(offer.code)?;
        Some((profile, offer))
    }

    /// Profiles remaining in a country's lease.
    #[must_use]
    pub fn remaining(&self, country: Country) -> u64 {
        self.offers
            .get(&country)
            .map(|o| self.smdp.remaining(o.code))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roam_cellular::{ImsiRange, Plmn};
    use roam_ipx::PgwProviderId;

    fn range(start: u64, len: u64) -> ImsiRange {
        ImsiRange {
            plmn: Plmn::new(260, 6, 2),
            start,
            len,
        }
    }

    fn agg() -> Aggregator {
        let mut a = Aggregator::new("Airalo");
        a.list_offer(
            Country::DEU,
            MnoId(1),
            Country::POL,
            range(1_000_000, 10),
            BreakoutConfig::ihbo(vec![PgwProviderId(0)]),
        );
        a.list_offer(
            Country::KOR,
            MnoId(2),
            Country::KOR,
            range(2_000_000, 5),
            BreakoutConfig::home_routed(PgwProviderId(1)),
        );
        a
    }

    #[test]
    fn catalogue_distinguishes_native_from_roaming() {
        let a = agg();
        assert!(
            !a.offer(Country::DEU).unwrap().native,
            "Play→Germany is roaming"
        );
        assert!(
            a.offer(Country::KOR).unwrap().native,
            "LG U+→Korea is native"
        );
        assert_eq!(a.countries_served(), 2);
        assert!(a.offer(Country::FRA).is_none());
    }

    #[test]
    fn buying_redeems_sequential_profiles() {
        let mut a = agg();
        let (p1, offer) = a.buy_esim(Country::DEU).unwrap();
        let (p2, _) = a.buy_esim(Country::DEU).unwrap();
        assert_eq!(offer.b_mno, MnoId(1));
        assert_eq!(p1.issuer, MnoId(1));
        assert_eq!(p1.imsi.msin(), 1_000_000);
        assert_eq!(p2.imsi.msin(), 1_000_001);
        assert_eq!(a.remaining(Country::DEU), 8);
    }

    #[test]
    fn exhausted_lease_stops_sales() {
        let mut a = agg();
        for _ in 0..5 {
            assert!(a.buy_esim(Country::KOR).is_some());
        }
        assert!(a.buy_esim(Country::KOR).is_none());
        assert_eq!(a.remaining(Country::KOR), 0);
    }

    #[test]
    fn unserved_country_returns_none() {
        let mut a = agg();
        assert!(a.buy_esim(Country::BRA).is_none());
    }

    #[test]
    fn relisting_replaces_the_offer() {
        let mut a = agg();
        a.list_offer(
            Country::DEU,
            MnoId(9),
            Country::USA,
            range(3_000_000, 2),
            BreakoutConfig::ihbo(vec![PgwProviderId(2)]),
        );
        assert_eq!(a.offer(Country::DEU).unwrap().b_mno, MnoId(9));
        assert_eq!(a.countries_served(), 2, "replacement, not addition");
    }
}
