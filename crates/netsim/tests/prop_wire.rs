//! Property tests for the wire formats and core netsim data structures.

use bytes::{BufMut, Bytes, BytesMut};
use proptest::prelude::*;
use roam_netsim::ip::Ipv4Net;
use roam_netsim::throughput::{transfer_time_ms, TokenBucket, TransferSpec};
use roam_netsim::wire::{
    internet_checksum, DnsMessage, GtpuHeader, IcmpMessage, IpProto, Ipv4Header, UdpHeader,
};
use roam_netsim::{EventQueue, SimTime};
use std::net::Ipv4Addr;

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

proptest! {
    #[test]
    fn ipv4_roundtrip(dscp in any::<u8>(), total_len in 20u16..9000, ident in any::<u16>(),
                      ttl in 1u8..=255, proto in any::<u8>(), src in arb_ip(), dst in arb_ip()) {
        let hdr = Ipv4Header {
            dscp_ecn: dscp,
            total_len,
            ident,
            ttl,
            proto: IpProto::from_number(proto),
            src,
            dst,
        };
        let mut buf = BytesMut::new();
        hdr.encode(&mut buf);
        prop_assert_eq!(buf.len(), Ipv4Header::LEN);
        let back = Ipv4Header::decode(&buf).unwrap();
        prop_assert_eq!(back, hdr);
        // A valid header checksums to zero.
        prop_assert_eq!(internet_checksum(&buf), 0);
    }

    #[test]
    fn ipv4_detects_any_single_byte_corruption(ttl in 1u8..=255, src in arb_ip(),
                                               dst in arb_ip(), pos in 0usize..20,
                                               flip in 1u8..=255) {
        let hdr = Ipv4Header {
            dscp_ecn: 0, total_len: 40, ident: 1, ttl,
            proto: IpProto::Icmp, src, dst,
        };
        let mut buf = BytesMut::new();
        hdr.encode(&mut buf);
        let mut bad = buf.to_vec();
        bad[pos] ^= flip;
        // Either the checksum catches it, or the corrupted field is
        // version/IHL which fails as a bad field. Decode must never
        // silently return a *different* header claiming validity...
        match Ipv4Header::decode(&bad) {
            Err(_) => {}
            Ok(h) => prop_assert_eq!(h, hdr, "accepted a corrupted header"),
        }
    }

    #[test]
    fn ttl_decrement_runs_to_zero(start in 1u8..=64, src in arb_ip(), dst in arb_ip()) {
        let hdr = Ipv4Header {
            dscp_ecn: 0, total_len: 40, ident: 1, ttl: start,
            proto: IpProto::Udp, src, dst,
        };
        let mut buf = BytesMut::new();
        hdr.encode(&mut buf);
        let mut pkt = buf.to_vec();
        for expect in (0..start).rev() {
            let got = Ipv4Header::decrement_ttl(&mut pkt).unwrap();
            prop_assert_eq!(got, expect);
            prop_assert_eq!(internet_checksum(&pkt[..20]), 0, "checksum stays valid");
        }
        prop_assert!(Ipv4Header::decrement_ttl(&mut pkt).is_err());
    }

    #[test]
    fn udp_roundtrip(src_port in any::<u16>(), dst_port in any::<u16>(),
                     len in UdpHeader::LEN as u16..=u16::MAX) {
        let hdr = UdpHeader { src_port, dst_port, len };
        let mut buf = BytesMut::new();
        hdr.encode(&mut buf);
        prop_assert_eq!(buf.len(), UdpHeader::LEN);
        prop_assert_eq!(UdpHeader::decode(&buf).unwrap(), hdr);
    }

    #[test]
    fn udp_rejects_short_input_and_bad_length(src_port in any::<u16>(), dst_port in any::<u16>(),
                                              len in 0u16..UdpHeader::LEN as u16,
                                              cut in 0usize..UdpHeader::LEN) {
        // A datagram shorter than the header is truncated, never a panic.
        let hdr = UdpHeader { src_port, dst_port, len: 512 };
        let mut buf = BytesMut::new();
        hdr.encode(&mut buf);
        prop_assert!(UdpHeader::decode(&buf[..cut]).is_err());
        // A length field below the header size is a bad field.
        let bad = UdpHeader { src_port, dst_port, len };
        let mut buf = BytesMut::new();
        bad.encode(&mut buf);
        prop_assert!(UdpHeader::decode(&buf).is_err());
    }

    #[test]
    fn icmp_echo_roundtrip(ident in any::<u16>(), seq in any::<u16>(),
                           payload in proptest::collection::vec(any::<u8>(), 0..128)) {
        let msg = IcmpMessage::EchoRequest { ident, seq, payload: Bytes::from(payload) };
        let enc = msg.encode();
        prop_assert_eq!(IcmpMessage::decode(&enc).unwrap(), msg);
    }

    #[test]
    fn gtpu_roundtrip(teid in any::<u32>(),
                      inner in proptest::collection::vec(any::<u8>(), 0..256)) {
        let t = GtpuHeader::encapsulate(teid, &inner);
        let (hdr, payload) = GtpuHeader::decapsulate(&t).unwrap();
        prop_assert_eq!(hdr.teid, teid);
        prop_assert_eq!(payload.as_ref(), inner.as_slice());
    }

    #[test]
    fn dns_roundtrip(id in any::<u16>(),
                     labels in proptest::collection::vec("[a-z0-9]{1,20}", 1..5),
                     answers in proptest::collection::vec(any::<u32>(), 0..6)) {
        let qname = labels.join(".");
        let q = DnsMessage::query(id, &qname);
        prop_assert_eq!(DnsMessage::decode(&q.encode()).unwrap(), q.clone());
        let r = DnsMessage::response(&q, answers.into_iter().map(Ipv4Addr::from).collect());
        let back = DnsMessage::decode(&r.encode()).unwrap();
        prop_assert_eq!(back, r);
    }

    #[test]
    fn dns_truncation_never_panics(id in any::<u16>(), cut in 0usize..60) {
        let enc = DnsMessage::query(id, "probe.example.net").encode();
        let cut = cut.min(enc.len());
        let _ = DnsMessage::decode(&enc[..cut]); // must not panic
    }

    #[test]
    fn checksum_is_order_sensitive_but_pads_consistently(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let c1 = internet_checksum(&data);
        // Appending a zero byte to even-length data must not change the sum.
        if data.len() % 2 == 0 {
            let mut padded = BytesMut::from(&data[..]);
            padded.put_u8(0);
            prop_assert_eq!(internet_checksum(&padded), c1);
        }
    }

    #[test]
    fn prefix_nth_stays_inside(addr in any::<u32>(), len in 0u8..=32, idx in any::<u64>()) {
        let net = Ipv4Net::new(Ipv4Addr::from(addr), len);
        match net.nth(idx) {
            Some(ip) => prop_assert!(net.contains(ip)),
            None => prop_assert!(idx >= net.size()),
        }
    }

    #[test]
    fn event_queue_pops_in_nondecreasing_time(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(*t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last, "time went backwards");
            last = at;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn token_bucket_never_exceeds_configured_rate(rate in 1.0f64..100.0,
                                                  burst in 0.0f64..50_000.0,
                                                  chunks in proptest::collection::vec(1.0f64..20_000.0, 1..30)) {
        let mut tb = TokenBucket::new(rate, burst);
        let mut now = SimTime::ZERO;
        let total: f64 = chunks.iter().sum();
        for bytes in &chunks {
            let wait = tb.consume(*bytes, now);
            now = now.after(wait);
        }
        // Everything beyond the initial burst must take at least
        // (total - burst) / rate seconds.
        let min_secs = ((total - burst) / (rate * 1e6 / 8.0)).max(0.0);
        prop_assert!(now.as_secs_f64() >= min_secs - 1e-6,
                     "drained {total} bytes in {} s, floor {min_secs}", now.as_secs_f64());
    }

    #[test]
    fn transfer_time_is_monotone_in_bytes(rtt in 5.0f64..400.0, rate in 1.0f64..200.0,
                                          b1 in 1.0f64..1e7, b2 in 1.0f64..1e7) {
        let t = |bytes| transfer_time_ms(&TransferSpec {
            bytes, rtt_ms: rtt, policy_rate_mbps: rate, loss: 0.0, setup_rtts: 2.0,
            parallel: 1,
        });
        let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        prop_assert!(t(lo) <= t(hi) + 1e-9);
    }
}
