//! Fault-plane contracts: the Gilbert–Elliott realisation must converge
//! to its stationary distribution, and the fault windows a run observes
//! must be a pure function of (seed, spec) — in particular, identical
//! under both `ROAM_TRANSPORT` implementations.

use proptest::prelude::*;
use roam_netsim::engine::flow_seed;
use roam_netsim::link::{LatencyModel, LinkClass};
use roam_netsim::{
    FaultPlane, FaultSpec, Flow, GilbertElliott, Network, NodeKind, ProbeError, SimTime,
    TransportKind,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Over a period covering thousands of dwell cycles, the calendar
    /// realisation's bad-time fraction converges to `stationary_bad()`,
    /// and therefore the implied long-run loss to `stationary_loss()`.
    #[test]
    fn gilbert_elliott_converges_to_stationary(
        seed in any::<u64>(),
        mean_good_ms in 50.0f64..400.0,
        mean_bad_ms in 20.0f64..150.0,
        good_loss in 0.0f64..0.05,
        bad_loss in 0.3f64..1.0,
    ) {
        let model = GilbertElliott { mean_good_ms, mean_bad_ms, good_loss, bad_loss };
        // ~2000 mean cycles: the empirical fraction's relative sd is
        // ~sqrt(2/n) ≈ 3%, so a 15% relative (plus small absolute)
        // tolerance leaves no flake room while still detecting a broken
        // dwell distribution.
        let cycles = 2_000.0;
        let cal = model.calendar(seed, (mean_good_ms + mean_bad_ms) * cycles);
        let pb = cal.bad_fraction();
        let expect = model.stationary_bad();
        prop_assert!(
            (pb - expect).abs() < 0.15 * expect + 0.01,
            "bad fraction {pb} vs stationary {expect}"
        );
        let loss = pb * bad_loss + (1.0 - pb) * good_loss;
        let expect_loss = model.stationary_loss();
        prop_assert!(
            (loss - expect_loss).abs() < 0.15 * expect_loss + 0.01,
            "empirical loss {loss} vs stationary {expect_loss}"
        );
        // The realisation is internally consistent: sorted, disjoint,
        // in-period windows (the fraction above is derived from them).
        let mut prev_end = 0u64;
        for &(s, e) in cal.windows() {
            prop_assert!(s >= prev_end && e > s);
            prev_end = e;
        }
    }

    /// Calendar queries are pure functions of (seed, spec, entity):
    /// lazily materialised planes answer identically regardless of query
    /// order, which is what makes shard decomposition sound.
    #[test]
    fn fault_plane_answers_are_query_order_free(
        master in any::<u64>(),
        entities in proptest::collection::vec((0u32..32, 0u64..20_000), 1..24),
    ) {
        let spec = FaultSpec::heavy();
        let mut forward = FaultPlane::new(spec);
        let mut reverse = FaultPlane::new(spec);
        let answer = |plane: &mut FaultPlane, &(li, ms): &(u32, u64)| {
            let at = SimTime::from_ms(ms as f64);
            (
                plane.link_burst_loss(master, li, at).map(f64::to_bits),
                plane.cgnat_state(master, li, at),
                plane.dns_dark(master, li, at),
            )
        };
        let fwd: Vec<_> = entities.iter().map(|e| answer(&mut forward, e)).collect();
        let mut rev: Vec<_> = entities.iter().rev().map(|e| answer(&mut reverse, e)).collect();
        rev.reverse();
        prop_assert_eq!(fwd, rev);
    }
}

/// Build a small lossy topology with a dark-able gateway and run a fixed
/// probe schedule under the currently pinned transport, returning every
/// typed outcome plus the fault plane's tallies.
fn probe_trace(seed: u64) -> (Vec<String>, u64, u64) {
    let mut net = Network::new(seed);
    let ue = net.add_node(
        "ue",
        NodeKind::Host,
        roam_geo::City::Doha,
        "10.0.0.2".parse().unwrap(),
    );
    let nat = net.add_node(
        "nat",
        NodeKind::CgNat,
        roam_geo::City::Lille,
        "141.95.2.2".parse().unwrap(),
    );
    let dst = net.add_node(
        "edge",
        NodeKind::SpEdge,
        roam_geo::City::Paris,
        "142.250.3.3".parse().unwrap(),
    );
    net.link_with(
        ue,
        nat,
        LinkClass::Tunnel,
        LatencyModel::fixed(45.0, 2.0),
        0.02,
    );
    net.link_with(
        nat,
        dst,
        LinkClass::Peering,
        LatencyModel::fixed(4.0, 0.5),
        0.01,
    );
    net.set_failover(nat, SimTime::from_ms(11.0));
    let mut flow = Flow::open(flow_seed(seed, "prop/faults/windows"));
    let outcomes: Vec<String> = (0..96)
        .map(|_| match net.rtt_probe_checked(ue, dst, &mut flow) {
            Ok(s) => format!("ok:{}:{}", s.rtt_ms.to_bits(), s.attempts),
            Err(ProbeError::Lost) => "lost".into(),
            Err(ProbeError::NoRoute) => "noroute".into(),
            Err(ProbeError::Silent) => "silent".into(),
        })
        .collect();
    (outcomes, net.fault_drops(), net.fault_failovers())
}

/// The fault windows — and everything a probe observes through them — are
/// transport-independent: the exact per-probe outcome sequence, drop tally
/// and failover tally agree bit-for-bit under both backends.
#[test]
fn fault_windows_identical_under_both_transports() {
    let prev = FaultSpec::override_faults(Some(FaultSpec::heavy()));
    let mut perturbed = false;
    for seed in [3u64, 17, 4242, 0x00C0_FFEE] {
        let prev_t = TransportKind::override_transport(Some(TransportKind::ClosedForm));
        let closed = probe_trace(seed);
        TransportKind::override_transport(Some(TransportKind::Engine));
        let engine = probe_trace(seed);
        TransportKind::override_transport(prev_t);
        assert_eq!(
            closed, engine,
            "seed {seed}: transports disagree on fault windows"
        );
        // Heavy's entity selection is fractional, so one seed may roll an
        // entirely healthy topology — but not all of them.
        perturbed |= closed.1 > 0 || closed.2 > 0 || closed.0.iter().any(|o| o == "lost");
    }
    assert!(perturbed, "heavy schedule never perturbed any probe");
    FaultSpec::override_faults(prev);
}
