//! The calendar-equivalence contract: the timing wheel pops events in
//! *identical* `(time, seq)` order to the binary-heap reference model —
//! including same-instant FIFO ties, schedule-while-popping interleavings
//! across slot/level/horizon boundaries, and reuse through `rewind()`.
//! This is the property that lets `ROAM_CALENDAR=heap` and the default
//! wheel produce byte-for-byte identical simulations.

use proptest::prelude::*;
use roam_netsim::{CalendarKind, EventQueue, SimTime};

/// One scripted action against both calendars.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule at `now + delay_ns` (relative keeps the script causal).
    After(u64),
    /// Schedule `copies` events at exactly `now` — a same-instant burst.
    Burst(u8),
    /// Pop once and compare.
    Pop,
    /// Rewind both queues and keep going.
    Rewind,
}

fn op() -> impl Strategy<Value = Op> {
    // Repeated arms stand in for weights (the vendored `prop_oneof!` is
    // uniform): pops dominate so scripts actually drain what they build.
    prop_oneof![
        // Delays spanning sub-slot (< 2^16 ns), multi-slot, multi-level
        // and beyond-horizon (> 2^52 ns) magnitudes.
        (0u32..63).prop_map(|bits| Op::After(1u64 << bits)),
        (0u64..200_000_000).prop_map(Op::After),
        (0u64..200_000_000).prop_map(Op::After),
        (0u64..200_000_000).prop_map(Op::After),
        (1u8..8).prop_map(Op::Burst),
        Just(Op::Pop),
        Just(Op::Pop),
        Just(Op::Pop),
        Just(Op::Pop),
        Just(Op::Pop),
        Just(Op::Rewind),
    ]
}

fn drain_and_compare(wheel: &mut EventQueue<u32>, heap: &mut EventQueue<u32>) {
    loop {
        let (w, h) = (wheel.pop(), heap.pop());
        assert_eq!(w, h, "drain diverged");
        if w.is_none() {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Run an arbitrary schedule/pop/rewind script against both backends
    /// in lockstep; every pop must return the same (time, event) pair, and
    /// a final drain must agree on the leftovers.
    #[test]
    fn wheel_pops_in_heap_order(ops in proptest::collection::vec(op(), 1..120)) {
        let mut wheel = EventQueue::with_kind(CalendarKind::Wheel);
        let mut heap = EventQueue::with_kind(CalendarKind::Heap);
        let mut tag = 0u32;
        for op in ops {
            match op {
                Op::After(delay_ns) => {
                    let d = SimTime::from_nanos(delay_ns);
                    wheel.schedule_after(d, tag);
                    heap.schedule_after(d, tag);
                    tag += 1;
                }
                Op::Burst(copies) => {
                    for _ in 0..copies {
                        wheel.schedule(wheel.now(), tag);
                        heap.schedule(heap.now(), tag);
                        tag += 1;
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(wheel.pop(), heap.pop());
                    prop_assert_eq!(wheel.now(), heap.now());
                    prop_assert_eq!(wheel.len(), heap.len());
                }
                Op::Rewind => {
                    wheel.rewind();
                    heap.rewind();
                    prop_assert!(wheel.is_empty() && heap.is_empty());
                }
            }
        }
        drain_and_compare(&mut wheel, &mut heap);
    }

    /// Absolute-time stress: a pile of arbitrary timestamps (clustered by
    /// construction to force same-instant ties) scheduled up front pops in
    /// exact sorted-by-(time, seq) order, then the queues are rewound and
    /// reused to prove no state leaks across walks.
    #[test]
    fn preloaded_timestamps_pop_sorted_and_rewind_cleanly(
        times in proptest::collection::vec((0u64..1 << 54, 0u64..4), 1..300),
        rounds in 1usize..3,
    ) {
        let mut wheel = EventQueue::with_kind(CalendarKind::Wheel);
        let mut heap = EventQueue::with_kind(CalendarKind::Heap);
        for round in 0..rounds {
            for (i, &(coarse, jitter)) in times.iter().enumerate() {
                // Quantising coarse and re-adding a tiny jitter clusters
                // many entries into the same nanosecond.
                let at = SimTime::from_nanos((coarse >> 8 << 8) + jitter);
                wheel.schedule(at, i as u32);
                heap.schedule(at, i as u32);
            }
            let mut prev: Option<SimTime> = None;
            loop {
                let (w, h) = (wheel.pop(), heap.pop());
                prop_assert_eq!(w, h, "round {}", round);
                match w {
                    None => break,
                    Some((at, _)) => {
                        if let Some(p) = prev {
                            prop_assert!(at >= p, "time went backwards");
                        }
                        prev = Some(at);
                    }
                }
            }
            wheel.rewind();
            heap.rewind();
        }
    }
}

/// Same-instant FIFO, pinned explicitly (not just via the reference
/// model): bursts scheduled at one instant pop in scheduling order even
/// when the burst is interleaved with earlier and later events.
#[test]
fn same_instant_bursts_pop_fifo() {
    for kind in [CalendarKind::Wheel, CalendarKind::Heap] {
        let mut q = EventQueue::with_kind(kind);
        let t = SimTime::from_ms(3.0);
        q.schedule(SimTime::from_ms(9.0), 100u32);
        for i in 0..32 {
            q.schedule(t, i);
        }
        q.schedule(SimTime::from_ms(1.0), 200);
        assert_eq!(q.pop(), Some((SimTime::from_ms(1.0), 200)), "{kind:?}");
        for i in 0..32 {
            assert_eq!(q.pop(), Some((t, i)), "{kind:?}");
        }
        assert_eq!(q.pop(), Some((SimTime::from_ms(9.0), 100)), "{kind:?}");
        assert!(q.pop().is_none());
    }
}

/// Rewound queues keep their buffers: scheduling the same walk-sized load
/// again allocates nothing new (the telemetry calendar-depth counter in
/// `roam-netsim`'s network tests pins the same property end-to-end).
#[test]
fn rewind_reuse_holds_capacity_steady() {
    for kind in [CalendarKind::Wheel, CalendarKind::Heap] {
        let mut q = EventQueue::with_kind(kind);
        let walk = |q: &mut EventQueue<u32>| {
            for hop in 0..24u64 {
                q.schedule(SimTime::from_nanos(hop * 3_000_017), hop as u32);
            }
            while q.pop().is_some() {}
            q.rewind();
        };
        walk(&mut q);
        let cap = q.capacity();
        for _ in 0..64 {
            walk(&mut q);
            assert_eq!(q.capacity(), cap, "{kind:?} reallocated across walks");
        }
    }
}
