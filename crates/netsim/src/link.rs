//! Links and their latency model.
//!
//! Each link's one-way delay decomposes exactly the way wide-area latency
//! does in the paper's analysis:
//!
//! ```text
//! delay = distance/c_fiber × circuitousness + processing + U(0, jitter)
//! ```
//!
//! *Circuitousness* captures how far real routes deviate from the great
//! circle. The paper finds (§4.3 takeaway) that breakout latency "is largely
//! driven by peering agreements … rather than physical distance or internal
//! routing" — in this model that is precisely the spread of circuitousness
//! values across link classes: a well-peered public path hugs the geodesic
//! (~1.3×), a poorly-peered IPX leg wanders (~2.6×).

use crate::time::SimTime;
use rand::rngs::SmallRng;
use rand::Rng;
use roam_geo::{fiber_delay_ms, GeoPoint};

/// What kind of infrastructure a link is — determines its default
/// circuitousness, processing delay and jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// The cellular air interface plus backhaul into the core.
    RadioAccess,
    /// Short-haul links inside one metro/core site (PGW→CG-NAT, etc.).
    Metro,
    /// Public-internet backbone between cities (well peered).
    Backbone,
    /// A leg across the private IPX backbone: geographically circuitous,
    /// with quality depending on the peering agreement.
    IpxBackbone,
    /// A GTP tunnel modelled as a single virtual hop (tunnels are opaque to
    /// TTL — the reason the paper can use private/public demarcation).
    Tunnel,
    /// Direct peering between a PGW provider and a service provider edge
    /// (§4.3.3: "PGW providers generally have direct peering arrangements
    /// with global SPs").
    Peering,
}

impl LinkClass {
    /// Default circuitousness multiplier applied to the geodesic distance.
    #[must_use]
    pub fn circuitousness(self) -> f64 {
        match self {
            LinkClass::RadioAccess => 1.0, // distance negligible anyway
            LinkClass::Metro => 1.0,
            LinkClass::Backbone => 1.35,
            LinkClass::IpxBackbone => 1.9,
            LinkClass::Tunnel => 1.9,
            LinkClass::Peering => 1.25,
        }
    }

    /// Default per-traversal processing delay (queueing, serialization,
    /// lookup) in milliseconds.
    #[must_use]
    pub fn processing_ms(self) -> f64 {
        match self {
            LinkClass::RadioAccess => 8.0,
            LinkClass::Metro => 0.35,
            LinkClass::Backbone => 0.5,
            LinkClass::IpxBackbone => 1.2,
            LinkClass::Tunnel => 1.5,
            LinkClass::Peering => 0.4,
        }
    }

    /// Default jitter bound in milliseconds (uniform on `[0, bound)`).
    #[must_use]
    pub fn jitter_ms(self) -> f64 {
        match self {
            LinkClass::RadioAccess => 10.0,
            LinkClass::Metro => 0.3,
            LinkClass::Backbone => 1.5,
            LinkClass::IpxBackbone => 4.0,
            LinkClass::Tunnel => 6.0,
            LinkClass::Peering => 1.0,
        }
    }
}

/// The delay model of one link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Deterministic one-way delay component, ms.
    pub base_ms: f64,
    /// Jitter bound: each traversal adds `U(0, jitter_ms)`, ms.
    pub jitter_ms: f64,
    /// Probability of a congestion spike on a traversal. Real public-path
    /// latency is heavy-tailed (transient queueing, reroutes); this is the
    /// source of the wide "% private" spread the paper's Fig. 12 shows for
    /// physical SIMs.
    pub spike_prob: f64,
    /// Spike magnitude bound: a spike adds `U(0, spike_ms)`, ms.
    pub spike_ms: f64,
}

impl LatencyModel {
    /// Build a model from endpoint locations and a link class.
    #[must_use]
    pub fn from_geo(a: GeoPoint, b: GeoPoint, class: LinkClass) -> Self {
        let distance = a.distance_km(b);
        LatencyModel {
            base_ms: fiber_delay_ms(distance) * class.circuitousness() + class.processing_ms(),
            jitter_ms: class.jitter_ms(),
            spike_prob: 0.0,
            spike_ms: 0.0,
        }
    }

    /// Build a model with an explicit circuitousness override — how the
    /// scenario layer encodes *peering quality* (e.g. Etisalat's better
    /// IPX peering vs Jazz's, §4.3.2).
    #[must_use]
    pub fn from_geo_with_circuitousness(
        a: GeoPoint,
        b: GeoPoint,
        class: LinkClass,
        circuitousness: f64,
    ) -> Self {
        let distance = a.distance_km(b);
        LatencyModel {
            base_ms: fiber_delay_ms(distance) * circuitousness + class.processing_ms(),
            jitter_ms: class.jitter_ms(),
            spike_prob: 0.0,
            spike_ms: 0.0,
        }
    }

    /// A fixed-delay model (no geography), for radio access and loopbacks.
    #[must_use]
    pub fn fixed(base_ms: f64, jitter_ms: f64) -> Self {
        LatencyModel {
            base_ms,
            jitter_ms,
            spike_prob: 0.0,
            spike_ms: 0.0,
        }
    }

    /// Add a heavy-tailed congestion-spike term: with probability `prob`
    /// each traversal gains an extra `U(0, ms)` of queueing delay.
    #[must_use]
    pub fn with_spikes(mut self, prob: f64, ms: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob) && ms >= 0.0);
        self.spike_prob = prob;
        self.spike_ms = ms;
        self
    }

    /// Sample one traversal's delay.
    #[must_use]
    pub fn sample(&self, rng: &mut SmallRng) -> SimTime {
        let jitter = if self.jitter_ms > 0.0 {
            rng.gen_range(0.0..self.jitter_ms)
        } else {
            0.0
        };
        let spike = if self.spike_prob > 0.0 && rng.gen_bool(self.spike_prob) {
            rng.gen_range(0.0..self.spike_ms.max(f64::MIN_POSITIVE))
        } else {
            0.0
        };
        SimTime::from_ms(self.base_ms + jitter + spike)
    }
}

/// A directed link in the network graph. Links are stored once and traversed
/// in both directions with the same model (delay symmetry is a reasonable
/// approximation at this scale and keeps forward/return paths consistent).
#[derive(Debug, Clone)]
pub struct Link {
    /// One endpoint (node index).
    pub a: u32,
    /// The other endpoint (node index).
    pub b: u32,
    /// The link class it was built as.
    pub class: LinkClass,
    /// Delay model per traversal.
    pub latency: LatencyModel,
    /// Probability a packet is dropped on traversal (fault injection).
    pub loss: f64,
}

impl Link {
    /// The opposite endpoint of `from` on this link, if `from` is attached.
    #[must_use]
    pub fn other(&self, from: u32) -> Option<u32> {
        if from == self.a {
            Some(self.b)
        } else if from == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use roam_geo::City;

    #[test]
    fn geo_model_grows_with_distance() {
        let short = LatencyModel::from_geo(
            City::Lille.location(),
            City::Wattrelos.location(),
            LinkClass::Metro,
        );
        let long = LatencyModel::from_geo(
            City::Karachi.location(),
            City::Singapore.location(),
            LinkClass::IpxBackbone,
        );
        assert!(short.base_ms < 1.0, "adjacent cities: {}", short.base_ms);
        assert!(long.base_ms > 40.0, "PAK→SGP tunnel leg: {}", long.base_ms);
    }

    #[test]
    fn circuitousness_override_scales_base() {
        let a = City::Dubai.location();
        let b = City::Singapore.location();
        let good = LatencyModel::from_geo_with_circuitousness(a, b, LinkClass::IpxBackbone, 1.4);
        let bad = LatencyModel::from_geo_with_circuitousness(a, b, LinkClass::IpxBackbone, 2.6);
        assert!(bad.base_ms > good.base_ms * 1.5);
    }

    #[test]
    fn sample_is_bounded_by_jitter() {
        let m = LatencyModel::fixed(10.0, 5.0);
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let d = m.sample(&mut rng).as_ms();
            assert!((10.0..15.0).contains(&d), "sampled {d}");
        }
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let m = LatencyModel::fixed(3.25, 0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(m.sample(&mut rng).as_ms(), 3.25);
        assert_eq!(m.sample(&mut rng).as_ms(), 3.25);
    }

    #[test]
    fn sampling_is_deterministic_given_seed() {
        let m = LatencyModel::fixed(1.0, 9.0);
        let run = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..32)
                .map(|_| m.sample(&mut rng).as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn link_other_endpoint() {
        let l = Link {
            a: 3,
            b: 9,
            class: LinkClass::Backbone,
            latency: LatencyModel::fixed(1.0, 0.0),
            loss: 0.0,
        };
        assert_eq!(l.other(3), Some(9));
        assert_eq!(l.other(9), Some(3));
        assert_eq!(l.other(4), None);
    }

    #[test]
    fn class_defaults_are_ordered_sensibly() {
        // Tunnels across the IPX should be worse than public backbone.
        assert!(LinkClass::Tunnel.circuitousness() > LinkClass::Backbone.circuitousness());
        assert!(LinkClass::Tunnel.jitter_ms() > LinkClass::Backbone.jitter_ms());
        // Radio access dominates processing delay.
        assert!(LinkClass::RadioAccess.processing_ms() > LinkClass::Metro.processing_ms());
    }
}
