//! The deterministic fault-injection plane.
//!
//! Real measurement campaigns traverse a network that breaks: roaming
//! links flap and lose packets in bursts, breakout gateways go dark and
//! sessions fail over to the next-nearest site, anycast DNS blackholes a
//! region, CG-NATs rebind their pools and silently kill existing flows.
//! This module models all of that as *sim-time interval calendars* derived
//! from the same keyed-RNG universe as every flow ([`flow_seed`]), so a
//! fault window is a pure function of `(master_seed, entity, spec)` —
//! never of execution order, shard layout, worker count or transport
//! backend. That is what keeps campaign and fleet reports byte-identical
//! across `ROAM_PARALLEL` × `ROAM_TRANSPORT` × `ROAM_FLEET_SHARDS` while
//! the plane is active.
//!
//! Faults come in four kinds:
//!
//! * **Link flaps** — a deterministic subset of links carries a
//!   [`GilbertElliott`] burst-loss process: alternating good/bad dwell
//!   windows; during a bad window the link's loss rate jumps to the burst
//!   value. The stationary bad-state share is `mean_bad/(mean_good +
//!   mean_bad)` — pinned by a proptest.
//! * **Gateway outages** — a subset of CG-NAT (breakout) nodes has dark
//!   windows. A packet hitting a dark gateway *fails over* when the
//!   session layer registered a detour (see
//!   [`Network::set_failover`](crate::Network::set_failover)): it pays the
//!   detour delay to the next-nearest site instead of dying. Without a
//!   registered failover the packet is dropped.
//! * **DNS anycast blackholes** — a subset of resolver nodes has dark
//!   windows during which they drop everything (the anycast catchment
//!   moved; this site serves nobody).
//! * **CG-NAT rebinds** — short dark windows on CG-NATs during which the
//!   translation state is gone; in-flight packets are dropped regardless
//!   of failover (the new gateway has no binding either).
//!
//! Each packet walk samples the calendars at `phase + t`, where the phase
//! is drawn once per walk from the flow's own RNG stream — so two flows
//! see different fault alignments, retries (which re-draw the phase) can
//! escape a window, and everything stays a function of flow identity.
//!
//! Selection is via `ROAM_FAULTS=off|light|heavy|<spec>` (see
//! [`FaultSpec::from_env`]) or the process-wide
//! [`FaultSpec::override_faults`], mirroring how
//! [`TransportKind`](crate::engine::TransportKind) is chosen.

use crate::engine::flow_seed;
use crate::time::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Mutex;

/// A two-state Gilbert–Elliott burst-loss process, parameterised by the
/// mean dwell time in each state and the per-packet loss rate while the
/// state holds. Realised as a deterministic calendar of alternating
/// good/bad windows (exponential dwells drawn from a keyed seed) rather
/// than a per-packet Markov step, so both transports and every shard
/// observe the *same* windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Mean dwell time in the good state, ms.
    pub mean_good_ms: f64,
    /// Mean dwell time in the bad (burst) state, ms.
    pub mean_bad_ms: f64,
    /// Loss probability while in the good state.
    pub good_loss: f64,
    /// Loss probability while in the bad state (the burst).
    pub bad_loss: f64,
}

impl GilbertElliott {
    /// Stationary probability of being in the bad state:
    /// `mean_bad / (mean_good + mean_bad)` — the continuous-dwell analogue
    /// of the classic `p/(p+r)`.
    #[must_use]
    pub fn stationary_bad(&self) -> f64 {
        self.mean_bad_ms / (self.mean_good_ms + self.mean_bad_ms)
    }

    /// Long-run packet loss rate:
    /// `π_bad·bad_loss + (1-π_bad)·good_loss`.
    #[must_use]
    pub fn stationary_loss(&self) -> f64 {
        let pb = self.stationary_bad();
        pb * self.bad_loss + (1.0 - pb) * self.good_loss
    }

    /// Realise the process as a cyclic calendar of bad windows over
    /// `period_ms`, deterministically from `seed`.
    #[must_use]
    pub fn calendar(&self, seed: u64, period_ms: f64) -> FaultCalendar {
        FaultCalendar::dwell(seed, period_ms, self.mean_good_ms, self.mean_bad_ms)
    }
}

/// A cyclic schedule of "bad" sim-time windows for one fault entity.
/// Queries wrap modulo the period, so a calendar covers arbitrarily long
/// runs with a bounded window list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultCalendar {
    period_ns: u64,
    /// Half-open `[start, end)` bad intervals in ns, sorted, within the
    /// period.
    bad: Vec<(u64, u64)>,
}

impl FaultCalendar {
    /// Build a calendar of alternating up/dark windows with exponential
    /// dwell times (means in ms), purely from `seed`.
    #[must_use]
    pub fn dwell(seed: u64, period_ms: f64, mean_up_ms: f64, mean_dark_ms: f64) -> Self {
        let period_ns = SimTime::from_ms(period_ms).as_nanos().max(1);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut bad = Vec::new();
        // Random initial offset into the up/dark cycle so entity
        // calendars are phase-decorrelated even with equal dwell means.
        let mut t = SimTime::from_ms(exp_draw(&mut rng, mean_up_ms)).as_nanos();
        while t < period_ns {
            let dark = SimTime::from_ms(exp_draw(&mut rng, mean_dark_ms)).as_nanos();
            let end = (t + dark).min(period_ns);
            if end > t {
                bad.push((t, end));
            }
            let up = SimTime::from_ms(exp_draw(&mut rng, mean_up_ms)).as_nanos();
            t = end + up;
        }
        FaultCalendar { period_ns, bad }
    }

    /// Is the entity in a bad/dark window at `at` (cyclic)?
    #[must_use]
    pub fn is_bad(&self, at: SimTime) -> bool {
        let t = at.as_nanos() % self.period_ns;
        // Window lists are short (dwells are a sizable fraction of the
        // period); a linear scan beats binary search at this length.
        self.bad.iter().any(|&(s, e)| t >= s && t < e)
    }

    /// Fraction of the period covered by bad windows.
    #[must_use]
    pub fn bad_fraction(&self) -> f64 {
        let dark: u64 = self.bad.iter().map(|&(s, e)| e - s).sum();
        dark as f64 / self.period_ns as f64
    }

    /// The bad windows, `[start, end)` in ns within the period.
    #[must_use]
    pub fn windows(&self) -> &[(u64, u64)] {
        &self.bad
    }
}

/// Exponential draw with the given mean (ms). A zero/negative mean pins
/// the draw to zero.
fn exp_draw(rng: &mut SmallRng, mean_ms: f64) -> f64 {
    if mean_ms <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean_ms * u.ln()
}

/// The fault schedule configuration: which fraction of each entity class
/// is fault-prone and the dwell structure of the windows. All fields are
/// plain numbers so a spec is `Copy`, comparable and printable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Fraction of links carrying a Gilbert–Elliott flap process.
    pub link_flap_rate: f64,
    /// Burst (bad-state) loss probability on flapping links.
    pub flap_bad_loss: f64,
    /// Mean good-state dwell on flapping links, ms.
    pub flap_good_ms: f64,
    /// Mean bad-state dwell on flapping links, ms.
    pub flap_bad_ms: f64,
    /// Fraction of breakout gateways (CG-NATs) with outage windows.
    pub gateway_outage_rate: f64,
    /// Mean up time between gateway outages, ms.
    pub outage_up_ms: f64,
    /// Mean dark time per gateway outage, ms.
    pub outage_dark_ms: f64,
    /// Fraction of DNS resolvers with anycast-blackhole windows.
    pub dns_blackhole_rate: f64,
    /// Fraction of CG-NATs with rebinding windows (short, kill in-flight
    /// packets, no failover possible).
    pub cgnat_rebind_rate: f64,
    /// Mean up time between rebinds, ms.
    pub rebind_up_ms: f64,
    /// Mean rebind-window length, ms.
    pub rebind_dark_ms: f64,
    /// Cyclic calendar period, ms. Walks sample `phase + t` modulo this.
    pub period_ms: f64,
}

impl FaultSpec {
    /// The disabled plane: no entity is fault-prone, nothing is drawn,
    /// every hot path short-circuits — byte- and draw-identical to a
    /// build without the fault plane.
    #[must_use]
    pub fn off() -> Self {
        FaultSpec {
            link_flap_rate: 0.0,
            flap_bad_loss: 0.0,
            gateway_outage_rate: 0.0,
            dns_blackhole_rate: 0.0,
            cgnat_rebind_rate: 0.0,
            ..FaultSpec::heavy()
        }
    }

    /// Occasional trouble: a few flapping links and rare outages — the
    /// level a healthy production ecosystem shows.
    #[must_use]
    pub fn light() -> Self {
        FaultSpec {
            link_flap_rate: 0.08,
            flap_bad_loss: 0.35,
            gateway_outage_rate: 0.05,
            dns_blackhole_rate: 0.03,
            cgnat_rebind_rate: 0.05,
            ..FaultSpec::heavy()
        }
    }

    /// A hostile network: a third of the links flap with heavy burst
    /// loss, a quarter of the gateways take outages, resolvers blackhole,
    /// CG-NATs rebind. Campaigns must *complete* under this, degraded.
    #[must_use]
    pub fn heavy() -> Self {
        FaultSpec {
            link_flap_rate: 0.35,
            flap_bad_loss: 0.75,
            flap_good_ms: 400.0,
            flap_bad_ms: 130.0,
            gateway_outage_rate: 0.25,
            outage_up_ms: 2400.0,
            outage_dark_ms: 800.0,
            dns_blackhole_rate: 0.20,
            cgnat_rebind_rate: 0.30,
            rebind_up_ms: 1800.0,
            rebind_dark_ms: 250.0,
            period_ms: 10_000.0,
        }
    }

    /// Is any fault kind active?
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.link_flap_rate > 0.0
            || self.gateway_outage_rate > 0.0
            || self.dns_blackhole_rate > 0.0
            || self.cgnat_rebind_rate > 0.0
    }

    /// The Gilbert–Elliott process flapping links carry under this spec.
    #[must_use]
    pub fn flap_model(&self) -> GilbertElliott {
        GilbertElliott {
            mean_good_ms: self.flap_good_ms,
            mean_bad_ms: self.flap_bad_ms,
            good_loss: 0.0,
            bad_loss: self.flap_bad_loss,
        }
    }

    /// The calendar period in nanoseconds (≥ 1).
    #[must_use]
    pub fn period_ns(&self) -> u64 {
        SimTime::from_ms(self.period_ms).as_nanos().max(1)
    }

    /// Parse a custom spec: comma-separated `key=value` pairs over a base
    /// of [`FaultSpec::off`]. Keys: `flap`, `burst`, `flap_good_ms`,
    /// `flap_bad_ms`, `outage`, `outage_up_ms`, `outage_dark_ms`, `dns`,
    /// `rebind`, `rebind_up_ms`, `rebind_dark_ms`, `period_ms`.
    /// `None` when a key is unknown or a value is not a finite number in
    /// range.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        let mut spec = FaultSpec::off();
        for pair in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = pair.split_once('=')?;
            let v: f64 = value.trim().parse().ok()?;
            if !v.is_finite() || v < 0.0 {
                return None;
            }
            let rate_ok = (0.0..=1.0).contains(&v);
            match key.trim() {
                "flap" if rate_ok => spec.link_flap_rate = v,
                "burst" if rate_ok => spec.flap_bad_loss = v,
                "outage" if rate_ok => spec.gateway_outage_rate = v,
                "dns" if rate_ok => spec.dns_blackhole_rate = v,
                "rebind" if rate_ok => spec.cgnat_rebind_rate = v,
                "flap_good_ms" => spec.flap_good_ms = v,
                "flap_bad_ms" => spec.flap_bad_ms = v,
                "outage_up_ms" => spec.outage_up_ms = v,
                "outage_dark_ms" => spec.outage_dark_ms = v,
                "rebind_up_ms" => spec.rebind_up_ms = v,
                "rebind_dark_ms" => spec.rebind_dark_ms = v,
                "period_ms" if v > 0.0 => spec.period_ms = v,
                _ => return None,
            }
        }
        Some(spec)
    }

    /// Read the spec from `ROAM_FAULTS`: `off`/unset/empty disable the
    /// plane, `light` and `heavy` select the presets, anything else is
    /// parsed as a custom spec (see [`FaultSpec::parse`]). Read on every
    /// call (never cached) so tests can flip it mid-process.
    ///
    /// # Panics
    /// On an unparseable custom spec — a misspelt knob should fail loudly
    /// at startup, not silently run the happy path.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("ROAM_FAULTS") {
            Err(_) => FaultSpec::off(),
            Ok(v) => match v.trim() {
                "" | "off" => FaultSpec::off(),
                "light" => FaultSpec::light(),
                "heavy" => FaultSpec::heavy(),
                other => FaultSpec::parse(other)
                    .unwrap_or_else(|| panic!("ROAM_FAULTS: unparseable spec {other:?}")),
            },
        }
    }

    /// Install (or clear, with `None`) a process-wide override that takes
    /// precedence over `ROAM_FAULTS`. Returns the previous override so
    /// callers can restore it — the campaign and fleet runners' builder
    /// knobs use this with a restore guard.
    pub fn override_faults(spec: Option<FaultSpec>) -> Option<FaultSpec> {
        let mut slot = FAULTS_OVERRIDE.lock().expect("faults override poisoned");
        std::mem::replace(&mut slot, spec)
    }

    /// The effective spec for this call: the process-wide override if one
    /// is installed, otherwise whatever `ROAM_FAULTS` says.
    #[must_use]
    pub fn current() -> Self {
        let slot = FAULTS_OVERRIDE.lock().expect("faults override poisoned");
        slot.unwrap_or_else(FaultSpec::from_env)
    }
}

/// `Some(spec)` = override installed, `None` = follow the environment.
static FAULTS_OVERRIDE: Mutex<Option<FaultSpec>> = Mutex::new(None);

/// What a node's fault state means for a packet arriving there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeFaultState {
    /// Business as usual.
    Up,
    /// Dark gateway with a registered failover: the packet detours to the
    /// next-nearest site, paying this extra one-way delay.
    Failover(SimTime),
    /// Dark with no way around: the packet dies here.
    Dark,
}

/// Per-network fault state: the spec, lazily materialised calendars for
/// every fault-prone entity, registered failover detours and the plane's
/// own deterministic counters (kept outside the telemetry plane so
/// clients can observe failovers even with telemetry off).
#[derive(Debug)]
pub struct FaultPlane {
    spec: FaultSpec,
    enabled: bool,
    /// Link index → flap calendar (`None` = link does not flap).
    link_cal: HashMap<u32, Option<FaultCalendar>>,
    /// Node index → outage calendar (CG-NATs; `None` = no outages).
    outage_cal: HashMap<u32, Option<FaultCalendar>>,
    /// Node index → blackhole calendar (resolvers; `None` = healthy).
    dns_cal: HashMap<u32, Option<FaultCalendar>>,
    /// Node index → rebind calendar (CG-NATs; `None` = stable pool).
    rebind_cal: HashMap<u32, Option<FaultCalendar>>,
    /// Node index → failover detour delay, registered by the session
    /// layer at attach time (next-nearest breakout site).
    failover: HashMap<u32, SimTime>,
    /// Packets killed by a fault (dark node or rebind window).
    drops: u64,
    /// Packets that took a registered failover detour.
    failovers: u64,
}

impl FaultPlane {
    /// A plane for the given spec.
    #[must_use]
    pub fn new(spec: FaultSpec) -> Self {
        FaultPlane {
            spec,
            enabled: spec.enabled(),
            link_cal: HashMap::new(),
            outage_cal: HashMap::new(),
            dns_cal: HashMap::new(),
            rebind_cal: HashMap::new(),
            failover: HashMap::new(),
            drops: 0,
            failovers: 0,
        }
    }

    /// Is the plane active? The walk hot path checks this one bool and
    /// pays nothing else when it is false.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The spec this plane runs.
    #[must_use]
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Swap in a new spec. Calendars are rebuilt lazily; counters and
    /// registered failovers survive (they are topology facts).
    pub fn set_spec(&mut self, spec: FaultSpec) {
        self.spec = spec;
        self.enabled = spec.enabled();
        self.link_cal.clear();
        self.outage_cal.clear();
        self.dns_cal.clear();
        self.rebind_cal.clear();
    }

    /// Register the failover detour for a gateway node: the extra one-way
    /// delay a packet pays when the gateway is dark but the session can
    /// break out at the next-nearest site.
    pub fn set_failover(&mut self, node: u32, detour: SimTime) {
        self.failover.insert(node, detour);
    }

    /// Total fault-killed packets so far.
    #[must_use]
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Total failover detours taken so far.
    #[must_use]
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Effective loss on link `li` at cyclic time `at`: the burst loss
    /// when the link flaps and is in a bad window, otherwise `None`
    /// (caller keeps the link's base loss).
    pub fn link_burst_loss(&mut self, master: u64, li: u32, at: SimTime) -> Option<f64> {
        let spec = self.spec;
        let cal = self.link_cal.entry(li).or_insert_with(|| {
            entity_calendar(
                master,
                "fault/flap",
                li,
                spec.link_flap_rate,
                spec.period_ms,
                spec.flap_good_ms,
                spec.flap_bad_ms,
            )
        });
        match cal {
            Some(c) if c.is_bad(at) => Some(spec.flap_bad_loss),
            _ => None,
        }
    }

    /// Fault state of a CG-NAT node at cyclic time `at`, and count the
    /// consequence. Rebind darkness kills the packet even when a failover
    /// is registered — the next-nearest gateway holds no binding for an
    /// in-flight flow either.
    pub fn cgnat_state(&mut self, master: u64, node: u32, at: SimTime) -> NodeFaultState {
        let spec = self.spec;
        let rebinding = self
            .rebind_cal
            .entry(node)
            .or_insert_with(|| {
                entity_calendar(
                    master,
                    "fault/rebind",
                    node,
                    spec.cgnat_rebind_rate,
                    spec.period_ms,
                    spec.rebind_up_ms,
                    spec.rebind_dark_ms,
                )
            })
            .as_ref()
            .is_some_and(|c| c.is_bad(at));
        if rebinding {
            self.drops += 1;
            return NodeFaultState::Dark;
        }
        let dark = self
            .outage_cal
            .entry(node)
            .or_insert_with(|| {
                entity_calendar(
                    master,
                    "fault/outage",
                    node,
                    spec.gateway_outage_rate,
                    spec.period_ms,
                    spec.outage_up_ms,
                    spec.outage_dark_ms,
                )
            })
            .as_ref()
            .is_some_and(|c| c.is_bad(at));
        if !dark {
            return NodeFaultState::Up;
        }
        match self.failover.get(&node) {
            Some(&detour) => {
                self.failovers += 1;
                NodeFaultState::Failover(detour)
            }
            None => {
                self.drops += 1;
                NodeFaultState::Dark
            }
        }
    }

    /// Is a resolver node blackholed at cyclic time `at`? Counts the drop.
    pub fn dns_dark(&mut self, master: u64, node: u32, at: SimTime) -> bool {
        let spec = self.spec;
        let dark = self
            .dns_cal
            .entry(node)
            .or_insert_with(|| {
                entity_calendar(
                    master,
                    "fault/dns",
                    node,
                    spec.dns_blackhole_rate,
                    spec.period_ms,
                    spec.outage_up_ms,
                    spec.outage_dark_ms,
                )
            })
            .as_ref()
            .is_some_and(|c| c.is_bad(at));
        if dark {
            self.drops += 1;
        }
        dark
    }
}

/// Build (or decline to build) the calendar for one entity. Membership and
/// windows both come from `flow_seed(master, "<kind>/<index>")`, so the
/// answer is a pure function of identity — lazy fill order is irrelevant.
fn entity_calendar(
    master: u64,
    kind: &str,
    index: u32,
    rate: f64,
    period_ms: f64,
    mean_up_ms: f64,
    mean_dark_ms: f64,
) -> Option<FaultCalendar> {
    if rate <= 0.0 {
        return None;
    }
    let seed = flow_seed(master, &format!("{kind}/{index}"));
    let mut rng = SmallRng::seed_from_u64(seed);
    if !rng.gen_bool(rate.min(1.0)) {
        return None;
    }
    Some(FaultCalendar::dwell(
        rng.gen::<u64>(),
        period_ms,
        mean_up_ms,
        mean_dark_ms,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_and_enabled() {
        assert!(!FaultSpec::off().enabled());
        assert!(FaultSpec::light().enabled());
        assert!(FaultSpec::heavy().enabled());
        assert!(FaultSpec::heavy().link_flap_rate > FaultSpec::light().link_flap_rate);
    }

    #[test]
    fn parse_accepts_known_keys_and_rejects_junk() {
        let s = FaultSpec::parse("flap=0.2, burst=0.9,outage=0.1,period_ms=500").unwrap();
        assert_eq!(s.link_flap_rate, 0.2);
        assert_eq!(s.flap_bad_loss, 0.9);
        assert_eq!(s.gateway_outage_rate, 0.1);
        assert_eq!(s.period_ms, 500.0);
        assert!(s.enabled());
        assert_eq!(s.dns_blackhole_rate, 0.0, "unset keys stay off");
        assert!(FaultSpec::parse("flap=1.5").is_none(), "rate > 1");
        assert!(FaultSpec::parse("warp=0.5").is_none(), "unknown key");
        assert!(FaultSpec::parse("flap=x").is_none(), "non-numeric");
        assert!(FaultSpec::parse("flap").is_none(), "missing value");
        assert!(FaultSpec::parse("period_ms=0").is_none(), "zero period");
    }

    #[test]
    fn env_selects_presets_and_custom_specs() {
        // Single test exercising the env path end-to-end: parallel tests
        // in this binary never touch ROAM_FAULTS, so this is race-free.
        std::env::remove_var("ROAM_FAULTS");
        assert_eq!(FaultSpec::from_env(), FaultSpec::off());
        std::env::set_var("ROAM_FAULTS", "light");
        assert_eq!(FaultSpec::from_env(), FaultSpec::light());
        std::env::set_var("ROAM_FAULTS", "heavy");
        assert_eq!(FaultSpec::from_env(), FaultSpec::heavy());
        std::env::set_var("ROAM_FAULTS", "flap=0.4,burst=0.8");
        assert_eq!(FaultSpec::from_env().link_flap_rate, 0.4);
        std::env::remove_var("ROAM_FAULTS");
    }

    #[test]
    fn override_beats_env_while_installed() {
        let prev = FaultSpec::override_faults(Some(FaultSpec::heavy()));
        assert_eq!(FaultSpec::current(), FaultSpec::heavy());
        let inner = FaultSpec::override_faults(Some(FaultSpec::off()));
        assert_eq!(inner, Some(FaultSpec::heavy()));
        assert!(!FaultSpec::current().enabled());
        FaultSpec::override_faults(prev);
    }

    #[test]
    fn stationary_distribution_is_dwell_ratio() {
        let ge = GilbertElliott {
            mean_good_ms: 300.0,
            mean_bad_ms: 100.0,
            good_loss: 0.0,
            bad_loss: 0.8,
        };
        assert!((ge.stationary_bad() - 0.25).abs() < 1e-12);
        assert!((ge.stationary_loss() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn calendar_is_deterministic_and_cyclic() {
        let a = FaultCalendar::dwell(42, 1000.0, 200.0, 100.0);
        let b = FaultCalendar::dwell(42, 1000.0, 200.0, 100.0);
        assert_eq!(a, b);
        assert_ne!(a, FaultCalendar::dwell(43, 1000.0, 200.0, 100.0));
        // Cyclic: t and t + period agree everywhere.
        for ms in (0..1000).step_by(7) {
            let t = SimTime::from_ms(ms as f64);
            let t2 = SimTime::from_ms(ms as f64 + 1000.0);
            assert_eq!(a.is_bad(t), a.is_bad(t2), "at {ms} ms");
        }
        assert!(a.bad_fraction() > 0.0 && a.bad_fraction() < 1.0);
    }

    #[test]
    fn calendar_bad_fraction_tracks_dwell_means() {
        // Average over many entity calendars: the dark share converges to
        // mean_dark / (mean_up + mean_dark) = 1/3.
        let mut total = 0.0;
        let n = 200;
        for seed in 0..n {
            total += FaultCalendar::dwell(seed, 20_000.0, 200.0, 100.0).bad_fraction();
        }
        let avg = total / f64::from(n as u32);
        assert!((avg - 1.0 / 3.0).abs() < 0.05, "avg dark share {avg}");
    }

    #[test]
    fn entity_membership_follows_rate() {
        let spec = FaultSpec::heavy();
        let mut flapping = 0;
        for li in 0..1000u32 {
            if entity_calendar(
                7,
                "fault/flap",
                li,
                spec.link_flap_rate,
                spec.period_ms,
                spec.flap_good_ms,
                spec.flap_bad_ms,
            )
            .is_some()
            {
                flapping += 1;
            }
        }
        // 35% of 1000, generous tolerance.
        assert!((250..=450).contains(&flapping), "{flapping} links flap");
        // Zero rate: nobody.
        assert!(entity_calendar(7, "fault/flap", 3, 0.0, 1e4, 1.0, 1.0).is_none());
    }

    #[test]
    fn plane_counts_drops_and_failovers() {
        let mut plane = FaultPlane::new(FaultSpec {
            gateway_outage_rate: 1.0,
            outage_up_ms: 0.001,
            outage_dark_ms: 1e9,
            ..FaultSpec::off()
        });
        assert!(plane.enabled());
        // Without a registered failover: dark means dropped.
        let t = SimTime::from_ms(50.0);
        assert_eq!(plane.cgnat_state(1, 9, t), NodeFaultState::Dark);
        assert_eq!(plane.drops(), 1);
        // With one: the packet detours instead.
        plane.set_failover(9, SimTime::from_ms(12.0));
        assert_eq!(
            plane.cgnat_state(1, 9, t),
            NodeFaultState::Failover(SimTime::from_ms(12.0))
        );
        assert_eq!(plane.failovers(), 1);
    }

    #[test]
    fn off_plane_is_inert() {
        let mut plane = FaultPlane::new(FaultSpec::off());
        assert!(!plane.enabled());
        let t = SimTime::from_ms(1.0);
        assert_eq!(plane.link_burst_loss(1, 0, t), None);
        assert_eq!(plane.cgnat_state(1, 0, t), NodeFaultState::Up);
        assert!(!plane.dns_dark(1, 0, t));
        assert_eq!(plane.drops(), 0);
    }
}
