//! Simulated time.
//!
//! Time is an integer count of nanoseconds since simulation start. Integer
//! time makes event ordering exact (no float comparison hazards in the heap)
//! while one-nanosecond resolution is six orders of magnitude below anything
//! the latency model produces.

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from (possibly fractional) milliseconds. Negative values
    /// are clamped to zero: delays in the simulator are never negative, and
    /// clamping keeps a misconfigured jitter model from panicking mid-run.
    #[must_use]
    pub fn from_ms(ms: f64) -> Self {
        if ms <= 0.0 {
            return SimTime(0);
        }
        // Round half away from zero without the libm `round` call — this
        // runs on every packet hop. Truncate through the integer cast,
        // then nudge up when the fractional part clears one half; the
        // cast saturates NaN/huge inputs exactly like `round() as u64`.
        let ns = ms * 1e6;
        let whole = ns as u64;
        SimTime(whole.saturating_add(u64::from(ns - whole as f64 >= 0.5)))
    }

    /// Construct from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds.
    #[must_use]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition of a delay.
    #[must_use]
    pub fn after(self, delay: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(delay.0))
    }

    /// Elapsed time since `earlier`, saturating at zero.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

impl std::ops::Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        self.after(rhs)
    }
}

impl std::iter::Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_ms(1.5).as_nanos(), 1_500_000);
        assert_eq!(SimTime::from_secs(2).as_ms(), 2000.0);
        assert!((SimTime::from_ms(0.123456).as_ms() - 0.123456).abs() < 1e-9);
    }

    #[test]
    fn negative_ms_clamps_to_zero() {
        assert_eq!(SimTime::from_ms(-5.0), SimTime::ZERO);
        assert_eq!(SimTime::from_ms(f64::NEG_INFINITY), SimTime::ZERO);
    }

    #[test]
    fn arithmetic_saturates() {
        let t = SimTime::from_nanos(u64::MAX - 1);
        assert_eq!(t.after(SimTime::from_secs(10)).as_nanos(), u64::MAX);
        assert_eq!(SimTime::ZERO.since(SimTime::from_secs(1)), SimTime::ZERO);
    }

    #[test]
    fn since_measures_elapsed() {
        let a = SimTime::from_ms(10.0);
        let b = SimTime::from_ms(35.5);
        assert_eq!(b.since(a).as_ms(), 25.5);
    }

    #[test]
    fn ordering_is_total_and_sum_works() {
        let ts = [
            SimTime::from_ms(3.0),
            SimTime::from_ms(1.0),
            SimTime::from_ms(2.0),
        ];
        let total: SimTime = ts.iter().copied().sum();
        assert_eq!(total.as_ms(), 6.0);
        assert!(ts[1] < ts[2] && ts[2] < ts[0]);
    }

    #[test]
    fn display_formats_ms() {
        assert_eq!(SimTime::from_ms(12.3456).to_string(), "12.346ms");
    }
}
