//! Throughput modelling: policy enforcement and TCP-shaped transfer times.
//!
//! Two findings in the paper shape this module:
//!
//! * downlink for roaming eSIMs is "predominantly governed by the v-MNO's
//!   bandwidth policies rather than the specific roaming configuration"
//!   (§5.1) — so the first-order model is a policy rate enforced by a token
//!   bucket at the bottleneck;
//! * yet CDN downloads over HR paths are several *times* slower (Fig. 14)
//!   even when the policy rate is identical — because short transfers are
//!   dominated by handshake and slow-start round trips, and long RTT also
//!   caps steady-state TCP throughput. [`transfer_time_ms`] captures both.

use crate::time::SimTime;

/// A token bucket: the policy enforcement point for a subscriber class.
///
/// Rates are in bytes/second; capacity is the burst allowance. The bucket is
/// driven by simulation time, not wall-clock time.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_bytes_per_sec: f64,
    burst_bytes: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// A bucket that refills at `rate_mbps` megabits/s with `burst_bytes`
    /// of headroom, starting full.
    #[must_use]
    pub fn new(rate_mbps: f64, burst_bytes: f64) -> Self {
        assert!(rate_mbps > 0.0, "rate must be positive");
        assert!(burst_bytes >= 0.0);
        TokenBucket {
            rate_bytes_per_sec: rate_mbps * 1e6 / 8.0,
            burst_bytes,
            tokens: burst_bytes,
            last: SimTime::ZERO,
        }
    }

    /// Configured rate in Mbps.
    #[must_use]
    pub fn rate_mbps(&self) -> f64 {
        self.rate_bytes_per_sec * 8.0 / 1e6
    }

    fn refill(&mut self, now: SimTime) {
        // Never rewind: a stale timestamp must not re-credit an interval
        // that a later call already accounted for.
        if now <= self.last {
            return;
        }
        let dt = now.since(self.last).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate_bytes_per_sec).min(self.burst_bytes);
        self.last = now;
    }

    /// Consume `bytes` at time `now`, returning the extra delay before the
    /// last byte clears the shaper (zero when the burst absorbs it).
    ///
    /// The bucket is allowed to go negative ("borrowing"), which is how a
    /// shaper's queue manifests: subsequent packets wait for the deficit.
    pub fn consume(&mut self, bytes: f64, now: SimTime) -> SimTime {
        assert!(bytes >= 0.0);
        self.refill(now);
        self.tokens -= bytes;
        if self.tokens >= 0.0 {
            SimTime::ZERO
        } else {
            SimTime::from_ms(-self.tokens / self.rate_bytes_per_sec * 1e3)
        }
    }

    /// Tokens currently available (may be negative while draining a burst).
    #[must_use]
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

/// Inputs to the transfer-time estimator.
#[derive(Debug, Clone, Copy)]
pub struct TransferSpec {
    /// Application bytes to move.
    pub bytes: f64,
    /// Path round-trip time in ms.
    pub rtt_ms: f64,
    /// Bottleneck policy rate in Mbps (token-bucket rate at the enforcement
    /// point). This is the v-MNO/PGW-provider subscriber policy.
    pub policy_rate_mbps: f64,
    /// End-to-end packet loss probability (drives the Mathis cap).
    pub loss: f64,
    /// Round trips consumed before the first data byte: 1 for the TCP
    /// handshake, +2 for TLS 1.2, +1 more when the client must first
    /// resolve DNS over the same path, etc. Callers compose this.
    pub setup_rtts: f64,
    /// Number of parallel TCP connections. Speedtest tools (Ookla,
    /// fast.com) open many streams precisely to defeat the per-connection
    /// loss/RTT ceiling; `curl` of one object uses 1. Scales the Mathis
    /// cap and the aggregate initial window.
    pub parallel: u32,
}

/// TCP segment size assumed by the window model, bytes.
pub(crate) const MSS: f64 = 1460.0;
/// Initial congestion window (RFC 6928), segments.
pub(crate) const INIT_CWND_SEGMENTS: f64 = 10.0;

/// Steady-state TCP throughput cap from the Mathis et al. model,
/// `rate ≈ (MSS/RTT) · 1.22/√loss`, returned in Mbps. Infinite at zero loss.
#[must_use]
pub fn mathis_cap_mbps(rtt_ms: f64, loss: f64) -> f64 {
    if loss <= 0.0 {
        return f64::INFINITY;
    }
    let rtt_s = (rtt_ms / 1e3).max(1e-6);
    (MSS * 8.0 / 1e6) * 1.22 / (rtt_s * loss.sqrt())
}

/// Estimate the completion time of a TCP-like transfer, in milliseconds.
///
/// The model is: `setup_rtts` of protocol setup, then slow start doubling
/// from the initial window each RTT, then steady-state at the effective rate
/// (the minimum of the policy rate and the Mathis cap). It reproduces the
/// two regimes the paper observes: small objects (jquery.min.js, ~30 KB) are
/// RTT-bound — an HR path with 6× the RTT takes ~6× as long regardless of
/// bandwidth — while bulk speedtests are rate-bound.
#[must_use]
pub fn transfer_time_ms(spec: &TransferSpec) -> f64 {
    assert!(spec.bytes >= 0.0 && spec.rtt_ms > 0.0 && spec.policy_rate_mbps > 0.0);
    let streams = f64::from(spec.parallel.max(1));
    let effective_mbps = spec
        .policy_rate_mbps
        .min(streams * mathis_cap_mbps(spec.rtt_ms, spec.loss));
    let rate_bytes_per_ms = effective_mbps * 1e6 / 8.0 / 1e3;
    let bdp_bytes = rate_bytes_per_ms * spec.rtt_ms; // bandwidth-delay product

    // Accumulate on the simulation clock's nanosecond grid, quantising each
    // phase delta exactly like the event-calendar transport does when it
    // schedules that phase — the two backends must agree bit-for-bit, not
    // merely to within a rounding edge of the exporters' 3-decimal output.
    let mut elapsed = SimTime::from_ms(spec.setup_rtts * spec.rtt_ms);
    let mut remaining = spec.bytes;
    let mut cwnd = streams * INIT_CWND_SEGMENTS * MSS;

    // Slow start: one window per RTT, doubling, until the window reaches the
    // BDP (after which delivery is continuous at the effective rate).
    while remaining > 0.0 && cwnd < bdp_bytes {
        let sent = cwnd.min(remaining);
        remaining -= sent;
        if remaining <= 0.0 {
            // Last window: time to first byte of the window + transmission.
            return elapsed
                .after(SimTime::from_ms(
                    spec.rtt_ms / 2.0 + sent / rate_bytes_per_ms,
                ))
                .as_ms();
        }
        elapsed = elapsed.after(SimTime::from_ms(spec.rtt_ms));
        cwnd *= 2.0;
    }
    // Steady state: pipe is full; drain the rest at the effective rate.
    elapsed
        .after(SimTime::from_ms(
            spec.rtt_ms / 2.0 + remaining / rate_bytes_per_ms,
        ))
        .as_ms()
}

/// Achieved goodput in Mbps for a transfer described by `spec`.
#[must_use]
pub fn goodput_mbps(spec: &TransferSpec) -> f64 {
    let ms = transfer_time_ms(spec);
    if ms <= 0.0 {
        return 0.0;
    }
    spec.bytes * 8.0 / 1e6 / (ms / 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_burst_absorbs_then_delays() {
        let mut tb = TokenBucket::new(8.0, 10_000.0); // 8 Mbps = 1 MB/s
        let d0 = tb.consume(10_000.0, SimTime::ZERO);
        assert_eq!(d0, SimTime::ZERO, "burst absorbs the first 10 kB");
        let d1 = tb.consume(10_000.0, SimTime::ZERO);
        assert!(
            (d1.as_ms() - 10.0).abs() < 0.01,
            "10 kB at 1 MB/s = 10 ms, got {d1}"
        );
    }

    #[test]
    fn bucket_refills_over_time() {
        let mut tb = TokenBucket::new(8.0, 10_000.0);
        tb.consume(10_000.0, SimTime::ZERO);
        // After 10 ms the bucket has regained 10 kB.
        let d = tb.consume(10_000.0, SimTime::from_ms(10.0));
        assert_eq!(d, SimTime::ZERO);
    }

    #[test]
    fn stale_timestamps_do_not_double_credit() {
        let mut tb = TokenBucket::new(8.0, 10_000.0); // 1 MB/s = 1000 B/ms
        tb.consume(10_000.0, SimTime::from_ms(100.0)); // bucket empty at t=100
                                                       // A late-arriving consume with an older timestamp must not rewind
                                                       // the refill clock…
        tb.consume(0.0, SimTime::from_ms(50.0));
        // …otherwise the next refill would double-credit [50,100).
        let d = tb.consume(10_000.0, SimTime::from_ms(101.0));
        // Only 1 ms of refill (1 kB) is legitimate: a 9 kB deficit = 9 ms.
        assert!((d.as_ms() - 9.0).abs() < 0.01, "got {d}");
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let mut tb = TokenBucket::new(1.0, 500.0);
        tb.consume(0.0, SimTime::from_secs(3600));
        assert!(tb.available() <= 500.0);
    }

    #[test]
    fn mathis_cap_behaviour() {
        assert_eq!(mathis_cap_mbps(50.0, 0.0), f64::INFINITY);
        let lossy = mathis_cap_mbps(50.0, 0.01);
        let cleaner = mathis_cap_mbps(50.0, 0.0001);
        assert!(lossy < cleaner);
        let long_rtt = mathis_cap_mbps(400.0, 0.01);
        assert!(long_rtt < lossy, "longer RTT lowers the cap");
    }

    fn spec(bytes: f64, rtt: f64, rate: f64) -> TransferSpec {
        TransferSpec {
            bytes,
            rtt_ms: rtt,
            policy_rate_mbps: rate,
            loss: 0.0,
            setup_rtts: 3.0,
            parallel: 1,
        }
    }

    #[test]
    fn parallel_streams_defeat_the_loss_ceiling() {
        let single = TransferSpec {
            loss: 0.002,
            parallel: 1,
            ..spec(50e6, 80.0, 100.0)
        };
        let pooled = TransferSpec {
            loss: 0.002,
            parallel: 8,
            ..spec(50e6, 80.0, 100.0)
        };
        let g1 = goodput_mbps(&single);
        let g8 = goodput_mbps(&pooled);
        assert!(
            g8 > g1 * 3.0,
            "8 streams must lift the cap: {g1:.1} vs {g8:.1}"
        );
        assert!(g8 <= 100.0 + 1e-9, "policy still binds");
    }

    #[test]
    fn small_object_is_rtt_bound() {
        // 30 kB object (jquery.min.js scale): time scales ~linearly with RTT.
        let fast = transfer_time_ms(&spec(30_000.0, 40.0, 20.0));
        let slow = transfer_time_ms(&spec(30_000.0, 400.0, 20.0));
        let ratio = slow / fast;
        assert!((6.0..12.0).contains(&ratio), "RTT 10x → time {ratio:.1}x");
    }

    #[test]
    fn bulk_transfer_is_rate_bound() {
        // 50 MB at 10 vs 40 Mbps: time ratio ≈ rate ratio, RTT negligible.
        let slow = transfer_time_ms(&spec(50e6, 40.0, 10.0));
        let fast = transfer_time_ms(&spec(50e6, 40.0, 40.0));
        let ratio = slow / fast;
        assert!((3.3..4.3).contains(&ratio), "rate 4x → time {ratio:.2}x");
        // Goodput approaches the policy rate.
        let g = goodput_mbps(&spec(50e6, 40.0, 10.0));
        assert!((8.0..10.01).contains(&g), "goodput {g}");
    }

    #[test]
    fn loss_caps_long_rtt_paths_harder() {
        let short = TransferSpec {
            loss: 0.005,
            ..spec(20e6, 40.0, 100.0)
        };
        let long = TransferSpec {
            loss: 0.005,
            ..spec(20e6, 400.0, 100.0)
        };
        let g_short = goodput_mbps(&short);
        let g_long = goodput_mbps(&long);
        assert!(g_long < g_short / 5.0, "g_short={g_short} g_long={g_long}");
    }

    #[test]
    fn setup_rtts_add_latency_not_rate() {
        let no_setup = TransferSpec {
            setup_rtts: 0.0,
            ..spec(30_000.0, 100.0, 20.0)
        };
        let with_setup = TransferSpec {
            setup_rtts: 3.0,
            ..spec(30_000.0, 100.0, 20.0)
        };
        let dt = transfer_time_ms(&with_setup) - transfer_time_ms(&no_setup);
        assert!((dt - 300.0).abs() < 1e-6, "3 setup RTTs at 100 ms: {dt}");
    }

    #[test]
    fn zero_bytes_costs_only_setup() {
        let t = transfer_time_ms(&spec(0.0, 100.0, 10.0));
        assert!((t - 350.0).abs() < 1e-6, "setup 300 + half RTT 50, got {t}");
    }

    #[test]
    fn monotone_in_bytes() {
        let mut last = 0.0;
        for kb in [1.0, 10.0, 100.0, 1000.0, 10_000.0] {
            let t = transfer_time_ms(&spec(kb * 1000.0, 60.0, 25.0));
            assert!(t > last, "transfer time must grow with size");
            last = t;
        }
    }
}
