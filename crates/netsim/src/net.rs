//! The network graph and its packet-walking engine.
//!
//! A [`Network`] is a set of nodes (hosts, routers, CG-NATs, service-provider
//! edges, DNS servers) joined by [`Link`]s. Probes are real encoded packets:
//! the traceroute engine builds an IPv4+ICMP echo, and every router on the
//! way decrements the TTL *in the encoded bytes* (recomputing the checksum),
//! exactly as `mtr` would experience it. When the TTL expires the router
//! answers with an ICMP time-exceeded quoting the offending header, and the
//! probe's RTT is the event-queue timestamp difference — jitter, loss and
//! unresponsive hops included.

use crate::engine::Flow;
use crate::event::EventQueue;
use crate::faults::{FaultPlane, FaultSpec, NodeFaultState};
use crate::ip::is_private;
use crate::link::{LatencyModel, Link, LinkClass};
use crate::registry::IpRegistry;
use crate::time::SimTime;
use crate::wire::{IcmpMessage, IpProto, Ipv4Header};
use bytes::{BufMut, Bytes, BytesMut};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roam_geo::City;
use roam_telemetry::{Counter, Hist, Recorder, Sink, TelemetryMode, TelemetrySnapshot};
use std::collections::{BinaryHeap, HashMap};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Identifier of a node in a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// What role a node plays. The kind does not change forwarding behaviour —
/// it exists so scenario builders and reports can reason about topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An end host (measurement endpoint / UE).
    Host,
    /// A forwarding router.
    Router,
    /// Carrier-grade NAT: owns the public address the outside world sees.
    CgNat,
    /// A service-provider edge (Google, Facebook, CDN, speedtest server).
    SpEdge,
    /// A DNS resolver.
    DnsResolver,
}

/// A node in the network.
#[derive(Debug, Clone)]
pub struct Node {
    /// Human-readable name (shows up in traces and error messages).
    pub name: String,
    /// Role of the node.
    pub kind: NodeKind,
    /// Where the node physically sits.
    pub city: City,
    /// The node's address (private hops carry RFC1918/RFC6598 space).
    pub ip: Ipv4Addr,
    /// Whether the node answers ICMP (time-exceeded / echo). The paper sees
    /// silent hops where "the PGW provider's CG-NAT fails to respond
    /// within the traceroute timeout" (§4.3.3); scenario builders set this
    /// to false to reproduce that.
    pub icmp_responds: bool,
}

/// Result of a ping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PingResult {
    /// Round-trip time in milliseconds.
    pub rtt_ms: f64,
}

/// Why a probe failed, as the network saw it. The measurement layer maps
/// these onto its typed `MeasureError` so failed rows carry a cause
/// instead of a silent gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeError {
    /// No route exists between the endpoints.
    NoRoute,
    /// The destination never answers ICMP (silent host) — retrying is
    /// pointless.
    Silent,
    /// The probe (or its reply) was lost on every retry.
    Lost,
}

impl std::fmt::Display for ProbeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProbeError::NoRoute => write!(f, "no route"),
            ProbeError::Silent => write!(f, "destination is ICMP-silent"),
            ProbeError::Lost => write!(f, "probe lost after every retry"),
        }
    }
}

/// An RTT measurement with its probe cost: how many echo attempts the
/// client needed before one round trip survived. Probe loss is data — the
/// campaign CSVs report it rather than silently absorbing retries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RttSample {
    /// Round-trip time of the successful echo, milliseconds.
    pub rtt_ms: f64,
    /// Echo attempts consumed, including the successful one (1..=3).
    pub attempts: u32,
}

/// One TTL step of a traceroute.
#[derive(Debug, Clone)]
pub struct TraceHop {
    /// The TTL this row corresponds to (1-based).
    pub ttl: u8,
    /// Responding node, when any probe got an answer.
    pub node: Option<NodeId>,
    /// Responding address (as reported in the ICMP source).
    pub ip: Option<Ipv4Addr>,
    /// RTTs of the probes that were answered, in ms.
    pub rtts: Vec<f64>,
}

impl TraceHop {
    /// Best (minimum) RTT across probes — the value `mtr` reports as "Best"
    /// and the one the paper uses for PGW RTT CDFs (Figs. 8–9).
    #[must_use]
    pub fn best_rtt(&self) -> Option<f64> {
        self.rtts.iter().copied().min_by(|a, b| a.total_cmp(b))
    }

    /// Mean RTT across answered probes — unlike [`TraceHop::best_rtt`],
    /// this keeps transient congestion in view, which matters when judging
    /// how much of the end-to-end latency the public path contributes.
    #[must_use]
    pub fn avg_rtt(&self) -> Option<f64> {
        if self.rtts.is_empty() {
            None
        } else {
            Some(self.rtts.iter().sum::<f64>() / self.rtts.len() as f64)
        }
    }

    /// Did any probe at this TTL get an answer?
    #[must_use]
    pub fn responded(&self) -> bool {
        self.ip.is_some()
    }
}

/// A full traceroute.
#[derive(Debug, Clone)]
pub struct Traceroute {
    /// Hops in TTL order, one entry per TTL probed.
    pub hops: Vec<TraceHop>,
    /// True when the destination itself answered.
    pub reached: bool,
}

impl Traceroute {
    /// The responding IPs in order (unresponsive hops skipped).
    #[must_use]
    pub fn hop_ips(&self) -> Vec<Ipv4Addr> {
        self.hops.iter().filter_map(|h| h.ip).collect()
    }

    /// Index (into `hops`) of the first hop that answered with a public IP —
    /// the paper's private/public demarcation point (§4.3).
    #[must_use]
    pub fn first_public_hop(&self) -> Option<usize> {
        self.hops
            .iter()
            .position(|h| h.ip.is_some_and(|ip| !is_private(ip)))
    }

    /// Best RTT at the final responding hop, ms.
    #[must_use]
    pub fn final_rtt(&self) -> Option<f64> {
        self.hops.iter().rev().find_map(|h| h.best_rtt())
    }

    /// Mean RTT at the final responding hop, ms.
    #[must_use]
    pub fn final_avg_rtt(&self) -> Option<f64> {
        self.hops.iter().rev().find_map(|h| h.avg_rtt())
    }
}

/// Options controlling a traceroute run.
#[derive(Debug, Clone, Copy)]
pub struct TracerouteOpts {
    /// Maximum TTL to probe.
    pub max_ttl: u8,
    /// Probes per TTL (mtr default is 3… we follow).
    pub probes_per_hop: u32,
}

impl Default for TracerouteOpts {
    fn default() -> Self {
        TracerouteOpts {
            max_ttl: 30,
            probes_per_hop: 3,
        }
    }
}

/// An immutable resolved route: the node sequence plus, for every
/// consecutive pair, the index of the link a packet traverses. Shared
/// behind an [`Arc`] so cache hits and probe loops never copy the path.
#[derive(Debug)]
struct RouteEntry {
    nodes: Vec<NodeId>,
    /// `hop_links[i]` joins `nodes[i]` and `nodes[i + 1]` (the
    /// lowest-latency link when parallel links exist).
    hop_links: Vec<u32>,
    /// Dense per-hop walk state baked at route-build time.
    plan: WalkPlan,
}

impl PartialEq for RouteEntry {
    fn eq(&self, other: &Self) -> bool {
        // The plan is derived from (nodes, hop_links) and the link table,
        // so identity is fully captured by the path itself.
        self.nodes == other.nodes && self.hop_links == other.hop_links
    }
}
impl Eq for RouteEntry {}

/// The packet walk's hot state in structure-of-arrays form, baked once per
/// cached route: the walk loop is index-chasing over these dense arrays
/// instead of pointer-hopping through [`Link`]/[`Node`] structs. Entries
/// `[i]` describe the link joining path positions `i` and `i + 1`
/// (`fault_kind` is per *node*, so it has one more element). Any mutation
/// that can invalidate a plan (new links, [`Network::set_link_loss`])
/// clears the route cache.
#[derive(Debug)]
struct WalkPlan {
    /// Per-hop deterministic delay, ms.
    base_ms: Vec<f64>,
    /// Per-hop jitter bound, ms.
    jitter_ms: Vec<f64>,
    /// Per-hop congestion-spike probability.
    spike_prob: Vec<f64>,
    /// Per-hop spike magnitude bound, ms.
    spike_ms: Vec<f64>,
    /// Per-hop base loss probability.
    loss: Vec<f64>,
    /// Per-node fault classification along the path (see [`FaultClass`]).
    fault_kind: Vec<FaultClass>,
}

/// How the fault plane treats a node on the walk path — precomputed so the
/// hot loop matches on a byte instead of re-deriving it from [`NodeKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultClass {
    /// No fault calendar applies.
    Plain,
    /// CG-NAT: rebind/outage calendars with possible failover.
    CgNat,
    /// DNS resolver: blackhole calendar.
    Dns,
}

impl WalkPlan {
    fn build(nodes: &[NodeId], hop_links: &[u32], links: &[Link], all: &[Node]) -> Self {
        let mut plan = WalkPlan {
            base_ms: Vec::with_capacity(hop_links.len()),
            jitter_ms: Vec::with_capacity(hop_links.len()),
            spike_prob: Vec::with_capacity(hop_links.len()),
            spike_ms: Vec::with_capacity(hop_links.len()),
            loss: Vec::with_capacity(hop_links.len()),
            fault_kind: Vec::with_capacity(nodes.len()),
        };
        for &li in hop_links {
            let link = &links[li as usize];
            plan.base_ms.push(link.latency.base_ms);
            plan.jitter_ms.push(link.latency.jitter_ms);
            plan.spike_prob.push(link.latency.spike_prob);
            plan.spike_ms.push(link.latency.spike_ms);
            plan.loss.push(link.loss);
        }
        for &id in nodes {
            plan.fault_kind.push(match all[id.0 as usize].kind {
                NodeKind::CgNat => FaultClass::CgNat,
                NodeKind::DnsResolver => FaultClass::Dns,
                _ => FaultClass::Plain,
            });
        }
        plan
    }

    /// Sample one traversal of hop `i` — exactly [`LatencyModel::sample`]'s
    /// draw sequence (jitter first, then the spike gate) over the baked
    /// arrays, so fast and slow walks consume identical RNG streams.
    /// `inline(always)`: this runs per hop, and the call frame alone is
    /// measurable at population scale (the `#[inline]` hint was not taken).
    #[inline(always)]
    fn sample_ms(&self, i: usize, rng: &mut SmallRng) -> f64 {
        let jitter = if self.jitter_ms[i] > 0.0 {
            rng.gen_range(0.0..self.jitter_ms[i])
        } else {
            0.0
        };
        let spike = if self.spike_prob[i] > 0.0 && rng.gen_bool(self.spike_prob[i]) {
            rng.gen_range(0.0..self.spike_ms[i].max(f64::MIN_POSITIVE))
        } else {
            0.0
        };
        self.base_ms[i] + jitter + spike
    }
}

/// Hasher for route-cache keys — a `(src, dst)` node-id pair packed into
/// one word and finished with a SplitMix64 avalanche. The default SipHash
/// costs more than a packet hop's RNG draws, and the cache is only ever
/// probed by key (never iterated), so DoS resistance buys nothing here.
#[derive(Debug, Default, Clone)]
struct RouteKeyHasher(u64);

type BuildRouteKeyHasher = std::hash::BuildHasherDefault<RouteKeyHasher>;

impl std::hash::Hasher for RouteKeyHasher {
    fn finish(&self) -> u64 {
        let mut z = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn write(&mut self, bytes: &[u8]) {
        // Not reachable from `(u32, u32)` keys, but keep it correct for
        // any future key shape.
        for &b in bytes {
            self.0 = (self.0 << 8) | u64::from(b);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.0 = (self.0 << 32) | u64::from(v);
    }
}

/// A handle to a cached route. Cheap to clone (it is an [`Arc`] bump) and
/// derefs to the node sequence, so slice operations (`len`, indexing,
/// `iter`, `windows`) work directly on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutePath {
    entry: Arc<RouteEntry>,
}

impl RoutePath {
    /// The node sequence, source and destination inclusive.
    #[must_use]
    pub fn nodes(&self) -> &[NodeId] {
        &self.entry.nodes
    }
}

impl std::ops::Deref for RoutePath {
    type Target = [NodeId];
    fn deref(&self) -> &[NodeId] {
        &self.entry.nodes
    }
}

impl PartialEq<Vec<NodeId>> for RoutePath {
    fn eq(&self, other: &Vec<NodeId>) -> bool {
        self.entry.nodes == *other
    }
}

impl PartialEq<[NodeId]> for RoutePath {
    fn eq(&self, other: &[NodeId]) -> bool {
        self.entry.nodes == other
    }
}

/// Which way a packet walks a [`RouteEntry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WalkDir {
    /// `nodes[0] → nodes[upto]`.
    Forward,
    /// `nodes[upto] → nodes[0]` (ICMP answers retrace the path).
    Reverse,
}

/// The simulated network.
#[derive(Debug)]
pub struct Network {
    nodes: Vec<Node>,
    links: Vec<Link>,
    adj: Vec<Vec<u32>>, // node index -> indices into `links`
    name_to_id: HashMap<String, u32>,
    registry: IpRegistry,
    rng: SmallRng,
    master_seed: u64,
    route_cache: HashMap<(u32, u32), Option<RoutePath>, BuildRouteKeyHasher>,
    icmp_ident: u16,
    /// The telemetry plane: counters, histograms, events and the packet
    /// story all accumulate here. Disabled by default (one branch per
    /// call site, no allocation).
    telemetry: Recorder,
    /// Persistent calendar driving packet walks: reset (allocation kept)
    /// at the start of each walk, so hop scheduling never reallocates.
    walk_queue: EventQueue<usize>,
    /// Reusable packet buffer: probes are encoded here and mutated in
    /// place while walking, so the hot loops never allocate.
    pkt_buf: BytesMut,
    /// Reusable scratch for ICMP bodies (encoded before the IP header,
    /// whose `total_len` needs the body length).
    icmp_buf: BytesMut,
    /// The fault-injection plane: keyed-seed calendars of link flaps,
    /// gateway outages, DNS blackholes and CG-NAT rebinds, plus the
    /// failover detours the session layer registers. Disabled (one bool
    /// check per walk) unless `ROAM_FAULTS` / an override says otherwise.
    faults: FaultPlane,
}

/// One packet-level event, recorded when tracing is enabled — the
/// simulator's analogue of a pcap line.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketEvent {
    /// When it happened.
    pub at: SimTime,
    /// Node where it happened.
    pub node: NodeId,
    /// What happened.
    pub kind: PacketEventKind,
}

/// The kinds of packet events a trace records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketEventKind {
    /// Sent from the source host.
    Sent,
    /// Forwarded onward with the remaining TTL.
    Forwarded {
        /// TTL after decrement.
        ttl: u8,
    },
    /// TTL hit zero here (a time-exceeded answer follows if the node talks).
    TtlExpired,
    /// Delivered to the final node.
    Delivered,
    /// Dropped by a lossy link leaving this node.
    Dropped,
}

impl PacketEventKind {
    /// Encode as the `(code, arg)` pair the telemetry plane stores.
    fn code(self) -> (u8, u8) {
        match self {
            PacketEventKind::Sent => (0, 0),
            PacketEventKind::Forwarded { ttl } => (1, ttl),
            PacketEventKind::TtlExpired => (2, 0),
            PacketEventKind::Delivered => (3, 0),
            PacketEventKind::Dropped => (4, 0),
        }
    }

    /// Decode from a stored `(code, arg)` pair.
    fn from_code(code: u8, arg: u8) -> Self {
        match code {
            0 => PacketEventKind::Sent,
            1 => PacketEventKind::Forwarded { ttl: arg },
            2 => PacketEventKind::TtlExpired,
            3 => PacketEventKind::Delivered,
            _ => PacketEventKind::Dropped,
        }
    }

    /// The counter this packet event bumps.
    fn counter(self) -> Counter {
        match self {
            PacketEventKind::Sent => Counter::PacketsSent,
            PacketEventKind::Forwarded { .. } => Counter::PacketsForwarded,
            PacketEventKind::TtlExpired => Counter::TtlExpired,
            PacketEventKind::Delivered => Counter::PacketsDelivered,
            PacketEventKind::Dropped => Counter::PacketsDropped,
        }
    }
}

impl std::fmt::Display for PacketEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self.kind {
            PacketEventKind::Sent => "sent".to_string(),
            PacketEventKind::Forwarded { ttl } => format!("forwarded (ttl {ttl})"),
            PacketEventKind::TtlExpired => "ttl expired".to_string(),
            PacketEventKind::Delivered => "delivered".to_string(),
            PacketEventKind::Dropped => "DROPPED".to_string(),
        };
        write!(f, "{} node#{} {what}", self.at, self.node.0)
    }
}

impl Network {
    /// An empty network with a deterministic RNG seeded by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Network {
            nodes: Vec::new(),
            links: Vec::new(),
            adj: Vec::new(),
            name_to_id: HashMap::new(),
            registry: IpRegistry::new(),
            rng: SmallRng::seed_from_u64(seed),
            master_seed: seed,
            route_cache: HashMap::default(),
            icmp_ident: 1,
            telemetry: Recorder::off(),
            walk_queue: EventQueue::new(),
            pkt_buf: BytesMut::with_capacity(128),
            icmp_buf: BytesMut::with_capacity(64),
            faults: FaultPlane::new(FaultSpec::current()),
        }
    }

    /// Swap the fault schedule in place (calendars rebuild lazily). The
    /// default is whatever [`FaultSpec::current`] said when the network
    /// was built.
    pub fn set_faults(&mut self, spec: FaultSpec) {
        self.faults.set_spec(spec);
    }

    /// Read access to the fault plane (spec, drop/failover tallies).
    #[must_use]
    pub fn faults(&self) -> &FaultPlane {
        &self.faults
    }

    /// Is the fault plane injecting anything?
    #[must_use]
    pub fn faults_enabled(&self) -> bool {
        self.faults.enabled()
    }

    /// Packets the fault plane has killed so far (dark gateways, DNS
    /// blackholes, rebind windows). Deterministic and independent of the
    /// telemetry mode, so clients can classify failures cheaply.
    #[must_use]
    pub fn fault_drops(&self) -> u64 {
        self.faults.drops()
    }

    /// Failover detours packets have taken so far. Clients snapshot this
    /// around a probe to tag results that survived via the next-nearest
    /// gateway.
    #[must_use]
    pub fn fault_failovers(&self) -> u64 {
        self.faults.failovers()
    }

    /// Register the failover detour for a gateway node: the extra one-way
    /// delay packets pay when the gateway is dark but the session can
    /// break out at the next-nearest site. The session layer computes the
    /// detour from provider geography at attach time.
    pub fn set_failover(&mut self, node: NodeId, detour: SimTime) {
        self.faults.set_failover(node.0, detour);
    }

    /// The seed this network was built from — the master every flow key
    /// derives its stream from (see [`crate::engine::flow_seed`]).
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Start recording packet events (pcap-style). Any previously recorded
    /// events are discarded. The story flows through the telemetry sink:
    /// unlike the old consume-once buffer, reading it does not erase it.
    pub fn enable_tracing(&mut self) {
        self.telemetry.enable_packet_trace();
    }

    /// Stop recording packet events. The captured story remains readable
    /// through [`Network::take_trace`].
    pub fn disable_tracing(&mut self) {
        self.telemetry.disable_packet_trace();
    }

    /// The packet story captured since [`Network::enable_tracing`].
    ///
    /// Historically this consumed the trace buffer — a second call was
    /// silently empty. The records now live in the telemetry sink, so the
    /// call is repeatable: it returns everything captured so far, and
    /// recording continues until [`Network::disable_tracing`]. The name is
    /// kept for API continuity.
    pub fn take_trace(&mut self) -> Vec<PacketEvent> {
        self.telemetry
            .packet_records()
            .iter()
            .map(|r| PacketEvent {
                at: SimTime::from_nanos(r.at_ns),
                node: NodeId(r.node),
                kind: PacketEventKind::from_code(r.code, r.arg),
            })
            .collect()
    }

    /// Select what the telemetry plane records (counters/histograms/events).
    pub fn set_telemetry_mode(&mut self, mode: TelemetryMode) {
        self.telemetry.set_mode(mode);
    }

    /// Read access to the recorder (mode checks, packet story).
    #[must_use]
    pub fn telemetry(&self) -> &Recorder {
        &self.telemetry
    }

    /// Write access to the recorder, for the layers above (probes record
    /// their latencies and events through the network they run on).
    pub fn telemetry_mut(&mut self) -> &mut Recorder {
        &mut self.telemetry
    }

    /// Drain the accumulated telemetry into a mergeable snapshot (the
    /// shard hand-off point). The recorder's mode and packet story stay.
    pub fn take_telemetry(&mut self) -> TelemetrySnapshot {
        self.telemetry.take()
    }

    fn record(&mut self, at: SimTime, node: NodeId, kind: PacketEventKind) {
        self.telemetry.add(kind.counter(), 1);
        let (code, arg) = kind.code();
        self.telemetry.packet(at.as_nanos(), node.0, code, arg);
    }

    /// Add a node. The name is interned in a lookup table, so scenario
    /// builders resolve names to dense ids once instead of scanning.
    pub fn add_node(&mut self, name: &str, kind: NodeKind, city: City, ip: Ipv4Addr) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            name: name.to_string(),
            kind,
            city,
            ip,
            icmp_responds: true,
        });
        self.adj.push(Vec::new());
        self.name_to_id.insert(name.to_string(), id.0);
        id
    }

    /// Resolve a node name to its id (O(1); last writer wins when names
    /// repeat).
    #[must_use]
    pub fn node_id_by_name(&self, name: &str) -> Option<NodeId> {
        self.name_to_id.get(name).copied().map(NodeId)
    }

    /// Node accessor.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Make a node ICMP-silent (or responsive again).
    pub fn set_icmp_responds(&mut self, id: NodeId, responds: bool) {
        self.nodes[id.0 as usize].icmp_responds = responds;
    }

    /// Connect two nodes with a link whose latency derives from their
    /// cities' geography and the link class. Returns the link index.
    pub fn link_geo(&mut self, a: NodeId, b: NodeId, class: LinkClass) -> usize {
        let model = LatencyModel::from_geo(
            self.node(a).city.location(),
            self.node(b).city.location(),
            class,
        );
        self.link_with(a, b, class, model, 0.0)
    }

    /// Connect two nodes with an explicit latency model and loss rate.
    pub fn link_with(
        &mut self,
        a: NodeId,
        b: NodeId,
        class: LinkClass,
        latency: LatencyModel,
        loss: f64,
    ) -> usize {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        assert_ne!(a, b, "self-links are not allowed");
        let idx = self.links.len();
        self.links.push(Link {
            a: a.0,
            b: b.0,
            class,
            latency,
            loss,
        });
        self.adj[a.0 as usize].push(idx as u32);
        self.adj[b.0 as usize].push(idx as u32);
        self.route_cache.clear(); // topology changed
        idx
    }

    /// Set a link's loss probability (fault injection). Drops the route
    /// cache: cached walk plans bake per-hop loss in, and a stale plan
    /// would keep sampling the old rate.
    pub fn set_link_loss(&mut self, link_idx: usize, loss: f64) {
        assert!((0.0..=1.0).contains(&loss));
        self.links[link_idx].loss = loss;
        self.route_cache.clear();
    }

    /// The IP registry (ipinfo analogue).
    #[must_use]
    pub fn registry(&self) -> &IpRegistry {
        &self.registry
    }

    /// Mutable registry access, for scenario builders.
    pub fn registry_mut(&mut self) -> &mut IpRegistry {
        &mut self.registry
    }

    /// Least-latency route from `src` to `dst` (Dijkstra over base delays),
    /// inclusive of both endpoints. Cached until the topology changes;
    /// cache hits hand back a shared handle without copying the path.
    pub fn route(&mut self, src: NodeId, dst: NodeId) -> Option<RoutePath> {
        if let Some(cached) = self.route_cache.get(&(src.0, dst.0)) {
            return cached.clone();
        }
        let entry = self.dijkstra(src.0, dst.0).and_then(|p| {
            // A hop pair without a shared link means the predecessor map
            // and adjacency disagree — treat it as unroutable rather than
            // panicking mid-campaign.
            let hop_links: Vec<u32> = p
                .windows(2)
                .map(|w| self.best_link_index(w[0], w[1]))
                .collect::<Option<_>>()?;
            let nodes: Vec<NodeId> = p.into_iter().map(NodeId).collect();
            let plan = WalkPlan::build(&nodes, &hop_links, &self.links, &self.nodes);
            Some(RoutePath {
                entry: Arc::new(RouteEntry {
                    nodes,
                    hop_links,
                    plan,
                }),
            })
        });
        self.route_cache.insert((src.0, dst.0), entry.clone());
        entry
    }

    fn dijkstra(&self, src: u32, dst: u32) -> Option<Vec<u32>> {
        const UNSEEN: u64 = u64::MAX;
        let n = self.nodes.len();
        let mut dist = vec![UNSEEN; n];
        let mut prev = vec![u32::MAX; n];
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u32)>> = BinaryHeap::new();
        dist[src as usize] = 0;
        heap.push(std::cmp::Reverse((0, src)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            if u == dst {
                break;
            }
            for &li in &self.adj[u as usize] {
                let link = &self.links[li as usize];
                let Some(v) = link.other(u) else {
                    continue; // stale adjacency entry: skip, don't panic
                };
                let w = SimTime::from_ms(link.latency.base_ms).as_nanos().max(1);
                let nd = d.saturating_add(w);
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    prev[v as usize] = u;
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        if dist[dst as usize] == UNSEEN {
            return None;
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != src {
            cur = prev[cur as usize];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Index of the lowest-latency link joining two adjacent nodes, or
    /// `None` when they share none. Resolved once per route (the result
    /// lives in the route cache's `hop_links`), not once per forwarded
    /// packet.
    fn best_link_index(&self, a: u32, b: u32) -> Option<u32> {
        self.adj[a as usize]
            .iter()
            .copied()
            .filter(|&li| self.links[li as usize].other(a) == Some(b))
            .min_by(|&x, &y| {
                let (lx, ly) = (&self.links[x as usize], &self.links[y as usize]);
                lx.latency.base_ms.total_cmp(&ly.latency.base_ms)
            })
    }

    /// The public address the outside world sees for traffic from `src`
    /// toward `dst` — the first public IP along the route (the CG-NAT /
    /// breakout address). This is "the device's public IP" in the paper's
    /// methodology.
    pub fn egress_public_ip(&mut self, src: NodeId, dst: NodeId) -> Option<Ipv4Addr> {
        let path = self.route(src, dst)?;
        path.iter()
            .map(|&id| self.node(id).ip)
            .find(|ip| !is_private(*ip))
    }

    /// Sum of base one-way delays along the route, ms (no jitter) — the
    /// deterministic component of the RTT/2.
    pub fn base_one_way_ms(&mut self, src: NodeId, dst: NodeId) -> Option<f64> {
        let path = self.route(src, dst)?;
        Some(
            path.entry
                .hop_links
                .iter()
                .map(|&li| self.links[li as usize].latency.base_ms)
                .sum(),
        )
    }

    /// ICMP echo from `src` to `dst`. Returns `None` when there is no route
    /// or the probe (or its reply) is lost.
    ///
    /// Draws loss/jitter from the network's shared RNG — results depend on
    /// call order. Measurement clients use [`Network::ping_flow`] instead.
    pub fn ping(&mut self, src: NodeId, dst: NodeId) -> Option<PingResult> {
        // An ICMP-silent destination never answers echo, matching the
        // traceroute engine's handling of silent hops.
        if !self.node(dst).icmp_responds {
            return None;
        }
        let path = self.route(src, dst)?;
        let ident = self.next_ident();
        let mut pkt = std::mem::take(&mut self.pkt_buf);
        let mut rng = self.rng.clone();
        let result = self.ping_with(&path, ident, &mut pkt, &mut rng);
        self.rng = rng;
        self.pkt_buf = pkt;
        result
    }

    /// [`Network::ping`] on a flow's private RNG stream: the result is a
    /// function of the flow, not of whatever ran before it.
    pub fn ping_flow(&mut self, src: NodeId, dst: NodeId, flow: &mut Flow) -> Option<PingResult> {
        self.ping_flow_checked(src, dst, flow).ok()
    }

    /// [`Network::ping_flow`] with a typed failure cause instead of a
    /// silent `None`.
    pub fn ping_flow_checked(
        &mut self,
        src: NodeId,
        dst: NodeId,
        flow: &mut Flow,
    ) -> Result<PingResult, ProbeError> {
        if !self.node(dst).icmp_responds {
            return Err(ProbeError::Silent);
        }
        let Some(path) = self.route(src, dst) else {
            return Err(ProbeError::NoRoute);
        };
        let ident = self.next_ident();
        let mut pkt = std::mem::take(&mut self.pkt_buf);
        let result = self.ping_with(&path, ident, &mut pkt, flow.rng());
        self.pkt_buf = pkt;
        result.ok_or(ProbeError::Lost)
    }

    fn ping_with(
        &mut self,
        path: &RoutePath,
        ident: u16,
        pkt: &mut BytesMut,
        rng: &mut SmallRng,
    ) -> Option<PingResult> {
        let last = path.len() - 1;
        // Fast path: with telemetry inactive (no counters, no packet
        // story) and the path far shorter than the echo TTL of 64 (so
        // expiry is impossible), the encoded packet bytes are pure
        // ceremony — the walk's only observable outputs are its RNG draws
        // and the arrival clock. Walk the baked plan arrays
        // arithmetically; the draw sequence is identical, so results are
        // bit-for-bit those of the calendar walk below (pinned by the
        // `fast_and_slow_ping_walks_agree_exactly` test).
        if !self.telemetry.active() && last < 64 {
            let t_fwd = self.walk_fast(path, last, WalkDir::Forward, SimTime::ZERO, rng)?;
            let t_total = self.walk_fast(path, last, WalkDir::Reverse, t_fwd, rng)?;
            return Some(PingResult {
                rtt_ms: t_total.as_ms(),
            });
        }
        let (src, dst) = (path[0], path[last]);
        self.build_echo_into(pkt, src, dst, ident, 0, 64);
        let (arrived, t_fwd, _expired_at) =
            self.walk(path, last, WalkDir::Forward, pkt, SimTime::ZERO, rng)?;
        if !arrived {
            return None;
        }
        // Reply retraces the path in reverse.
        self.build_echo_into(pkt, dst, src, ident, 1, 64);
        let (arrived, t_total, _) = self.walk(path, last, WalkDir::Reverse, pkt, t_fwd, rng)?;
        arrived.then_some(PingResult {
            rtt_ms: t_total.as_ms(),
        })
    }

    /// `mtr`-style traceroute: probe each TTL, record responder and RTTs.
    ///
    /// Shared-RNG variant; see [`Network::traceroute_flow`] for the
    /// order-insensitive one the measurement clients use.
    pub fn traceroute(&mut self, src: NodeId, dst: NodeId, opts: TracerouteOpts) -> Traceroute {
        let Some(path) = self.route(src, dst) else {
            return Traceroute {
                hops: vec![],
                reached: false,
            };
        };
        let mut pkt = std::mem::take(&mut self.pkt_buf);
        let mut rng = self.rng.clone();
        let result = self.traceroute_with(&path, opts, &mut pkt, &mut rng);
        self.rng = rng;
        self.pkt_buf = pkt;
        result
    }

    /// [`Network::traceroute`] on a flow's private RNG stream.
    pub fn traceroute_flow(
        &mut self,
        src: NodeId,
        dst: NodeId,
        opts: TracerouteOpts,
        flow: &mut Flow,
    ) -> Traceroute {
        let Some(path) = self.route(src, dst) else {
            return Traceroute {
                hops: vec![],
                reached: false,
            };
        };
        let mut pkt = std::mem::take(&mut self.pkt_buf);
        let result = self.traceroute_with(&path, opts, &mut pkt, flow.rng());
        self.pkt_buf = pkt;
        result
    }

    fn traceroute_with(
        &mut self,
        path: &RoutePath,
        opts: TracerouteOpts,
        pkt: &mut BytesMut,
        rng: &mut SmallRng,
    ) -> Traceroute {
        let last = path.len() - 1;
        let (src, dst) = (path[0], path[last]);
        let mut hops = Vec::new();
        let mut reached = false;
        // TTL 1 expires at the first node *after* the source.
        for ttl in 1..=opts.max_ttl {
            let mut hop = TraceHop {
                ttl,
                node: None,
                ip: None,
                rtts: vec![],
            };
            let mut hit_dst = false;
            for probe in 0..opts.probes_per_hop {
                let ident = self.next_ident();
                self.build_echo_into(pkt, src, dst, ident, probe as u16, ttl);
                let Some((arrived, t_fwd, expired_at)) =
                    self.walk(path, last, WalkDir::Forward, pkt, SimTime::ZERO, rng)
                else {
                    continue; // probe lost on the way out
                };
                // `pos` is the responder's index on the path: the walk
                // reports where the TTL ran out, so no scan is needed.
                let pos = if arrived {
                    last
                } else {
                    match expired_at {
                        Some(n) => n,
                        None => continue,
                    }
                };
                let responder = path[pos];
                let (r_ip, r_responds) = {
                    let n = self.node(responder);
                    (n.ip, n.icmp_responds)
                };
                if !r_responds {
                    continue; // silent hop: no time-exceeded, probe times out
                }
                // The ICMP answer (echo reply or time exceeded) retraces the
                // path from the responder back to the source.
                self.build_answer_into(pkt, responder, src, arrived);
                let Some((back_ok, t_total, _)) =
                    self.walk(path, pos, WalkDir::Reverse, pkt, t_fwd, rng)
                else {
                    continue; // reply lost
                };
                if !back_ok {
                    continue;
                }
                hop.node = Some(responder);
                hop.ip = Some(r_ip);
                hop.rtts.push(t_total.as_ms());
                if arrived {
                    hit_dst = true;
                }
            }
            hops.push(hop);
            if hit_dst {
                reached = true;
                break;
            }
            // mtr also stops when the path simply ends (host unreachable
            // beyond the last hop); the TTL walk covers path length anyway.
            if ttl as usize >= path.len() + 2 {
                break;
            }
        }
        Traceroute { hops, reached }
    }

    /// Round-trip time measured by a single ping with retries (up to 3).
    /// Shared-RNG variant retained for scenario tooling; measurement
    /// clients use [`Network::rtt_probe`], which also reports how many
    /// probes the retries burned.
    pub fn rtt_ms(&mut self, src: NodeId, dst: NodeId) -> Option<f64> {
        for attempt in 1..=3u32 {
            if let Some(r) = self.ping(src, dst) {
                self.telemetry
                    .add(Counter::EchoAttempts, u64::from(attempt));
                self.telemetry
                    .add(Counter::ProbeRetransmits, u64::from(attempt - 1));
                return Some(r.rtt_ms);
            }
        }
        self.telemetry.add(Counter::EchoAttempts, 3);
        self.telemetry.add(Counter::ProbeRetransmits, 2);
        self.telemetry.add(Counter::ProbesLost, 1);
        None
    }

    /// RTT with retries (up to 3) on a flow's private stream, reporting the
    /// attempt count so probe loss surfaces in campaign datasets instead of
    /// being silently swallowed.
    pub fn rtt_probe(&mut self, src: NodeId, dst: NodeId, flow: &mut Flow) -> Option<RttSample> {
        self.rtt_probe_checked(src, dst, flow).ok()
    }

    /// [`Network::rtt_probe`] with a typed failure cause. Permanent
    /// conditions (no route, ICMP-silent destination) return immediately
    /// — retrying cannot help — but book the same probe cost as a full
    /// retry burn, matching the untyped path's counter arithmetic.
    pub fn rtt_probe_checked(
        &mut self,
        src: NodeId,
        dst: NodeId,
        flow: &mut Flow,
    ) -> Result<RttSample, ProbeError> {
        let mut cause = ProbeError::Lost;
        for attempt in 1..=3u32 {
            match self.ping_flow_checked(src, dst, flow) {
                Ok(r) => {
                    self.telemetry
                        .add(Counter::EchoAttempts, u64::from(attempt));
                    self.telemetry
                        .add(Counter::ProbeRetransmits, u64::from(attempt - 1));
                    return Ok(RttSample {
                        rtt_ms: r.rtt_ms,
                        attempts: attempt,
                    });
                }
                Err(e @ (ProbeError::NoRoute | ProbeError::Silent)) => {
                    cause = e;
                    break;
                }
                Err(ProbeError::Lost) => {}
            }
        }
        self.telemetry.add(Counter::EchoAttempts, 3);
        self.telemetry.add(Counter::ProbeRetransmits, 2);
        self.telemetry.add(Counter::ProbesLost, 1);
        Err(cause)
    }

    // -- internals ---------------------------------------------------------

    fn next_ident(&mut self) -> u16 {
        self.icmp_ident = self.icmp_ident.wrapping_add(1);
        self.icmp_ident
    }

    /// Encode an IPv4+ICMP echo request into `pkt` (replacing its
    /// contents). Uses the persistent ICMP scratch buffer, so steady-state
    /// probe construction performs no allocation.
    fn build_echo_into(
        &mut self,
        pkt: &mut BytesMut,
        src: NodeId,
        dst: NodeId,
        ident: u16,
        seq: u16,
        ttl: u8,
    ) {
        let mut icmp = std::mem::take(&mut self.icmp_buf);
        icmp.clear();
        IcmpMessage::EchoRequest {
            ident,
            seq,
            payload: Bytes::from_static(&[0u8; 32]),
        }
        .encode_into(&mut icmp);
        let hdr = Ipv4Header {
            dscp_ecn: 0,
            total_len: (Ipv4Header::LEN + icmp.len()) as u16,
            ident,
            ttl,
            proto: IpProto::Icmp,
            src: self.node(src).ip,
            dst: self.node(dst).ip,
        };
        pkt.clear();
        hdr.encode(pkt);
        pkt.put_slice(&icmp);
        self.icmp_buf = icmp;
    }

    /// Encode the ICMP answer a responder sends (echo reply when the probe
    /// was delivered, time-exceeded when its TTL ran out) into `pkt`.
    fn build_answer_into(
        &mut self,
        pkt: &mut BytesMut,
        from: NodeId,
        to: NodeId,
        was_delivered: bool,
    ) {
        let mut icmp = std::mem::take(&mut self.icmp_buf);
        icmp.clear();
        if was_delivered {
            IcmpMessage::EchoReply {
                ident: 0,
                seq: 0,
                payload: Bytes::new(),
            }
            .encode_into(&mut icmp);
        } else {
            IcmpMessage::TimeExceeded {
                original: Bytes::new(),
            }
            .encode_into(&mut icmp);
        }
        let hdr = Ipv4Header {
            dscp_ecn: 0,
            total_len: (Ipv4Header::LEN + icmp.len()) as u16,
            ident: 0,
            ttl: 64,
            proto: IpProto::Icmp,
            src: self.node(from).ip,
            dst: self.node(to).ip,
        };
        pkt.clear();
        hdr.encode(pkt);
        pkt.put_slice(&icmp);
        self.icmp_buf = icmp;
    }

    /// Walk the encoded packet in `bytes` along `route`, starting at
    /// `start` time, drawing loss/jitter from `rng`.
    ///
    /// `Forward` visits `nodes[0..=upto]` in order; `Reverse` visits
    /// `nodes[upto..=0]` (how ICMP answers retrace the path) — neither
    /// direction materializes a path copy. Each intermediate node
    /// decrements the TTL in the encoded bytes in place. Hop arrivals go
    /// through the persistent event calendar: each traversed link
    /// schedules the arrival at the next node, and popping the heap
    /// advances the clock — the discrete-event core that future work
    /// extends with competing in-flight packets. Returns `None` when a
    /// link drops the packet; otherwise `(delivered_to_last_node,
    /// arrival_time, path_index_where_ttl_expired)`.
    fn walk(
        &mut self,
        route: &RoutePath,
        upto: usize,
        dir: WalkDir,
        bytes: &mut [u8],
        start: SimTime,
        rng: &mut SmallRng,
    ) -> Option<(bool, SimTime, Option<usize>)> {
        let entry = &*route.entry;
        let faults_on = self.faults.enabled();
        // One phase draw per walk from the caller's own stream: different
        // flows (and retries) land on different regions of the cyclic
        // fault calendars, the alignment is a pure function of flow
        // identity, and the draw sequence is untouched when the plane is
        // off — preserving bit-identical behaviour with `ROAM_FAULTS=off`.
        let phase = if faults_on {
            rng.gen_range(0..self.faults.spec().period_ns())
        } else {
            0
        };
        let master = self.master_seed;
        // `replace` (not `take`): a Default queue would consult
        // `ROAM_CALENDAR` — an env read per walk. The hollow stand-in is
        // an unallocated wheel that is never scheduled on.
        let mut q = std::mem::replace(
            &mut self.walk_queue,
            EventQueue::with_kind(crate::event::CalendarKind::Wheel),
        );
        q.rewind();
        q.schedule(start, 0usize); // the packet leaves the first node
        let mut outcome: Option<Option<(bool, SimTime, Option<usize>)>> = None;
        while let Some((now, step)) = q.pop() {
            let phys = match dir {
                WalkDir::Forward => step,
                WalkDir::Reverse => upto - step,
            };
            let here = entry.nodes[phys];
            // Fault plane: a dark node (gateway outage, DNS blackhole,
            // rebind window) disposes of the packet before it is
            // forwarded or delivered there; a dark gateway with a
            // registered failover detours instead, paying extra delay on
            // its outgoing hop.
            let mut detour = SimTime::ZERO;
            if faults_on && step != 0 {
                let at = SimTime::from_nanos(phase.wrapping_add(now.as_nanos()));
                let state = match entry.plan.fault_kind[phys] {
                    FaultClass::CgNat => self.faults.cgnat_state(master, here.0, at),
                    FaultClass::Dns => {
                        if self.faults.dns_dark(master, here.0, at) {
                            NodeFaultState::Dark
                        } else {
                            NodeFaultState::Up
                        }
                    }
                    FaultClass::Plain => NodeFaultState::Up,
                };
                match state {
                    NodeFaultState::Up => {}
                    NodeFaultState::Failover(d) => {
                        detour = d;
                        self.telemetry.add(Counter::FaultFailovers, 1);
                    }
                    NodeFaultState::Dark => {
                        self.telemetry.add(Counter::FaultDrops, 1);
                        self.record(now, here, PacketEventKind::Dropped);
                        outcome = Some(None); // the fault ate the packet
                        break;
                    }
                }
            }
            if step == upto {
                self.record(now, here, PacketEventKind::Delivered);
                outcome = Some(Some((true, now, None)));
                break;
            }
            // Intermediate forwarding: routers (not the source host itself)
            // decrement the TTL before sending the packet onward.
            if step == 0 {
                self.record(now, here, PacketEventKind::Sent);
            } else {
                match Ipv4Header::decrement_ttl(bytes) {
                    Ok(0) => {
                        self.record(now, here, PacketEventKind::TtlExpired);
                        outcome = Some(Some((false, now, Some(phys))));
                        break;
                    }
                    Ok(ttl) => self.record(now, here, PacketEventKind::Forwarded { ttl }),
                    Err(_) => {
                        outcome = Some(Some((false, now, Some(phys))));
                        break;
                    }
                }
            }
            let hop = match dir {
                WalkDir::Forward => step,
                WalkDir::Reverse => upto - 1 - step,
            };
            let mut loss = entry.plan.loss[hop];
            if faults_on {
                // A flapping link in its Gilbert–Elliott bad window loses
                // in bursts: the burst rate replaces the base rate.
                let at = SimTime::from_nanos(phase.wrapping_add(now.as_nanos()));
                let li = entry.hop_links[hop];
                if let Some(burst) = self.faults.link_burst_loss(master, li, at) {
                    loss = loss.max(burst);
                }
            }
            if loss > 0.0 && rng.gen_bool(loss) {
                self.record(now, here, PacketEventKind::Dropped);
                outcome = Some(None); // dropped on this link
                break;
            }
            let delay = SimTime::from_ms(entry.plan.sample_ms(hop, rng)) + detour;
            q.schedule_after(delay, step + 1);
            if self.telemetry.active() {
                self.telemetry.add(Counter::CalendarEvents, 1);
                self.telemetry.observe(Hist::CalendarDepth, q.len() as f64);
            }
        }
        let result = outcome.unwrap_or(Some((false, q.now(), None)));
        self.walk_queue = q;
        result
    }

    /// The allocation- and packet-free walk: identical RNG draws, fault
    /// consults and clock arithmetic to [`Network::walk`], minus the
    /// encoded packet, the event calendar and the telemetry hooks. Valid
    /// only when telemetry is inactive (there is nothing to record — every
    /// `record`/`add` in the calendar walk is a no-op) and `upto < 64`
    /// (the echo TTL cannot expire, so the in-byte decrement is
    /// unobservable). Returns the arrival time at the far end of the leg,
    /// or `None` when a lossy link or a dark node ate the packet — the
    /// fault plane's own drop/failover tallies still advance, because they
    /// live in [`FaultPlane`], not in telemetry.
    fn walk_fast(
        &mut self,
        route: &RoutePath,
        upto: usize,
        dir: WalkDir,
        start: SimTime,
        rng: &mut SmallRng,
    ) -> Option<SimTime> {
        let entry = &*route.entry;
        let plan = &entry.plan;
        let faults_on = self.faults.enabled();
        // Same per-walk phase draw as the calendar walk.
        let phase = if faults_on {
            rng.gen_range(0..self.faults.spec().period_ns())
        } else {
            0
        };
        let master = self.master_seed;
        let mut now = start;
        for step in 0..=upto {
            let phys = match dir {
                WalkDir::Forward => step,
                WalkDir::Reverse => upto - step,
            };
            let mut detour = SimTime::ZERO;
            if faults_on && step != 0 && plan.fault_kind[phys] != FaultClass::Plain {
                let at = SimTime::from_nanos(phase.wrapping_add(now.as_nanos()));
                let node = entry.nodes[phys].0;
                let state = match plan.fault_kind[phys] {
                    FaultClass::CgNat => self.faults.cgnat_state(master, node, at),
                    FaultClass::Dns => {
                        if self.faults.dns_dark(master, node, at) {
                            NodeFaultState::Dark
                        } else {
                            NodeFaultState::Up
                        }
                    }
                    FaultClass::Plain => NodeFaultState::Up,
                };
                match state {
                    NodeFaultState::Up => {}
                    NodeFaultState::Failover(d) => detour = d,
                    NodeFaultState::Dark => return None,
                }
            }
            if step == upto {
                return Some(now);
            }
            let hop = match dir {
                WalkDir::Forward => step,
                WalkDir::Reverse => upto - 1 - step,
            };
            let mut loss = plan.loss[hop];
            if faults_on {
                let at = SimTime::from_nanos(phase.wrapping_add(now.as_nanos()));
                if let Some(burst) = self
                    .faults
                    .link_burst_loss(master, entry.hop_links[hop], at)
                {
                    loss = loss.max(burst);
                }
            }
            if loss > 0.0 && rng.gen_bool(loss) {
                return None;
            }
            now = now.after(SimTime::from_ms(plan.sample_ms(hop, rng)) + detour);
        }
        unreachable!("the loop returns at step == upto")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    /// A small chain: host(private) - router(private) - cgnat(public) -
    /// router(public) - spedge(public), with geography spanning Europe.
    fn chain() -> (Network, NodeId, NodeId, NodeId) {
        let mut net = Network::new(99);
        let ue = net.add_node("ue", NodeKind::Host, City::Berlin, ip("10.55.0.2"));
        let r1 = net.add_node("core-r1", NodeKind::Router, City::Berlin, ip("10.55.0.1"));
        let nat = net.add_node("cgnat", NodeKind::CgNat, City::Amsterdam, ip("131.188.1.1"));
        let r2 = net.add_node("transit", NodeKind::Router, City::Amsterdam, ip("80.1.2.3"));
        let sp = net.add_node(
            "google",
            NodeKind::SpEdge,
            City::Frankfurt,
            ip("142.250.1.1"),
        );
        net.link_with(
            ue,
            r1,
            LinkClass::RadioAccess,
            LatencyModel::fixed(12.0, 0.0),
            0.0,
        );
        net.link_geo(r1, nat, LinkClass::Backbone);
        net.link_with(
            nat,
            r2,
            LinkClass::Metro,
            LatencyModel::fixed(0.4, 0.0),
            0.0,
        );
        net.link_geo(r2, sp, LinkClass::Peering);
        (net, ue, sp, nat)
    }

    #[test]
    fn route_follows_the_chain() {
        let (mut net, ue, sp, _) = chain();
        let path = net.route(ue, sp).unwrap();
        assert_eq!(path.len(), 5);
        assert_eq!(path[0], ue);
        assert_eq!(path[4], sp);
    }

    #[test]
    fn no_route_between_disconnected_nodes() {
        let mut net = Network::new(1);
        let a = net.add_node("a", NodeKind::Host, City::Paris, ip("10.0.0.1"));
        let b = net.add_node("b", NodeKind::Host, City::London, ip("10.0.0.2"));
        assert!(net.route(a, b).is_none());
        assert!(net.ping(a, b).is_none());
        let tr = net.traceroute(a, b, TracerouteOpts::default());
        assert!(tr.hops.is_empty() && !tr.reached);
    }

    #[test]
    fn ping_rtt_is_about_twice_one_way() {
        let (mut net, ue, sp, _) = chain();
        let one_way = net.base_one_way_ms(ue, sp).unwrap();
        let r = net.ping(ue, sp).unwrap();
        // RTT within [2*base, 2*base + total jitter bound].
        assert!(
            r.rtt_ms >= 2.0 * one_way,
            "rtt {} vs base {}",
            r.rtt_ms,
            one_way
        );
        assert!(r.rtt_ms < 2.0 * one_way + 40.0);
    }

    #[test]
    fn traceroute_visits_every_hop_in_order() {
        let (mut net, ue, sp, _) = chain();
        let tr = net.traceroute(ue, sp, TracerouteOpts::default());
        assert!(tr.reached);
        assert_eq!(tr.hops.len(), 4, "four hops beyond the source");
        let ips = tr.hop_ips();
        assert_eq!(ips[0], ip("10.55.0.1"));
        assert_eq!(ips[1], ip("131.188.1.1"));
        assert_eq!(ips[2], ip("80.1.2.3"));
        assert_eq!(ips[3], ip("142.250.1.1"));
        // RTTs are monotonically non-decreasing in expectation; check best
        // RTTs are at least ordered between first and last hop.
        assert!(tr.hops[0].best_rtt().unwrap() < tr.hops[3].best_rtt().unwrap());
    }

    #[test]
    fn first_public_hop_is_the_cgnat() {
        let (mut net, ue, sp, nat) = chain();
        let tr = net.traceroute(ue, sp, TracerouteOpts::default());
        let idx = tr.first_public_hop().unwrap();
        assert_eq!(tr.hops[idx].node, Some(nat));
        assert_eq!(net.egress_public_ip(ue, sp), Some(ip("131.188.1.1")));
    }

    #[test]
    fn silent_hop_shows_as_no_response() {
        let (mut net, ue, sp, nat) = chain();
        net.set_icmp_responds(nat, false);
        let tr = net.traceroute(ue, sp, TracerouteOpts::default());
        assert!(tr.reached, "silent middle hop must not stop the trace");
        let silent = &tr.hops[1];
        assert!(!silent.responded());
        assert!(silent.rtts.is_empty());
    }

    #[test]
    fn lossy_link_loses_probes_but_trace_completes() {
        let (mut net, ue, sp, _) = chain();
        // 40% loss on the radio link.
        net.set_link_loss(0, 0.4);
        let tr = net.traceroute(
            ue,
            sp,
            TracerouteOpts {
                max_ttl: 30,
                probes_per_hop: 20,
            },
        );
        assert!(tr.reached);
        let h = &tr.hops[0];
        assert!(h.rtts.len() < 20, "some probes must be lost");
        assert!(!h.rtts.is_empty(), "not all probes lost at 40%");
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let run = |seed: u64| {
            let mut net = Network::new(seed);
            let a = net.add_node("a", NodeKind::Host, City::Paris, ip("10.0.0.1"));
            let b = net.add_node("b", NodeKind::SpEdge, City::Tokyo, ip("1.2.3.4"));
            net.link_geo(a, b, LinkClass::Backbone);
            (0..20)
                .map(|_| net.ping(a, b).unwrap().rtt_ms.to_bits())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn dijkstra_prefers_lower_latency_path() {
        let mut net = Network::new(3);
        let a = net.add_node("a", NodeKind::Host, City::Paris, ip("10.0.0.1"));
        let m1 = net.add_node("m1", NodeKind::Router, City::Frankfurt, ip("80.0.0.1"));
        let m2 = net.add_node("m2", NodeKind::Router, City::Tokyo, ip("80.0.0.2"));
        let b = net.add_node("b", NodeKind::SpEdge, City::Amsterdam, ip("90.0.0.1"));
        // Fast two-hop path via Frankfurt vs slow detour via Tokyo.
        net.link_with(
            a,
            m1,
            LinkClass::Backbone,
            LatencyModel::fixed(5.0, 0.0),
            0.0,
        );
        net.link_with(
            m1,
            b,
            LinkClass::Backbone,
            LatencyModel::fixed(5.0, 0.0),
            0.0,
        );
        net.link_with(
            a,
            m2,
            LinkClass::Backbone,
            LatencyModel::fixed(100.0, 0.0),
            0.0,
        );
        net.link_with(
            m2,
            b,
            LinkClass::Backbone,
            LatencyModel::fixed(100.0, 0.0),
            0.0,
        );
        let path = net.route(a, b).unwrap();
        assert_eq!(path, vec![a, m1, b]);
    }

    #[test]
    fn route_cache_invalidated_by_new_links() {
        let mut net = Network::new(3);
        let a = net.add_node("a", NodeKind::Host, City::Paris, ip("10.0.0.1"));
        let m = net.add_node("m", NodeKind::Router, City::Tokyo, ip("80.0.0.2"));
        let b = net.add_node("b", NodeKind::SpEdge, City::Amsterdam, ip("90.0.0.1"));
        net.link_with(
            a,
            m,
            LinkClass::Backbone,
            LatencyModel::fixed(100.0, 0.0),
            0.0,
        );
        net.link_with(
            m,
            b,
            LinkClass::Backbone,
            LatencyModel::fixed(100.0, 0.0),
            0.0,
        );
        assert_eq!(net.route(a, b).unwrap().len(), 3);
        // Add a direct cheap link; the cached 3-hop route must be dropped.
        net.link_with(
            a,
            b,
            LinkClass::Backbone,
            LatencyModel::fixed(1.0, 0.0),
            0.0,
        );
        assert_eq!(net.route(a, b).unwrap(), vec![a, b]);
    }

    #[test]
    fn pinging_a_silent_node_times_out() {
        let (mut net, ue, sp, nat) = chain();
        assert!(
            net.ping(ue, nat).is_some(),
            "responsive CG-NAT answers echo"
        );
        net.set_icmp_responds(nat, false);
        assert!(net.ping(ue, nat).is_none(), "silent node must not answer");
        assert!(net.rtt_ms(ue, nat).is_none());
        // Transit *through* the silent node still works.
        assert!(net.ping(ue, sp).is_some());
    }

    #[test]
    fn tracing_records_the_packet_story() {
        let (mut net, ue, sp, _) = chain();
        net.enable_tracing();
        let r = net.ping(ue, sp);
        assert!(r.is_some());
        let events = net.take_trace();
        // Forward + reply legs: sent, forwards, delivered, twice.
        let sent = events
            .iter()
            .filter(|e| e.kind == PacketEventKind::Sent)
            .count();
        let delivered = events
            .iter()
            .filter(|e| e.kind == PacketEventKind::Delivered)
            .count();
        assert_eq!(sent, 2, "echo + reply each get a Sent");
        assert_eq!(delivered, 2);
        assert!(
            events
                .windows(2)
                .all(|w| w[0].at <= w[1].at || w[1].kind == PacketEventKind::Sent),
            "events within a leg are time-ordered"
        );
        // The trace is repeatable: a second take tells the same story.
        assert_eq!(net.take_trace(), events);
        // Further traffic extends it while tracing stays on.
        net.ping(ue, sp);
        assert!(net.take_trace().len() > events.len());
        // disable_tracing freezes the story: still readable, no longer fed.
        net.disable_tracing();
        let frozen = net.take_trace();
        net.ping(ue, sp);
        assert_eq!(net.take_trace(), frozen, "no recording after disable");
        // Display is human-readable.
        assert!(events[0].to_string().contains("sent"));
    }

    #[test]
    fn telemetry_counts_packets_and_probes() {
        use roam_telemetry::TelemetryMode;
        let (mut net, ue, sp, _) = chain();
        net.set_telemetry_mode(TelemetryMode::Summary);
        assert!(net.ping(ue, sp).is_some());
        assert!(net.rtt_ms(ue, sp).is_some());
        let snap = net.take_telemetry();
        assert_eq!(snap.counters[Counter::PacketsSent as usize], 4);
        assert_eq!(snap.counters[Counter::PacketsDelivered as usize], 4);
        assert!(snap.counters[Counter::CalendarEvents as usize] > 0);
        assert!(snap.counters[Counter::EchoAttempts as usize] >= 1);
        assert_eq!(snap.counters[Counter::ProbesLost as usize], 0);
        // Taking resets the tallies but keeps recording.
        assert!(net.ping(ue, sp).is_some());
        let again = net.take_telemetry();
        assert_eq!(again.counters[Counter::PacketsSent as usize], 2);
    }

    #[test]
    fn tracing_shows_ttl_expiry() {
        let (mut net, ue, sp, _) = chain();
        net.enable_tracing();
        let _ = net.traceroute(
            ue,
            sp,
            TracerouteOpts {
                max_ttl: 1,
                probes_per_hop: 1,
            },
        );
        let events = net.take_trace();
        assert!(
            events.iter().any(|e| e.kind == PacketEventKind::TtlExpired),
            "TTL-1 probe must expire at the first router"
        );
    }

    #[test]
    fn flow_probes_are_order_insensitive() {
        use crate::engine::{flow_seed, Flow};
        let (mut net, ue, sp, _) = chain();
        net.set_link_loss(0, 0.2);
        let open = |key: &str| Flow::open(flow_seed(99, key));
        let first = net.ping_flow(ue, sp, &mut open("p/a"));
        // Perturb the shared stream and run unrelated flows in between:
        // the repeat of flow "p/a" must not notice.
        let _ = net.ping(ue, sp);
        let _ = net.ping_flow(ue, sp, &mut open("p/b"));
        let _ = net.rtt_probe(ue, sp, &mut open("p/c"));
        let again = net.ping_flow(ue, sp, &mut open("p/a"));
        assert_eq!(first, again);
        let s1 = net.rtt_probe(ue, sp, &mut open("p/c"));
        let s2 = net.rtt_probe(ue, sp, &mut open("p/c"));
        assert_eq!(s1, s2);
    }

    /// A chain with every stochastic feature armed (jitter, spikes, loss)
    /// — the workload where a draw-order divergence between the fast and
    /// calendar walks would show immediately.
    fn spiky_chain() -> (Network, NodeId, NodeId) {
        let (mut net, ue, sp, _) = chain();
        net.set_link_loss(0, 0.15);
        let li = net.link_with(
            ue,
            sp,
            LinkClass::IpxBackbone,
            LatencyModel::fixed(200.0, 6.0).with_spikes(0.2, 40.0),
            0.05,
        );
        // Make the detour link irrelevant for routing but keep the chain
        // stochastic end to end.
        net.set_link_loss(li, 0.05);
        (net, ue, sp)
    }

    #[test]
    fn fast_and_slow_ping_walks_agree_exactly() {
        use crate::engine::{flow_seed, Flow};
        use roam_telemetry::TelemetryMode;
        // Same flows, same network build: telemetry off takes the
        // arithmetic fast path, Summary mode takes the calendar walk. The
        // draw sequences must be identical, so every outcome (including
        // which probes are lost) matches bit for bit.
        let run = |mode: Option<TelemetryMode>| {
            let (mut net, ue, sp) = spiky_chain();
            if let Some(m) = mode {
                net.set_telemetry_mode(m);
            }
            (0..200u32)
                .map(|i| {
                    let mut flow = Flow::open(flow_seed(7, &format!("eq/{i}")));
                    net.ping_flow(ue, sp, &mut flow).map(|r| r.rtt_ms.to_bits())
                })
                .collect::<Vec<_>>()
        };
        let fast = run(None);
        let slow = run(Some(TelemetryMode::Summary));
        assert_eq!(fast, slow);
        assert!(fast.iter().any(Option::is_some));
        assert!(fast.iter().any(Option::is_none), "loss must fire at 15%");
    }

    #[test]
    fn walk_reuse_never_reallocates_the_calendar() {
        use roam_telemetry::TelemetryMode;
        let (mut net, ue, sp, _) = chain();
        // Telemetry on forces the calendar walk (the allocation-prone
        // path) and books calendar depth per scheduled hop.
        net.set_telemetry_mode(TelemetryMode::Summary);
        // Warm-up: jittered arrival times land in different wheel slots,
        // and each slot's bucket is allocated lazily on first touch, so
        // capacity climbs until the walk's reachable slot set is covered.
        for _ in 0..400 {
            assert!(net.ping(ue, sp).is_some());
        }
        let cap = net.walk_queue.capacity();
        assert!(cap > 0, "warm walk must have reserved slots");
        // Steady state: reuse must be allocation-free, walk after walk.
        for _ in 0..100 {
            assert!(net.ping(ue, sp).is_some());
            assert!(net.rtt_ms(ue, sp).is_some());
            assert_eq!(
                net.walk_queue.capacity(),
                cap,
                "a walk grew the calendar: per-walk allocation"
            );
        }
        // The calendar-depth histogram confirms walks ran through the
        // event core one in-flight hop at a time: depth stays at 1.
        let snap = net.take_telemetry();
        let depth = &snap.hists[Hist::CalendarDepth as usize];
        assert!(depth.count() > 0, "calendar depth must be booked");
        assert_eq!(
            depth.sum(),
            depth.count() as f64,
            "walks keep exactly one scheduled arrival in flight"
        );
    }

    #[test]
    fn set_link_loss_invalidates_baked_plans() {
        let (mut net, ue, sp, _) = chain();
        let mut ok = 0;
        for _ in 0..50 {
            ok += u32::from(net.ping(ue, sp).is_some());
        }
        assert_eq!(ok, 50, "lossless chain never drops");
        // Route is cached now; cranking loss to 1.0 must still take effect.
        net.set_link_loss(0, 1.0);
        assert!(net.ping(ue, sp).is_none(), "stale plan kept the old loss");
        net.set_link_loss(0, 0.0);
        assert!(net.ping(ue, sp).is_some());
    }

    #[test]
    fn rtt_retries_through_loss() {
        let (mut net, ue, sp, _) = chain();
        // 20% per-traversal loss; a ping crosses the lossy link twice, so
        // each attempt succeeds w.p. 0.64 and 3 retries w.p. ~95%.
        net.set_link_loss(0, 0.2);
        let mut got = 0;
        for _ in 0..20 {
            if net.rtt_ms(ue, sp).is_some() {
                got += 1;
            }
        }
        assert!(got >= 15, "expected ~19 of 20 successes, got {got}/20");
    }
}
