//! IP-to-ASN/organisation/geolocation registry — the simulator's ipinfo.
//!
//! The paper's classification methodology (§3.1, §4.3) is: take a public IP,
//! look up its ASN and geolocation via WHOIS/ipinfo, then compare the ASN
//! against the b-MNO's (→ HR), the v-MNO's (→ LBO) or a third party's
//! (→ IHBO). This module provides that lookup service for simulated
//! addresses, with longest-prefix-match semantics and an allocator that
//! hands out host addresses from registered prefixes.

use crate::ip::Ipv4Net;
use roam_geo::City;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// An autonomous system number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Asn(pub u32);

impl std::fmt::Display for Asn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Well-known ASNs observed in the paper (Table 2, §4.3, §5.1) plus the
/// global service providers the campaigns measured against.
pub mod well_known {
    use super::Asn;

    /// Singtel — HR breakout for 5 eSIMs (Table 2).
    pub const SINGTEL: Asn = Asn(45143);
    /// Packet Host — IHBO PGWs in Amsterdam and Ashburn (Table 2).
    pub const PACKET_HOST: Asn = Asn(54825);
    /// OVH SAS — IHBO PGWs in Lille/Wattrelos (Table 2).
    pub const OVH: Asn = Asn(16276);
    /// Wireless Logic — IHBO PGWs in London (Table 2).
    pub const WIRELESS_LOGIC: Asn = Asn(51320);
    /// Webbing USA — IHBO PGWs for the ITA/USA eSIMs (Table 2).
    pub const WEBBING: Asn = Asn(393559);
    /// dtac Thailand — native eSIM PGWs (§4.3.2).
    pub const DTAC: Asn = Asn(9587);
    /// LG U+ Korea — native eSIM operator (§4.1).
    pub const LG_UPLUS: Asn = Asn(3786);
    /// PMCL / Jazz Pakistan — physical-SIM b-MNO in Pakistan (§5.1).
    pub const PMCL: Asn = Asn(45669);
    /// LINKdotNET — Jazz's transit (§4.3.3).
    pub const LINKDOTNET: Asn = Asn(23966);
    /// Transworld Associates — LINKdotNET's upstream (§4.3.3).
    pub const TRANSWORLD: Asn = Asn(38193);
    /// Telefónica de España — Spanish physical SIM (§4.3.3).
    pub const TELEFONICA: Asn = Asn(3352);
    /// Telefónica Global Solutions (§4.3.3).
    pub const TELEFONICA_GLOBAL: Asn = Asn(12956);
    /// Amazon — emnify's breakout in the validation experiment (§4.3.1).
    pub const AMAZON: Asn = Asn(16509);
    /// Google.
    pub const GOOGLE: Asn = Asn(15169);
    /// Facebook / Meta.
    pub const FACEBOOK: Asn = Asn(32934);
    /// Cloudflare.
    pub const CLOUDFLARE: Asn = Asn(13335);
    /// Microsoft (Ajax CDN).
    pub const MICROSOFT: Asn = Asn(8075);
    /// Fastly (serves jsDelivr / jQuery CDN endpoints in-sim).
    pub const FASTLY: Asn = Asn(54113);
}

/// What the registry knows about a prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixInfo {
    /// The registered prefix.
    pub net: Ipv4Net,
    /// Owning autonomous system.
    pub asn: Asn,
    /// Organisation name, as WHOIS would report it.
    pub org: String,
    /// City-level geolocation, as ipinfo would report it.
    pub city: City,
}

/// The registry: longest-prefix-match lookups plus host allocation.
#[derive(Debug, Default)]
pub struct IpRegistry {
    prefixes: Vec<PrefixInfo>,
    /// Next free host index per registered prefix (for allocation).
    next_host: HashMap<Ipv4Net, u64>,
}

impl IpRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a prefix. Later registrations may be more or less specific
    /// than earlier ones; lookup always prefers the longest match.
    pub fn register(&mut self, net: Ipv4Net, asn: Asn, org: &str, city: City) {
        self.prefixes.push(PrefixInfo {
            net,
            asn,
            org: org.to_string(),
            city,
        });
    }

    /// Longest-prefix-match lookup.
    #[must_use]
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<&PrefixInfo> {
        self.prefixes
            .iter()
            .filter(|p| p.net.contains(ip))
            .max_by_key(|p| p.net.prefix_len())
    }

    /// ASN of `ip`, if registered.
    #[must_use]
    pub fn asn_of(&self, ip: Ipv4Addr) -> Option<Asn> {
        self.lookup(ip).map(|p| p.asn)
    }

    /// Allocate the next unused host address in `net` (which must have been
    /// registered). Skips the network address itself so allocated hosts are
    /// always usable as endpoint identifiers.
    pub fn allocate(&mut self, net: Ipv4Net) -> Option<Ipv4Addr> {
        debug_assert!(
            self.prefixes.iter().any(|p| p.net == net),
            "allocating from unregistered prefix {net}"
        );
        let idx = self.next_host.entry(net).or_insert(1);
        let ip = net.nth(*idx)?;
        *idx += 1;
        Some(ip)
    }

    /// All registered prefixes (for reporting).
    #[must_use]
    pub fn prefixes(&self) -> &[PrefixInfo] {
        &self.prefixes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(s: &str) -> Ipv4Net {
        Ipv4Net::parse(s).unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn lookup_matches_registered_prefix() {
        let mut r = IpRegistry::new();
        r.register(
            net("202.166.126.0/24"),
            well_known::SINGTEL,
            "Singtel",
            City::Singapore,
        );
        let info = r.lookup(ip("202.166.126.42")).unwrap();
        assert_eq!(info.asn, well_known::SINGTEL);
        assert_eq!(info.org, "Singtel");
        assert_eq!(info.city, City::Singapore);
        assert!(r.lookup(ip("202.166.127.1")).is_none());
    }

    #[test]
    fn longest_prefix_wins() {
        let mut r = IpRegistry::new();
        r.register(
            net("54.0.0.0/8"),
            well_known::AMAZON,
            "Amazon",
            City::Ashburn,
        );
        r.register(
            net("54.82.0.0/16"),
            well_known::AMAZON,
            "Amazon EU",
            City::Dublin,
        );
        assert_eq!(r.lookup(ip("54.82.1.1")).unwrap().city, City::Dublin);
        assert_eq!(r.lookup(ip("54.1.1.1")).unwrap().city, City::Ashburn);
    }

    #[test]
    fn allocation_is_sequential_and_skips_network_address() {
        let mut r = IpRegistry::new();
        let n = net("192.0.2.0/29");
        r.register(n, Asn(64500), "test", City::Amsterdam);
        assert_eq!(r.allocate(n), Some(ip("192.0.2.1")));
        assert_eq!(r.allocate(n), Some(ip("192.0.2.2")));
        // /29 has 8 addresses; indices 1..=7 are allocatable.
        for _ in 0..5 {
            assert!(r.allocate(n).is_some());
        }
        assert_eq!(r.allocate(n), None, "prefix exhausted");
    }

    #[test]
    fn allocations_from_different_prefixes_are_independent() {
        let mut r = IpRegistry::new();
        let a = net("198.51.100.0/24");
        let b = net("203.0.113.0/24");
        r.register(a, Asn(64501), "a", City::London);
        r.register(b, Asn(64502), "b", City::Paris);
        assert_eq!(r.allocate(a), Some(ip("198.51.100.1")));
        assert_eq!(r.allocate(b), Some(ip("203.0.113.1")));
        assert_eq!(r.allocate(a), Some(ip("198.51.100.2")));
    }

    #[test]
    fn asn_display() {
        assert_eq!(well_known::PACKET_HOST.to_string(), "AS54825");
    }
}
