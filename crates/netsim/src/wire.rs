//! Wire formats: IPv4, UDP, ICMP, GTP-U and DNS.
//!
//! The simulator does not shuttle abstract records around — probes are
//! encoded to bytes, headers are mutated in flight (TTL decrement +
//! incremental checksum update at every router) and decoded back by the
//! receiver, in the smoltcp spirit of representation-faithful networking
//! code. Formats implemented:
//!
//! * **IPv4** (RFC 791): fixed 20-byte header, internet checksum;
//! * **UDP** (RFC 768): 8-byte header (checksum optional, as on the wire);
//! * **ICMP** (RFC 792): echo request/reply and time-exceeded, the two
//!   message types `mtr`-style traceroute needs;
//! * **GTP-U** (3GPP TS 29.281): the 8-byte mandatory header with a G-PDU
//!   payload — what the SGW↔PGW tunnels of §4.3 actually carry;
//! * **DNS** (RFC 1035, subset): one-question queries with A-record answers,
//!   enough for the resolver-discovery experiment of §5.1.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::net::Ipv4Addr;

/// Errors from decoding a wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the fixed header requires.
    Truncated,
    /// A version/type field had an unsupported value.
    BadField(&'static str),
    /// The internet checksum did not verify.
    BadChecksum,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated packet"),
            WireError::BadField(name) => write!(f, "bad field: {name}"),
            WireError::BadChecksum => write!(f, "checksum mismatch"),
        }
    }
}

impl std::error::Error for WireError {}

/// RFC 1071 internet checksum over `data` (pads odd length with zero).
#[must_use]
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

// ---------------------------------------------------------------------------
// IPv4
// ---------------------------------------------------------------------------

/// IP protocol numbers the simulator uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpProto {
    /// ICMP (1).
    Icmp,
    /// UDP (17).
    Udp,
    /// Anything else, kept verbatim.
    Other(u8),
}

impl IpProto {
    /// Protocol number.
    #[must_use]
    pub fn number(self) -> u8 {
        match self {
            IpProto::Icmp => 1,
            IpProto::Udp => 17,
            IpProto::Other(n) => n,
        }
    }

    /// From a protocol number.
    #[must_use]
    pub fn from_number(n: u8) -> Self {
        match n {
            1 => IpProto::Icmp,
            17 => IpProto::Udp,
            other => IpProto::Other(other),
        }
    }
}

/// A fixed (no-options) IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Differentiated services byte (kept for completeness).
    pub dscp_ecn: u8,
    /// Total length of header + payload in bytes.
    pub total_len: u16,
    /// Identification field.
    pub ident: u16,
    /// Time to live — the field traceroute plays with.
    pub ttl: u8,
    /// Payload protocol.
    pub proto: IpProto,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    /// Encoded size (no options).
    pub const LEN: usize = 20;

    /// Encode the header (checksum computed here) followed by nothing; the
    /// caller appends the payload.
    pub fn encode(&self, buf: &mut BytesMut) {
        let start = buf.len();
        buf.put_u8(0x45); // version 4, IHL 5
        buf.put_u8(self.dscp_ecn);
        buf.put_u16(self.total_len);
        buf.put_u16(self.ident);
        buf.put_u16(0); // flags/fragment: never fragmented in-sim
        buf.put_u8(self.ttl);
        buf.put_u8(self.proto.number());
        buf.put_u16(0); // checksum placeholder
        buf.put_slice(&self.src.octets());
        buf.put_slice(&self.dst.octets());
        let cksum = internet_checksum(&buf[start..start + Self::LEN]);
        buf[start + 10..start + 12].copy_from_slice(&cksum.to_be_bytes());
    }

    /// Decode and verify a header from the front of `data`.
    pub fn decode(data: &[u8]) -> Result<Self, WireError> {
        if data.len() < Self::LEN {
            return Err(WireError::Truncated);
        }
        let mut b = &data[..Self::LEN];
        let vihl = b.get_u8();
        if vihl != 0x45 {
            return Err(WireError::BadField("version/ihl"));
        }
        if internet_checksum(&data[..Self::LEN]) != 0 {
            return Err(WireError::BadChecksum);
        }
        let dscp_ecn = b.get_u8();
        let total_len = b.get_u16();
        let ident = b.get_u16();
        let _flags_frag = b.get_u16();
        let ttl = b.get_u8();
        let proto = IpProto::from_number(b.get_u8());
        let _cksum = b.get_u16();
        let src = Ipv4Addr::new(b.get_u8(), b.get_u8(), b.get_u8(), b.get_u8());
        let dst = Ipv4Addr::new(b.get_u8(), b.get_u8(), b.get_u8(), b.get_u8());
        Ok(Ipv4Header {
            dscp_ecn,
            total_len,
            ident,
            ttl,
            proto,
            src,
            dst,
        })
    }

    /// Decrement the TTL of an encoded packet in place, recomputing the
    /// checksum. Returns the new TTL, or an error if the packet is not a
    /// valid IPv4 header. This is what every simulated router does.
    pub fn decrement_ttl(packet: &mut [u8]) -> Result<u8, WireError> {
        let hdr = Self::decode(packet)?;
        if hdr.ttl == 0 {
            return Err(WireError::BadField("ttl already zero"));
        }
        let new_ttl = hdr.ttl - 1;
        packet[8] = new_ttl;
        packet[10] = 0;
        packet[11] = 0;
        let cksum = internet_checksum(&packet[..Self::LEN]);
        packet[10..12].copy_from_slice(&cksum.to_be_bytes());
        Ok(new_ttl)
    }
}

// ---------------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------------

/// A UDP header (checksum left zero, i.e. "not computed", as IPv4 allows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Header + payload length in bytes.
    pub len: u16,
}

impl UdpHeader {
    /// Encoded size.
    pub const LEN: usize = 8;

    /// Encode the header.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u16(self.len);
        buf.put_u16(0);
    }

    /// Decode from the front of `data`.
    pub fn decode(mut data: &[u8]) -> Result<Self, WireError> {
        if data.len() < Self::LEN {
            return Err(WireError::Truncated);
        }
        let src_port = data.get_u16();
        let dst_port = data.get_u16();
        let len = data.get_u16();
        if (len as usize) < Self::LEN {
            return Err(WireError::BadField("udp length"));
        }
        Ok(UdpHeader {
            src_port,
            dst_port,
            len,
        })
    }
}

// ---------------------------------------------------------------------------
// ICMP
// ---------------------------------------------------------------------------

/// The ICMP messages the simulator speaks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IcmpMessage {
    /// Echo request (type 8): ident, sequence, payload.
    EchoRequest {
        ident: u16,
        seq: u16,
        payload: Bytes,
    },
    /// Echo reply (type 0): ident, sequence, payload.
    EchoReply {
        ident: u16,
        seq: u16,
        payload: Bytes,
    },
    /// Time exceeded in transit (type 11 code 0), quoting the offending
    /// packet's IP header + first 8 payload bytes, as real routers do.
    TimeExceeded { original: Bytes },
}

impl IcmpMessage {
    /// Encode to bytes (checksum included).
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Append the encoded message (checksum included) to `buf`. The
    /// allocation-free path: callers with a reusable scratch buffer
    /// (e.g. the packet walker) encode without touching the heap.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        let start = buf.len();
        match self {
            IcmpMessage::EchoRequest {
                ident,
                seq,
                payload,
            } => {
                buf.put_u8(8);
                buf.put_u8(0);
                buf.put_u16(0);
                buf.put_u16(*ident);
                buf.put_u16(*seq);
                buf.put_slice(payload);
            }
            IcmpMessage::EchoReply {
                ident,
                seq,
                payload,
            } => {
                buf.put_u8(0);
                buf.put_u8(0);
                buf.put_u16(0);
                buf.put_u16(*ident);
                buf.put_u16(*seq);
                buf.put_slice(payload);
            }
            IcmpMessage::TimeExceeded { original } => {
                buf.put_u8(11);
                buf.put_u8(0);
                buf.put_u16(0);
                buf.put_u32(0); // unused
                let quote_len = original.len().min(Ipv4Header::LEN + 8);
                buf.put_slice(&original[..quote_len]);
            }
        }
        let cksum = internet_checksum(&buf[start..]);
        buf[start + 2..start + 4].copy_from_slice(&cksum.to_be_bytes());
    }

    /// Decode and verify.
    pub fn decode(data: &[u8]) -> Result<Self, WireError> {
        if data.len() < 8 {
            return Err(WireError::Truncated);
        }
        if internet_checksum(data) != 0 {
            return Err(WireError::BadChecksum);
        }
        let ty = data[0];
        let code = data[1];
        match (ty, code) {
            (8, 0) | (0, 0) => {
                let ident = u16::from_be_bytes([data[4], data[5]]);
                let seq = u16::from_be_bytes([data[6], data[7]]);
                let payload = Bytes::copy_from_slice(&data[8..]);
                Ok(if ty == 8 {
                    IcmpMessage::EchoRequest {
                        ident,
                        seq,
                        payload,
                    }
                } else {
                    IcmpMessage::EchoReply {
                        ident,
                        seq,
                        payload,
                    }
                })
            }
            (11, 0) => Ok(IcmpMessage::TimeExceeded {
                original: Bytes::copy_from_slice(&data[8..]),
            }),
            _ => Err(WireError::BadField("icmp type/code")),
        }
    }
}

// ---------------------------------------------------------------------------
// GTP-U
// ---------------------------------------------------------------------------

/// A GTP-U (GPRS Tunneling Protocol, user plane) header, 3GPP TS 29.281.
///
/// The mandatory 8-byte form: version 1, protocol type GTP, message type
/// G-PDU (0xFF), payload length, and the Tunnel Endpoint Identifier that the
/// SGW and PGW agreed on. Roaming user traffic between the v-MNO and the
/// breakout PGW — the "private path" of the paper — travels inside these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GtpuHeader {
    /// Length of the payload following this header, in bytes.
    pub payload_len: u16,
    /// Tunnel endpoint identifier.
    pub teid: u32,
}

impl GtpuHeader {
    /// Encoded size (no optional fields).
    pub const LEN: usize = 8;
    /// G-PDU message type.
    pub const MSG_GPDU: u8 = 0xFF;

    /// Encode the header.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(0x30); // version 1, PT=1 (GTP), no optional fields
        buf.put_u8(Self::MSG_GPDU);
        buf.put_u16(self.payload_len);
        buf.put_u32(self.teid);
    }

    /// Decode from the front of `data`.
    pub fn decode(mut data: &[u8]) -> Result<Self, WireError> {
        if data.len() < Self::LEN {
            return Err(WireError::Truncated);
        }
        let flags = data.get_u8();
        if flags >> 5 != 1 {
            return Err(WireError::BadField("gtp version"));
        }
        if flags & 0x10 == 0 {
            return Err(WireError::BadField("gtp protocol type"));
        }
        let msg = data.get_u8();
        if msg != Self::MSG_GPDU {
            return Err(WireError::BadField("gtp message type"));
        }
        let payload_len = data.get_u16();
        let teid = data.get_u32();
        Ok(GtpuHeader { payload_len, teid })
    }

    /// Encapsulate an inner (already encoded) IP packet.
    #[must_use]
    pub fn encapsulate(teid: u32, inner: &[u8]) -> Bytes {
        assert!(
            inner.len() <= u16::MAX as usize,
            "GTP-U payload length field is 16 bits; fragment before tunnelling"
        );
        let mut buf = BytesMut::with_capacity(Self::LEN + inner.len());
        GtpuHeader {
            payload_len: inner.len() as u16,
            teid,
        }
        .encode(&mut buf);
        buf.put_slice(inner);
        buf.freeze()
    }

    /// Strip the tunnel header, returning `(header, inner packet)`.
    pub fn decapsulate(data: &[u8]) -> Result<(GtpuHeader, Bytes), WireError> {
        let hdr = Self::decode(data)?;
        let inner = data
            .get(Self::LEN..Self::LEN + hdr.payload_len as usize)
            .ok_or(WireError::Truncated)?;
        Ok((hdr, Bytes::copy_from_slice(inner)))
    }
}

// ---------------------------------------------------------------------------
// DNS (subset)
// ---------------------------------------------------------------------------

/// A DNS message restricted to the shapes the simulator needs: a single
/// A-type question, optionally answered with A records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsMessage {
    /// Transaction ID.
    pub id: u16,
    /// True for a response, false for a query.
    pub is_response: bool,
    /// The queried name (lower-case, dot-separated labels).
    pub qname: String,
    /// A-record answers (responses only).
    pub answers: Vec<Ipv4Addr>,
}

impl DnsMessage {
    /// Build a query for `qname`.
    #[must_use]
    pub fn query(id: u16, qname: &str) -> Self {
        DnsMessage {
            id,
            is_response: false,
            qname: qname.to_ascii_lowercase(),
            answers: vec![],
        }
    }

    /// Build the response to `query` carrying `answers`.
    #[must_use]
    pub fn response(query: &DnsMessage, answers: Vec<Ipv4Addr>) -> Self {
        DnsMessage {
            id: query.id,
            is_response: true,
            qname: query.qname.clone(),
            answers,
        }
    }

    /// Encode (RFC 1035 header + QD + AN sections; no compression).
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u16(self.id);
        // QR bit + RD; response also sets RA.
        buf.put_u16(if self.is_response { 0x8180 } else { 0x0100 });
        buf.put_u16(1); // QDCOUNT
        buf.put_u16(self.answers.len() as u16); // ANCOUNT
        buf.put_u16(0); // NSCOUNT
        buf.put_u16(0); // ARCOUNT
        encode_name(&mut buf, &self.qname);
        buf.put_u16(1); // QTYPE A
        buf.put_u16(1); // QCLASS IN
        for a in &self.answers {
            encode_name(&mut buf, &self.qname);
            buf.put_u16(1); // TYPE A
            buf.put_u16(1); // CLASS IN
            buf.put_u32(0); // TTL 0: the paper exploits NextDNS's zero TTL
            buf.put_u16(4); // RDLENGTH
            buf.put_slice(&a.octets());
        }
        buf.freeze()
    }

    /// Decode a message previously produced by [`DnsMessage::encode`].
    pub fn decode(data: &[u8]) -> Result<Self, WireError> {
        let mut b = data;
        if b.len() < 12 {
            return Err(WireError::Truncated);
        }
        let id = b.get_u16();
        let flags = b.get_u16();
        let qd = b.get_u16();
        let an = b.get_u16();
        let _ns = b.get_u16();
        let _ar = b.get_u16();
        if qd != 1 {
            return Err(WireError::BadField("qdcount"));
        }
        let qname = decode_name(&mut b)?;
        if b.len() < 4 {
            return Err(WireError::Truncated);
        }
        let qtype = b.get_u16();
        let _qclass = b.get_u16();
        if qtype != 1 {
            return Err(WireError::BadField("qtype"));
        }
        let mut answers = Vec::with_capacity(an as usize);
        for _ in 0..an {
            let _name = decode_name(&mut b)?;
            if b.len() < 10 {
                return Err(WireError::Truncated);
            }
            let _ty = b.get_u16();
            let _cl = b.get_u16();
            let _ttl = b.get_u32();
            let rdlen = b.get_u16();
            if rdlen != 4 {
                return Err(WireError::BadField("rdlength"));
            }
            if b.len() < 4 {
                return Err(WireError::Truncated);
            }
            answers.push(Ipv4Addr::new(
                b.get_u8(),
                b.get_u8(),
                b.get_u8(),
                b.get_u8(),
            ));
        }
        Ok(DnsMessage {
            id,
            is_response: flags & 0x8000 != 0,
            qname,
            answers,
        })
    }
}

fn encode_name(buf: &mut BytesMut, name: &str) {
    for label in name.split('.').filter(|l| !l.is_empty()) {
        assert!(label.len() < 64, "label too long: {label}");
        buf.put_u8(label.len() as u8);
        buf.put_slice(label.as_bytes());
    }
    buf.put_u8(0);
}

fn decode_name(b: &mut &[u8]) -> Result<String, WireError> {
    let mut name = String::new();
    loop {
        if b.is_empty() {
            return Err(WireError::Truncated);
        }
        let len = b.get_u8() as usize;
        if len == 0 {
            break;
        }
        if len >= 64 {
            return Err(WireError::BadField("label length"));
        }
        if b.len() < len {
            return Err(WireError::Truncated);
        }
        if !name.is_empty() {
            name.push('.');
        }
        let label =
            std::str::from_utf8(&b[..len]).map_err(|_| WireError::BadField("label utf8"))?;
        name.push_str(label);
        b.advance(len);
    }
    Ok(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn checksum_of_rfc1071_example() {
        // Classic example: 00 01 f2 03 f4 f5 f6 f7 -> checksum 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), 0x220d);
    }

    #[test]
    fn checksum_odd_length_pads() {
        let even = internet_checksum(&[0xAB, 0xCD, 0x12, 0x00]);
        let odd = internet_checksum(&[0xAB, 0xCD, 0x12]);
        assert_eq!(even, odd);
    }

    fn sample_ipv4() -> Ipv4Header {
        Ipv4Header {
            dscp_ecn: 0,
            total_len: 84,
            ident: 0x1234,
            ttl: 64,
            proto: IpProto::Icmp,
            src: ip("10.0.0.2"),
            dst: ip("8.8.8.8"),
        }
    }

    #[test]
    fn ipv4_round_trip() {
        let hdr = sample_ipv4();
        let mut buf = BytesMut::new();
        hdr.encode(&mut buf);
        assert_eq!(buf.len(), Ipv4Header::LEN);
        let back = Ipv4Header::decode(&buf).unwrap();
        assert_eq!(back, hdr);
    }

    #[test]
    fn ipv4_checksum_verifies_and_detects_corruption() {
        let mut buf = BytesMut::new();
        sample_ipv4().encode(&mut buf);
        assert_eq!(internet_checksum(&buf), 0, "valid header sums to zero");
        let mut bad = buf.to_vec();
        bad[12] ^= 0xFF; // flip a source-address byte
        assert_eq!(
            Ipv4Header::decode(&bad).unwrap_err(),
            WireError::BadChecksum
        );
    }

    #[test]
    fn ttl_decrement_keeps_checksum_valid() {
        let mut buf = BytesMut::new();
        sample_ipv4().encode(&mut buf);
        let mut pkt = buf.to_vec();
        for expect in (0..64).rev() {
            let got = Ipv4Header::decrement_ttl(&mut pkt).unwrap();
            assert_eq!(got, expect);
            assert_eq!(Ipv4Header::decode(&pkt).unwrap().ttl, expect);
        }
        // TTL 0: further decrement is an error.
        assert!(Ipv4Header::decrement_ttl(&mut pkt).is_err());
    }

    #[test]
    fn udp_round_trip_and_bad_length() {
        let h = UdpHeader {
            src_port: 33434,
            dst_port: 53,
            len: 36,
        };
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(UdpHeader::decode(&buf).unwrap(), h);
        let bad = [0u8, 1, 0, 53, 0, 3, 0, 0]; // len 3 < 8
        assert_eq!(
            UdpHeader::decode(&bad).unwrap_err(),
            WireError::BadField("udp length")
        );
    }

    #[test]
    fn icmp_echo_round_trip() {
        let msg = IcmpMessage::EchoRequest {
            ident: 77,
            seq: 3,
            payload: Bytes::from_static(b"roamsim-probe"),
        };
        let enc = msg.encode();
        assert_eq!(IcmpMessage::decode(&enc).unwrap(), msg);
    }

    #[test]
    fn icmp_time_exceeded_quotes_original() {
        let mut buf = BytesMut::new();
        sample_ipv4().encode(&mut buf);
        buf.put_slice(b"12345678-and-more-than-eight");
        let te = IcmpMessage::TimeExceeded {
            original: buf.clone().freeze(),
        };
        let enc = te.encode();
        match IcmpMessage::decode(&enc).unwrap() {
            IcmpMessage::TimeExceeded { original } => {
                // Quote limited to IP header + 8 bytes, per RFC 792.
                assert_eq!(original.len(), Ipv4Header::LEN + 8);
                let quoted = Ipv4Header::decode(&original).unwrap();
                assert_eq!(quoted.src, ip("10.0.0.2"));
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn icmp_rejects_corruption() {
        let enc = IcmpMessage::EchoReply {
            ident: 1,
            seq: 2,
            payload: Bytes::new(),
        }
        .encode();
        let mut bad = enc.to_vec();
        bad[4] ^= 0x01;
        assert_eq!(
            IcmpMessage::decode(&bad).unwrap_err(),
            WireError::BadChecksum
        );
    }

    #[test]
    fn gtpu_encapsulation_round_trip() {
        let mut inner = BytesMut::new();
        sample_ipv4().encode(&mut inner);
        let tunnel = GtpuHeader::encapsulate(0xDEADBEEF, &inner);
        assert_eq!(tunnel.len(), GtpuHeader::LEN + Ipv4Header::LEN);
        let (hdr, payload) = GtpuHeader::decapsulate(&tunnel).unwrap();
        assert_eq!(hdr.teid, 0xDEADBEEF);
        assert_eq!(hdr.payload_len as usize, Ipv4Header::LEN);
        assert_eq!(&payload[..], &inner[..]);
    }

    #[test]
    fn gtpu_rejects_wrong_version_and_type() {
        let mut buf = BytesMut::new();
        GtpuHeader {
            payload_len: 0,
            teid: 1,
        }
        .encode(&mut buf);
        let mut v = buf.to_vec();
        v[0] = 0x50; // version 2
        assert!(GtpuHeader::decode(&v).is_err());
        v[0] = 0x30;
        v[1] = 0x01; // echo request, unsupported
        assert!(GtpuHeader::decode(&v).is_err());
    }

    #[test]
    fn dns_query_round_trip() {
        let q = DnsMessage::query(0xBEEF, "Google.COM");
        assert_eq!(
            q.qname, "google.com",
            "names are canonicalised to lower case"
        );
        let enc = q.encode();
        let back = DnsMessage::decode(&enc).unwrap();
        assert_eq!(back, q);
        assert!(!back.is_response);
    }

    #[test]
    fn dns_response_round_trip_with_answers() {
        let q = DnsMessage::query(7, "cdn.example.net");
        let r = DnsMessage::response(&q, vec![ip("93.184.216.34"), ip("93.184.216.35")]);
        let back = DnsMessage::decode(&r.encode()).unwrap();
        assert!(back.is_response);
        assert_eq!(back.id, 7);
        assert_eq!(back.answers.len(), 2);
        assert_eq!(back.answers[0], ip("93.184.216.34"));
    }

    #[test]
    fn dns_decode_rejects_truncation() {
        let enc = DnsMessage::query(1, "a.b").encode();
        for cut in [0, 5, 11, enc.len() - 1] {
            assert!(DnsMessage::decode(&enc[..cut]).is_err(), "cut at {cut}");
        }
    }
}
