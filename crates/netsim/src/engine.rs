//! The flow engine: per-flow RNG streams and the [`Transport`] layer.
//!
//! Every measurement the campaigns run — a ping train, a traceroute, a bulk
//! download — is a *flow*: a stream of packets whose randomness (jitter,
//! loss, server think time) must not depend on what other flows ran before
//! it. A [`Flow`] owns a private RNG derived from `(master_seed, flow_key)`
//! with [`flow_seed`] — the same FNV-1a + SplitMix64 scheme the parallel
//! shard runner uses for shard seeds — so inserting, removing or reordering
//! measurements never perturbs another flow's stream. That property is what
//! makes campaign output a pure function of *what* was measured, and is the
//! precondition for intra-shard concurrency.
//!
//! Bulk-transfer timing sits behind the [`Transport`] trait. Two
//! implementations exist:
//!
//! * [`ClosedFormTransport`] — the analytic model in
//!   [`crate::throughput::transfer_time_ms`] (handshake, slow start,
//!   policy/Mathis-capped steady state). The default.
//! * [`EngineSteppedTransport`] — the same TCP phases stepped through a
//!   discrete-event calendar ([`EventQueue`]), one event per congestion
//!   window. Numerically it agrees with the closed form to sub-microsecond
//!   rounding (the calendar quantises to [`SimTime`] nanoseconds); what it
//!   buys is a real clock that future work can interleave with competing
//!   flows for congestion coupling.
//!
//! Select with `ROAM_TRANSPORT=engine` (anything else, or unset, means
//! closed form) via [`TransportKind::from_env`], or programmatically with
//! [`TransportKind::override_transport`]; measurement code should resolve
//! the effective choice through [`TransportKind::current`].

use crate::event::{CalendarKind, EventQueue};
use crate::throughput::{mathis_cap_mbps, TransferSpec, INIT_CWND_SEGMENTS, MSS};
use crate::time::SimTime;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Derive a flow's RNG seed from the master seed and its stable key.
///
/// The key names *what* the flow measures (`"flow/s3/…/ookla/0"`), so the
/// stream a flow draws from is a pure function of identity, never of
/// execution order. FNV-1a absorbs the key and the master seed; a
/// SplitMix64 finalizer scrambles the result so related keys (and
/// low-entropy master seeds) land far apart in seed space. This is the
/// same derivation the shard runner uses, so shard and flow streams live
/// in one keyed-seed universe.
#[must_use]
pub fn flow_seed(master: u64, key: &str) -> u64 {
    let mut h = FNV_OFFSET;
    fnv_absorb(&mut h, key.as_bytes());
    fnv_absorb(&mut h, &master.to_le_bytes());
    splitmix(h)
}

/// [`flow_seed`] over a *formatted* key without materialising the string:
/// `flow_seed_args(m, format_args!("fleet/u{uid}"))` hashes the formatted
/// bytes as they are produced and returns exactly
/// `flow_seed(m, &format!("fleet/u{uid}"))`. The hot loops (one seed per
/// user, per session, per fault entity) derive millions of seeds; this
/// keeps them allocation-free.
#[must_use]
pub fn flow_seed_args(master: u64, key: fmt::Arguments<'_>) -> u64 {
    struct Fnv(u64);
    impl fmt::Write for Fnv {
        fn write_str(&mut self, s: &str) -> fmt::Result {
            fnv_absorb(&mut self.0, s.as_bytes());
            Ok(())
        }
    }
    let mut w = Fnv(FNV_OFFSET);
    fmt::Write::write_fmt(&mut w, key).expect("hashing formatter cannot fail");
    let mut h = w.0;
    fnv_absorb(&mut h, &master.to_le_bytes());
    splitmix(h)
}

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

#[inline]
fn fnv_absorb(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h = (*h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
    }
}

#[inline]
fn splitmix(h: u64) -> u64 {
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Identity of a flow: the seed it was opened with. Two flows with the same
/// id draw identical streams — which is exactly the property the
/// order-insensitivity tests pin down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// A flow: a private, order-insensitive RNG stream for one measurement.
#[derive(Debug, Clone)]
pub struct Flow {
    id: FlowId,
    rng: SmallRng,
}

impl Flow {
    /// Open a flow from a derived seed (see [`flow_seed`]).
    #[must_use]
    pub fn open(seed: u64) -> Self {
        Flow {
            id: FlowId(seed),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The flow's identity.
    #[must_use]
    pub fn id(&self) -> FlowId {
        self.id
    }

    /// The flow's private RNG stream.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// How bulk transfers over a path are timed. Measurement clients never call
/// the throughput formulas directly — they hand a [`TransferSpec`] to
/// whichever transport [`TransportKind::from_env`] selected.
pub trait Transport: Sync {
    /// Completion time of the transfer described by `spec`, milliseconds.
    fn transfer_ms(&self, spec: &TransferSpec) -> f64;

    /// Completion times for a batch of transfers, appended to `out` in
    /// spec order. Semantically identical to calling
    /// [`transfer_ms`](Self::transfer_ms) per spec; implementations
    /// override it to turn the loop into a tight kernel with the
    /// per-call setup (trait dispatch, calendar rewind) hoisted out —
    /// the fleet runner times every transfer a user's session plan
    /// produced through this in one call.
    fn transfer_ms_batch(&self, specs: &[TransferSpec], out: &mut Vec<f64>) {
        out.reserve(specs.len());
        for spec in specs {
            out.push(self.transfer_ms(spec));
        }
    }

    /// Short name for logs and benches.
    fn name(&self) -> &'static str;

    /// Achieved goodput in Mbps for `spec` under this transport.
    fn goodput_mbps(&self, spec: &TransferSpec) -> f64 {
        let ms = self.transfer_ms(spec);
        if ms <= 0.0 {
            return 0.0;
        }
        spec.bytes * 8.0 / 1e6 / (ms / 1e3)
    }
}

/// The analytic transfer-time model (default).
#[derive(Debug, Clone, Copy, Default)]
pub struct ClosedFormTransport;

impl Transport for ClosedFormTransport {
    fn transfer_ms(&self, spec: &TransferSpec) -> f64 {
        crate::throughput::transfer_time_ms(spec)
    }

    fn name(&self) -> &'static str {
        "closed-form"
    }
}

/// What the transfer calendar is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransferEvent {
    /// Protocol setup (handshake RTTs) finished; first window may go out.
    SetupDone,
    /// A slow-start window was acknowledged; the next may go out.
    WindowAcked,
    /// The last byte cleared the path.
    Done,
}

/// The same TCP phases as the closed form, stepped through an event
/// calendar: one [`TransferEvent`] per congestion window, clock advanced by
/// popping the heap rather than by accumulating a float.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineSteppedTransport;

thread_local! {
    /// The per-thread transfer calendar. A wheel-backed queue owns ~3 KiB
    /// of slot bookkeeping, far too much to build per transfer; rewinding
    /// a persistent queue keeps every allocation across the millions of
    /// transfers a fleet shard times.
    static TRANSFER_CALENDAR: RefCell<EventQueue<TransferEvent>> =
        RefCell::new(EventQueue::new());
}

impl EngineSteppedTransport {
    /// Step one transfer on a rewound calendar. Factored out so the batch
    /// path borrows the thread-local queue once for the whole batch.
    fn step(q: &mut EventQueue<TransferEvent>, spec: &TransferSpec) -> f64 {
        assert!(spec.bytes >= 0.0 && spec.rtt_ms > 0.0 && spec.policy_rate_mbps > 0.0);
        let streams = f64::from(spec.parallel.max(1));
        let effective_mbps = spec
            .policy_rate_mbps
            .min(streams * mathis_cap_mbps(spec.rtt_ms, spec.loss));
        let rate_bytes_per_ms = effective_mbps * 1e6 / 8.0 / 1e3;
        let bdp_bytes = rate_bytes_per_ms * spec.rtt_ms;

        q.schedule(
            SimTime::from_ms(spec.setup_rtts * spec.rtt_ms),
            TransferEvent::SetupDone,
        );
        let mut remaining = spec.bytes;
        let mut cwnd = streams * INIT_CWND_SEGMENTS * MSS;
        while let Some((_, ev)) = q.pop() {
            match ev {
                TransferEvent::SetupDone | TransferEvent::WindowAcked => {
                    if remaining > 0.0 && cwnd < bdp_bytes {
                        // Slow start: emit one window, double on the ack.
                        let sent = cwnd.min(remaining);
                        remaining -= sent;
                        if remaining <= 0.0 {
                            q.schedule_after(
                                SimTime::from_ms(spec.rtt_ms / 2.0 + sent / rate_bytes_per_ms),
                                TransferEvent::Done,
                            );
                        } else {
                            cwnd *= 2.0;
                            q.schedule_after(
                                SimTime::from_ms(spec.rtt_ms),
                                TransferEvent::WindowAcked,
                            );
                        }
                    } else {
                        // Pipe full: drain the rest at the effective rate.
                        q.schedule_after(
                            SimTime::from_ms(spec.rtt_ms / 2.0 + remaining / rate_bytes_per_ms),
                            TransferEvent::Done,
                        );
                    }
                }
                TransferEvent::Done => break,
            }
        }
        let ms = q.now().as_ms();
        q.rewind();
        ms
    }

    /// Borrow the thread-local calendar, rebuilt if the process-wide
    /// calendar kind changed since this thread last timed a transfer.
    fn with_calendar<R>(f: impl FnOnce(&mut EventQueue<TransferEvent>) -> R) -> R {
        TRANSFER_CALENDAR.with(|cell| {
            let mut q = cell.borrow_mut();
            if q.kind() != CalendarKind::current() {
                *q = EventQueue::new();
            }
            f(&mut q)
        })
    }
}

impl Transport for EngineSteppedTransport {
    fn transfer_ms(&self, spec: &TransferSpec) -> f64 {
        Self::with_calendar(|q| Self::step(q, spec))
    }

    fn transfer_ms_batch(&self, specs: &[TransferSpec], out: &mut Vec<f64>) {
        Self::with_calendar(|q| {
            out.reserve(specs.len());
            for spec in specs {
                out.push(Self::step(q, spec));
            }
        });
    }

    fn name(&self) -> &'static str {
        "engine"
    }
}

/// Which [`Transport`] a run uses, selected by the `ROAM_TRANSPORT`
/// environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// The analytic model — the default.
    #[default]
    ClosedForm,
    /// The event-calendar transport.
    Engine,
}

impl TransportKind {
    /// Read the kind from `ROAM_TRANSPORT`: `engine` selects the stepped
    /// transport; unset, empty, or anything else means closed form. Read
    /// on every call (never cached) so tests can flip it mid-process.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("ROAM_TRANSPORT") {
            Ok(v) if v.trim() == "engine" => TransportKind::Engine,
            _ => TransportKind::ClosedForm,
        }
    }

    /// Install (or clear, with `None`) a process-wide override that takes
    /// precedence over `ROAM_TRANSPORT`. Returns the previous override so
    /// callers can restore it — the campaign runner's `.transport(..)`
    /// builder uses this with a restore guard.
    pub fn override_transport(kind: Option<TransportKind>) -> Option<TransportKind> {
        let encode = |k: Option<TransportKind>| match k {
            None => 0u8,
            Some(TransportKind::ClosedForm) => 1,
            Some(TransportKind::Engine) => 2,
        };
        let prev = TRANSPORT_OVERRIDE.swap(encode(kind), Ordering::SeqCst);
        match prev {
            1 => Some(TransportKind::ClosedForm),
            2 => Some(TransportKind::Engine),
            _ => None,
        }
    }

    /// The effective kind for this call: the process-wide override if one
    /// is installed, otherwise whatever `ROAM_TRANSPORT` says.
    #[must_use]
    pub fn current() -> Self {
        match TRANSPORT_OVERRIDE.load(Ordering::SeqCst) {
            1 => TransportKind::ClosedForm,
            2 => TransportKind::Engine,
            _ => TransportKind::from_env(),
        }
    }

    /// The transport this kind names.
    #[must_use]
    pub fn transport(self) -> &'static dyn Transport {
        static CLOSED: ClosedFormTransport = ClosedFormTransport;
        static ENGINE: EngineSteppedTransport = EngineSteppedTransport;
        match self {
            TransportKind::ClosedForm => &CLOSED,
            TransportKind::Engine => &ENGINE,
        }
    }
}

/// 0 = no override (follow the env), 1 = closed form, 2 = engine.
static TRANSPORT_OVERRIDE: AtomicU8 = AtomicU8::new(0);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn flow_seed_is_stable_and_key_sensitive() {
        assert_eq!(flow_seed(7, "flow/a"), flow_seed(7, "flow/a"));
        assert_ne!(flow_seed(7, "flow/a"), flow_seed(7, "flow/b"));
        assert_ne!(flow_seed(7, "flow/a"), flow_seed(8, "flow/a"));
        // SplitMix finalisation spreads adjacent masters.
        assert!(flow_seed(1, "x").abs_diff(flow_seed(2, "x")) > 1 << 32);
    }

    #[test]
    fn flow_seed_args_matches_the_string_derivation() {
        for (master, uid, li) in [(7u64, 0u64, 0usize), (123, 42, 3), (u64::MAX, 999_999, 1)] {
            assert_eq!(
                flow_seed_args(master, format_args!("fleet/u{uid}/l{li}/s0")),
                flow_seed(master, &format!("fleet/u{uid}/l{li}/s0")),
            );
        }
        assert_eq!(
            flow_seed_args(9, format_args!("flow/a")),
            flow_seed(9, "flow/a")
        );
    }

    #[test]
    fn batch_transfer_times_match_single_calls() {
        let specs = [
            spec(30_000.0, 400.0, 20.0, 0.0, 1),
            spec(50e6, 40.0, 10.0, 0.0, 1),
            spec(50e6, 80.0, 100.0, 0.002, 8),
            spec(0.0, 100.0, 10.0, 0.0, 1),
        ];
        for transport in [
            TransportKind::ClosedForm.transport(),
            TransportKind::Engine.transport(),
        ] {
            let mut batch = Vec::new();
            transport.transfer_ms_batch(&specs, &mut batch);
            let singles: Vec<f64> = specs.iter().map(|s| transport.transfer_ms(s)).collect();
            assert_eq!(batch, singles, "{}", transport.name());
        }
    }

    #[test]
    fn same_flow_id_same_stream() {
        let mut a = Flow::open(flow_seed(9, "flow/s0/ookla/3"));
        let mut b = Flow::open(flow_seed(9, "flow/s0/ookla/3"));
        assert_eq!(a.id(), b.id());
        for _ in 0..64 {
            assert_eq!(a.rng().gen::<u64>(), b.rng().gen::<u64>());
        }
        let mut c = Flow::open(flow_seed(9, "flow/s0/ookla/4"));
        assert_ne!(a.rng().gen::<u64>(), c.rng().gen::<u64>());
    }

    fn spec(bytes: f64, rtt: f64, rate: f64, loss: f64, parallel: u32) -> TransferSpec {
        TransferSpec {
            bytes,
            rtt_ms: rtt,
            policy_rate_mbps: rate,
            loss,
            setup_rtts: 3.0,
            parallel,
        }
    }

    #[test]
    fn engine_agrees_with_closed_form() {
        // The calendar quantises to nanoseconds; agreement must hold to
        // well under a microsecond across both regimes (RTT-bound small
        // objects and rate-bound bulk) and with loss/parallelism in play.
        let specs = [
            spec(30_000.0, 400.0, 20.0, 0.0, 1),
            spec(50e6, 40.0, 10.0, 0.0, 1),
            spec(50e6, 80.0, 100.0, 0.002, 8),
            spec(25e6, 361.0, 12.0, 0.01, 6),
            spec(0.0, 100.0, 10.0, 0.0, 1),
        ];
        for s in &specs {
            let closed = ClosedFormTransport.transfer_ms(s);
            let engine = EngineSteppedTransport.transfer_ms(s);
            assert!(
                (closed - engine).abs() < 1e-3,
                "closed={closed} engine={engine} for {s:?}"
            );
            let gc = ClosedFormTransport.goodput_mbps(s);
            let ge = EngineSteppedTransport.goodput_mbps(s);
            assert!((gc - ge).abs() < 1e-6 * gc.max(1.0), "{gc} vs {ge}");
        }
    }

    #[test]
    fn transport_kind_reads_env_per_call() {
        std::env::remove_var("ROAM_TRANSPORT");
        assert_eq!(TransportKind::from_env(), TransportKind::ClosedForm);
        std::env::set_var("ROAM_TRANSPORT", "engine");
        assert_eq!(TransportKind::from_env(), TransportKind::Engine);
        std::env::set_var("ROAM_TRANSPORT", "closed");
        assert_eq!(TransportKind::from_env(), TransportKind::ClosedForm);
        std::env::remove_var("ROAM_TRANSPORT");
        assert_eq!(
            TransportKind::transport(TransportKind::Engine).name(),
            "engine"
        );
        assert_eq!(
            TransportKind::transport(TransportKind::ClosedForm).name(),
            "closed-form"
        );
    }

    #[test]
    fn override_beats_env_while_installed() {
        // Only assert while the override is pinned: other tests in this
        // binary mutate ROAM_TRANSPORT concurrently, so the env-following
        // path is exercised in transport_kind_reads_env_per_call, not here.
        let prev = TransportKind::override_transport(Some(TransportKind::Engine));
        assert_eq!(TransportKind::current(), TransportKind::Engine);
        let inner = TransportKind::override_transport(Some(TransportKind::ClosedForm));
        assert_eq!(inner, Some(TransportKind::Engine));
        assert_eq!(TransportKind::current(), TransportKind::ClosedForm);
        TransportKind::override_transport(prev);
    }
}
