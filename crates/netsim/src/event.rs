//! The discrete-event queue.
//!
//! A classic simulation calendar: a binary min-heap of `(time, seq, event)`
//! where `seq` is a monotonically increasing tie-breaker, so events scheduled
//! for the same instant pop in scheduling order. This guarantees the two
//! properties a deterministic simulator needs: time never goes backwards,
//! and same-time events have a reproducible total order.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event calendar.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    key: Reverse<(SimTime, u64)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time: the timestamp of the last popped event.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in a discrete-event
    /// simulation (causality violation); this panics rather than silently
    /// reordering history.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule at {at} before now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            key: Reverse((at, seq)),
            event,
        });
    }

    /// Schedule `event` after a relative delay from now.
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now.after(delay), event);
    }

    /// Rewind to an empty calendar at time zero, keeping the heap's
    /// allocation. This is what lets a persistent queue drive one packet
    /// walk after another without reallocating per walk.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
        self.now = SimTime::ZERO;
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        let Reverse((at, _)) = entry.key;
        self.now = at;
        Some((at, entry.event))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ms(5.0), "c");
        q.schedule(SimTime::from_ms(1.0), "a");
        q.schedule(SimTime::from_ms(3.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(2.0);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ms(7.5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ms(7.5));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ms(10.0), "first");
        q.pop();
        q.schedule_after(SimTime::from_ms(5.0), "second");
        let (at, _) = q.pop().unwrap();
        assert_eq!(at, SimTime::from_ms(15.0));
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ms(10.0), ());
        q.pop();
        q.schedule(SimTime::from_ms(1.0), ());
    }

    #[test]
    fn reset_rewinds_time_and_clears_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ms(10.0), "a");
        q.pop();
        q.schedule(SimTime::from_ms(20.0), "b");
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        // Scheduling at t=0 is legal again after a reset.
        q.schedule(SimTime::ZERO, "c");
        assert_eq!(q.pop(), Some((SimTime::ZERO, "c")));
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_ms(1.0), ());
        q.schedule(SimTime::from_ms(2.0), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
