//! The discrete-event calendar.
//!
//! Two backends implement the same contract — events pop in strict
//! `(time, seq)` order, where `seq` is a monotonically increasing
//! tie-breaker assigned at scheduling time, so same-instant events pop in
//! scheduling (FIFO) order:
//!
//! * [`CalendarKind::Wheel`] (default) — a hierarchical timing wheel:
//!   six levels of 64 slots each, 2^16 ns (~65 µs) of resolution at level
//!   zero and a 2^52 ns (~52 day) horizon overall. Schedule and pop are
//!   O(1) amortised: an event lands in the slot selected by the highest
//!   bit in which its quantised time differs from the cursor, each level
//!   keeps a 64-bit occupancy bitmap so the next non-empty slot is a
//!   `trailing_zeros`, and far-future events cascade down one level at a
//!   time as the cursor approaches them. Events beyond the horizon sit in
//!   an overflow list that re-enters the wheel when the cursor jumps.
//! * [`CalendarKind::Heap`] — the classic binary min-heap of
//!   `(time, seq, event)`; the pre-wheel implementation, kept as a
//!   byte-for-byte fallback behind `ROAM_CALENDAR=heap` and as the
//!   reference model the property tests compare the wheel against.
//!
//! Both backends [`rewind`](EventQueue::rewind) to an empty calendar at
//! time zero without giving back their allocations, which is what lets one
//! persistent queue drive packet walk after packet walk with no per-walk
//! allocation.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU8, Ordering};

/// log2 of the wheel's slot granularity in nanoseconds: 2^16 ns ≈ 65.5 µs.
/// Walk hops are hundreds of microseconds to hundreds of milliseconds, so
/// level 0 already separates almost every pair of events.
const GRAIN_BITS: u32 = 16;
/// log2 of the slots per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels. Six levels of six bits cover 2^36 grains ≈ 52 days of
/// simulated time from the cursor before the overflow list is needed.
const LEVELS: usize = 6;

/// Which calendar backend [`EventQueue::new`] builds, selected by the
/// `ROAM_CALENDAR` environment variable (mirroring `ROAM_TRANSPORT`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CalendarKind {
    /// The hierarchical timing wheel — the default.
    #[default]
    Wheel,
    /// The binary-heap calendar, kept as a fallback and reference model.
    Heap,
}

impl CalendarKind {
    /// Read the kind from `ROAM_CALENDAR`: `heap` selects the binary-heap
    /// fallback; unset, empty, or anything else means the wheel. Read on
    /// every call (never cached) so tests can flip it mid-process.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("ROAM_CALENDAR") {
            Ok(v) if v.trim() == "heap" => CalendarKind::Heap,
            _ => CalendarKind::Wheel,
        }
    }

    /// Install (or clear, with `None`) a process-wide override that takes
    /// precedence over `ROAM_CALENDAR`. Returns the previous override so
    /// callers can restore it.
    pub fn override_calendar(kind: Option<CalendarKind>) -> Option<CalendarKind> {
        let encode = |k: Option<CalendarKind>| match k {
            None => 0u8,
            Some(CalendarKind::Wheel) => 1,
            Some(CalendarKind::Heap) => 2,
        };
        let prev = CALENDAR_OVERRIDE.swap(encode(kind), Ordering::SeqCst);
        match prev {
            1 => Some(CalendarKind::Wheel),
            2 => Some(CalendarKind::Heap),
            _ => None,
        }
    }

    /// The effective kind for this call: the process-wide override if one
    /// is installed, otherwise whatever `ROAM_CALENDAR` says.
    #[must_use]
    pub fn current() -> Self {
        match CALENDAR_OVERRIDE.load(Ordering::SeqCst) {
            1 => CalendarKind::Wheel,
            2 => CalendarKind::Heap,
            _ => CalendarKind::from_env(),
        }
    }
}

/// 0 = no override (follow the env), 1 = wheel, 2 = heap.
static CALENDAR_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// A time-ordered event calendar.
#[derive(Debug)]
pub struct EventQueue<E> {
    backend: Backend<E>,
    next_seq: u64,
    now: SimTime,
}

#[derive(Debug)]
enum Backend<E> {
    Heap(BinaryHeap<HeapEntry<E>>),
    Wheel(Wheel<E>),
}

#[derive(Debug)]
struct HeapEntry<E> {
    key: Reverse<(SimTime, u64)>,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// One pending event inside the wheel: absolute nanoseconds, scheduling
/// sequence number, payload.
#[derive(Debug)]
struct Slot<E> {
    at: u64,
    seq: u64,
    event: E,
}

/// The hierarchical timing wheel.
///
/// Invariants (all maintained by `place`/`advance`):
/// * every slotted event `t` satisfies `(t >> GRAIN) ^ (cursor >> GRAIN)
///   < 2^36` — i.e. it is within the horizon of the current cursor;
/// * within a level, occupied slot indices are strictly greater than the
///   cursor's index at that level, so slot index order is time order and
///   the next slot is `occupancy.trailing_zeros()` (no wrap-around);
/// * every overflow event's quantised time differs from the cursor above
///   the horizon, so overflow events are strictly later than every slotted
///   event — overflow only needs consulting when the wheel drains empty;
/// * `current` holds the events of the slot the cursor sits in (plus any
///   events scheduled behind the cursor after a peek cascaded it forward
///   — see `place`), sorted by `(at, seq)` descending so the next event
///   pops from the back; every slotted event is later than everything in
///   `current`.
#[derive(Debug)]
struct Wheel<E> {
    /// `LEVELS * SLOTS` buckets, allocated lazily on first schedule so an
    /// empty queue (e.g. the hollow value `std::mem::take` leaves behind)
    /// costs nothing.
    slots: Vec<Vec<Slot<E>>>,
    /// One occupancy bitmap per level; bit `i` set ⇔ `slots[level*SLOTS+i]`
    /// is non-empty.
    occupancy: [u64; LEVELS],
    /// The cursor slot's events, sorted descending; popped from the back.
    current: Vec<Slot<E>>,
    /// Events beyond the horizon, unordered.
    overflow: Vec<Slot<E>>,
    /// Minimum `at` in `overflow`, `u64::MAX` when empty.
    overflow_min: u64,
    /// Base time of the slot the cursor sits in (grain-aligned ns).
    cursor: u64,
    /// Events slotted in levels (excludes `current` and `overflow`).
    slotted: usize,
}

impl<E> Wheel<E> {
    fn new() -> Self {
        Wheel {
            slots: Vec::new(),
            occupancy: [0; LEVELS],
            current: Vec::new(),
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            cursor: 0,
            slotted: 0,
        }
    }

    fn len(&self) -> usize {
        self.slotted + self.current.len() + self.overflow.len()
    }

    /// Level an event at `at` belongs to, given the current cursor:
    /// the highest 6-bit group in which the quantised times differ.
    /// `None` means the current slot; `Some(LEVELS)` means overflow.
    fn level_for(&self, at: u64) -> Option<usize> {
        let x = (at >> GRAIN_BITS) ^ (self.cursor >> GRAIN_BITS);
        if x == 0 {
            None
        } else {
            Some((63 - x.leading_zeros()) as usize / SLOT_BITS as usize)
        }
    }

    fn place(&mut self, entry: Slot<E>) {
        if entry.at < self.cursor {
            // Behind the cursor: legal when the caller schedules after a
            // peek already cascaded the wheel forward (peek must expose
            // the next slotted event, but the event being placed now is
            // earlier and still in the future of the last *pop*). The
            // slot walk can no longer reach this time, so the entry
            // joins `current`, which always drains before the wheel
            // advances again — `(at, seq)` order is preserved.
            let key = (entry.at, entry.seq);
            let pos = self.current.partition_point(|s| (s.at, s.seq) > key);
            self.current.insert(pos, entry);
            return;
        }
        match self.level_for(entry.at) {
            None => {
                // The cursor's own slot: keep `current` sorted descending.
                let key = (entry.at, entry.seq);
                let pos = self.current.partition_point(|s| (s.at, s.seq) > key);
                self.current.insert(pos, entry);
            }
            Some(level) if level < LEVELS => {
                if self.slots.is_empty() {
                    self.slots.resize_with(LEVELS * SLOTS, Vec::new);
                }
                let idx = ((entry.at >> (GRAIN_BITS + SLOT_BITS * level as u32))
                    & (SLOTS as u64 - 1)) as usize;
                self.occupancy[level] |= 1 << idx;
                self.slots[level * SLOTS + idx].push(entry);
                self.slotted += 1;
            }
            Some(_) => {
                self.overflow_min = self.overflow_min.min(entry.at);
                self.overflow.push(entry);
            }
        }
    }

    /// Refill `current` from the next non-empty slot (cascading far slots
    /// down level by level), jumping to the overflow list if the wheel
    /// proper is empty. Leaves `current` non-empty unless the queue is.
    fn advance(&mut self) {
        if self.slotted == 0 {
            if self.overflow.is_empty() {
                return;
            }
            // Jump the cursor to the earliest overflow event and re-home
            // everything that now fits under the horizon.
            self.cursor = self.overflow_min & !((1 << GRAIN_BITS) - 1);
            self.overflow_min = u64::MAX;
            let mut spill = std::mem::take(&mut self.overflow);
            for entry in spill.drain(..) {
                // Entries still beyond the new horizon land back in
                // `self.overflow`.
                self.place(entry);
            }
            if self.overflow.is_empty() {
                // Full drain: hand the capacity-keeping buffer back.
                self.overflow = spill;
            }
            if self.current.len() > 1 {
                self.current
                    .sort_unstable_by_key(|e| Reverse((e.at, e.seq)));
            }
            if !self.current.is_empty() {
                return;
            }
        }
        while self.slotted > 0 {
            let level = (0..LEVELS)
                .find(|&l| self.occupancy[l] != 0)
                .expect("slotted > 0 but no occupancy bit set");
            let idx = self.occupancy[level].trailing_zeros() as usize;
            self.occupancy[level] &= !(1 << idx);
            let mut bucket = std::mem::take(&mut self.slots[level * SLOTS + idx]);
            self.slotted -= bucket.len();
            // Move the cursor to the base of the chosen slot: keep the
            // bits above this level, substitute the slot index, zero the
            // rest.
            let shift = GRAIN_BITS + SLOT_BITS * level as u32;
            let above = if shift + SLOT_BITS >= 64 {
                0
            } else {
                (self.cursor >> (shift + SLOT_BITS)) << (shift + SLOT_BITS)
            };
            self.cursor = above | ((idx as u64) << shift);
            if level == 0 {
                // Exact slot: these are the next events.
                self.current.append(&mut bucket);
                self.slots[level * SLOTS + idx] = bucket;
                self.current
                    .sort_unstable_by_key(|e| Reverse((e.at, e.seq)));
                return;
            }
            // Far slot: redistribute one level (or more) down.
            for entry in bucket.drain(..) {
                self.place(entry);
            }
            self.slots[level * SLOTS + idx] = bucket;
            if !self.current.is_empty() {
                // Redistribution landed events in the cursor slot itself
                // (already sorted by `place`).
                return;
            }
        }
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.current.is_empty() {
            self.advance();
        }
        let entry = self.current.pop()?;
        Some((SimTime::from_nanos(entry.at), entry.event))
    }

    fn rewind(&mut self) {
        if self.slotted > 0 {
            for level in 0..LEVELS {
                let mut occ = self.occupancy[level];
                while occ != 0 {
                    let idx = occ.trailing_zeros() as usize;
                    occ &= !(1 << idx);
                    self.slots[level * SLOTS + idx].clear();
                }
                self.occupancy[level] = 0;
            }
            self.slotted = 0;
        }
        self.current.clear();
        self.overflow.clear();
        self.overflow_min = u64::MAX;
        self.cursor = 0;
    }

    fn capacity(&self) -> usize {
        self.slots.iter().map(Vec::capacity).sum::<usize>()
            + self.current.capacity()
            + self.overflow.capacity()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero, on the backend [`CalendarKind::current`]
    /// selects.
    #[must_use]
    pub fn new() -> Self {
        Self::with_kind(CalendarKind::current())
    }

    /// An empty queue at time zero on an explicit backend — benches and the
    /// order-equivalence property tests construct both sides with this.
    #[must_use]
    pub fn with_kind(kind: CalendarKind) -> Self {
        let backend = match kind {
            CalendarKind::Heap => Backend::Heap(BinaryHeap::new()),
            CalendarKind::Wheel => Backend::Wheel(Wheel::new()),
        };
        EventQueue {
            backend,
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Which backend this queue runs on.
    #[must_use]
    pub fn kind(&self) -> CalendarKind {
        match self.backend {
            Backend::Heap(_) => CalendarKind::Heap,
            Backend::Wheel(_) => CalendarKind::Wheel,
        }
    }

    /// Current simulation time: the timestamp of the last popped event.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in a discrete-event
    /// simulation (causality violation); this panics rather than silently
    /// reordering history.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule at {at} before now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.backend {
            Backend::Heap(heap) => heap.push(HeapEntry {
                key: Reverse((at, seq)),
                event,
            }),
            Backend::Wheel(wheel) => wheel.place(Slot {
                at: at.as_nanos(),
                seq,
                event,
            }),
        }
    }

    /// Schedule `event` after a relative delay from now.
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now.after(delay), event);
    }

    /// Rewind to an empty calendar at time zero, keeping every allocation
    /// (heap buffer, wheel slots, overflow list). This is what lets a
    /// persistent queue drive one packet walk after another without
    /// reallocating per walk.
    pub fn rewind(&mut self) {
        match &mut self.backend {
            Backend::Heap(heap) => heap.clear(),
            Backend::Wheel(wheel) => wheel.rewind(),
        }
        self.next_seq = 0;
        self.now = SimTime::ZERO;
    }

    /// Alias for [`rewind`](Self::rewind), kept for the pre-wheel name.
    pub fn reset(&mut self) {
        self.rewind();
    }

    /// Timestamp and payload of the next event without popping it — the
    /// clock does not advance and the pending set is unchanged. Takes
    /// `&mut self` because the wheel may need to cascade far slots down
    /// to expose its next event (a pure rearrangement; `(time, seq)`
    /// order is unaffected). The service scheduler uses this to look at
    /// the next fire time before deciding whether to advance the clock.
    pub fn peek(&mut self) -> Option<(SimTime, &E)> {
        match &mut self.backend {
            Backend::Heap(heap) => heap.peek().map(|entry| {
                let Reverse((at, _)) = entry.key;
                (at, &entry.event)
            }),
            Backend::Wheel(wheel) => {
                if wheel.current.is_empty() {
                    wheel.advance();
                }
                wheel
                    .current
                    .last()
                    .map(|slot| (SimTime::from_nanos(slot.at), &slot.event))
            }
        }
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (at, event) = match &mut self.backend {
            Backend::Heap(heap) => {
                let entry = heap.pop()?;
                let Reverse((at, _)) = entry.key;
                (at, entry.event)
            }
            Backend::Wheel(wheel) => wheel.pop()?,
        };
        self.now = at;
        Some((at, event))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(heap) => heap.len(),
            Backend::Wheel(wheel) => wheel.len(),
        }
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total reserved event capacity across the backend's buffers — the
    /// no-per-walk-allocation tests assert this is stable across reuse.
    #[must_use]
    pub fn capacity(&self) -> usize {
        match &self.backend {
            Backend::Heap(heap) => heap.capacity(),
            Backend::Wheel(wheel) => wheel.capacity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds() -> [CalendarKind; 2] {
        [CalendarKind::Wheel, CalendarKind::Heap]
    }

    #[test]
    fn events_pop_in_time_order() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_ms(5.0), "c");
            q.schedule(SimTime::from_ms(1.0), "a");
            q.schedule(SimTime::from_ms(3.0), "b");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, ["a", "b", "c"], "{kind:?}");
        }
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_ms(2.0);
            for i in 0..10 {
                q.schedule(t, i);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, (0..10).collect::<Vec<_>>(), "{kind:?}");
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_ms(7.5), ());
            assert_eq!(q.now(), SimTime::ZERO);
            q.pop();
            assert_eq!(q.now(), SimTime::from_ms(7.5));
        }
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_ms(10.0), "first");
            q.pop();
            q.schedule_after(SimTime::from_ms(5.0), "second");
            let (at, _) = q.pop().unwrap();
            assert_eq!(at, SimTime::from_ms(15.0));
        }
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ms(10.0), ());
        q.pop();
        q.schedule(SimTime::from_ms(1.0), ());
    }

    #[test]
    fn reset_rewinds_time_and_clears_events() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_ms(10.0), "a");
            q.pop();
            q.schedule(SimTime::from_ms(20.0), "b");
            q.reset();
            assert!(q.is_empty());
            assert_eq!(q.now(), SimTime::ZERO);
            // Scheduling at t=0 is legal again after a rewind.
            q.schedule(SimTime::ZERO, "c");
            assert_eq!(q.pop(), Some((SimTime::ZERO, "c")));
        }
    }

    #[test]
    fn len_and_empty_track_contents() {
        for kind in kinds() {
            let mut q: EventQueue<()> = EventQueue::with_kind(kind);
            assert!(q.is_empty());
            q.schedule(SimTime::from_ms(1.0), ());
            q.schedule(SimTime::from_ms(2.0), ());
            assert_eq!(q.len(), 2);
            q.pop();
            assert_eq!(q.len(), 1);
        }
    }

    #[test]
    fn rewind_keeps_capacity() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            for i in 0..256u64 {
                q.schedule(SimTime::from_nanos(i * 1_000_003), i);
            }
            while q.pop().is_some() {}
            q.rewind();
            let cap = q.capacity();
            assert!(cap > 0, "{kind:?} should retain buffers");
            for round in 0..8 {
                for i in 0..256u64 {
                    q.schedule(SimTime::from_nanos(i * 1_000_003), i);
                }
                while q.pop().is_some() {}
                q.rewind();
                assert_eq!(q.capacity(), cap, "{kind:?} round {round} reallocated");
            }
        }
    }

    #[test]
    fn wheel_handles_far_future_and_overflow() {
        // Events spread over every level plus the overflow list, with
        // same-instant ties, must still pop in exact (time, seq) order.
        let mut wheel = EventQueue::with_kind(CalendarKind::Wheel);
        let mut heap = EventQueue::with_kind(CalendarKind::Heap);
        let times: Vec<u64> = vec![
            0,
            1,
            (1 << GRAIN_BITS) - 1,
            1 << GRAIN_BITS,
            (1 << GRAIN_BITS) + 1,
            1 << (GRAIN_BITS + SLOT_BITS),
            (1 << (GRAIN_BITS + 2 * SLOT_BITS)) + 12_345,
            (1 << (GRAIN_BITS + 5 * SLOT_BITS)) + 6_789,
            1 << (GRAIN_BITS + 6 * SLOT_BITS), // beyond the horizon
            (1 << (GRAIN_BITS + 6 * SLOT_BITS)) + (1 << GRAIN_BITS),
            u64::MAX / 2,
            1,
            0,
        ];
        for &t in &times {
            wheel.schedule(SimTime::from_nanos(t), t);
            heap.schedule(SimTime::from_nanos(t), t);
        }
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            assert_eq!(w, h);
            if w.is_none() {
                break;
            }
        }
    }

    #[test]
    fn wheel_interleaves_scheduling_with_popping() {
        // A walk-like workload: pop one, schedule the next hop relative to
        // now, across slot and level boundaries.
        let mut wheel = EventQueue::with_kind(CalendarKind::Wheel);
        let mut heap = EventQueue::with_kind(CalendarKind::Heap);
        wheel.schedule(SimTime::ZERO, 0u64);
        heap.schedule(SimTime::ZERO, 0u64);
        let mut step = 0u64;
        while let Some((wt, we)) = wheel.pop() {
            let (ht, he) = heap.pop().expect("heap ran dry first");
            assert_eq!((wt, we), (ht, he));
            if step < 500 {
                step += 1;
                // Growing, slot-straddling delays: ~65 µs … ~8 ms.
                let delay = SimTime::from_nanos((step % 7 + 1) * 69_997 * (step % 17 + 1));
                wheel.schedule_after(delay, step);
                heap.schedule_after(delay, step);
                if step.is_multiple_of(3) {
                    // Plus a same-instant tie.
                    wheel.schedule(wheel.now(), step + 1000);
                    heap.schedule(heap.now(), step + 1000);
                }
            }
        }
        assert!(heap.pop().is_none());
    }

    #[test]
    fn peek_matches_pop_without_consuming() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            assert!(q.peek().is_none(), "{kind:?}");
            // Spread across slots, levels, and the overflow list, with a
            // same-instant tie, so the wheel has to cascade to peek.
            let times: Vec<u64> = vec![
                5 * 1_000_000,
                1_000_000,
                1_000_000,
                1 << (GRAIN_BITS + 2 * SLOT_BITS),
                1 << (GRAIN_BITS + 6 * SLOT_BITS),
            ];
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(t), i);
            }
            let before = q.len();
            while !q.is_empty() {
                let now_before = q.now();
                let (peek_at, &peek_ev) = q.peek().expect("non-empty queue peeks");
                assert_eq!(q.now(), now_before, "{kind:?}: peek moved the clock");
                let (at, ev) = q.pop().unwrap();
                assert_eq!((peek_at, peek_ev), (at, ev), "{kind:?}");
            }
            assert_eq!(before, times.len());
            assert!(q.peek().is_none());
        }
    }

    #[test]
    fn scheduling_behind_a_peeked_cursor_keeps_time_order() {
        // A recurring-job pattern: drain an instant, peek (the wheel
        // cascades its cursor to the next occupied slot — possibly far
        // ahead), then schedule the next recurrence *earlier* than the
        // peeked time. Both backends must deliver in time order anyway.
        const DAY: u64 = 86_400_000_000_000;
        let mut orders: Vec<Vec<(u64, u32)>> = Vec::new();
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::ZERO, 0u32); // daily job, fires at 0
            q.schedule(SimTime::from_nanos(7 * DAY), 1u32); // weekly job
            let mut order = Vec::new();
            while let Some((at, ev)) = q.pop() {
                order.push((at.as_nanos() / DAY, ev));
                let t = at.as_nanos();
                if ev == 0 && t < 10 * DAY {
                    // Peek first — on the wheel this cascades the cursor
                    // up to the weekly entry before the daily one lands.
                    let _ = q.peek();
                    q.schedule(SimTime::from_nanos(t + DAY), 0u32);
                }
            }
            let sorted_ok = order.windows(2).all(|w| w[0].0 <= w[1].0);
            assert!(sorted_ok, "{kind:?} delivered out of order: {order:?}");
            orders.push(order);
        }
        assert_eq!(orders[0], orders[1], "backends disagree on order");
    }

    #[test]
    fn calendar_kind_reads_env_per_call() {
        std::env::remove_var("ROAM_CALENDAR");
        assert_eq!(CalendarKind::from_env(), CalendarKind::Wheel);
        std::env::set_var("ROAM_CALENDAR", "heap");
        assert_eq!(CalendarKind::from_env(), CalendarKind::Heap);
        std::env::set_var("ROAM_CALENDAR", "wheel");
        assert_eq!(CalendarKind::from_env(), CalendarKind::Wheel);
        std::env::remove_var("ROAM_CALENDAR");
    }

    #[test]
    fn override_beats_env_while_installed() {
        let prev = CalendarKind::override_calendar(Some(CalendarKind::Heap));
        assert_eq!(CalendarKind::current(), CalendarKind::Heap);
        assert_eq!(EventQueue::<u32>::new().kind(), CalendarKind::Heap);
        let inner = CalendarKind::override_calendar(Some(CalendarKind::Wheel));
        assert_eq!(inner, Some(CalendarKind::Heap));
        assert_eq!(CalendarKind::current(), CalendarKind::Wheel);
        CalendarKind::override_calendar(prev);
    }
}
