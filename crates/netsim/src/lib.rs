//! Deterministic discrete-event packet network simulator.
//!
//! `roam-netsim` is the substrate every measurement in the reproduction runs
//! on. It models the pieces of the internet the paper's campaigns touched:
//!
//! * a **node/link graph** with geographically derived propagation delays
//!   (great-circle distance × fiber speed × a circuitousness factor per link
//!   class), per-hop processing delay, bounded jitter, and loss injection;
//! * real **wire formats** (IPv4 with checksums, UDP, ICMP echo /
//!   time-exceeded, GTP-U, DNS) encoded and decoded through [`bytes`] — the
//!   TTL walk in [`net::Network::traceroute`] mutates actual IPv4 headers;
//! * an **event queue** (binary heap keyed by [`time::SimTime`] with
//!   monotonic sequence tie-breaking) driving hop-by-hop packet delivery;
//! * an **IP registry** mapping prefixes to ASN / organisation / geolocation,
//!   playing the role ipinfo and WHOIS play in the paper's methodology;
//! * **CG-NAT** semantics: private hops inside a PGW provider's core answer
//!   traceroute with RFC1918 addresses, the first public hop is the address
//!   the outside world sees — exactly the demarcation rule of §4.3;
//! * a **throughput model**: token-bucket policy enforcement plus a
//!   TCP-shaped transfer-time estimator (handshake, slow start, and a
//!   Mathis-style loss/RTT cap), used by the speedtest and CDN clients.
//!
//! Everything is deterministic: all randomness (jitter, loss) flows from a
//! seed supplied at [`net::Network::new`]. Two simulations with the same
//! seed and the same call sequence produce bit-identical results — a
//! property the integration suite checks explicitly.

pub mod engine;
pub mod event;
pub mod faults;
pub mod ip;
pub mod link;
pub mod net;
pub mod registry;
pub mod throughput;
pub mod time;
pub mod wire;

pub use engine::{
    flow_seed, ClosedFormTransport, EngineSteppedTransport, Flow, FlowId, Transport, TransportKind,
};
pub use event::{CalendarKind, EventQueue};
pub use faults::{FaultCalendar, FaultPlane, FaultSpec, GilbertElliott, NodeFaultState};
pub use ip::{is_private, Ipv4Net};
pub use link::{LatencyModel, Link, LinkClass};
pub use net::{
    Network, NodeId, NodeKind, PacketEvent, PacketEventKind, PingResult, ProbeError, RttSample,
    TraceHop, Traceroute, TracerouteOpts,
};
pub use registry::{Asn, IpRegistry, PrefixInfo};
pub use throughput::{transfer_time_ms, TokenBucket, TransferSpec};
pub use time::SimTime;
