//! IPv4 addressing helpers: CIDR prefixes and private-range classification.
//!
//! The paper's path analysis hinges on one address property: whether a hop's
//! IP is *private* (inside the PGW provider's core, before internet breakout)
//! or *public* (after the CG-NAT). [`is_private`] encodes the ranges that
//! matter: RFC 1918, the CGN shared space (RFC 6598, what real CG-NATs use),
//! loopback and link-local.

use std::net::Ipv4Addr;

/// An IPv4 CIDR prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv4Net {
    addr: Ipv4Addr,
    prefix_len: u8,
}

impl Ipv4Net {
    /// Build a prefix; the host bits of `addr` are masked off so the value
    /// is canonical. Panics if `prefix_len > 32` (a programming error, not
    /// an input error: prefixes are constructed from static tables).
    #[must_use]
    pub fn new(addr: Ipv4Addr, prefix_len: u8) -> Self {
        assert!(prefix_len <= 32, "prefix length {prefix_len} > 32");
        let masked = u32::from(addr) & Self::mask_bits(prefix_len);
        Ipv4Net {
            addr: Ipv4Addr::from(masked),
            prefix_len,
        }
    }

    fn mask_bits(prefix_len: u8) -> u32 {
        if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - prefix_len)
        }
    }

    /// Network address (host bits zero).
    #[must_use]
    pub fn network(&self) -> Ipv4Addr {
        self.addr
    }

    /// Prefix length in bits.
    #[must_use]
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// Does the prefix contain `ip`?
    #[must_use]
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        (u32::from(ip) & Self::mask_bits(self.prefix_len)) == u32::from(self.addr)
    }

    /// Number of addresses in the prefix.
    #[must_use]
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.prefix_len)
    }

    /// The `index`-th address in the prefix (0 = the network address).
    /// Returns `None` past the end — callers allocating hosts out of a
    /// prefix use this to detect exhaustion instead of silently wrapping.
    #[must_use]
    pub fn nth(&self, index: u64) -> Option<Ipv4Addr> {
        if index >= self.size() {
            return None;
        }
        Some(Ipv4Addr::from(u32::from(self.addr) + index as u32))
    }

    /// Parse `"a.b.c.d/len"`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        let (ip, len) = s.split_once('/')?;
        let addr: Ipv4Addr = ip.parse().ok()?;
        let prefix_len: u8 = len.parse().ok()?;
        if prefix_len > 32 {
            return None;
        }
        Some(Ipv4Net::new(addr, prefix_len))
    }
}

impl std::fmt::Display for Ipv4Net {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.addr, self.prefix_len)
    }
}

/// True when `ip` is not globally routable: RFC 1918 private space, the
/// RFC 6598 carrier-grade NAT shared range (`100.64.0.0/10`), loopback, or
/// link-local. These are the hops the paper labels the *private path*.
#[must_use]
pub fn is_private(ip: Ipv4Addr) -> bool {
    let o = ip.octets();
    o[0] == 10
        || (o[0] == 172 && (16..=31).contains(&o[1]))
        || (o[0] == 192 && o[1] == 168)
        || (o[0] == 100 && (64..=127).contains(&o[1]))
        || o[0] == 127
        || (o[0] == 169 && o[1] == 254)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn private_ranges() {
        for p in [
            "10.0.0.1",
            "10.255.255.254",
            "172.16.0.1",
            "172.31.9.9",
            "192.168.1.1",
            "100.64.0.1",
            "100.127.255.1",
            "127.0.0.1",
            "169.254.10.10",
        ] {
            assert!(is_private(ip(p)), "{p} should be private");
        }
    }

    #[test]
    fn public_ranges() {
        for p in [
            "8.8.8.8",
            "202.166.126.1",
            "172.15.0.1",
            "172.32.0.1",
            "100.63.0.1",
            "100.128.0.1",
            "192.169.0.1",
            "11.0.0.1",
            "54.82.5.1",
        ] {
            assert!(!is_private(ip(p)), "{p} should be public");
        }
    }

    #[test]
    fn net_canonicalises_host_bits() {
        let n = Ipv4Net::new(ip("192.168.1.77"), 24);
        assert_eq!(n.network(), ip("192.168.1.0"));
        assert_eq!(n.to_string(), "192.168.1.0/24");
    }

    #[test]
    fn contains_respects_boundaries() {
        let n = Ipv4Net::parse("202.166.126.0/24").unwrap();
        assert!(n.contains(ip("202.166.126.0")));
        assert!(n.contains(ip("202.166.126.255")));
        assert!(!n.contains(ip("202.166.127.0")));
        assert!(!n.contains(ip("202.166.125.255")));
    }

    #[test]
    fn nth_and_size() {
        let n = Ipv4Net::parse("10.1.2.0/30").unwrap();
        assert_eq!(n.size(), 4);
        assert_eq!(n.nth(0), Some(ip("10.1.2.0")));
        assert_eq!(n.nth(3), Some(ip("10.1.2.3")));
        assert_eq!(n.nth(4), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Ipv4Net::parse("not-an-ip/8").is_none());
        assert!(Ipv4Net::parse("10.0.0.0/33").is_none());
        assert!(Ipv4Net::parse("10.0.0.0").is_none());
    }

    #[test]
    fn zero_length_prefix_contains_everything() {
        let n = Ipv4Net::parse("0.0.0.0/0").unwrap();
        assert!(n.contains(ip("1.2.3.4")));
        assert!(n.contains(ip("255.255.255.255")));
        assert_eq!(n.size(), 1 << 32);
    }
}
