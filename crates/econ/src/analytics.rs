//! Reductions from crawl snapshots to the figures' series.

use crate::crawler::CrawlDay;
use crate::market::{Market, ProviderId};
use roam_geo::{Continent, Country};
use roam_stats::{median, quantile, BoxplotSummary, Ecdf};
use std::collections::BTreeMap;

/// Median $/GB per destination country for one provider on a crawl day —
/// the underlying series of Figs. 17 and 18.
#[must_use]
pub fn median_per_gb_by_country(day: &CrawlDay, provider: ProviderId) -> BTreeMap<Country, f64> {
    let mut per_country: BTreeMap<Country, Vec<f64>> = BTreeMap::new();
    for r in &day.records {
        if r.offer.provider == provider {
            per_country
                .entry(r.offer.country)
                .or_default()
                .push(r.per_gb());
        }
    }
    per_country
        .into_iter()
        .map(|(c, v)| (c, median(&v).expect("non-empty country bucket")))
        .collect()
}

/// Fig. 16: distribution of per-country median $/GB within each continent.
#[must_use]
pub fn continent_boxplots(
    day: &CrawlDay,
    provider: ProviderId,
) -> Vec<(Continent, BoxplotSummary)> {
    let medians = median_per_gb_by_country(day, provider);
    let mut by_continent: BTreeMap<Continent, Vec<f64>> = BTreeMap::new();
    for (country, m) in medians {
        by_continent.entry(country.continent()).or_default().push(m);
    }
    by_continent
        .into_iter()
        .filter(|(_, v)| v.len() >= 2)
        .map(|(c, v)| (c, BoxplotSummary::from(&v).expect("validated above")))
        .collect()
}

/// A provider's row in the Fig. 17 comparison.
#[derive(Debug, Clone)]
pub struct ProviderSummary {
    /// Brand name.
    pub name: String,
    /// Number of countries with at least one offer.
    pub countries: usize,
    /// Share of all offers in the snapshot (the percentages in Fig. 17's
    /// legend).
    pub offer_share: f64,
    /// Median across per-country median $/GB.
    pub median_per_gb: f64,
    /// The full per-country-median distribution (for CDF plotting).
    pub cdf: Ecdf,
}

/// Fig. 17: compare providers on a snapshot. Providers with fewer than
/// `min_countries` are skipped (no meaningful CDF).
#[must_use]
pub fn provider_comparison(
    market: &Market,
    day: &CrawlDay,
    min_countries: usize,
) -> Vec<ProviderSummary> {
    let total = day.records.len() as f64;
    let mut out = Vec::new();
    for pid in 0..market.provider_count() {
        let pid = ProviderId(pid as u32);
        let medians = median_per_gb_by_country(day, pid);
        if medians.len() < min_countries {
            continue;
        }
        let values: Vec<f64> = medians.values().copied().collect();
        let n_offers = day
            .records
            .iter()
            .filter(|r| r.offer.provider == pid)
            .count();
        out.push(ProviderSummary {
            name: market.provider(pid).name.clone(),
            countries: medians.len(),
            offer_share: n_offers as f64 / total,
            median_per_gb: median(&values).expect("non-empty"),
            cdf: Ecdf::new(&values).expect("non-empty"),
        });
    }
    out.sort_by(|a, b| {
        a.median_per_gb
            .partial_cmp(&b.median_per_gb)
            .expect("no NaN")
    });
    out
}

/// Fig. 18: decile thresholds over a set of values (country medians). The
/// paper colours countries by which decile of the worldwide distribution
/// they fall into; returns the 9 interior cut points.
#[must_use]
pub fn decile_thresholds(values: &[f64]) -> Vec<f64> {
    (1..10)
        .map(|d| quantile(values, d as f64 / 10.0).expect("validated input"))
        .collect()
}

/// Fig. 19: (size, price) points of one provider's plans ≤ `max_gb`,
/// grouped by backing b-MNO index, then by country.
#[must_use]
pub fn size_price_by_bmno(
    day: &CrawlDay,
    provider: ProviderId,
    max_gb: f64,
) -> BTreeMap<u8, BTreeMap<Country, Vec<(f64, f64)>>> {
    let mut out: BTreeMap<u8, BTreeMap<Country, Vec<(f64, f64)>>> = BTreeMap::new();
    for r in &day.records {
        if r.offer.provider != provider || r.offer.data_gb > max_gb {
            continue;
        }
        let Some(bmno) = r.offer.bmno else { continue };
        out.entry(bmno)
            .or_default()
            .entry(r.offer.country)
            .or_default()
            .push((r.offer.data_gb, r.price_usd));
    }
    for countries in out.values_mut() {
        for points in countries.values_mut() {
            points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN sizes"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawler::{Crawler, Vantage};

    fn snapshot(day: u32) -> (Market, CrawlDay) {
        let m = Market::generate(1);
        let d = Crawler::new(Vantage::NewJersey).crawl(&m, day);
        (m, d)
    }

    #[test]
    fn europe_is_about_half_of_north_america() {
        let (m, d) = snapshot(0);
        let boxes = continent_boxplots(&d, m.airalo());
        let get = |c: Continent| boxes.iter().find(|(x, _)| *x == c).map(|(_, b)| b.median);
        let eu = get(Continent::Europe).expect("Europe present");
        let na = get(Continent::NorthAmerica).expect("NA present");
        let ratio = na / eu;
        assert!((1.5..3.2).contains(&ratio), "NA/EU median ratio {ratio:.2}");
    }

    #[test]
    fn provider_comparison_is_anchored() {
        let (m, d) = snapshot(76); // the paper's 05/01 snapshot
        let cmp = provider_comparison(&m, &d, 20);
        let find = |n: &str| cmp.iter().find(|p| p.name == n).expect("provider present");
        let airalo = find("Airalo");
        let airhub = find("Airhub");
        let keepgo = find("Keepgo");
        let mobi = find("MobiMatter");
        assert!(airhub.median_per_gb < airalo.median_per_gb);
        assert!(keepgo.median_per_gb > airalo.median_per_gb * 1.5);
        // MobiMatter ~60% cheaper than Airalo.
        let discount = 1.0 - mobi.median_per_gb / airalo.median_per_gb;
        assert!(
            (0.35..0.75).contains(&discount),
            "MobiMatter discount {discount:.2}"
        );
        // MobiMatter holds more offers than Airalo.
        assert!(mobi.offer_share > airalo.offer_share);
        // Sorted ascending by median.
        for w in cmp.windows(2) {
            assert!(w[0].median_per_gb <= w[1].median_per_gb);
        }
    }

    #[test]
    fn worldwide_airalo_median_is_near_paper_value() {
        let (m, d) = snapshot(76);
        let medians = median_per_gb_by_country(&d, m.airalo());
        let values: Vec<f64> = medians.values().copied().collect();
        let med = median(&values).unwrap();
        assert!(
            (5.0..11.0).contains(&med),
            "worldwide median $/GB {med:.2} (paper: 7.9)"
        );
    }

    #[test]
    fn central_america_lands_in_top_deciles() {
        let (m, d) = snapshot(0);
        let medians = median_per_gb_by_country(&d, m.airalo());
        let values: Vec<f64> = medians.values().copied().collect();
        let cuts = decile_thresholds(&values);
        assert_eq!(cuts.len(), 9);
        for w in cuts.windows(2) {
            assert!(w[1] >= w[0], "deciles must be monotone");
        }
        let ca: Vec<f64> = medians
            .iter()
            .filter(|(c, _)| c.is_central_america())
            .map(|(_, v)| *v)
            .collect();
        if !ca.is_empty() {
            let ca_med = median(&ca).unwrap();
            assert!(
                ca_med > cuts[6],
                "Central America ({ca_med:.1}) above the 70th pct"
            );
        }
    }

    #[test]
    fn asia_median_moves_between_feb_and_may() {
        let (m, feb) = snapshot(0);
        let may = Crawler::new(Vantage::NewJersey).crawl(&m, 80);
        let med_of = |d: &CrawlDay| {
            let boxes = continent_boxplots(d, m.airalo());
            boxes
                .iter()
                .find(|(c, _)| *c == Continent::Asia)
                .map(|(_, b)| b.median)
                .unwrap()
        };
        let delta = med_of(&may) / med_of(&feb);
        assert!(delta > 1.08, "Asia drift {delta:.3}");
    }

    #[test]
    fn size_price_groups_by_bmno_and_is_sorted() {
        let (m, d) = snapshot(0);
        let groups = size_price_by_bmno(&d, m.airalo(), 5.0);
        assert!(!groups.is_empty());
        for countries in groups.values() {
            for points in countries.values() {
                for p in points {
                    assert!(p.0 <= 5.0, "size filter");
                }
                for w in points.windows(2) {
                    assert!(w[0].0 <= w[1].0, "sorted by size");
                }
                // A catalogue can list several plans of the same size
                // (validity variants); monotonicity holds on the cheapest
                // plan per size.
                let mut cheapest: BTreeMap<u64, f64> = BTreeMap::new();
                for (gb, price) in points {
                    let key = (*gb * 10.0) as u64;
                    let e = cheapest.entry(key).or_insert(f64::INFINITY);
                    *e = e.min(*price);
                }
                let mins: Vec<f64> = cheapest.values().copied().collect();
                for w in mins.windows(2) {
                    assert!(w[0] < w[1], "cheapest price grows with size: {mins:?}");
                }
            }
        }
    }

    #[test]
    fn same_bmno_different_country_prices_differ() {
        // Fig. 19's point: Play-backed plans cost differently in Georgia
        // vs Spain.
        let (m, d) = snapshot(0);
        let groups = size_price_by_bmno(&d, m.airalo(), 5.0);
        if let Some(play) = groups.get(&1) {
            if let (Some(geo), Some(esp)) = (play.get(&Country::GEO), play.get(&Country::ESP)) {
                let price_of = |pts: &Vec<(f64, f64)>, gb: f64| {
                    pts.iter().find(|(g, _)| *g == gb).map(|(_, p)| *p)
                };
                if let (Some(a), Some(b)) = (price_of(geo, 5.0), price_of(esp, 5.0)) {
                    assert!((a - b).abs() > 0.01, "same-b-MNO prices should differ");
                }
            }
        }
    }
}
