//! The daily crawler (§3.3).
//!
//! The paper "conducted daily retrievals of eSIM offers over a four-month
//! period from February to May 2024" and additionally crawled "at three
//! different physical locations (Spain, New Jersey, and UAE) … to
//! investigate potential price discrimination tactics" — finding none.
//! The crawler here samples the synthetic market the same way: one snapshot
//! per day per vantage, where the vantage *could* influence prices but (as
//! in reality) does not.

use crate::market::Market;
use crate::offer::EsimOffer;
use roam_geo::Country;

/// Where the crawler runs from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vantage {
    /// Madrid, Spain.
    Madrid,
    /// Abu Dhabi, UAE.
    AbuDhabi,
    /// New Jersey, USA.
    NewJersey,
}

impl Vantage {
    /// All vantage points of the study.
    pub const ALL: [Vantage; 3] = [Vantage::Madrid, Vantage::AbuDhabi, Vantage::NewJersey];

    /// The country the vantage sits in.
    #[must_use]
    pub fn country(&self) -> Country {
        match self {
            Vantage::Madrid => Country::ESP,
            Vantage::AbuDhabi => Country::ARE,
            Vantage::NewJersey => Country::USA,
        }
    }
}

/// One crawled offer: the catalogue entry plus the price seen that day.
#[derive(Debug, Clone, Copy)]
pub struct CrawlRecord {
    /// The catalogue offer.
    pub offer: EsimOffer,
    /// Price observed on the crawl day, USD.
    pub price_usd: f64,
}

impl CrawlRecord {
    /// $/GB at the observed price.
    #[must_use]
    pub fn per_gb(&self) -> f64 {
        self.price_usd / self.offer.data_gb
    }
}

/// A full day of crawling.
#[derive(Debug)]
pub struct CrawlDay {
    /// Day index (0 = 2024-02-14).
    pub day: u32,
    /// Vantage the crawl ran from.
    pub vantage: Vantage,
    /// Everything the aggregator listed that day.
    pub records: Vec<CrawlRecord>,
}

impl CrawlDay {
    /// Human-readable date for the day index (the crawl ran 2024-02-14 to
    /// 2024-05-31, 108 days).
    #[must_use]
    pub fn date_label(&self) -> String {
        // Days per month from Feb 14: Feb has 16 days left (leap year),
        // then Mar 31, Apr 30, May 31.
        let mut d = self.day;
        for (name, len, first) in [
            ("02", 16u32, 14u32),
            ("03", 31, 1),
            ("04", 30, 1),
            ("05", 31, 1),
        ] {
            if d < len {
                return format!("2024-{name}-{:02}", first + d);
            }
            d -= len;
        }
        format!("2024-06-{:02}", d + 1)
    }
}

/// The crawler.
#[derive(Debug)]
pub struct Crawler {
    vantage: Vantage,
}

impl Crawler {
    /// A crawler at a vantage point.
    #[must_use]
    pub fn new(vantage: Vantage) -> Self {
        Crawler { vantage }
    }

    /// Crawl the market on `day`. Prices come from the market's pricing
    /// function — identical regardless of vantage, which is exactly what
    /// the discrimination check verifies.
    #[must_use]
    pub fn crawl(&self, market: &Market, day: u32) -> CrawlDay {
        let records = market
            .offers()
            .iter()
            .map(|o| CrawlRecord {
                offer: *o,
                price_usd: market.price_on_day(o, day),
            })
            .collect();
        CrawlDay {
            day,
            vantage: self.vantage,
            records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crawl_covers_the_whole_catalogue() {
        let m = Market::generate(1);
        let day = Crawler::new(Vantage::NewJersey).crawl(&m, 0);
        assert_eq!(day.records.len(), m.offers().len());
    }

    #[test]
    fn no_price_discrimination_across_vantages() {
        let m = Market::generate(1);
        let a = Crawler::new(Vantage::Madrid).crawl(&m, 50);
        let b = Crawler::new(Vantage::AbuDhabi).crawl(&m, 50);
        let c = Crawler::new(Vantage::NewJersey).crawl(&m, 50);
        for ((x, y), z) in a.records.iter().zip(&b.records).zip(&c.records) {
            assert_eq!(x.price_usd, y.price_usd);
            assert_eq!(y.price_usd, z.price_usd);
        }
    }

    #[test]
    fn same_day_crawls_are_reproducible() {
        let m = Market::generate(1);
        let a = Crawler::new(Vantage::Madrid).crawl(&m, 10);
        let b = Crawler::new(Vantage::Madrid).crawl(&m, 10);
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.price_usd, y.price_usd);
        }
    }

    #[test]
    fn date_labels_span_feb_to_may() {
        let mk = |day| CrawlDay {
            day,
            vantage: Vantage::Madrid,
            records: vec![],
        };
        assert_eq!(mk(0).date_label(), "2024-02-14");
        assert_eq!(mk(15).date_label(), "2024-02-29", "2024 is a leap year");
        assert_eq!(mk(16).date_label(), "2024-03-01");
        assert_eq!(mk(46).date_label(), "2024-03-31");
        assert_eq!(mk(47).date_label(), "2024-04-01");
        assert_eq!(mk(107).date_label(), "2024-05-31");
    }

    #[test]
    fn per_gb_uses_observed_price() {
        let m = Market::generate(1);
        let day = Crawler::new(Vantage::Madrid).crawl(&m, 80);
        let r = &day.records[0];
        assert!((r.per_gb() - r.price_usd / r.offer.data_gb).abs() < 1e-12);
    }
}
