//! Trip-cost advisor: the downstream-user API of the economics layer.
//!
//! The paper's §6 comparison (Airalo vs competitors vs local SIMs) answers
//! a question every traveller asks: *what should I actually buy for this
//! trip?* This module operationalises it: given an itinerary (countries and
//! per-country data needs), rank the options — per-country eSIM plans from
//! any provider, and the local-SIM baseline where one is known — by total
//! cost, respecting plan sizes and validity windows.

use crate::crawler::CrawlDay;
use crate::localsim::{local_sim_offers, LocalSimOffer};
use crate::market::{Market, ProviderId};
use roam_geo::Country;

/// One leg of a trip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TripLeg {
    /// Destination.
    pub country: Country,
    /// Days spent there.
    pub days: u16,
    /// Data needed there, GB.
    pub data_gb: f64,
}

/// A purchase recommendation for one leg.
#[derive(Debug, Clone)]
pub struct LegOption {
    /// The leg it covers.
    pub leg: TripLeg,
    /// Who sells it ("local SIM" for the physical baseline).
    pub seller: String,
    /// Plan size bought (may exceed the need: plans are discrete).
    pub plan_gb: f64,
    /// Total price, USD.
    pub price_usd: f64,
    /// Effective $/GB *of the data actually needed*.
    pub effective_per_gb: f64,
}

/// The advisor's answer for a whole trip.
#[derive(Debug, Clone)]
pub struct TripPlan {
    /// Cheapest option per leg, in itinerary order.
    pub legs: Vec<LegOption>,
    /// Sum over legs, USD.
    pub total_usd: f64,
}

/// Find the cheapest plan a provider sells for `leg` on this crawl day:
/// the least-cost single plan that covers the data need and the stay.
fn best_plan_from(day: &CrawlDay, provider: ProviderId, leg: TripLeg) -> Option<(f64, f64)> {
    day.records
        .iter()
        .filter(|r| {
            r.offer.provider == provider
                && r.offer.country == leg.country
                && r.offer.data_gb >= leg.data_gb
                && u32::from(r.offer.validity_days) >= u32::from(leg.days)
        })
        .map(|r| (r.offer.data_gb, r.price_usd))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("prices are never NaN"))
}

/// Rank all options for one leg, cheapest first.
#[must_use]
pub fn leg_options(market: &Market, day: &CrawlDay, leg: TripLeg) -> Vec<LegOption> {
    assert!(leg.data_gb > 0.0, "a leg needs a positive data requirement");
    let mut out = Vec::new();
    for pid in 0..market.provider_count() {
        let pid = ProviderId(pid as u32);
        if let Some((plan_gb, price)) = best_plan_from(day, pid, leg) {
            out.push(LegOption {
                leg,
                seller: market.provider(pid).name.clone(),
                plan_gb,
                price_usd: price,
                effective_per_gb: price / leg.data_gb,
            });
        }
    }
    if let Some(local) = local_sim_offers()
        .iter()
        .find(|o: &&LocalSimOffer| o.country == leg.country && o.data_gb >= leg.data_gb)
    {
        out.push(LegOption {
            leg,
            seller: "local SIM".into(),
            plan_gb: local.data_gb,
            price_usd: local.total_usd(),
            effective_per_gb: local.total_usd() / leg.data_gb,
        });
    }
    out.sort_by(|a, b| {
        a.price_usd
            .partial_cmp(&b.price_usd)
            .expect("no NaN prices")
    });
    out
}

/// Recommend the cheapest coverage for a whole itinerary. Legs with no
/// available option are skipped (and absent from the result) — callers can
/// detect that by comparing lengths.
#[must_use]
pub fn plan_trip(market: &Market, day: &CrawlDay, itinerary: &[TripLeg]) -> TripPlan {
    let mut legs = Vec::new();
    let mut total = 0.0;
    for leg in itinerary {
        if let Some(best) = leg_options(market, day, *leg).into_iter().next() {
            total += best.price_usd;
            legs.push(best);
        }
    }
    TripPlan {
        legs,
        total_usd: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawler::{Crawler, Vantage};

    fn setup() -> (Market, CrawlDay) {
        let m = Market::generate(1);
        let d = Crawler::new(Vantage::Madrid).crawl(&m, 30);
        (m, d)
    }

    #[test]
    fn options_are_sorted_and_cover_the_need() {
        let (m, d) = setup();
        let leg = TripLeg {
            country: Country::ESP,
            days: 7,
            data_gb: 3.0,
        };
        let options = leg_options(&m, &d, leg);
        assert!(
            options.len() > 10,
            "most providers serve Spain: {}",
            options.len()
        );
        for w in options.windows(2) {
            assert!(w[0].price_usd <= w[1].price_usd);
        }
        for o in &options {
            assert!(o.plan_gb >= 3.0, "{:?} does not cover the need", o);
            assert!((o.effective_per_gb - o.price_usd / o.leg.data_gb).abs() < 1e-9);
        }
    }

    #[test]
    fn local_sim_appears_and_often_wins_big_bundles() {
        let (m, d) = setup();
        let leg = TripLeg {
            country: Country::ESP,
            days: 7,
            data_gb: 20.0,
        };
        let options = leg_options(&m, &d, leg);
        let local = options
            .iter()
            .find(|o| o.seller == "local SIM")
            .expect("ESP has one");
        assert_eq!(local.plan_gb, 40.0);
        // For a 20 GB need the 40 GB/$22.59 local bundle should beat most
        // aggregator 20 GB plans.
        let rank = options
            .iter()
            .position(|o| o.seller == "local SIM")
            .expect("present");
        assert!(rank <= 3, "local SIM ranked {rank}");
    }

    #[test]
    fn validity_window_filters_short_plans() {
        let (m, d) = setup();
        // A 30-day stay excludes 7- and 15-day plans.
        let long = TripLeg {
            country: Country::DEU,
            days: 30,
            data_gb: 1.0,
        };
        for o in leg_options(&m, &d, long) {
            if o.seller != "local SIM" {
                assert!(o.plan_gb > 0.0);
            }
        }
        // Sanity: a 7-day stay has at least as many options.
        let short = TripLeg {
            country: Country::DEU,
            days: 7,
            data_gb: 1.0,
        };
        assert!(leg_options(&m, &d, short).len() >= leg_options(&m, &d, long).len());
    }

    #[test]
    fn trip_totals_add_up() {
        let (m, d) = setup();
        let itinerary = [
            TripLeg {
                country: Country::ESP,
                days: 5,
                data_gb: 2.0,
            },
            TripLeg {
                country: Country::DEU,
                days: 5,
                data_gb: 2.0,
            },
            TripLeg {
                country: Country::THA,
                days: 10,
                data_gb: 5.0,
            },
        ];
        let plan = plan_trip(&m, &d, &itinerary);
        assert_eq!(plan.legs.len(), 3);
        let sum: f64 = plan.legs.iter().map(|l| l.price_usd).sum();
        assert!((plan.total_usd - sum).abs() < 1e-9);
    }

    #[test]
    fn impossible_legs_are_skipped() {
        let (m, d) = setup();
        let itinerary = [TripLeg {
            country: Country::ESP,
            days: 5,
            data_gb: 10_000.0,
        }];
        let plan = plan_trip(&m, &d, &itinerary);
        assert!(plan.legs.is_empty());
        assert_eq!(plan.total_usd, 0.0);
    }
}
