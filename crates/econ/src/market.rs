//! The synthetic offer universe.
//!
//! Deterministic generation (a seed fully determines every offer) of a
//! market shaped like the eSIMDB snapshot the paper crawled: ~54 providers,
//! ~76 k offers, with named providers calibrated to the medians of Fig. 17
//! and Airalo's geography calibrated to Figs. 16/18.

use crate::offer::EsimOffer;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roam_geo::{Continent, Country};

/// Index of a provider in the market.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProviderId(pub u32);

/// A provider's generation parameters.
#[derive(Debug, Clone)]
pub struct ProviderSpec {
    /// Brand name.
    pub name: String,
    /// Number of destination countries covered.
    pub footprint: usize,
    /// Target median price per GB (USD) across countries.
    pub median_per_gb: f64,
    /// Plans listed per country.
    pub plans_per_country: usize,
}

/// Plan sizes aggregators actually sell (GB).
const PLAN_SIZES: [f64; 6] = [1.0, 2.0, 3.0, 5.0, 10.0, 20.0];

/// Global level calibration: `median_per_gb` is the *brand anchor*, but the
/// per-plan $/GB of a catalogue averages below it (size discounts, cheap
/// continents). This factor re-centres the generated per-country medians on
/// the anchors (Airalo worldwide ≈ $7.9/GB, Fig. 17's provider ordering).
const LEVEL: f64 = 1.47;

/// The generated market.
#[derive(Debug)]
pub struct Market {
    providers: Vec<ProviderSpec>,
    offers: Vec<EsimOffer>,
    airalo: ProviderId,
}

impl Market {
    /// Generate the calibrated universe from a seed.
    #[must_use]
    pub fn generate(seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut providers = Vec::new();
        let mut offers = Vec::new();

        // --- named providers with paper-reported anchors -----------------
        // (name, footprint countries, median $/GB, plans per country)
        let named: [(&str, usize, f64, usize); 6] = [
            ("Airalo", 120, 7.9, 11),
            ("MobiMatter", 118, 3.2, 20), // ~60% cheaper than Airalo, most offers
            ("Airhub", 110, 2.3, 8),
            ("Keepgo", 108, 16.2, 6),
            ("Nomad", 100, 6.0, 9),
            ("Holafly", 90, 10.5, 7),
        ];
        for (name, fp, med, plans) in named {
            providers.push(ProviderSpec {
                name: name.to_string(),
                footprint: fp,
                median_per_gb: med,
                plans_per_country: plans,
            });
        }
        // --- the long tail up to 54 providers -----------------------------
        for i in providers.len()..54 {
            providers.push(ProviderSpec {
                name: format!("esim-provider-{i:02}"),
                footprint: rng.gen_range(30..115),
                median_per_gb: rng.gen_range(3.0..14.0),
                plans_per_country: rng.gen_range(6..16),
            });
        }

        let airalo = ProviderId(0);
        for (pid, spec) in providers.iter().enumerate() {
            let pid = ProviderId(pid as u32);
            let countries = pick_countries(spec.footprint, &mut rng);
            for country in countries {
                let factor = country_factor(pid == airalo, country, &mut rng);
                for p in 0..spec.plans_per_country {
                    let gb = PLAN_SIZES[p % PLAN_SIZES.len()];
                    // Offset validity by the catalogue cycle so size and
                    // validity are not collinear across the market.
                    let validity = [7u16, 15, 30][(p + p / PLAN_SIZES.len()) % 3];
                    // Sub-linear size→price: bigger plans are cheaper per
                    // GB, with per-country exponent wobble that produces
                    // Fig. 19's "unjustified" spread.
                    let exponent =
                        0.78 + (u32::from(country.alpha2().as_bytes()[0]) % 7) as f64 * 0.02;
                    let price = LEVEL
                        * spec.median_per_gb
                        * factor
                        * gb.powf(exponent)
                        * rng.gen_range(0.85..1.15);
                    offers.push(EsimOffer {
                        provider: pid,
                        country,
                        data_gb: gb,
                        validity_days: validity,
                        base_price_usd: (price * 100.0).round() / 100.0,
                        bmno: (pid == airalo).then(|| airalo_bmno_index(country)),
                    });
                }
            }
        }
        Market {
            providers,
            offers,
            airalo,
        }
    }

    /// All offers.
    #[must_use]
    pub fn offers(&self) -> &[EsimOffer] {
        &self.offers
    }

    /// Provider spec by id.
    #[must_use]
    pub fn provider(&self, id: ProviderId) -> &ProviderSpec {
        &self.providers[id.0 as usize]
    }

    /// Number of providers.
    #[must_use]
    pub fn provider_count(&self) -> usize {
        self.providers.len()
    }

    /// Find a provider by name.
    #[must_use]
    pub fn find_provider(&self, name: &str) -> Option<ProviderId> {
        self.providers
            .iter()
            .position(|p| p.name == name)
            .map(|i| ProviderId(i as u32))
    }

    /// The Airalo provider id.
    #[must_use]
    pub fn airalo(&self) -> ProviderId {
        self.airalo
    }

    /// Price of an offer on a given crawl day (0 = Feb 14, 2024). This is
    /// where Fig. 16's temporal movements live:
    ///
    /// * Asian plans drift +18% between day 40 and day 55 (the Apr-1 step
    ///   from ~$5.5 to ~$6.5 per GB);
    /// * cheap African plans (bottom quartile) rise steadily after day 30;
    /// * everything else only wiggles within ±2%.
    #[must_use]
    pub fn price_on_day(&self, offer: &EsimOffer, day: u32) -> f64 {
        let mut price = offer.base_price_usd;
        match offer.country.continent() {
            Continent::Asia => {
                // The paper observes the higher median *at* 04-01 (day 47):
                // ramp through the second half of March.
                let ramp = ((day.saturating_sub(30)) as f64 / 17.0).clamp(0.0, 1.0);
                price *= 1.0 + 0.18 * ramp;
            }
            // The cheap-African-plans floor rise (Fig. 16): applies to the
            // bottom of the distribution (below ~LEVEL × $5/GB).
            Continent::Africa if offer.per_gb() < 5.0 * LEVEL => {
                let ramp = ((day.saturating_sub(30)) as f64 / 45.0).clamp(0.0, 1.0);
                price *= 1.0 + 0.40 * ramp;
            }
            _ => {}
        }
        // Deterministic per-(offer, day) wiggle, ±2%.
        let h = wiggle_hash(offer, day);
        price * (1.0 + ((h % 400) as f64 / 10_000.0 - 0.02))
    }
}

/// Stable per-offer/day hash for the price wiggle (no RNG: the crawler must
/// see identical prices from every vantage point).
fn wiggle_hash(offer: &EsimOffer, day: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in [
        offer.provider.0 as u64,
        offer.country.alpha3().as_bytes()[0] as u64,
        offer.country.alpha3().as_bytes()[2] as u64,
        offer.data_gb as u64,
        offer.validity_days as u64,
        day as u64,
    ] {
        h ^= b;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Choose `n` destination countries (Airalo-like providers cover nearly the
/// whole gazetteer; smaller ones a random subset).
fn pick_countries(n: usize, rng: &mut SmallRng) -> Vec<Country> {
    let mut all: Vec<Country> = Country::ALL.to_vec();
    // Fisher–Yates prefix shuffle.
    let take = n.min(all.len());
    for i in 0..take {
        let j = rng.gen_range(i..all.len());
        all.swap(i, j);
    }
    all.truncate(take);
    all
}

/// The continent/country pricing factor. For Airalo, calibrated to the
/// paper's geography: Europe cheap, North America about double Europe
/// (dragged up by Central America), Asia in between.
fn country_factor(is_airalo: bool, country: Country, rng: &mut SmallRng) -> f64 {
    let continent = match country.continent() {
        Continent::Europe => 0.57,
        Continent::Asia => 0.73,
        Continent::Africa => 0.80,
        Continent::NorthAmerica => {
            if country.is_central_america() {
                1.75
            } else {
                0.95
            }
        }
        Continent::Oceania => 1.00,
        Continent::SouthAmerica => 0.92,
    };
    let spread = if is_airalo {
        rng.gen_range(0.72..1.55)
    } else {
        rng.gen_range(0.7..1.4)
    };
    continent * spread
}

/// Which of Airalo's six b-MNOs backs a country's plans (Table 2 for the
/// measured countries; everything else assigned round-robin by region).
fn airalo_bmno_index(country: Country) -> u8 {
    use Country::*;
    match country {
        ARE | JPN | PAK | MYS | CHN => 0, // Singtel
        GBR | DEU | GEO | ESP => 1,       // Play
        QAT | SAU | TUR | EGY => 2,       // Telna
        MDA | KEN | FIN | AZE => 3,       // Telecom Italia
        ITA | USA => 4,                   // Orange
        FRA | UZB => 5,                   // Polkomtel
        other => other.alpha3().as_bytes()[1] % 6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_has_paper_scale() {
        let m = Market::generate(1);
        assert_eq!(m.provider_count(), 54);
        let n = m.offers().len();
        assert!((40_000..110_000).contains(&n), "offer count {n}");
        // Airalo's catalogue is thousands of plans.
        let airalo_offers = m
            .offers()
            .iter()
            .filter(|o| o.provider == m.airalo())
            .count();
        assert!(
            (800..3000).contains(&airalo_offers),
            "airalo offers {airalo_offers}"
        );
    }

    #[test]
    fn named_providers_exist_with_anchored_medians() {
        let m = Market::generate(1);
        for (name, med) in [("Airhub", 2.3), ("Keepgo", 16.2), ("MobiMatter", 3.2)] {
            let id = m
                .find_provider(name)
                .unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(m.provider(id).median_per_gb, med);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Market::generate(7);
        let b = Market::generate(7);
        assert_eq!(a.offers().len(), b.offers().len());
        for (x, y) in a.offers().iter().zip(b.offers()) {
            assert_eq!(x, y);
        }
        let c = Market::generate(8);
        assert_ne!(a.offers()[0].base_price_usd, c.offers()[0].base_price_usd);
    }

    #[test]
    fn airalo_offers_carry_bmno_others_do_not() {
        let m = Market::generate(1);
        for o in m.offers() {
            if o.provider == m.airalo() {
                assert!(o.bmno.is_some());
                assert!(o.bmno.unwrap() < 6);
            } else {
                assert!(o.bmno.is_none());
            }
        }
    }

    #[test]
    fn table2_bmno_mapping_is_respected() {
        assert_eq!(airalo_bmno_index(Country::PAK), 0);
        assert_eq!(airalo_bmno_index(Country::DEU), 1);
        assert_eq!(airalo_bmno_index(Country::EGY), 2);
        assert_eq!(airalo_bmno_index(Country::KEN), 3);
        assert_eq!(airalo_bmno_index(Country::USA), 4);
        assert_eq!(airalo_bmno_index(Country::FRA), 5);
    }

    #[test]
    fn asia_prices_step_up_after_april() {
        let m = Market::generate(1);
        let offer = m
            .offers()
            .iter()
            .find(|o| o.country.continent() == Continent::Asia)
            .expect("asian offers exist");
        let feb = m.price_on_day(offer, 0);
        let may = m.price_on_day(offer, 80);
        assert!(may > feb * 1.10, "feb {feb} may {may}");
    }

    #[test]
    fn non_asian_prices_are_stable() {
        let m = Market::generate(1);
        let offer = m
            .offers()
            .iter()
            .find(|o| o.country.continent() == Continent::Europe)
            .expect("european offers exist");
        let feb = m.price_on_day(offer, 0);
        let may = m.price_on_day(offer, 80);
        assert!((may / feb - 1.0).abs() < 0.05, "feb {feb} may {may}");
    }

    #[test]
    fn prices_are_positive_and_plausible() {
        let m = Market::generate(3);
        for o in m.offers().iter().take(5000) {
            assert!(o.base_price_usd > 0.0);
            let per_gb = o.per_gb();
            assert!(
                (0.1..200.0).contains(&per_gb),
                "absurd $/GB {per_gb} for {o:?}"
            );
        }
    }
}
