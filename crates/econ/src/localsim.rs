//! The physical-SIM cost baseline (§6, Fig. 17's dashed line).
//!
//! "Discovering local SIM offerings is … challenging since no global
//! aggregator exists. Accordingly, we resort to online resources and
//! insights from volunteers travelling to countries of our experiments."
//! This table is that volunteer-collected baseline: one locally-bought
//! SIM offer per device-campaign country, with the two concrete data
//! points the paper quotes (Spain: 40 GB for $22.59; UAE: $15.72 SIM fee)
//! preserved verbatim.

use roam_geo::Country;

/// One locally-acquired physical-SIM offer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalSimOffer {
    /// Where it was bought.
    pub country: Country,
    /// Price of the bundle (data plan), USD.
    pub plan_usd: f64,
    /// One-off SIM card fee, USD (zero where the card is free).
    pub sim_fee_usd: f64,
    /// Included data, GB.
    pub data_gb: f64,
}

impl LocalSimOffer {
    /// Effective $/GB including the SIM fee.
    #[must_use]
    pub fn per_gb(&self) -> f64 {
        self.total_usd() / self.data_gb
    }

    /// Total money out of pocket.
    #[must_use]
    pub fn total_usd(&self) -> f64 {
        self.plan_usd + self.sim_fee_usd
    }
}

/// The volunteer-collected offers for the 10 device-campaign countries.
#[must_use]
pub fn local_sim_offers() -> Vec<LocalSimOffer> {
    vec![
        // The paper's two explicit data points:
        LocalSimOffer {
            country: Country::ESP,
            plan_usd: 22.59,
            sim_fee_usd: 0.0,
            data_gb: 40.0,
        },
        LocalSimOffer {
            country: Country::ARE,
            plan_usd: 13.60,
            sim_fee_usd: 15.72,
            data_gb: 6.0,
        },
        // Plausible local bundles for the remaining campaign countries.
        LocalSimOffer {
            country: Country::GEO,
            plan_usd: 9.50,
            sim_fee_usd: 1.80,
            data_gb: 25.0,
        },
        LocalSimOffer {
            country: Country::DEU,
            plan_usd: 19.99,
            sim_fee_usd: 0.0,
            data_gb: 20.0,
        },
        LocalSimOffer {
            country: Country::KOR,
            plan_usd: 27.00,
            sim_fee_usd: 0.0,
            data_gb: 30.0,
        },
        LocalSimOffer {
            country: Country::PAK,
            plan_usd: 4.30,
            sim_fee_usd: 0.70,
            data_gb: 25.0,
        },
        LocalSimOffer {
            country: Country::QAT,
            plan_usd: 13.70,
            sim_fee_usd: 8.20,
            data_gb: 12.0,
        },
        LocalSimOffer {
            country: Country::SAU,
            plan_usd: 16.00,
            sim_fee_usd: 9.30,
            data_gb: 15.0,
        },
        LocalSimOffer {
            country: Country::THA,
            plan_usd: 8.50,
            sim_fee_usd: 1.50,
            data_gb: 30.0,
        },
        LocalSimOffer {
            country: Country::GBR,
            plan_usd: 15.00,
            sim_fee_usd: 0.0,
            data_gb: 25.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use roam_stats::median;

    #[test]
    fn paper_quoted_offers_are_verbatim() {
        let offers = local_sim_offers();
        let esp = offers.iter().find(|o| o.country == Country::ESP).unwrap();
        assert_eq!(esp.plan_usd, 22.59);
        assert_eq!(esp.data_gb, 40.0);
        let are = offers.iter().find(|o| o.country == Country::ARE).unwrap();
        assert_eq!(are.sim_fee_usd, 15.72);
    }

    #[test]
    fn covers_all_ten_device_campaign_countries() {
        let offers = local_sim_offers();
        assert_eq!(offers.len(), 10);
        let mut countries: Vec<Country> = offers.iter().map(|o| o.country).collect();
        countries.sort();
        countries.dedup();
        assert_eq!(countries.len(), 10, "one offer per country");
    }

    #[test]
    fn local_sims_beat_airalo_on_per_gb() {
        // The Fig. 17 shape: local $/GB sits left of every aggregator CDF.
        let offers = local_sim_offers();
        let per_gb: Vec<f64> = offers.iter().map(LocalSimOffer::per_gb).collect();
        let med = median(&per_gb).unwrap();
        assert!(
            med < 2.5,
            "local SIM median $/GB {med:.2} must undercut aggregators"
        );
    }

    #[test]
    fn totals_include_sim_fee() {
        let o = LocalSimOffer {
            country: Country::ARE,
            plan_usd: 10.0,
            sim_fee_usd: 15.72,
            data_gb: 5.0,
        };
        assert_eq!(o.total_usd(), 25.72);
        assert!((o.per_gb() - 5.144).abs() < 1e-9);
    }
}
