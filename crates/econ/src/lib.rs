//! eSIM market economics (§6, Figs. 16–19).
//!
//! The paper's crawler scraped eSIMDB daily for four months (54 providers,
//! 75,875 offers over 244 regions) and compared Airalo against both its
//! aggregator competitors and locally-bought physical SIMs. None of that
//! data is redistributable, so this crate generates a **synthetic offer
//! universe calibrated to the paper's published anchors**:
//!
//! * per-continent Airalo medians (Europe ≈ $4.5/GB, ~half of North
//!   America; a Central-America cluster of expensive plans; worldwide
//!   median ≈ $7.9/GB);
//! * provider medians spanning Airhub's $2.3 to Keepgo's $16.2, with
//!   MobiMatter ~60% cheaper than Airalo and holding ~5% of all offers to
//!   Airalo's ~3%;
//! * the Asia median drift from ~$5.5 to ~$6.5 around April 1st and the
//!   Africa 25th-percentile rise (Fig. 16's only real movements);
//! * no vantage-point price discrimination (Madrid/Abu Dhabi/New Jersey
//!   crawls see identical prices);
//! * non-linear size→price within a b-MNO, differing across countries that
//!   share that b-MNO (Fig. 19).
//!
//! [`market::Market`] generates the universe, [`crawler`] samples it daily
//! from a vantage point, and [`analytics`] reduces snapshots to the exact
//! series each figure plots. [`localsim`] carries the volunteer-collected
//! physical-SIM baseline of Fig. 17.

pub mod advisor;
pub mod analytics;
pub mod crawler;
pub mod localsim;
pub mod market;
pub mod offer;

pub use advisor::{leg_options, plan_trip, LegOption, TripLeg, TripPlan};
pub use analytics::{
    continent_boxplots, decile_thresholds, median_per_gb_by_country, provider_comparison,
    size_price_by_bmno, ProviderSummary,
};
pub use crawler::{CrawlDay, Crawler, Vantage};
pub use localsim::{local_sim_offers, LocalSimOffer};
pub use market::{Market, ProviderId, ProviderSpec};
pub use offer::EsimOffer;
