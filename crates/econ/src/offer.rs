//! The unit of the economics dataset: one eSIM plan offer.

use crate::market::ProviderId;
use roam_geo::Country;

/// One eSIM plan as an aggregator lists it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EsimOffer {
    /// Selling provider.
    pub provider: ProviderId,
    /// Destination country the plan covers.
    pub country: Country,
    /// Included data, GB.
    pub data_gb: f64,
    /// Validity window, days.
    pub validity_days: u16,
    /// Listed price at the base date, USD.
    pub base_price_usd: f64,
    /// For Airalo offers: index of the b-MNO backing the plan (Fig. 19
    /// groups by this). `None` for other providers, where the paper has no
    /// visibility.
    pub bmno: Option<u8>,
}

impl EsimOffer {
    /// Price per GB at the base date.
    #[must_use]
    pub fn per_gb(&self) -> f64 {
        self.base_price_usd / self.data_gb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_gb_is_price_over_size() {
        let o = EsimOffer {
            provider: ProviderId(0),
            country: Country::ESP,
            data_gb: 5.0,
            validity_days: 30,
            base_price_usd: 20.0,
            bmno: Some(1),
        };
        assert_eq!(o.per_gb(), 4.0);
    }
}
