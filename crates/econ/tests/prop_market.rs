//! Property tests for the economics pipeline: prices stay sane on every
//! crawl day and no vantage ever sees a different price.

use proptest::prelude::*;
use roam_econ::{Crawler, Market, Vantage};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prices_positive_on_every_day(seed in 0u64..50, day in 0u32..108, idx in any::<usize>()) {
        let market = Market::generate(seed);
        let offer = &market.offers()[idx % market.offers().len()];
        let p = market.price_on_day(offer, day);
        prop_assert!(p > 0.0);
        prop_assert!(p < offer.base_price_usd * 2.0, "no runaway drift: {p}");
        prop_assert!(p > offer.base_price_usd * 0.5);
    }

    #[test]
    fn vantage_never_affects_prices(seed in 0u64..20, day in 0u32..108) {
        let market = Market::generate(seed);
        let crawls: Vec<_> = Vantage::ALL
            .iter()
            .map(|v| Crawler::new(*v).crawl(&market, day))
            .collect();
        for w in crawls.windows(2) {
            for (a, b) in w[0].records.iter().zip(&w[1].records).take(500) {
                prop_assert_eq!(a.price_usd, b.price_usd);
            }
        }
    }

    #[test]
    fn prices_never_decrease_over_the_study(seed in 0u64..20, idx in any::<usize>()) {
        // The calibrated drifts are upward (Asia step, Africa floor rise);
        // the ±2% wiggle must never mask them into a >5% decline.
        let market = Market::generate(seed);
        let offer = &market.offers()[idx % market.offers().len()];
        let feb = market.price_on_day(offer, 0);
        let may = market.price_on_day(offer, 107);
        prop_assert!(may >= feb * 0.95, "feb {feb} → may {may}");
    }
}
