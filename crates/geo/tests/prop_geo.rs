//! Property tests: the great-circle distance must behave like a metric on
//! the sphere, because latency = distance is the simulator's bedrock.

use proptest::prelude::*;
use roam_geo::{GeoPoint, EARTH_RADIUS_KM};

fn arb_point() -> impl Strategy<Value = GeoPoint> {
    (-90.0f64..=90.0, -180.0f64..180.0).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

const HALF_CIRCUMFERENCE: f64 = std::f64::consts::PI * EARTH_RADIUS_KM;

proptest! {
    #[test]
    fn distance_is_symmetric(a in arb_point(), b in arb_point()) {
        let d1 = a.distance_km(b);
        let d2 = b.distance_km(a);
        prop_assert!((d1 - d2).abs() < 1e-6);
    }

    #[test]
    fn distance_is_nonnegative_and_bounded(a in arb_point(), b in arb_point()) {
        let d = a.distance_km(b);
        prop_assert!(d >= 0.0);
        prop_assert!(d <= HALF_CIRCUMFERENCE + 1.0, "no distance beyond antipodal: {d}");
    }

    #[test]
    fn distance_to_self_is_zero(a in arb_point()) {
        prop_assert!(a.distance_km(a) < 1e-9);
    }

    #[test]
    fn triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        let direct = a.distance_km(c);
        let via = a.distance_km(b) + b.distance_km(c);
        prop_assert!(direct <= via + 1e-6, "detour shorter than geodesic");
    }

    #[test]
    fn midpoint_is_equidistant_and_on_the_way(a in arb_point(), b in arb_point()) {
        let m = a.midpoint(b);
        let da = a.distance_km(m);
        let db = b.distance_km(m);
        prop_assert!((da - db).abs() < 1.0, "midpoint skewed: {da} vs {db}");
        let total = a.distance_km(b);
        prop_assert!((da + db - total).abs() < 1.0, "midpoint off the geodesic");
    }

    #[test]
    fn constructed_points_are_canonical(lat in -500.0f64..500.0, lon in -1000.0f64..1000.0) {
        let p = GeoPoint::new(lat, lon);
        prop_assert!(p.lat().abs() <= 90.0);
        prop_assert!(p.lon() > -180.0 && p.lon() <= 180.0);
    }
}
