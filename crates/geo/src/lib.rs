//! Geodesy, countries and cities for the `roamsim` workspace.
//!
//! This crate is the lowest layer of the simulator: it knows where things are
//! on the planet and how far apart they are along the great circle. Everything
//! above it (link latencies, SGW↔PGW tunnel lengths, DNS anycast selection,
//! per-continent price analytics) is driven by these primitives.
//!
//! The gazetteer is a static, dependency-free table: the paper's analysis
//! needs country centroids (Fig. 3, Fig. 18), the specific cities hosting
//! SGWs, PGWs and service-provider edges (Figs. 3–4, §4.3), and a continent
//! partition (Fig. 16). Coordinates are rounded to ~0.1°, which is far below
//! the precision that matters for wide-area propagation delay (0.1° ≈ 11 km ≈
//! 0.1 ms RTT over fiber).
//!
//! # Example
//!
//! ```
//! use roam_geo::{City, Country, GeoPoint};
//!
//! let warsaw = City::Warsaw.location();
//! let amsterdam = City::Amsterdam.location();
//! let km = warsaw.distance_km(amsterdam);
//! assert!((1090.0..1200.0).contains(&km), "Warsaw–Amsterdam ≈ 1100 km, got {km}");
//! assert_eq!(Country::POL.continent(), roam_geo::Continent::Europe);
//! ```

pub mod city;
pub mod coord;
pub mod country;

pub use city::City;
pub use coord::GeoPoint;
pub use country::{Continent, Country};

/// Mean Earth radius in kilometres (IUGG value).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Propagation speed of light in optical fiber, km per millisecond.
///
/// Light travels at roughly 2/3 of c in silica fiber: ~204 km/ms, i.e. about
/// 4.9 µs per km one-way. Used by `roam-netsim` to turn geodesic distances
/// into link delays.
pub const FIBER_KM_PER_MS: f64 = 204.0;

/// One-way propagation delay over fiber for a geodesic distance, in
/// milliseconds, before any circuitousness factor is applied.
#[must_use]
pub fn fiber_delay_ms(distance_km: f64) -> f64 {
    distance_km / FIBER_KM_PER_MS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fiber_delay_is_linear_in_distance() {
        assert!((fiber_delay_ms(204.0) - 1.0).abs() < 1e-9);
        assert!((fiber_delay_ms(2040.0) - 10.0).abs() < 1e-9);
        assert_eq!(fiber_delay_ms(0.0), 0.0);
    }

    #[test]
    fn transatlantic_delay_is_plausible() {
        // London -> New York is ~5570 km; one-way fiber floor ~27 ms.
        let d = City::London
            .location()
            .distance_km(City::NewYork.location());
        let ms = fiber_delay_ms(d);
        assert!((25.0..31.0).contains(&ms), "got {ms} ms over {d} km");
    }
}
