//! City gazetteer: every site that hosts a simulated network element.
//!
//! Three kinds of places appear in the paper and therefore here:
//!
//! * **volunteer / SGW cities** — where measurements were taken (the black
//!   triangles of Fig. 3 approximate the SGW inside the v-MNO);
//! * **PGW / breakout cities** — Amsterdam and Ashburn (Packet Host), Lille
//!   and Wattrelos (OVH), London (Wireless Logic), Dallas (Webbing),
//!   Singapore (Singtel HR), Seoul/Goyang/Cheonan (Korean PGWs), Dublin
//!   (emnify validation, §4.3.1), Tulsa / Fort Worth (Google DNS, §5.1);
//! * **service-provider edge cities** — where Google/Facebook/Ookla/CDN edge
//!   nodes sit, "strategically located close to most users" (§5.1).

use crate::{Country, GeoPoint};

macro_rules! cities {
    ($( $v:ident, $name:literal, $country:ident, $lat:literal, $lon:literal; )+) => {
        /// A city hosting at least one simulated network element.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub enum City {
            $(#[doc = $name] $v,)+
        }

        impl City {
            /// Every city in the gazetteer.
            pub const ALL: &'static [City] = &[$(City::$v,)+];

            /// Human-readable name.
            #[must_use]
            pub fn name(&self) -> &'static str {
                match self { $(City::$v => $name,)+ }
            }

            /// Country the city belongs to.
            #[must_use]
            pub fn country(&self) -> Country {
                match self { $(City::$v => Country::$country,)+ }
            }

            /// Geographic location.
            #[must_use]
            pub fn location(&self) -> GeoPoint {
                match self { $(City::$v => GeoPoint::new($lat, $lon),)+ }
            }
        }
    };
}

cities! {
    // ---- volunteer / SGW cities (one per measured country) ----
    Dubai,        "Dubai",         ARE,  25.2,  55.3;
    Tokyo,        "Tokyo",         JPN,  35.7,  139.7;
    Karachi,      "Karachi",       PAK,  24.9,  67.0;
    KualaLumpur,  "Kuala Lumpur",  MYS,  3.1,   101.7;
    Shanghai,     "Shanghai",      CHN,  31.2,  121.5;
    London,       "London",        GBR,  51.5,  -0.1;
    Berlin,       "Berlin",        DEU,  52.5,  13.4;
    Tbilisi,      "Tbilisi",       GEO,  41.7,  44.8;
    Madrid,       "Madrid",        ESP,  40.4,  -3.7;
    Doha,         "Doha",          QAT,  25.3,  51.5;
    Riyadh,       "Riyadh",        SAU,  24.7,  46.7;
    Istanbul,     "Istanbul",      TUR,  41.0,  29.0;
    Cairo,        "Cairo",         EGY,  30.0,  31.2;
    Chisinau,     "Chisinau",      MDA,  47.0,  28.9;
    Nairobi,      "Nairobi",       KEN,  -1.3,  36.8;
    Helsinki,     "Helsinki",      FIN,  60.2,  24.9;
    Baku,         "Baku",          AZE,  40.4,  49.9;
    Rome,         "Rome",          ITA,  41.9,  12.5;
    NewYork,      "New York",      USA,  40.7,  -74.0;
    Paris,        "Paris",         FRA,  48.9,  2.4;
    Tashkent,     "Tashkent",      UZB,  41.3,  69.2;
    Seoul,        "Seoul",         KOR,  37.6,  127.0;
    Male,         "Malé",          MDV,  4.2,   73.5;
    Bangkok,      "Bangkok",       THA,  13.8,  100.5;
    // ---- PGW / breakout / core cities ----
    Singapore,    "Singapore",     SGP,  1.35,  103.82;
    Amsterdam,    "Amsterdam",     NLD,  52.4,  4.9;
    Ashburn,      "Ashburn",       USA,  39.0,  -77.5;
    Lille,        "Lille",         FRA,  50.6,  3.1;
    Wattrelos,    "Wattrelos",     FRA,  50.7,  3.2;
    Dallas,       "Dallas",        USA,  32.8,  -96.8;
    FortWorth,    "Fort Worth",    USA,  32.8,  -97.3;
    Tulsa,        "Tulsa",         USA,  36.2,  -95.9;
    Goyang,       "Goyang",        KOR,  37.7,  126.8;
    Cheonan,      "Cheonan",       KOR,  36.8,  127.1;
    Dublin,       "Dublin",        IRL,  53.3,  -6.3;
    Warsaw,       "Warsaw",        POL,  52.2,  21.0;
    // ---- service-provider edge / transit cities ----
    Frankfurt,    "Frankfurt",     DEU,  50.1,  8.7;
    Marseille,    "Marseille",     FRA,  43.3,  5.4;
    Stockholm,    "Stockholm",     SWE,  59.3,  18.1;
    Vienna,       "Vienna",        AUT,  48.2,  16.4;
    Milan,        "Milan",         ITA,  45.5,  9.2;
    HongKong,     "Hong Kong",     HKG,  22.3,  114.2;
    Mumbai,       "Mumbai",        IND,  19.1,  72.9;
    SaoPaulo,     "São Paulo",     BRA,  -23.6, -46.6;
    Sydney,       "Sydney",        AUS,  -33.9, 151.2;
    Johannesburg, "Johannesburg",  ZAF,  -26.2, 28.0;
    LosAngeles,   "Los Angeles",   USA,  34.1,  -118.2;
    Newark,       "Newark",        USA,  40.7,  -74.2;
    AbuDhabi,     "Abu Dhabi",     ARE,  24.5,  54.4;
}

impl City {
    /// The volunteer / SGW city used for a measured country, i.e. where the
    /// paper's measurement endpoint sat (Fig. 3 triangles).
    #[must_use]
    pub fn sgw_city_for(country: Country) -> Option<City> {
        Some(match country {
            Country::ARE => City::Dubai,
            Country::JPN => City::Tokyo,
            Country::PAK => City::Karachi,
            Country::MYS => City::KualaLumpur,
            Country::CHN => City::Shanghai,
            Country::GBR => City::London,
            Country::DEU => City::Berlin,
            Country::GEO => City::Tbilisi,
            Country::ESP => City::Madrid,
            Country::QAT => City::Doha,
            Country::SAU => City::Riyadh,
            Country::TUR => City::Istanbul,
            Country::EGY => City::Cairo,
            Country::MDA => City::Chisinau,
            Country::KEN => City::Nairobi,
            Country::FIN => City::Helsinki,
            Country::AZE => City::Baku,
            Country::ITA => City::Rome,
            Country::USA => City::NewYork,
            Country::FRA => City::Paris,
            Country::UZB => City::Tashkent,
            Country::KOR => City::Seoul,
            Country::MDV => City::Male,
            Country::THA => City::Bangkok,
            _ => return None,
        })
    }
}

impl std::fmt::Display for City {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Continent;

    #[test]
    fn every_measured_country_has_an_sgw_city() {
        for c in Country::MEASURED {
            let city = City::sgw_city_for(c).unwrap_or_else(|| panic!("no SGW city for {c}"));
            assert_eq!(city.country(), c, "{city} should be in {c}");
        }
    }

    #[test]
    fn unmeasured_country_has_no_sgw_city() {
        assert_eq!(City::sgw_city_for(Country::BRA), None);
    }

    #[test]
    fn pgw_city_locations_are_in_their_countries_continent() {
        // Coarse sanity: city coordinates should land near their country's
        // centroid (within ~3500 km; generous for large countries like USA).
        for city in City::ALL {
            let d = city.location().distance_km(city.country().centroid());
            assert!(
                d < 3500.0,
                "{city} is {d} km from {} centroid",
                city.country()
            );
        }
    }

    #[test]
    fn wattrelos_is_near_lille() {
        let d = City::Wattrelos
            .location()
            .distance_km(City::Lille.location());
        assert!(d < 30.0, "Wattrelos–Lille should be adjacent, got {d} km");
    }

    #[test]
    fn fort_worth_is_closer_to_dallas_than_tulsa_is() {
        // §5.1: the Dallas PGW's DNS resolver is sometimes Fort Worth (20 km)
        // and sometimes Tulsa (~380 km).
        let dallas = City::Dallas.location();
        let fw = dallas.distance_km(City::FortWorth.location());
        let tulsa = dallas.distance_km(City::Tulsa.location());
        assert!(
            fw < 80.0,
            "Fort Worth should be ~20-50 km from Dallas, got {fw}"
        );
        assert!(
            (250.0..500.0).contains(&tulsa),
            "Tulsa should be ~380 km, got {tulsa}"
        );
    }

    #[test]
    fn europe_pgw_cities_are_in_europe() {
        for city in [
            City::Amsterdam,
            City::Lille,
            City::London,
            City::Dublin,
            City::Warsaw,
        ] {
            assert_eq!(city.country().continent(), Continent::Europe);
        }
    }
}
