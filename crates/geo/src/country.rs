//! Country and continent gazetteer.
//!
//! The variant names are ISO 3166-1 alpha-3 codes, which is what the paper
//! uses throughout (Table 2 lists visited countries as `ARE, JPN, PAK, …`).
//! The table covers every country that appears in any experiment plus a broad
//! worldwide set so that the economics analysis (Figs. 16–18: per-continent
//! price distributions over ~200 Airalo destinations) has a realistic
//! geographic universe to draw offers for.

use crate::GeoPoint;

/// Continent partition used by the price-evolution analysis (Fig. 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Continent {
    Africa,
    Asia,
    Europe,
    NorthAmerica,
    Oceania,
    SouthAmerica,
}

impl Continent {
    /// All continents, in the fixed order used for report rows.
    pub const ALL: [Continent; 6] = [
        Continent::Africa,
        Continent::Asia,
        Continent::Europe,
        Continent::NorthAmerica,
        Continent::Oceania,
        Continent::SouthAmerica,
    ];

    /// Human-readable name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Continent::Africa => "Africa",
            Continent::Asia => "Asia",
            Continent::Europe => "Europe",
            Continent::NorthAmerica => "North America",
            Continent::Oceania => "Oceania",
            Continent::SouthAmerica => "South America",
        }
    }
}

impl std::fmt::Display for Continent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

macro_rules! countries {
    ($( $a3:ident, $a2:literal, $name:literal, $cont:ident, $lat:literal, $lon:literal; )+) => {
        /// A country, identified by its ISO 3166-1 alpha-3 code.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[allow(clippy::upper_case_acronyms)]
        pub enum Country {
            $(#[doc = $name] $a3,)+
        }

        impl Country {
            /// Every country in the gazetteer.
            pub const ALL: &'static [Country] = &[$(Country::$a3,)+];

            /// ISO 3166-1 alpha-3 code (same as the variant name).
            #[must_use]
            pub fn alpha3(&self) -> &'static str {
                match self { $(Country::$a3 => stringify!($a3),)+ }
            }

            /// ISO 3166-1 alpha-2 code.
            #[must_use]
            pub fn alpha2(&self) -> &'static str {
                match self { $(Country::$a3 => $a2,)+ }
            }

            /// English short name.
            #[must_use]
            pub fn name(&self) -> &'static str {
                match self { $(Country::$a3 => $name,)+ }
            }

            /// Continent the country belongs to.
            #[must_use]
            pub fn continent(&self) -> Continent {
                match self { $(Country::$a3 => Continent::$cont,)+ }
            }

            /// Representative centroid (population-weighted-ish) used for
            /// country-level distance estimates, e.g. "is the PGW farther
            /// than the b-MNO country?" (§4.2).
            #[must_use]
            pub fn centroid(&self) -> GeoPoint {
                match self { $(Country::$a3 => GeoPoint::new($lat, $lon),)+ }
            }

            /// Parse an alpha-3 code (case-insensitive).
            #[must_use]
            pub fn from_alpha3(code: &str) -> Option<Country> {
                let up = code.to_ascii_uppercase();
                match up.as_str() { $(stringify!($a3) => Some(Country::$a3),)+ _ => None }
            }
        }
    };
}

countries! {
    // ---- countries visited or hosting infrastructure in the paper ----
    ARE, "AE", "United Arab Emirates",  Asia,          24.4, 54.4;
    JPN, "JP", "Japan",                 Asia,          36.2, 138.3;
    PAK, "PK", "Pakistan",              Asia,          30.4, 69.3;
    MYS, "MY", "Malaysia",              Asia,          3.1,  101.7;
    CHN, "CN", "China",                 Asia,          35.9, 104.2;
    GBR, "GB", "United Kingdom",        Europe,        52.4, -1.5;
    DEU, "DE", "Germany",               Europe,        51.2, 10.5;
    GEO, "GE", "Georgia",               Asia,          41.7, 44.8;
    ESP, "ES", "Spain",                 Europe,        40.4, -3.7;
    QAT, "QA", "Qatar",                 Asia,          25.3, 51.2;
    SAU, "SA", "Saudi Arabia",          Asia,          24.7, 46.7;
    TUR, "TR", "Turkey",                Asia,          39.0, 35.2;
    EGY, "EG", "Egypt",                 Africa,        26.8, 30.8;
    MDA, "MD", "Moldova",               Europe,        47.0, 28.9;
    KEN, "KE", "Kenya",                 Africa,        -1.3, 36.8;
    FIN, "FI", "Finland",               Europe,        61.9, 25.7;
    AZE, "AZ", "Azerbaijan",            Asia,          40.4, 49.9;
    ITA, "IT", "Italy",                 Europe,        41.9, 12.6;
    USA, "US", "United States",         NorthAmerica,  39.8, -98.6;
    FRA, "FR", "France",                Europe,        46.2, 2.2;
    UZB, "UZ", "Uzbekistan",            Asia,          41.3, 64.6;
    KOR, "KR", "South Korea",           Asia,          36.5, 127.8;
    MDV, "MV", "Maldives",              Asia,          4.2,  73.5;
    THA, "TH", "Thailand",              Asia,          13.7, 100.5;
    SGP, "SG", "Singapore",             Asia,          1.35, 103.82;
    POL, "PL", "Poland",                Europe,        52.2, 19.1;
    NLD, "NL", "Netherlands",           Europe,        52.1, 5.3;
    IRL, "IE", "Ireland",               Europe,        53.3, -8.0;
    // ---- broader universe for the economics campaign ----
    AFG, "AF", "Afghanistan",           Asia,          33.9, 67.7;
    ALB, "AL", "Albania",               Europe,        41.2, 20.2;
    DZA, "DZ", "Algeria",               Africa,        28.0, 1.7;
    AGO, "AO", "Angola",                Africa,        -11.2, 17.9;
    ARG, "AR", "Argentina",             SouthAmerica,  -38.4, -63.6;
    ARM, "AM", "Armenia",               Asia,          40.1, 45.0;
    AUS, "AU", "Australia",             Oceania,       -25.3, 133.8;
    AUT, "AT", "Austria",               Europe,        47.5, 14.6;
    BHR, "BH", "Bahrain",               Asia,          26.0, 50.5;
    BGD, "BD", "Bangladesh",            Asia,          23.7, 90.4;
    BLR, "BY", "Belarus",               Europe,        53.7, 27.9;
    BEL, "BE", "Belgium",               Europe,        50.5, 4.5;
    BLZ, "BZ", "Belize",                NorthAmerica,  17.2, -88.5;
    BEN, "BJ", "Benin",                 Africa,        9.3,  2.3;
    BOL, "BO", "Bolivia",               SouthAmerica,  -16.3, -63.6;
    BIH, "BA", "Bosnia and Herzegovina",Europe,        43.9, 17.7;
    BWA, "BW", "Botswana",              Africa,        -22.3, 24.7;
    BRA, "BR", "Brazil",                SouthAmerica,  -14.2, -51.9;
    BGR, "BG", "Bulgaria",              Europe,        42.7, 25.5;
    KHM, "KH", "Cambodia",              Asia,          12.6, 105.0;
    CMR, "CM", "Cameroon",              Africa,        7.4,  12.4;
    CAN, "CA", "Canada",                NorthAmerica,  56.1, -106.3;
    CHL, "CL", "Chile",                 SouthAmerica,  -35.7, -71.5;
    COL, "CO", "Colombia",              SouthAmerica,  4.6,  -74.3;
    CRI, "CR", "Costa Rica",            NorthAmerica,  9.7,  -83.8;
    HRV, "HR", "Croatia",               Europe,        45.1, 15.2;
    CUB, "CU", "Cuba",                  NorthAmerica,  21.5, -77.8;
    CYP, "CY", "Cyprus",                Europe,        35.1, 33.4;
    CZE, "CZ", "Czechia",               Europe,        49.8, 15.5;
    DNK, "DK", "Denmark",               Europe,        56.3, 9.5;
    DOM, "DO", "Dominican Republic",    NorthAmerica,  18.7, -70.2;
    ECU, "EC", "Ecuador",               SouthAmerica,  -1.8, -78.2;
    SLV, "SV", "El Salvador",           NorthAmerica,  13.8, -88.9;
    EST, "EE", "Estonia",               Europe,        58.6, 25.0;
    ETH, "ET", "Ethiopia",              Africa,        9.1,  40.5;
    FJI, "FJ", "Fiji",                  Oceania,       -17.7, 178.1;
    GAB, "GA", "Gabon",                 Africa,        -0.8, 11.6;
    GHA, "GH", "Ghana",                 Africa,        7.9,  -1.0;
    GRC, "GR", "Greece",                Europe,        39.1, 21.8;
    GTM, "GT", "Guatemala",             NorthAmerica,  15.8, -90.2;
    HND, "HN", "Honduras",              NorthAmerica,  15.2, -86.2;
    HKG, "HK", "Hong Kong",             Asia,          22.4, 114.1;
    HUN, "HU", "Hungary",               Europe,        47.2, 19.5;
    ISL, "IS", "Iceland",               Europe,        64.9, -19.0;
    IND, "IN", "India",                 Asia,          20.6, 79.0;
    IDN, "ID", "Indonesia",             Asia,          -0.8, 113.9;
    IRQ, "IQ", "Iraq",                  Asia,          33.2, 43.7;
    ISR, "IL", "Israel",                Asia,          31.0, 34.9;
    JAM, "JM", "Jamaica",               NorthAmerica,  18.1, -77.3;
    JOR, "JO", "Jordan",                Asia,          30.6, 36.2;
    KAZ, "KZ", "Kazakhstan",            Asia,          48.0, 66.9;
    KWT, "KW", "Kuwait",                Asia,          29.3, 47.5;
    KGZ, "KG", "Kyrgyzstan",            Asia,          41.2, 74.8;
    LAO, "LA", "Laos",                  Asia,          19.9, 102.5;
    LVA, "LV", "Latvia",                Europe,        56.9, 24.6;
    LBN, "LB", "Lebanon",               Asia,          33.9, 35.9;
    LTU, "LT", "Lithuania",             Europe,        55.2, 23.9;
    LUX, "LU", "Luxembourg",            Europe,        49.8, 6.1;
    MKD, "MK", "North Macedonia",       Europe,        41.6, 21.7;
    MDG, "MG", "Madagascar",            Africa,        -18.8, 47.0;
    MWI, "MW", "Malawi",                Africa,        -13.3, 34.3;
    MLT, "MT", "Malta",                 Europe,        35.9, 14.4;
    MEX, "MX", "Mexico",                NorthAmerica,  23.6, -102.6;
    MNG, "MN", "Mongolia",              Asia,          46.9, 103.8;
    MNE, "ME", "Montenegro",            Europe,        42.7, 19.4;
    MAR, "MA", "Morocco",               Africa,        31.8, -7.1;
    MOZ, "MZ", "Mozambique",            Africa,        -18.7, 35.5;
    MMR, "MM", "Myanmar",               Asia,          21.9, 95.9;
    NAM, "NA", "Namibia",               Africa,        -22.9, 18.5;
    NPL, "NP", "Nepal",                 Asia,          28.4, 84.1;
    NZL, "NZ", "New Zealand",           Oceania,       -40.9, 174.9;
    NIC, "NI", "Nicaragua",             NorthAmerica,  12.9, -85.2;
    NGA, "NG", "Nigeria",               Africa,        9.1,  8.7;
    NOR, "NO", "Norway",                Europe,        60.5, 8.5;
    OMN, "OM", "Oman",                  Asia,          21.5, 55.9;
    PAN, "PA", "Panama",                NorthAmerica,  8.5,  -80.8;
    PRY, "PY", "Paraguay",              SouthAmerica,  -23.4, -58.4;
    PER, "PE", "Peru",                  SouthAmerica,  -9.2, -75.0;
    PHL, "PH", "Philippines",           Asia,          12.9, 121.8;
    PRT, "PT", "Portugal",              Europe,        39.4, -8.2;
    ROU, "RO", "Romania",               Europe,        45.9, 25.0;
    RUS, "RU", "Russia",                Europe,        61.5, 105.3;
    RWA, "RW", "Rwanda",                Africa,        -1.9, 29.9;
    SEN, "SN", "Senegal",               Africa,        14.5, -14.5;
    SRB, "RS", "Serbia",                Europe,        44.0, 21.0;
    SVK, "SK", "Slovakia",              Europe,        48.7, 19.7;
    SVN, "SI", "Slovenia",              Europe,        46.2, 14.8;
    ZAF, "ZA", "South Africa",          Africa,        -30.6, 22.9;
    LKA, "LK", "Sri Lanka",             Asia,          7.9,  80.8;
    SWE, "SE", "Sweden",                Europe,        60.1, 18.6;
    CHE, "CH", "Switzerland",           Europe,        46.8, 8.2;
    TWN, "TW", "Taiwan",                Asia,          23.7, 121.0;
    TJK, "TJ", "Tajikistan",            Asia,          38.9, 71.3;
    TZA, "TZ", "Tanzania",              Africa,        -6.4, 34.9;
    TUN, "TN", "Tunisia",               Africa,        33.9, 9.6;
    TKM, "TM", "Turkmenistan",          Asia,          38.97, 59.6;
    UGA, "UG", "Uganda",                Africa,        1.4,  32.3;
    UKR, "UA", "Ukraine",               Europe,        48.4, 31.2;
    URY, "UY", "Uruguay",               SouthAmerica,  -32.5, -55.8;
    VNM, "VN", "Vietnam",               Asia,          14.1, 108.3;
    ZMB, "ZM", "Zambia",                Africa,        -13.1, 27.8;
    ZWE, "ZW", "Zimbabwe",              Africa,        -19.0, 29.2;
}

impl Country {
    /// The 24 countries where the paper measured an Airalo eSIM (both
    /// campaigns combined; §1 "24 of its 219 served countries").
    pub const MEASURED: [Country; 24] = [
        Country::ARE,
        Country::JPN,
        Country::PAK,
        Country::MYS,
        Country::CHN,
        Country::GBR,
        Country::DEU,
        Country::GEO,
        Country::ESP,
        Country::QAT,
        Country::SAU,
        Country::TUR,
        Country::EGY,
        Country::MDA,
        Country::KEN,
        Country::FIN,
        Country::AZE,
        Country::ITA,
        Country::USA,
        Country::FRA,
        Country::UZB,
        Country::KOR,
        Country::MDV,
        Country::THA,
    ];

    /// True when this country is in the Central-America price cluster the
    /// paper singles out (Fig. 18: "Central America exhibits a consistent
    /// high cost per GB").
    #[must_use]
    pub fn is_central_america(&self) -> bool {
        matches!(
            self,
            Country::BLZ
                | Country::CRI
                | Country::SLV
                | Country::GTM
                | Country::HND
                | Country::NIC
                | Country::PAN
        )
    }
}

impl std::fmt::Display for Country {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.alpha3())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha3_matches_variant_name() {
        assert_eq!(Country::PAK.alpha3(), "PAK");
        assert_eq!(Country::ARE.alpha3(), "ARE");
        assert_eq!(Country::from_alpha3("sgp"), Some(Country::SGP));
        assert_eq!(Country::from_alpha3("XXX"), None);
    }

    #[test]
    fn alpha2_codes_are_two_chars_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in Country::ALL {
            assert_eq!(c.alpha2().len(), 2, "{c:?}");
            assert!(seen.insert(c.alpha2()), "duplicate alpha2 {}", c.alpha2());
        }
    }

    #[test]
    fn gazetteer_is_reasonably_broad() {
        assert!(Country::ALL.len() >= 120, "got {}", Country::ALL.len());
        for cont in Continent::ALL {
            let n = Country::ALL
                .iter()
                .filter(|c| c.continent() == cont)
                .count();
            assert!(n >= 2, "{cont} has only {n} countries");
        }
    }

    #[test]
    fn measured_set_matches_paper() {
        assert_eq!(Country::MEASURED.len(), 24);
        // Native-eSIM countries from §4.1.
        for c in [Country::KOR, Country::MDV, Country::THA] {
            assert!(Country::MEASURED.contains(&c));
        }
    }

    #[test]
    fn continent_assignment_spot_checks() {
        assert_eq!(Country::EGY.continent(), Continent::Africa);
        assert_eq!(Country::GEO.continent(), Continent::Asia);
        assert_eq!(Country::USA.continent(), Continent::NorthAmerica);
        assert_eq!(Country::AUS.continent(), Continent::Oceania);
        assert_eq!(Country::BRA.continent(), Continent::SouthAmerica);
        assert_eq!(Country::MDA.continent(), Continent::Europe);
    }

    #[test]
    fn central_america_cluster() {
        assert!(Country::CRI.is_central_america());
        assert!(Country::PAN.is_central_america());
        assert!(!Country::MEX.is_central_america());
        assert!(!Country::USA.is_central_america());
    }

    #[test]
    fn centroids_are_canonical_points() {
        for c in Country::ALL {
            let p = c.centroid();
            assert!(p.lat().abs() <= 90.0);
            assert!(p.lon() > -180.0 && p.lon() <= 180.0);
        }
    }

    #[test]
    fn poland_is_closer_to_germany_than_to_singapore() {
        let pol = Country::POL.centroid();
        let deu = Country::DEU.centroid();
        let sgp = Country::SGP.centroid();
        assert!(pol.distance_km(deu) < pol.distance_km(sgp));
    }
}
