//! Geographic coordinates and great-circle geometry.

use crate::EARTH_RADIUS_KM;

/// A point on the Earth's surface, in decimal degrees.
///
/// Latitude is positive north, longitude positive east. Construction via
/// [`GeoPoint::new`] clamps latitude to `[-90, 90]` and normalises longitude
/// to `(-180, 180]`, so every `GeoPoint` in the system is canonical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    lat_deg: f64,
    lon_deg: f64,
}

impl GeoPoint {
    /// Build a canonical point, clamping latitude and wrapping longitude.
    #[must_use]
    pub fn new(lat_deg: f64, lon_deg: f64) -> Self {
        let lat = lat_deg.clamp(-90.0, 90.0);
        let mut lon = lon_deg % 360.0;
        if lon > 180.0 {
            lon -= 360.0;
        } else if lon <= -180.0 {
            lon += 360.0;
        }
        Self {
            lat_deg: lat,
            lon_deg: lon,
        }
    }

    /// Latitude in decimal degrees, in `[-90, 90]`.
    #[must_use]
    pub fn lat(&self) -> f64 {
        self.lat_deg
    }

    /// Longitude in decimal degrees, in `(-180, 180]`.
    #[must_use]
    pub fn lon(&self) -> f64 {
        self.lon_deg
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    ///
    /// The haversine form is numerically stable for small angles, which
    /// matters for co-located PGW/CG-NAT pairs a few km apart.
    #[must_use]
    pub fn distance_km(&self, other: GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat_deg.to_radians(), self.lon_deg.to_radians());
        let (lat2, lon2) = (other.lat_deg.to_radians(), other.lon_deg.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        let c = 2.0 * a.sqrt().asin();
        EARTH_RADIUS_KM * c
    }

    /// Midpoint of the great-circle segment to `other`.
    ///
    /// Used to place synthetic intermediate routers along long-haul links so
    /// traceroute hop geolocations look like real transit paths.
    #[must_use]
    pub fn midpoint(&self, other: GeoPoint) -> GeoPoint {
        let (lat1, lon1) = (self.lat_deg.to_radians(), self.lon_deg.to_radians());
        let (lat2, lon2) = (other.lat_deg.to_radians(), other.lon_deg.to_radians());
        let bx = lat2.cos() * (lon2 - lon1).cos();
        let by = lat2.cos() * (lon2 - lon1).sin();
        let lat3 = (lat1.sin() + lat2.sin()).atan2(((lat1.cos() + bx).powi(2) + by.powi(2)).sqrt());
        let lon3 = lon1 + by.atan2(lat1.cos() + bx);
        GeoPoint::new(lat3.to_degrees(), lon3.to_degrees())
    }
}

impl std::fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.2}, {:.2})", self.lat_deg, self.lon_deg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon)
    }

    #[test]
    fn zero_distance_to_self() {
        let x = p(48.85, 2.35);
        assert_eq!(x.distance_km(x), 0.0);
    }

    #[test]
    fn known_city_pair_distances() {
        // Reference values from standard great-circle calculators (±1%).
        let paris = p(48.85, 2.35);
        let tokyo = p(35.68, 139.69);
        let d = paris.distance_km(tokyo);
        assert!((9700.0..9830.0).contains(&d), "Paris-Tokyo got {d}");

        let sg = p(1.35, 103.82);
        let khi = p(24.86, 67.01);
        let d2 = sg.distance_km(khi);
        assert!((4650.0..4850.0).contains(&d2), "Singapore-Karachi got {d2}");
    }

    #[test]
    fn antipodal_distance_is_half_circumference() {
        let a = p(0.0, 0.0);
        let b = p(0.0, 180.0);
        let d = a.distance_km(b);
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((d - half).abs() < 1.0, "got {d}, expected {half}");
    }

    #[test]
    fn longitude_is_normalised() {
        assert_eq!(p(0.0, 190.0).lon(), -170.0);
        assert_eq!(p(0.0, -190.0).lon(), 170.0);
        assert_eq!(p(0.0, 540.0).lon(), 180.0);
    }

    #[test]
    fn latitude_is_clamped() {
        assert_eq!(p(95.0, 0.0).lat(), 90.0);
        assert_eq!(p(-95.0, 0.0).lat(), -90.0);
    }

    #[test]
    fn midpoint_of_equatorial_segment() {
        let m = p(0.0, 0.0).midpoint(p(0.0, 90.0));
        assert!(m.lat().abs() < 1e-9);
        assert!((m.lon() - 45.0).abs() < 1e-9);
    }

    #[test]
    fn midpoint_is_equidistant() {
        let a = p(52.2, 21.0); // Warsaw
        let b = p(1.35, 103.82); // Singapore
        let m = a.midpoint(b);
        let da = a.distance_km(m);
        let db = b.distance_km(m);
        assert!((da - db).abs() < 1.0, "da={da} db={db}");
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(p(1.2345, -103.456).to_string(), "(1.23, -103.46)");
    }
}
