//! Shared experiment harness for the per-figure/table binaries.
//!
//! Every `fig*`/`table*` binary in `src/bin/` reproduces one table or
//! figure of the paper. The heavy lifting — running the two campaigns at
//! Table-3/Table-4 scale against the calibrated world — lives here so the
//! binaries stay declarative.
//!
//! Campaigns execute as **per-country shards** through
//! [`roam_measure::parallel`]: every shard builds its own world from the
//! master seed, and every measurement inside a shard runs on its own flow
//! derived from the attachment's flow stamp and the measurement's label —
//! never from execution order. The merged output is therefore bit-identical
//! whether shards run on one thread ([`RunMode::Sequential`]) or many
//! ([`RunMode::Parallel`]).
//!
//! [`CampaignRunner`] is the one configuration surface: seed, scale,
//! worker count, transport backend and telemetry mode, applied uniformly
//! to the device campaign ([`CampaignRunner::run`]), the web campaign
//! ([`CampaignRunner::run_web`]) and the eSIM survey
//! ([`CampaignRunner::run_survey`]). The plain
//! [`run_device`]/[`run_web`]/[`survey_all_esims`] entry points are
//! `CampaignRunner::from_env` shorthands — they read `ROAM_PARALLEL`,
//! `ROAM_TRANSPORT` and `ROAM_TELEMETRY` (safe because none of the knobs
//! can change the bytes, only the wall clock and what gets reported).

use roam_core::EsimObservation;
use roam_geo::{City, Country};
use roam_measure::{
    run_device_campaign, run_shards, run_web_measurement, CampaignData, DeviceCampaignSpec,
    Endpoint, Exporter, RunMode, SharedSink, WebRecord,
};
use roam_netsim::{FaultSpec, TransportKind};
use roam_telemetry::{merge_shards, TelemetryMode, TelemetryReport, TelemetrySnapshot};
use roam_world::{DeviceCountrySpec, World};
use std::time::Instant;

/// Scale factor applied to the Table-4 sample counts. 1.0 is paper scale;
/// the unit tests of the binaries use ~0.1 for speed.
#[must_use]
pub fn scaled(count: u32, scale: f64) -> u32 {
    ((count as f64 * scale).round() as u32).max(u32::from(count > 0))
}

fn scale_spec(spec: &DeviceCampaignSpec, scale: f64) -> DeviceCampaignSpec {
    let s = |pair: (u32, u32)| (scaled(pair.0, scale), scaled(pair.1, scale));
    DeviceCampaignSpec {
        ookla: s(spec.ookla),
        mtr_per_target: s(spec.mtr_per_target),
        cdn_per_provider: s(spec.cdn_per_provider),
        dns: s(spec.dns),
        video: s(spec.video),
    }
}

/// One country's completed slice of the device campaign.
///
/// The endpoints' node ids are only meaningful inside [`Self::world`] —
/// each shard attaches into its own copy of the seeded world. Binaries
/// that re-probe endpoints live (e.g. the VoIP extension) must pair each
/// endpoint with the world of its own shard.
pub struct DeviceCountryRun {
    /// The campaign country.
    pub country: Country,
    /// The shard's world after its attachments and measurements.
    pub world: World,
    /// eSIM endpoints, one per day-chunk re-attachment.
    pub esims: Vec<Endpoint>,
    /// The physical SIM endpoint of the last day-chunk.
    pub sim: Endpoint,
}

/// Wall-clock cost of one shard. Wall time is the one non-deterministic
/// quantity a run reports; it lives here, outside the byte-stable
/// [`TelemetryReport`], so the report stays comparable across machines.
#[derive(Debug, Clone)]
pub struct ShardTiming {
    /// The shard's stable key (`"device/PAK"`, `"web/DEU"`, …).
    pub key: String,
    /// Wall-clock milliseconds the shard took on its worker.
    pub wall_ms: f64,
}

/// Everything a figure binary needs from one full device-campaign run.
pub struct DeviceCampaignRun {
    /// Per-country shard results, in Table-4 order. Each carries the
    /// world its endpoints live in.
    pub shards: Vec<DeviceCountryRun>,
    /// All measurement records, all countries merged in Table-4 order.
    pub data: CampaignData,
    /// Telemetry merged in shard-key order (empty when the mode is off).
    pub telemetry: TelemetryReport,
    /// Per-shard wall time, in merge order (not byte-stable).
    pub timings: Vec<ShardTiming>,
}

impl DeviceCampaignRun {
    /// eSIM endpoints of every shard, flattened in Table-4 order.
    pub fn esims(&self) -> impl Iterator<Item = &Endpoint> {
        self.shards.iter().flat_map(|s| s.esims.iter())
    }

    /// One physical endpoint per country, in Table-4 order.
    pub fn sims(&self) -> impl Iterator<Item = &Endpoint> {
        self.shards.iter().map(|s| &s.sim)
    }
}

/// Run one country's device-campaign shard: its own world built from the
/// master seed. Every measurement runs on a flow keyed by its day-chunk
/// attachment and its plan label — never by execution order, so shard
/// results do not depend on which worker ran them, or when.
#[must_use]
pub fn run_device_shard(
    seed: u64,
    scale: f64,
    spec: &DeviceCountrySpec,
) -> (DeviceCountryRun, CampaignData) {
    let (run, data, _, _) = run_device_shard_with(seed, scale, spec, TelemetryMode::Off);
    (run, data)
}

/// [`run_device_shard`] with a telemetry mode, also returning the shard's
/// telemetry snapshot and its wall-clock milliseconds. This is the unit
/// the [`CampaignRunner`] merges: snapshots fold together in shard-key
/// order, wall times stay outside the byte-stable report.
#[must_use]
pub fn run_device_shard_with(
    seed: u64,
    scale: f64,
    spec: &DeviceCountrySpec,
    telemetry: TelemetryMode,
) -> (DeviceCountryRun, CampaignData, TelemetrySnapshot, f64) {
    let started = Instant::now();
    let mut world = World::build(seed);
    world.net.set_telemetry_mode(telemetry);
    let mut data = CampaignData::default();
    let mut esims = Vec::new();
    let chunks = spec.days.clamp(2, 6);
    let chunk_spec = scale_spec(&spec.spec, scale / f64::from(chunks));
    let mut last_sim = None;
    for _ in 0..chunks {
        // Both SIMs re-attach per day-chunk: real devices detach
        // overnight, and per-attachment draws (core depth, PGW pool
        // slot, provider alternation) must average out on both sides.
        // Each attachment carries a fresh flow stamp, so repeated plan
        // labels across chunks still name distinct flows.
        let sim = world.attach_physical(spec.country);
        let esim = world.attach_esim(spec.country);
        let d = run_device_campaign(
            &mut world.net,
            &sim,
            &esim,
            &chunk_spec,
            &world.internet.targets,
        );
        data.extend(d);
        esims.push(esim);
        last_sim = Some(sim);
    }
    let snap = world.net.take_telemetry();
    let run = DeviceCountryRun {
        country: spec.country,
        world,
        esims,
        sim: last_sim.expect("at least one chunk"),
    };
    (run, data, snap, started.elapsed().as_secs_f64() * 1e3)
}

/// One full web-campaign run: per-country records plus the run's
/// telemetry.
pub struct WebCampaignRun {
    /// A fresh build of the master seed for static lookups (country
    /// plans, registry); the endpoints' node ids belong to their shard
    /// worlds, which are dropped with the shards.
    pub world: World,
    /// `(country, completed measurements, endpoint)` per Table-3 country.
    pub results: Vec<(Country, Vec<WebRecord>, Endpoint)>,
    /// Telemetry merged in shard-key order.
    pub telemetry: TelemetryReport,
    /// Per-shard wall time (not byte-stable).
    pub timings: Vec<ShardTiming>,
}

/// One eSIM survey run: the tomography observations plus telemetry.
pub struct SurveyRun {
    /// A fresh build of the master seed; resolves every observation.
    pub world: World,
    /// Per-country observations, the input to Table 2 / Figs. 3–4.
    pub observations: Vec<EsimObservation>,
    /// Telemetry merged in shard-key order.
    pub telemetry: TelemetryReport,
    /// Per-shard wall time (not byte-stable).
    pub timings: Vec<ShardTiming>,
}

/// The one way to configure a campaign: seed in, then builder-style knobs
/// for scale, worker count, transport backend and telemetry, shared by all
/// three campaign shapes.
///
/// ```no_run
/// use roam_bench::CampaignRunner;
/// use roam_netsim::TransportKind;
/// use roam_telemetry::TelemetryMode;
///
/// let run = CampaignRunner::new(42)
///     .scale(0.1)
///     .parallel(4)
///     .transport(TransportKind::Engine)
///     .telemetry(TelemetryMode::Summary)
///     .run();
/// print!("{}", run.telemetry.render());
/// ```
///
/// None of the knobs can change a campaign's bytes — shards merge in
/// shard-key order and the transports agree on every recorded observable —
/// so the builder only chooses cost and reporting, never results.
#[derive(Clone)]
pub struct CampaignRunner {
    seed: u64,
    scale: f64,
    mode: RunMode,
    transport: Option<TransportKind>,
    faults: Option<FaultSpec>,
    telemetry: TelemetryMode,
    sink: Option<SharedSink>,
}

impl std::fmt::Debug for CampaignRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignRunner")
            .field("seed", &self.seed)
            .field("scale", &self.scale)
            .field("mode", &self.mode)
            .field("transport", &self.transport)
            .field("faults", &self.faults)
            .field("telemetry", &self.telemetry)
            .field("sink", &self.sink.as_ref().map(|_| "…"))
            .finish()
    }
}

impl CampaignRunner {
    /// A sequential, full-scale, telemetry-off runner for `seed`, with the
    /// transport left to `ROAM_TRANSPORT`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        CampaignRunner {
            seed,
            scale: 1.0,
            mode: RunMode::Sequential,
            transport: None,
            faults: None,
            telemetry: TelemetryMode::Off,
            sink: None,
        }
    }

    /// A runner configured from the environment: worker count from
    /// `ROAM_PARALLEL`, telemetry from `ROAM_TELEMETRY`; the transport is
    /// resolved per probe from `ROAM_TRANSPORT` (no override installed).
    #[must_use]
    pub fn from_env(seed: u64) -> Self {
        CampaignRunner {
            mode: RunMode::from_env(),
            telemetry: TelemetryMode::from_env(),
            ..CampaignRunner::new(seed)
        }
    }

    /// Scale factor on the Table-4 sample counts (1.0 = paper scale).
    #[must_use]
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Spread shards over `workers` threads (`<= 1` means sequential).
    #[must_use]
    pub fn parallel(mut self, workers: usize) -> Self {
        self.mode = if workers <= 1 {
            RunMode::Sequential
        } else {
            RunMode::Parallel(workers)
        };
        self
    }

    /// Set the shard execution mode directly.
    #[must_use]
    pub fn run_mode(mut self, mode: RunMode) -> Self {
        self.mode = mode;
        self
    }

    /// Pin the transport backend for the run, overriding `ROAM_TRANSPORT`
    /// (restored when the run finishes).
    #[must_use]
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.transport = Some(kind);
        self
    }

    /// Pin the fault schedule for the run, overriding `ROAM_FAULTS`
    /// (restored when the run finishes). Every shard's world resolves the
    /// same spec, so all shards see identical fault windows.
    #[must_use]
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(spec);
        self
    }

    /// Select what the run's telemetry plane records.
    #[must_use]
    pub fn telemetry(mut self, mode: TelemetryMode) -> Self {
        self.telemetry = mode;
        self
    }

    /// Attach a [`DataSink`]: after a device campaign ([`CampaignRunner::run`])
    /// merges its shards, every held dataset's rows stream through the sink
    /// in [`Exporter::datasets`] order — the same walk `export`/`export_all`
    /// use, so a CSV sink sees the historical bytes and a columnar sink the
    /// same rows as typed pages. The sink is shared (`Arc<Mutex<…>>`) so the
    /// caller keeps a handle to drain after the run.
    #[must_use]
    pub fn sink(mut self, sink: SharedSink) -> Self {
        self.sink = Some(sink);
        self
    }

    fn pin_transport(&self) -> (TransportPin, FaultsPin) {
        (
            TransportPin(
                self.transport
                    .map(|k| TransportKind::override_transport(Some(k))),
            ),
            FaultsPin(self.faults.map(|s| FaultSpec::override_faults(Some(s)))),
        )
    }

    /// Run the device campaign across the 10 Table-4 countries.
    ///
    /// Each country's eSIM re-attaches every "day chunk" so that the
    /// Packet-Host/OVH alternation of §4.1 shows up in the observed public
    /// IPs — the campaigns saw both providers per eSIM, not per
    /// measurement.
    #[must_use]
    pub fn run(&self) -> DeviceCampaignRun {
        let _pin = self.pin_transport();
        let specs = World::device_campaign_specs();
        let results = run_shards(self.mode, specs.len(), |i| {
            run_device_shard_with(self.seed, self.scale, &specs[i], self.telemetry)
        });
        let mut data = CampaignData::default();
        let mut shards = Vec::with_capacity(results.len());
        let mut snaps = Vec::with_capacity(results.len());
        let mut timings = Vec::with_capacity(results.len());
        for (shard, shard_data, snap, wall_ms) in results {
            let key = format!("device/{}", shard.country.alpha3());
            data.extend(shard_data);
            snaps.push((key.clone(), snap));
            timings.push(ShardTiming { key, wall_ms });
            shards.push(shard);
        }
        let telemetry = merge_shards(self.telemetry, snaps);
        if let Some(sink) = &self.sink {
            let mut sink = sink.lock().expect("campaign sink poisoned");
            for &ds in data.datasets() {
                data.export_rows(ds, &mut *sink);
            }
        }
        DeviceCampaignRun {
            shards,
            data,
            telemetry,
            timings,
        }
    }

    /// Run the web campaign across the 14 Table-3 countries. The scale
    /// knob does not apply — Table 3's completed-measurement counts are
    /// what the campaign reproduces.
    #[must_use]
    pub fn run_web(&self) -> WebCampaignRun {
        let _pin = self.pin_transport();
        let specs = World::web_campaign_specs();
        let out = run_shards(self.mode, specs.len(), |i| {
            let started = Instant::now();
            let spec = &specs[i];
            let mut world = World::build(self.seed);
            world.net.set_telemetry_mode(self.telemetry);
            let ep = world.attach_esim(spec.country);
            let mut records = Vec::new();
            for m in 0..spec.measurements {
                if let Some(r) = run_web_measurement(
                    &mut world.net,
                    &ep,
                    &world.internet.targets,
                    &format!("web/{m}"),
                ) {
                    records.push(r);
                }
            }
            let snap = world.net.take_telemetry();
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            (spec.country, records, ep, snap, wall_ms)
        });
        let mut results = Vec::with_capacity(out.len());
        let mut snaps = Vec::with_capacity(out.len());
        let mut timings = Vec::with_capacity(out.len());
        for (country, records, ep, snap, wall_ms) in out {
            let key = format!("web/{}", country.alpha3());
            snaps.push((key.clone(), snap));
            timings.push(ShardTiming { key, wall_ms });
            results.push((country, records, ep));
        }
        WebCampaignRun {
            world: World::build(self.seed),
            results,
            telemetry: merge_shards(self.telemetry, snaps),
            timings,
        }
    }

    /// Attach every measured country's eSIM `attaches_per_country` times
    /// and collect observations — the input to Table 2 / Figs. 3–4. One
    /// shard per country.
    #[must_use]
    pub fn run_survey(&self, attaches_per_country: u32) -> SurveyRun {
        let _pin = self.pin_transport();
        let world = World::build(self.seed);
        let countries = world.measured_countries();
        let out = run_shards(self.mode, countries.len(), |i| {
            let started = Instant::now();
            let country = countries[i];
            let mut shard_world = World::build(self.seed);
            shard_world.net.set_telemetry_mode(self.telemetry);
            let eps: Vec<Endpoint> = (0..attaches_per_country)
                .map(|_| shard_world.attach_esim(country))
                .collect();
            let snap = shard_world.net.take_telemetry();
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            (country, eps, snap, wall_ms)
        });
        let mut endpoints = Vec::new();
        let mut snaps = Vec::with_capacity(out.len());
        let mut timings = Vec::with_capacity(out.len());
        for (country, eps, snap, wall_ms) in out {
            let key = format!("survey/{}", country.alpha3());
            snaps.push((key.clone(), snap));
            timings.push(ShardTiming { key, wall_ms });
            endpoints.extend(eps);
        }
        let observations = observations_for(&world, &endpoints);
        SurveyRun {
            world,
            observations,
            telemetry: merge_shards(self.telemetry, snaps),
            timings,
        }
    }
}

/// Restores the previous process-wide transport override when a pinned
/// run finishes (even on unwind).
struct TransportPin(Option<Option<TransportKind>>);

impl Drop for TransportPin {
    fn drop(&mut self) {
        if let Some(prev) = self.0.take() {
            TransportKind::override_transport(prev);
        }
    }
}

/// Restores the previous process-wide fault-spec override when a pinned
/// run finishes (even on unwind).
struct FaultsPin(Option<Option<FaultSpec>>);

impl Drop for FaultsPin {
    fn drop(&mut self) {
        if let Some(prev) = self.0.take() {
            FaultSpec::override_faults(prev);
        }
    }
}

/// [`CampaignRunner::run`] with every knob taken from the environment.
#[must_use]
pub fn run_device(seed: u64, scale: f64) -> DeviceCampaignRun {
    CampaignRunner::from_env(seed).scale(scale).run()
}

/// [`CampaignRunner::run_web`] with every knob taken from the environment,
/// in the legacy tuple shape.
#[must_use]
pub fn run_web(seed: u64) -> (World, Vec<(Country, Vec<WebRecord>, Endpoint)>) {
    let run = CampaignRunner::from_env(seed).run_web();
    (run.world, run.results)
}

/// Build the tomography observations for a set of eSIM endpoints: each
/// endpoint contributes its country, operator identities and the public IP
/// its session used; repeated attachments of one country merge their IPs.
#[must_use]
pub fn observations_for(world: &World, endpoints: &[Endpoint]) -> Vec<EsimObservation> {
    let mut by_country: std::collections::BTreeMap<Country, EsimObservation> =
        std::collections::BTreeMap::new();
    for ep in endpoints {
        let b = world.ops.dir.get(ep.att.b_mno);
        let v = world.ops.dir.get(ep.att.v_mno);
        let entry = by_country
            .entry(ep.country)
            .or_insert_with(|| EsimObservation {
                visited: ep.country,
                b_mno_name: b.name.clone(),
                b_mno_country: b.country,
                b_mno_asn: b.asn,
                v_mno_asn: v.asn,
                user_city: City::sgw_city_for(ep.country).expect("measured country"),
                public_ips: vec![],
            });
        if !entry.public_ips.contains(&ep.att.public_ip) {
            entry.public_ips.push(ep.att.public_ip);
        }
    }
    by_country.into_values().collect()
}

/// [`CampaignRunner::run_survey`] with every knob taken from the
/// environment, in the legacy tuple shape.
#[must_use]
pub fn survey_all_esims(seed: u64, attaches_per_country: u32) -> (World, Vec<EsimObservation>) {
    let run = CampaignRunner::from_env(seed).run_survey(attaches_per_country);
    (run.world, run.observations)
}

/// Users-per-second throughput for a fleet run, guarded against a zero
/// wall clock (sub-nanosecond runs report a huge-but-finite rate).
#[must_use]
pub fn users_per_sec(users: u64, wall_secs: f64) -> f64 {
    users as f64 / wall_secs.max(1e-9)
}

/// The machine-parseable throughput line scraped by the CI
/// throughput-floor gate and `scripts/bench_json.sh`
/// (`sed -n 's/^fleet_smoke_users_per_sec: //p'`).
///
/// This function is the only place the line is formatted and
/// [`emit_users_per_sec`] the only place it is emitted — always on
/// **stderr**. `fleet_smoke`'s stdout carries nothing but the byte-stable
/// report render so CI can `cmp` two invocations directly; everything
/// wall-clock-derived belongs on the other stream. Scrapers therefore
/// redirect as `fleet_smoke 2>&1 >/dev/null | sed …`.
#[must_use]
pub fn users_per_sec_line(users: u64, wall_secs: f64) -> String {
    format!(
        "fleet_smoke_users_per_sec: {:.0}",
        users_per_sec(users, wall_secs)
    )
}

/// Emit [`users_per_sec_line`] on stderr and return the rate. The single
/// emission point for the gate line: binaries must not print it
/// themselves, so the stream contract lives (and is tested) here.
pub fn emit_users_per_sec(users: u64, wall_secs: f64) -> f64 {
    eprintln!("{}", users_per_sec_line(users, wall_secs));
    users_per_sec(users, wall_secs)
}

/// The machine-parseable agent throughput line scraped by the CI
/// service-floor gate and `scripts/bench_json.sh`
/// (`sed -n 's/^service_events_per_sec: //p'`).
///
/// A *service event* is one unit of agent work: a scheduler job fire
/// (cohort tick, vantage probe, or fault-calendar advance) or one
/// session record flowing through the bounded export queue. Like the
/// fleet gate line, it lives on **stderr** — `service_smoke`'s stdout
/// carries nothing but the byte-stable agent report.
#[must_use]
pub fn service_events_per_sec_line(events: u64, wall_secs: f64) -> String {
    format!(
        "service_events_per_sec: {:.0}",
        events as f64 / wall_secs.max(1e-9)
    )
}

/// Emit [`service_events_per_sec_line`] on stderr and return the rate.
/// The single emission point, mirroring [`emit_users_per_sec`].
pub fn emit_service_events_per_sec(events: u64, wall_secs: f64) -> f64 {
    eprintln!("{}", service_events_per_sec_line(events, wall_secs));
    events as f64 / wall_secs.max(1e-9)
}

/// Format a boxplot row for the text figures.
#[must_use]
pub fn boxplot_row(label: &str, values: &[f64]) -> String {
    match roam_stats::BoxplotSummary::from(values) {
        Ok(b) => format!(
            "{:<22} {:>7.1} [{:>7.1} {:>7.1} {:>7.1}] {:>7.1}  (n={})",
            label, b.whisker_lo, b.q1, b.median, b.q3, b.whisker_hi, b.n
        ),
        Err(_) => format!("{label:<22} (no data)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roam_ipx::RoamingArch;

    #[test]
    fn small_device_run_covers_all_countries_and_kinds() {
        let run = CampaignRunner::new(5).scale(0.02).run();
        assert_eq!(run.sims().count(), 10);
        assert!(run.esims().count() >= 10);
        assert!(!run.data.speedtests.is_empty());
        assert!(!run.data.traces.is_empty());
        assert!(!run.data.cdns.is_empty());
        assert!(!run.data.dns.is_empty());
        assert!(!run.data.videos.is_empty());
        // Telemetry is off by default: nothing recorded, nothing rendered.
        assert!(run.telemetry.render().is_empty());
        assert_eq!(
            run.telemetry.counter(roam_telemetry::Counter::PacketsSent),
            0
        );
        assert_eq!(run.timings.len(), 10);
        assert!(run.timings[0].key.starts_with("device/"));
    }

    #[test]
    fn survey_classifies_21_roaming_3_native() {
        let run = CampaignRunner::new(6).run_survey(3);
        let (world, obs) = (run.world, run.observations);
        assert_eq!(obs.len(), 24);
        let report = roam_core::TomographyReport::build(&obs, world.net.registry());
        assert_eq!(report.rows.len(), 24);
        assert_eq!(report.by_arch(RoamingArch::Native).len(), 3);
        assert_eq!(report.by_arch(RoamingArch::HomeRouted).len(), 5);
        assert_eq!(report.by_arch(RoamingArch::IpxHubBreakout).len(), 16);
        assert!(report.by_arch(RoamingArch::LocalBreakout).is_empty());
    }

    #[test]
    fn web_campaign_produces_table3_counts() {
        let run = CampaignRunner::new(7).run_web();
        assert_eq!(run.results.len(), 14);
        let total: usize = run.results.iter().map(|(_, r, _)| r.len()).sum();
        assert_eq!(total, 116, "Table 3's completed measurements");
    }

    #[test]
    fn runner_sink_streams_the_merged_campaign() {
        use roam_measure::{Dataset, MemorySink};
        use std::sync::{Arc, Mutex};
        let sink = Arc::new(Mutex::new(MemorySink::new()));
        let run = CampaignRunner::new(5)
            .scale(0.02)
            .sink(sink.clone() as SharedSink)
            .run();
        let sink = Arc::try_unwrap(sink)
            .expect("runner dropped its handle")
            .into_inner()
            .unwrap();
        // The sink saw exactly the bytes the buffered export renders.
        assert_eq!(
            sink.table(Dataset::Speedtests),
            Some(run.data.export(Dataset::Speedtests).as_str())
        );
        assert_eq!(
            sink.table(Dataset::Videos),
            Some(run.data.export(Dataset::Videos).as_str())
        );
    }

    #[test]
    fn telemetry_report_is_mode_and_worker_invariant() {
        use roam_telemetry::{Counter, TelemetryMode};
        let serial = CampaignRunner::new(9)
            .scale(0.02)
            .telemetry(TelemetryMode::Jsonl)
            .run();
        let parallel = CampaignRunner::new(9)
            .scale(0.02)
            .parallel(4)
            .telemetry(TelemetryMode::Jsonl)
            .run();
        assert!(serial.telemetry.counter(Counter::PacketsSent) > 0);
        assert!(serial.telemetry.counter(Counter::PlansExecuted) > 0);
        assert_eq!(serial.telemetry.counter(Counter::ShardsMerged), 10);
        assert_eq!(serial.telemetry.render(), parallel.telemetry.render());
    }

    #[test]
    fn pinned_transport_restores_the_override() {
        use roam_netsim::TransportKind;
        let before = TransportKind::override_transport(None);
        TransportKind::override_transport(before);
        let _ = CampaignRunner::new(5)
            .scale(0.02)
            .transport(TransportKind::Engine)
            .run();
        let after = TransportKind::override_transport(None);
        TransportKind::override_transport(after);
        assert_eq!(before, after, "pin must restore the previous override");
    }

    #[test]
    fn throughput_line_matches_the_ci_scrape_pattern() {
        assert_eq!(
            users_per_sec_line(100_000, 2.0),
            "fleet_smoke_users_per_sec: 50000"
        );
        // The CI gate and bench_json.sh scrape stderr with
        // `sed -n 's/^fleet_smoke_users_per_sec: //p'`; the
        // prefix-stripped remainder must be a bare integer.
        let line = users_per_sec_line(123_456, 3.7);
        let rest = line
            .strip_prefix("fleet_smoke_users_per_sec: ")
            .expect("stable prefix");
        let parsed: u64 = rest.parse().expect("bare integer after the prefix");
        assert!(parsed > 0);
        // A zero wall clock must not poison the gate with inf/NaN.
        assert!(users_per_sec(1, 0.0).is_finite());
    }

    #[test]
    fn scaled_keeps_nonzero_counts_alive() {
        assert_eq!(scaled(10, 0.1), 1);
        assert_eq!(scaled(3, 0.1), 1);
        assert_eq!(scaled(0, 0.5), 0);
        assert_eq!(scaled(100, 1.0), 100);
    }
}
