//! Shared experiment harness for the per-figure/table binaries.
//!
//! Every `fig*`/`table*` binary in `src/bin/` reproduces one table or
//! figure of the paper. The heavy lifting — running the two campaigns at
//! Table-3/Table-4 scale against the calibrated world — lives here so the
//! binaries stay declarative.
//!
//! Campaigns execute as **per-country shards** through
//! [`roam_measure::parallel`]: every shard builds its own world from the
//! master seed, and every measurement inside a shard runs on its own flow
//! derived from the attachment's flow stamp and the measurement's label —
//! never from execution order. The merged output is therefore bit-identical
//! whether shards run on one thread ([`RunMode::Sequential`]) or many
//! ([`RunMode::Parallel`]). The plain
//! [`run_device`]/[`run_web`]/[`survey_all_esims`] entry points read the
//! worker count from `ROAM_PARALLEL` (default sequential) — safe because
//! the mode cannot change the bytes, only the wall clock.

use roam_core::EsimObservation;
use roam_geo::{City, Country};
use roam_measure::{
    run_device_campaign, run_shards, run_web_measurement, CampaignData, DeviceCampaignSpec,
    Endpoint, RunMode, WebRecord,
};
use roam_world::{DeviceCountrySpec, World};

/// Scale factor applied to the Table-4 sample counts. 1.0 is paper scale;
/// the unit tests of the binaries use ~0.1 for speed.
#[must_use]
pub fn scaled(count: u32, scale: f64) -> u32 {
    ((count as f64 * scale).round() as u32).max(u32::from(count > 0))
}

fn scale_spec(spec: &DeviceCampaignSpec, scale: f64) -> DeviceCampaignSpec {
    let s = |pair: (u32, u32)| (scaled(pair.0, scale), scaled(pair.1, scale));
    DeviceCampaignSpec {
        ookla: s(spec.ookla),
        mtr_per_target: s(spec.mtr_per_target),
        cdn_per_provider: s(spec.cdn_per_provider),
        dns: s(spec.dns),
        video: s(spec.video),
    }
}

/// One country's completed slice of the device campaign.
///
/// The endpoints' node ids are only meaningful inside [`Self::world`] —
/// each shard attaches into its own copy of the seeded world. Binaries
/// that re-probe endpoints live (e.g. the VoIP extension) must pair each
/// endpoint with the world of its own shard.
pub struct DeviceCountryRun {
    /// The campaign country.
    pub country: Country,
    /// The shard's world after its attachments and measurements.
    pub world: World,
    /// eSIM endpoints, one per day-chunk re-attachment.
    pub esims: Vec<Endpoint>,
    /// The physical SIM endpoint of the last day-chunk.
    pub sim: Endpoint,
}

/// Everything a figure binary needs from one full device-campaign run.
pub struct DeviceCampaignRun {
    /// Per-country shard results, in Table-4 order. Each carries the
    /// world its endpoints live in.
    pub shards: Vec<DeviceCountryRun>,
    /// All measurement records, all countries merged in Table-4 order.
    pub data: CampaignData,
}

impl DeviceCampaignRun {
    /// eSIM endpoints of every shard, flattened in Table-4 order.
    pub fn esims(&self) -> impl Iterator<Item = &Endpoint> {
        self.shards.iter().flat_map(|s| s.esims.iter())
    }

    /// One physical endpoint per country, in Table-4 order.
    pub fn sims(&self) -> impl Iterator<Item = &Endpoint> {
        self.shards.iter().map(|s| &s.sim)
    }
}

/// Run one country's device-campaign shard: its own world built from the
/// master seed. Every measurement runs on a flow keyed by its day-chunk
/// attachment and its plan label — never by execution order, so shard
/// results do not depend on which worker ran them, or when.
#[must_use]
pub fn run_device_shard(
    seed: u64,
    scale: f64,
    spec: &DeviceCountrySpec,
) -> (DeviceCountryRun, CampaignData) {
    let mut world = World::build(seed);
    let mut data = CampaignData::default();
    let mut esims = Vec::new();
    let chunks = spec.days.clamp(2, 6);
    let chunk_spec = scale_spec(&spec.spec, scale / f64::from(chunks));
    let mut last_sim = None;
    for _ in 0..chunks {
        // Both SIMs re-attach per day-chunk: real devices detach
        // overnight, and per-attachment draws (core depth, PGW pool
        // slot, provider alternation) must average out on both sides.
        // Each attachment carries a fresh flow stamp, so repeated plan
        // labels across chunks still name distinct flows.
        let sim = world.attach_physical(spec.country);
        let esim = world.attach_esim(spec.country);
        let d = run_device_campaign(
            &mut world.net,
            &sim,
            &esim,
            &chunk_spec,
            &world.internet.targets,
        );
        data.extend(d);
        esims.push(esim);
        last_sim = Some(sim);
    }
    let run = DeviceCountryRun {
        country: spec.country,
        world,
        esims,
        sim: last_sim.expect("at least one chunk"),
    };
    (run, data)
}

/// Run the device campaign across the 10 Table-4 countries.
///
/// Each country's eSIM re-attaches every "day chunk" so that the
/// Packet-Host/OVH alternation of §4.1 shows up in the observed public IPs
/// — the campaigns saw both providers per eSIM, not per measurement.
#[must_use]
pub fn run_device_mode(seed: u64, scale: f64, mode: RunMode) -> DeviceCampaignRun {
    let specs = World::device_campaign_specs();
    let results = run_shards(mode, specs.len(), |i| {
        run_device_shard(seed, scale, &specs[i])
    });
    let mut data = CampaignData::default();
    let mut shards = Vec::with_capacity(results.len());
    for (shard, shard_data) in results {
        data.extend(shard_data);
        shards.push(shard);
    }
    DeviceCampaignRun { shards, data }
}

/// [`run_device_mode`] with the worker count taken from `ROAM_PARALLEL`.
#[must_use]
pub fn run_device(seed: u64, scale: f64) -> DeviceCampaignRun {
    run_device_mode(seed, scale, RunMode::from_env())
}

/// Run the web campaign across the 14 Table-3 countries, returning the
/// per-country records.
///
/// The returned [`World`] is a fresh build of the master seed for static
/// lookups (country plans, registry); the endpoints' node ids belong to
/// their shard worlds, which are dropped with the shards.
#[must_use]
pub fn run_web_mode(seed: u64, mode: RunMode) -> (World, Vec<(Country, Vec<WebRecord>, Endpoint)>) {
    let specs = World::web_campaign_specs();
    let out = run_shards(mode, specs.len(), |i| {
        let spec = &specs[i];
        let mut world = World::build(seed);
        let ep = world.attach_esim(spec.country);
        let mut records = Vec::new();
        for m in 0..spec.measurements {
            if let Some(r) = run_web_measurement(
                &mut world.net,
                &ep,
                &world.internet.targets,
                &format!("web/{m}"),
            ) {
                records.push(r);
            }
        }
        (spec.country, records, ep)
    });
    (World::build(seed), out)
}

/// [`run_web_mode`] with the worker count taken from `ROAM_PARALLEL`.
#[must_use]
pub fn run_web(seed: u64) -> (World, Vec<(Country, Vec<WebRecord>, Endpoint)>) {
    run_web_mode(seed, RunMode::from_env())
}

/// Build the tomography observations for a set of eSIM endpoints: each
/// endpoint contributes its country, operator identities and the public IP
/// its session used; repeated attachments of one country merge their IPs.
#[must_use]
pub fn observations_for(world: &World, endpoints: &[Endpoint]) -> Vec<EsimObservation> {
    let mut by_country: std::collections::BTreeMap<Country, EsimObservation> =
        std::collections::BTreeMap::new();
    for ep in endpoints {
        let b = world.ops.dir.get(ep.att.b_mno);
        let v = world.ops.dir.get(ep.att.v_mno);
        let entry = by_country
            .entry(ep.country)
            .or_insert_with(|| EsimObservation {
                visited: ep.country,
                b_mno_name: b.name.clone(),
                b_mno_country: b.country,
                b_mno_asn: b.asn,
                v_mno_asn: v.asn,
                user_city: City::sgw_city_for(ep.country).expect("measured country"),
                public_ips: vec![],
            });
        if !entry.public_ips.contains(&ep.att.public_ip) {
            entry.public_ips.push(ep.att.public_ip);
        }
    }
    by_country.into_values().collect()
}

/// Attach every measured country's eSIM `n` times and collect observations
/// — the input to Table 2 / Figs. 3–4. One shard per country; the
/// returned world is a fresh build of the master seed (its IP registry is
/// populated entirely at build time, so it resolves every shard's
/// observations).
#[must_use]
pub fn survey_all_esims_mode(
    seed: u64,
    attaches_per_country: u32,
    mode: RunMode,
) -> (World, Vec<EsimObservation>) {
    let world = World::build(seed);
    let countries = world.measured_countries();
    let endpoint_sets = run_shards(mode, countries.len(), |i| {
        let country = countries[i];
        let mut shard_world = World::build(seed);
        (0..attaches_per_country)
            .map(|_| shard_world.attach_esim(country))
            .collect::<Vec<_>>()
    });
    let endpoints: Vec<Endpoint> = endpoint_sets.into_iter().flatten().collect();
    let obs = observations_for(&world, &endpoints);
    (world, obs)
}

/// [`survey_all_esims_mode`] with the worker count taken from
/// `ROAM_PARALLEL`.
#[must_use]
pub fn survey_all_esims(seed: u64, attaches_per_country: u32) -> (World, Vec<EsimObservation>) {
    survey_all_esims_mode(seed, attaches_per_country, RunMode::from_env())
}

/// Format a boxplot row for the text figures.
#[must_use]
pub fn boxplot_row(label: &str, values: &[f64]) -> String {
    match roam_stats::BoxplotSummary::from(values) {
        Ok(b) => format!(
            "{:<22} {:>7.1} [{:>7.1} {:>7.1} {:>7.1}] {:>7.1}  (n={})",
            label, b.whisker_lo, b.q1, b.median, b.q3, b.whisker_hi, b.n
        ),
        Err(_) => format!("{label:<22} (no data)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roam_ipx::RoamingArch;

    #[test]
    fn small_device_run_covers_all_countries_and_kinds() {
        let run = run_device_mode(5, 0.02, RunMode::Sequential);
        assert_eq!(run.sims().count(), 10);
        assert!(run.esims().count() >= 10);
        assert!(!run.data.speedtests.is_empty());
        assert!(!run.data.traces.is_empty());
        assert!(!run.data.cdns.is_empty());
        assert!(!run.data.dns.is_empty());
        assert!(!run.data.videos.is_empty());
    }

    #[test]
    fn survey_classifies_21_roaming_3_native() {
        let (world, obs) = survey_all_esims_mode(6, 3, RunMode::Sequential);
        assert_eq!(obs.len(), 24);
        let report = roam_core::TomographyReport::build(&obs, world.net.registry());
        assert_eq!(report.rows.len(), 24);
        assert_eq!(report.by_arch(RoamingArch::Native).len(), 3);
        assert_eq!(report.by_arch(RoamingArch::HomeRouted).len(), 5);
        assert_eq!(report.by_arch(RoamingArch::IpxHubBreakout).len(), 16);
        assert!(report.by_arch(RoamingArch::LocalBreakout).is_empty());
    }

    #[test]
    fn web_campaign_produces_table3_counts() {
        let (_, results) = run_web_mode(7, RunMode::Sequential);
        assert_eq!(results.len(), 14);
        let total: usize = results.iter().map(|(_, r, _)| r.len()).sum();
        assert_eq!(total, 116, "Table 3's completed measurements");
    }

    #[test]
    fn scaled_keeps_nonzero_counts_alive() {
        assert_eq!(scaled(10, 0.1), 1);
        assert_eq!(scaled(3, 0.1), 1);
        assert_eq!(scaled(0, 0.5), 0);
        assert_eq!(scaled(100, 1.0), 100);
    }
}
