//! Ablation: static pre-arranged PGW selection vs **dynamic nearest-hub**
//! selection.
//!
//! §4.2: "IHBO aims to optimize roaming traffic by directing packets to an
//! IPX-P PGW located near the v-MNO. In practice … PGW locations are
//! restricted via pre-configured agreements." §5.1 adds the recommendation:
//! "IPX network routing policies should … prioritize the nearest
//! available PGW." This experiment grants that wish: every IHBO eSIM may
//! pick the geographically nearest site across *all* third-party hub
//! providers, and we measure what that buys.

use roam_geo::City;
use roam_ipx::{DnsMode, PgwProviderId, RoamingArch};
use roam_measure::{mtr, Service};
use roam_world::World;

fn main() {
    let mut world = World::build(2024);
    println!("ablation — static (deployed) vs dynamic nearest-hub PGW selection\n");
    println!(
        "{:<8} {:>12} {:>9} {:>13} {:>9} {:>9}",
        "country", "deployed@", "RTT ms", "nearest hub@", "RTT ms", "saving"
    );

    // The third-party hub sites available to a dynamic selector.
    let hubs: Vec<(PgwProviderId, City)> = [
        world.gateways.packet_host,
        world.gateways.ovh,
        world.gateways.wireless_logic,
        world.gateways.webbing_eu,
        world.gateways.webbing_us,
    ]
    .iter()
    .flat_map(|pid| {
        world
            .gateways
            .dir
            .get(*pid)
            .sites
            .iter()
            .map(|s| (*pid, s.city))
            .collect::<Vec<_>>()
    })
    .collect();

    let mut savings = Vec::new();
    for country in world.measured_countries() {
        let deployed = world.attach_esim(country);
        if deployed.att.arch != RoamingArch::IpxHubBreakout {
            continue;
        }
        let rtt_deployed = mtr(
            &mut world.net,
            &deployed,
            &world.internet.targets,
            Service::Google,
        )
        .and_then(|o| o.analysis.final_rtt_ms)
        .expect("Google reachable");

        // Dynamic selection: nearest hub site to the user.
        let user = City::sgw_city_for(country).expect("measured").location();
        let (best_pid, best_city) = hubs
            .iter()
            .min_by(|(_, a), (_, b)| {
                let da = user.distance_km(a.location());
                let db = user.distance_km(b.location());
                da.partial_cmp(&db).expect("no NaN")
            })
            .copied()
            .expect("hub list non-empty");
        let dynamic = world.attach_esim_with(
            country,
            RoamingArch::IpxHubBreakout,
            best_pid,
            DnsMode::GooglePublic { doh: true },
        );
        let rtt_dynamic = mtr(
            &mut world.net,
            &dynamic,
            &world.internet.targets,
            Service::Google,
        )
        .and_then(|o| o.analysis.final_rtt_ms)
        .expect("Google reachable");

        let saving = (1.0 - rtt_dynamic / rtt_deployed) * 100.0;
        savings.push(saving);
        println!(
            "{:<8} {:>12} {:>9.1} {:>13} {:>9.1} {:>8.0}%",
            country.alpha3(),
            deployed.att.breakout_city.name(),
            rtt_deployed,
            best_city.name(),
            rtt_dynamic,
            saving
        );
    }
    println!(
        "\nmean RTT saving from nearest-hub selection: {:.0}% across {} IHBO eSIMs",
        savings.iter().sum::<f64>() / savings.len().max(1) as f64,
        savings.len()
    );
    println!(
        "\nreading: geography alone buys little — a nearer hub reached over an\n\
         unprovisioned (default-quality) IPX path often loses to a farther hub\n\
         with a good pre-arranged peering. This is the paper's §4.3 takeaway\n\
         made operational: 'latency to public breakout is largely driven by\n\
         peering agreements … rather than physical distance'. Dynamic selection\n\
         only pays when the peering fabric follows the sites (cf. FRA above)."
    );
}
