//! Figure 7: private path length per country (traceroutes to Google),
//! SIM vs eSIM.
//!
//! Paper anchors: Pakistan collapses to 4 hops (SIM) / 8 hops (eSIM);
//! Korea eSIM constant 7; Thai SIM and eSIM overlap (both dtac, 4–10);
//! OVH-routed IHBO sessions show short provider cores (3), Packet Host
//! deep ones (6–7).

use roam_bench::{boxplot_row, run_device};
use roam_cellular::SimType;
use roam_measure::Service;

fn main() {
    let run = run_device(2024, 0.3);

    println!("Figure 7 — private path length (hops before the first public IP)\n");
    println!(
        "{:<22} {:>7} {:>24} {:>7}",
        "", "lo", "[q1 median q3]", "hi"
    );
    for spec in roam_world::World::device_campaign_specs() {
        for (label, t) in [("SIM", SimType::Physical), ("eSIM", SimType::Esim)] {
            let v: Vec<f64> = run
                .data
                .traces
                .iter()
                .filter(|r| {
                    r.tag.country == spec.country
                        && r.tag.sim_type == t
                        && r.service == Service::Google
                })
                .map(|r| r.analysis.private_len as f64)
                .collect();
            println!(
                "{}",
                boxplot_row(&format!("{} {label}", spec.country.alpha3()), &v)
            );
        }
    }
    println!("\npaper anchors: PAK 4 (SIM) vs 8 (eSIM), KOR eSIM 7, THA 4–10 both.");
}
