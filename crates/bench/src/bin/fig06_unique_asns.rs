//! Figure 6: median number of unique ASNs observed in traceroutes to
//! Google and Facebook, SIM vs eSIM per country.
//!
//! Paper shape: mostly 2 (direct peering between the PGW provider and the
//! SP); Spanish and Pakistani physical SIMs cross national transit ASes
//! (3–4); some Qatari traces see only the SP's AS (silent CG-NAT).

use roam_bench::run_device;
use roam_cellular::SimType;
use roam_measure::Service;
use roam_stats::median;

fn main() {
    let run = run_device(2024, 0.3);

    for service in [Service::Google, Service::Facebook] {
        println!("--- traceroutes to {service:?} ---");
        println!("{:<12} {:>10} {:>10}", "country", "SIM", "eSIM");
        for spec in roam_world::World::device_campaign_specs() {
            let med = |t: SimType| -> f64 {
                let v: Vec<f64> = run
                    .data
                    .traces
                    .iter()
                    .filter(|r| {
                        r.tag.country == spec.country && r.tag.sim_type == t && r.service == service
                    })
                    .map(|r| r.analysis.unique_public_asns as f64)
                    .collect();
                median(&v).unwrap_or(f64::NAN)
            };
            println!(
                "{:<12} {:>10.1} {:>10.1}",
                spec.country.alpha3(),
                med(SimType::Physical),
                med(SimType::Esim)
            );
        }
        println!();
    }
    println!("paper shape: typically 2 unique ASNs (direct peering); Spain/Pakistan");
    println!("physical SIMs traverse national transit (3+).");
}
