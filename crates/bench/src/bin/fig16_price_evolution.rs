//! Figure 16: evolution of Airalo's median $/GB per continent, February to
//! May 2024, plus the New-Jersey vantage check.
//!
//! Paper anchors: Europe ≈ $4.5/GB ≈ half North America; Asia steps from
//! ~$5.5 to ~$6.5 around April 1; Africa's 25th percentile rises from ~4.5
//! to ~6.5; everything else flat; no vantage-point discrimination.

use roam_econ::{continent_boxplots, Crawler, Market, Vantage};
use roam_geo::Continent;

fn main() {
    let market = Market::generate(2024);
    let crawler = Crawler::new(Vantage::AbuDhabi);

    println!("Figure 16 — Airalo median $/GB per continent over time\n");
    println!(
        "{:<12} Africa   Asia     Europe   N.Am     Oceania  S.Am",
        "date"
    );
    for day in [0u32, 16, 32, 47, 62, 77, 92, 107] {
        let snap = crawler.crawl(&market, day);
        let boxes = continent_boxplots(&snap, market.airalo());
        let get = |c: Continent| {
            boxes
                .iter()
                .find(|(x, _)| *x == c)
                .map(|(_, b)| format!("{:>7.2}", b.median))
                .unwrap_or_else(|| "      –".into())
        };
        println!(
            "{:<12} {} {} {} {} {} {}",
            snap.date_label(),
            get(Continent::Africa),
            get(Continent::Asia),
            get(Continent::Europe),
            get(Continent::NorthAmerica),
            get(Continent::Oceania),
            get(Continent::SouthAmerica)
        );
    }

    // The quartile movements the paper calls out.
    let q25_africa = |day: u32| -> f64 {
        let snap = crawler.crawl(&market, day);
        let boxes = continent_boxplots(&snap, market.airalo());
        boxes
            .iter()
            .find(|(c, _)| *c == Continent::Africa)
            .map(|(_, b)| b.q1)
            .unwrap_or(f64::NAN)
    };
    println!(
        "\nAfrica 25th percentile: {:.2} (Feb) → {:.2} (May) — paper: 4.5 → 6.5",
        q25_africa(0),
        q25_africa(107)
    );

    // Vantage check (the paper "only report[s] one data-point from NJ,
    // since no location impact was observed").
    let nj = Crawler::new(Vantage::NewJersey).crawl(&market, 76);
    let mad = Crawler::new(Vantage::Madrid).crawl(&market, 76);
    let identical = nj
        .records
        .iter()
        .zip(&mad.records)
        .all(|(a, b)| a.price_usd == b.price_usd);
    println!("NJ vs Madrid crawls identical: {identical} (paper: no price discrimination)");
}
