//! Smoke harness for the long-running measurement agent.
//!
//! Stdout carries *only* the byte-stable [`AgentRun::render`] report, so
//! CI can diff two invocations across execution knobs directly:
//!
//! ```sh
//! ROAM_SERVICE_USERS=2000 service_smoke > a.txt
//! ROAM_SERVICE_USERS=2000 ROAM_PARALLEL=4 ROAM_TRANSPORT=engine service_smoke > b.txt
//! cmp a.txt b.txt
//! ```
//!
//! Wall-clock throughput goes to stderr: the machine-parseable
//! `service_events_per_sec:` gate line is emitted by
//! [`roam_bench::emit_service_events_per_sec`], the one place its format
//! and stream are defined. A *service event* is a scheduler job fire or
//! a session record through the bounded export queue, so the rate covers
//! both the virtual-clock loop and the streaming path.
//!
//! Knobs: `ROAM_SERVICE_*` (sizing), `ROAM_SERVICE_BENCH_DAYS` (horizon,
//! default 30), `ROAM_SEED`, plus the repo-wide `ROAM_PARALLEL`,
//! `ROAM_TRANSPORT`, `ROAM_CALENDAR`, `ROAM_FAULTS`, `ROAM_TELEMETRY`.
//!
//! [`AgentRun::render`]: roam_service::AgentRun::render

use roam_measure::MemorySink;
use roam_service::{Agent, Horizon, ServiceConfig};
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Instant;

fn main() -> ExitCode {
    let seed = std::env::var("ROAM_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(42);
    let days = std::env::var("ROAM_SERVICE_BENCH_DAYS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(30);

    let config = ServiceConfig::from_env();
    let agent = match Agent::new(seed, config) {
        Ok(agent) => agent,
        Err(err) => {
            eprintln!("service_smoke: {err}");
            return ExitCode::from(2);
        }
    };
    // Stream sessions into a memory sink so the run exercises the
    // bounded-queue path, not just the scheduler loop.
    let mut agent = agent.sink(Arc::new(Mutex::new(MemorySink::new())));

    let started = Instant::now();
    let run = match agent.run(Horizon::SimDays(days), None) {
        Ok(run) => run,
        Err(err) => {
            eprintln!("service_smoke: {err}");
            return ExitCode::from(2);
        }
    };
    let wall = started.elapsed().as_secs_f64();

    print!("{}", run.render());

    eprintln!(
        "service_smoke: {days} sim-days, {} fires, {} sessions streamed, {} soak rows in {wall:.2}s",
        run.fires,
        run.streamed,
        run.soak.len()
    );
    roam_bench::emit_service_events_per_sec(run.fires + run.streamed, wall);
    ExitCode::SUCCESS
}
