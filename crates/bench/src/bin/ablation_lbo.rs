//! Ablation: what if Airalo realized **Local Breakout**?
//!
//! The paper's conclusion names LBO as an evolution path ("…or by realizing
//! Local Breakouts (LBO) where traffic is directly handled by v-MNOs").
//! Airalo never uses it ("likely due to a lack of trust among MNOs
//! regarding roamer records and charges", §4.2) — but the simulator can.
//! For every roaming country we attach the deployed configuration and a
//! counterfactual LBO session (breakout at the v-MNO's own gateway) and
//! compare RTT to Google.

use roam_ipx::{DnsMode, RoamingArch};
use roam_measure::{mtr, Service};
use roam_world::World;

fn main() {
    let mut world = World::build(2024);
    println!("ablation — deployed breakout vs counterfactual LBO (RTT to Google, ms)\n");
    println!(
        "{:<8} {:>8} {:>10} {:>10} {:>9}",
        "country", "deployed", "RTT", "LBO RTT", "saving"
    );

    let mut savings = Vec::new();
    for country in world.measured_countries() {
        let plan = world.plan(country).clone();
        let deployed = world.attach_esim(country);
        if !deployed.att.arch.is_roaming() {
            continue; // native eSIMs already break out locally
        }
        let deployed_rtt = mtr(
            &mut world.net,
            &deployed,
            &world.internet.targets,
            Service::Google,
        )
        .and_then(|o| o.analysis.final_rtt_ms)
        .expect("Google reachable");

        let vmno = world.ops.id(plan.v_mno);
        let local_gw = world.gateways.own_gateway(vmno);
        let lbo = world.attach_esim_with(
            country,
            RoamingArch::LocalBreakout,
            local_gw,
            DnsMode::OperatorResolver,
        );
        let lbo_rtt = mtr(
            &mut world.net,
            &lbo,
            &world.internet.targets,
            Service::Google,
        )
        .and_then(|o| o.analysis.final_rtt_ms)
        .expect("Google reachable");

        let saving = (1.0 - lbo_rtt / deployed_rtt) * 100.0;
        savings.push((deployed.att.arch, saving));
        println!(
            "{:<8} {:>8} {:>10.1} {:>10.1} {:>8.0}%",
            country.alpha3(),
            deployed.att.arch.label(),
            deployed_rtt,
            lbo_rtt,
            saving
        );
    }

    let mean = |arch: RoamingArch| -> f64 {
        let v: Vec<f64> = savings
            .iter()
            .filter(|(a, _)| *a == arch)
            .map(|(_, s)| *s)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    println!(
        "\nmean RTT saving from LBO: over HR {:.0}%, over IHBO {:.0}%",
        mean(RoamingArch::HomeRouted),
        mean(RoamingArch::IpxHubBreakout)
    );
    println!("(the gap the trust problem — roamer records and charging — costs users)");
}
