//! Table 3: the web-based campaign overview (14 countries, completed
//! measurements = successful DNS + fast.com uploads per country).

use roam_bench::CampaignRunner;
use roam_world::World;

fn main() {
    let specs = World::web_campaign_specs();
    let run = CampaignRunner::from_env(2024).run_web();
    let results = &run.results;

    println!("Table 3 — web-based campaign overview\n");
    println!(
        "{:<12} {:>12} {:>16} {:>15}",
        "Country", "# Volunteers", "Duration (days)", "# Measurements"
    );
    let mut total = 0;
    for spec in &specs {
        let completed = results
            .iter()
            .find(|(c, _, _)| *c == spec.country)
            .map(|(_, r, _)| r.len())
            .unwrap_or(0);
        total += completed;
        println!(
            "{:<12} {:>12} {:>16} {:>15}",
            spec.country.name(),
            spec.volunteers,
            spec.days,
            completed
        );
    }
    println!("\ntotal completed measurements: {total} (paper: 116)");
    print!("{}", run.telemetry.render());
}
