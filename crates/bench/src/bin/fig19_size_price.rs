//! Figure 19: plan size (GB) versus price ($) for Airalo plans ≤ 5 GB,
//! grouped by the backing b-MNO.
//!
//! Paper anchors: plans sharing a b-MNO price differently across countries
//! (a Play eSIM in Georgia costs up to twice the Spanish one as size
//! grows), and the size→price curve is non-linear.

use roam_econ::{size_price_by_bmno, Crawler, Market, Vantage};
use roam_geo::Country;

const BMNO_NAMES: [&str; 6] = [
    "Singtel",
    "Play",
    "Telna",
    "Telecom Italia",
    "Orange",
    "Polkomtel",
];

fn main() {
    let market = Market::generate(2024);
    let snap = Crawler::new(Vantage::NewJersey).crawl(&market, 76);
    let groups = size_price_by_bmno(&snap, market.airalo(), 5.0);

    println!("Figure 19 — size vs price per b-MNO (≤5 GB plans, cheapest per size)\n");
    for (bmno, countries) in &groups {
        let name = BMNO_NAMES.get(*bmno as usize).unwrap_or(&"?");
        println!("b-MNO {name}:");
        // Show up to 4 representative countries per group.
        for (country, points) in countries.iter().take(4) {
            let mut cheapest: std::collections::BTreeMap<u64, f64> = Default::default();
            for (gb, price) in points {
                let e = cheapest.entry((*gb * 10.0) as u64).or_insert(f64::INFINITY);
                *e = e.min(*price);
            }
            let series: Vec<String> = cheapest
                .iter()
                .map(|(gb, p)| format!("{}GB=${:.2}", *gb as f64 / 10.0, p))
                .collect();
            println!("  {:<6} {}", country.alpha3(), series.join("  "));
        }
    }

    // The Play Georgia-vs-Spain anchor.
    if let Some(play) = groups.get(&1) {
        let price5 = |c: Country| {
            play.get(&c).and_then(|pts| {
                pts.iter()
                    .filter(|(gb, _)| *gb == 5.0)
                    .map(|(_, p)| *p)
                    .min_by(|a, b| a.partial_cmp(b).expect("no NaN"))
            })
        };
        if let (Some(geo), Some(esp)) = (price5(Country::GEO), price5(Country::ESP)) {
            println!(
                "\nPlay 5 GB plan: Georgia ${geo:.2} vs Spain ${esp:.2} ({:.1}x) — \
                 paper: same b-MNO, price up to 2x apart",
                geo / esp
            );
        }
    }
}
