//! §4.3.1 methodology validation: the emnify scenario.
//!
//! 219 traceroutes to Google, YouTube and Facebook from an emnify eSIM in
//! London (O2 UK as v-MNO). The paper's methodology — first public IP →
//! ASN + geolocation — must recover AS16509 (Amazon) in Dublin, matching
//! the operator-confirmed ground truth.

use roam_measure::{mtr, Service};
use roam_world::EmnifyScenario;

fn main() {
    let mut s = EmnifyScenario::build(2024);
    println!("validation — emnify eSIM, London, O2 UK v-MNO\n");

    let mut total = 0;
    let mut correct = 0;
    for service in [Service::Google, Service::YouTube, Service::Facebook] {
        for _ in 0..73 {
            // 73 × 3 = 219 traceroutes, as in the paper
            let out =
                mtr(&mut s.net, &s.endpoint, &s.internet.targets, service).expect("edges exist");
            total += 1;
            if out.analysis.pgw_asn == Some(s.truth_asn)
                && out.analysis.pgw_city == Some(s.truth_city)
            {
                correct += 1;
            }
        }
    }
    println!("traceroutes: {total} (paper: 219)");
    println!(
        "PGW inferred as {} in {}: {correct}/{total}",
        s.truth_asn,
        s.truth_city.name()
    );
    println!("\npaper: \"our methodology identified the PGW provider as AS16509");
    println!("(Amazon.com, Inc.) geolocated in Dublin … match[ing] the ground truth\"");
    assert_eq!(correct, total, "validation must be perfect");
}
