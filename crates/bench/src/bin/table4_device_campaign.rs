//! Table 4: the device-based campaign overview — successful test counts per
//! country, formatted `<physical SIM> // <Airalo eSIM>` like the paper.

use roam_bench::CampaignRunner;
use roam_cellular::SimType;
use roam_measure::Service;

fn main() {
    // Scale 0.25 keeps the run quick while preserving the per-country
    // ratios; pass-through of the real counts is in the spec table itself.
    let run = CampaignRunner::from_env(2024).scale(0.25).run();

    println!("Table 4 — device-based campaign overview (scaled ×0.25)\n");
    println!(
        "{:<12} {:>12} {:>14} {:>14} {:>14} {:>10}",
        "Country", "Ookla", "MTR (Google)", "MTR (FB)", "CDN (CF)", "Video"
    );
    for spec in roam_world::World::device_campaign_specs() {
        let c = spec.country;
        let count = |f: &dyn Fn(SimType) -> usize| {
            format!("{} // {}", f(SimType::Physical), f(SimType::Esim))
        };
        let ookla = count(&|t| {
            run.data
                .speedtests
                .iter()
                .filter(|r| r.tag.country == c && r.tag.sim_type == t)
                .count()
        });
        let mtr_g = count(&|t| {
            run.data
                .traces
                .iter()
                .filter(|r| {
                    r.tag.country == c && r.tag.sim_type == t && r.service == Service::Google
                })
                .count()
        });
        let mtr_f = count(&|t| {
            run.data
                .traces
                .iter()
                .filter(|r| {
                    r.tag.country == c && r.tag.sim_type == t && r.service == Service::Facebook
                })
                .count()
        });
        let cdn = count(&|t| {
            run.data
                .cdns
                .iter()
                .filter(|r| {
                    r.tag.country == c
                        && r.tag.sim_type == t
                        && r.provider == roam_measure::CdnProvider::Cloudflare
                })
                .count()
        });
        let video = count(&|t| {
            run.data
                .videos
                .iter()
                .filter(|r| r.tag.country == c && r.tag.sim_type == t)
                .count()
        });
        println!(
            "{:<12} {:>12} {:>14} {:>14} {:>14} {:>10}",
            c.name(),
            ookla,
            mtr_g,
            mtr_f,
            cdn,
            video
        );
    }
    println!("\n(Spain and the UK report no video sessions, as in §A.3.)");
    print!("{}", run.telemetry.render());
}
