//! Figure 14: (a) Cloudflare download time of jquery.min.js and (b) DNS
//! lookup time, per country and configuration.
//!
//! Paper anchors: HR eSIMs 481% (PAK) / 360% (ARE) slower than physical on
//! CDN; IHBO averages 1316 ms on Cloudflare — worse than native (306/514)
//! but far better than HR (3203/1781); HR DNS +610%/+517% medians; IHBO
//! DNS +103%…+616% (DoH-inflated Google resolvers near the PGW).
//!
//! Both panels run as streaming queries over the campaign's columnar `Cdn`
//! and `Dns` tables: one export walk per dataset builds the column pages,
//! then every figure row is a filter + `values` scan over the chunks.
//! Delivered records are `status ∈ {ok, failover}` — the columnar spelling
//! of `MeasureStatus::is_ok`.

use roam_bench::{boxplot_row, run_device};
use roam_cellular::SimType;
use roam_columnar::{Query, Table};
use roam_geo::Country;
use roam_ipx::RoamingArch;
use roam_measure::{ColumnarSink, Dataset, Exporter};
use roam_stats::{median, Summary};

/// `MeasureStatus::is_ok` as a status-column filter.
const DELIVERED: [&str; 2] = ["ok", "failover"];

fn main() {
    let run = run_device(2024, 0.4);
    let mut sink = ColumnarSink::new();
    run.data.export_rows(Dataset::Cdn, &mut sink);
    run.data.export_rows(Dataset::Dns, &mut sink);
    let tables = sink.into_tables();
    let table = |ds: Dataset| -> &Table {
        tables
            .iter()
            .find(|(d, _)| *d == ds)
            .map(|(_, t)| t)
            .expect("exported above")
    };
    let cdn = table(Dataset::Cdn);
    let dns = table(Dataset::Dns);

    println!("Figure 14a — Cloudflare jquery.min.js download time (ms)\n");
    for spec in roam_world::World::device_campaign_specs() {
        for (label, sim) in [("SIM", "sim"), ("eSIM", "esim")] {
            let v = Query::new(cdn)
                .eq("country", spec.country.alpha3())
                .eq("sim", sim)
                .eq("provider", "Cloudflare")
                .any_of("status", &DELIVERED)
                .values("total_ms");
            println!(
                "{}",
                boxplot_row(&format!("{} {label}", spec.country.alpha3()), &v)
            );
        }
    }

    let cf_mean = |arch: RoamingArch| -> f64 {
        let v = Query::new(cdn)
            .eq("arch", arch.label())
            .eq("sim", "esim")
            .eq("provider", "Cloudflare")
            .any_of("status", &DELIVERED)
            .values("total_ms");
        Summary::from(&v).map(|s| s.mean).unwrap_or(f64::NAN)
    };
    println!("\nCloudflare mean by eSIM architecture:");
    println!(
        "  native: {:.0} ms (paper: 306 KOR / 514 THA)",
        cf_mean(RoamingArch::Native)
    );
    println!(
        "  IHBO:   {:.0} ms (paper: 1316)",
        cf_mean(RoamingArch::IpxHubBreakout)
    );
    println!(
        "  HR:     {:.0} ms (paper: 3203 PAK / 1781 ARE)",
        cf_mean(RoamingArch::HomeRouted)
    );

    let pct = |c: Country| -> f64 {
        let m = |sim: &str| {
            let v = Query::new(cdn)
                .eq("country", c.alpha3())
                .eq("sim", sim)
                .any_of("status", &DELIVERED)
                .values("total_ms");
            Summary::from(&v).map(|s| s.mean).unwrap_or(f64::NAN)
        };
        (m("esim") / m("sim") - 1.0) * 100.0
    };
    println!(
        "\nall-CDN eSIM-over-SIM increases: PAK +{:.0}% (paper +481%), \
              ARE +{:.0}% (paper +360%), DEU +{:.0}% (paper +45.4%), QAT +{:.0}% (paper +181%)",
        pct(Country::PAK),
        pct(Country::ARE),
        pct(Country::DEU),
        pct(Country::QAT)
    );

    println!("\nFigure 14b — DNS lookup times (ms)\n");
    for spec in roam_world::World::device_campaign_specs() {
        for (label, sim) in [("SIM", "sim"), ("eSIM", "esim")] {
            let v = Query::new(dns)
                .eq("country", spec.country.alpha3())
                .eq("sim", sim)
                .any_of("status", &DELIVERED)
                .values("lookup_ms");
            println!(
                "{}",
                boxplot_row(&format!("{} {label}", spec.country.alpha3()), &v)
            );
        }
    }

    let dns_increase = |c: Country| -> f64 {
        let m = |sim: &str| {
            let v = Query::new(dns)
                .eq("country", c.alpha3())
                .eq("sim", sim)
                .any_of("status", &DELIVERED)
                .values("lookup_ms");
            median(&v).unwrap_or(f64::NAN)
        };
        (m("esim") / m("sim") - 1.0) * 100.0
    };
    println!(
        "\nmedian DNS increases, eSIM over SIM: PAK +{:.0}% (paper +610%), \
              ARE +{:.0}% (paper +517%), DEU +{:.0}% (paper +103%), QAT +{:.0}% (paper +616%)",
        dns_increase(Country::PAK),
        dns_increase(Country::ARE),
        dns_increase(Country::DEU),
        dns_increase(Country::QAT)
    );

    // Resolver placement for IHBO sessions (the 74% same-country figure).
    // This one stays on the records: the geographic join against the
    // endpoint pool (City → Country) lives outside the dataset schema.
    let ihbo_dns: Vec<&roam_measure::DnsRecord> = run
        .data
        .dns
        .iter()
        .filter(|r| r.tag.arch == RoamingArch::IpxHubBreakout && r.tag.sim_type == SimType::Esim)
        .collect();
    let same_country = ihbo_dns
        .iter()
        .filter(|r| {
            run.esims().any(|e| {
                e.country == r.tag.country
                    && r.resolver_city
                        .is_some_and(|c| e.att.breakout_city.country() == c.country())
            })
        })
        .count();
    println!(
        "\nIHBO queries answered in the PGW's country: {:.0}% (paper: 74%)",
        same_country as f64 / ihbo_dns.len().max(1) as f64 * 100.0
    );
}
