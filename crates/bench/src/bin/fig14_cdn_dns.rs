//! Figure 14: (a) Cloudflare download time of jquery.min.js and (b) DNS
//! lookup time, per country and configuration.
//!
//! Paper anchors: HR eSIMs 481% (PAK) / 360% (ARE) slower than physical on
//! CDN; IHBO averages 1316 ms on Cloudflare — worse than native (306/514)
//! but far better than HR (3203/1781); HR DNS +610%/+517% medians; IHBO
//! DNS +103%…+616% (DoH-inflated Google resolvers near the PGW).

use roam_bench::{boxplot_row, run_device};
use roam_cellular::SimType;
use roam_geo::Country;
use roam_ipx::RoamingArch;
use roam_measure::CdnProvider;
use roam_stats::{median, Summary};

fn main() {
    let run = run_device(2024, 0.4);

    println!("Figure 14a — Cloudflare jquery.min.js download time (ms)\n");
    for spec in roam_world::World::device_campaign_specs() {
        for (label, t) in [("SIM", SimType::Physical), ("eSIM", SimType::Esim)] {
            let v: Vec<f64> = run
                .data
                .cdns
                .iter()
                .filter(|r| {
                    r.tag.country == spec.country
                        && r.tag.sim_type == t
                        && r.provider == CdnProvider::Cloudflare
                        && r.status.is_ok()
                })
                .map(|r| r.total_ms)
                .collect();
            println!(
                "{}",
                boxplot_row(&format!("{} {label}", spec.country.alpha3()), &v)
            );
        }
    }

    let cf_mean = |arch: RoamingArch| -> f64 {
        let v: Vec<f64> = run
            .data
            .cdns
            .iter()
            .filter(|r| {
                r.tag.arch == arch
                    && r.tag.sim_type == SimType::Esim
                    && r.provider == CdnProvider::Cloudflare
                    && r.status.is_ok()
            })
            .map(|r| r.total_ms)
            .collect();
        Summary::from(&v).map(|s| s.mean).unwrap_or(f64::NAN)
    };
    println!("\nCloudflare mean by eSIM architecture:");
    println!(
        "  native: {:.0} ms (paper: 306 KOR / 514 THA)",
        cf_mean(RoamingArch::Native)
    );
    println!(
        "  IHBO:   {:.0} ms (paper: 1316)",
        cf_mean(RoamingArch::IpxHubBreakout)
    );
    println!(
        "  HR:     {:.0} ms (paper: 3203 PAK / 1781 ARE)",
        cf_mean(RoamingArch::HomeRouted)
    );

    let pct = |c: Country| -> f64 {
        let m = |t: SimType| {
            let v: Vec<f64> = run
                .data
                .cdns
                .iter()
                .filter(|r| r.tag.country == c && r.tag.sim_type == t && r.status.is_ok())
                .map(|r| r.total_ms)
                .collect();
            Summary::from(&v).map(|s| s.mean).unwrap_or(f64::NAN)
        };
        (m(SimType::Esim) / m(SimType::Physical) - 1.0) * 100.0
    };
    println!(
        "\nall-CDN eSIM-over-SIM increases: PAK +{:.0}% (paper +481%), \
              ARE +{:.0}% (paper +360%), DEU +{:.0}% (paper +45.4%), QAT +{:.0}% (paper +181%)",
        pct(Country::PAK),
        pct(Country::ARE),
        pct(Country::DEU),
        pct(Country::QAT)
    );

    println!("\nFigure 14b — DNS lookup times (ms)\n");
    for spec in roam_world::World::device_campaign_specs() {
        for (label, t) in [("SIM", SimType::Physical), ("eSIM", SimType::Esim)] {
            let v: Vec<f64> = run
                .data
                .dns
                .iter()
                .filter(|r| r.tag.country == spec.country && r.tag.sim_type == t)
                .filter(|r| r.status.is_ok())
                .map(|r| r.lookup_ms)
                .collect();
            println!(
                "{}",
                boxplot_row(&format!("{} {label}", spec.country.alpha3()), &v)
            );
        }
    }

    let dns_increase = |c: Country| -> f64 {
        let m = |t: SimType| {
            let v: Vec<f64> = run
                .data
                .dns
                .iter()
                .filter(|r| r.tag.country == c && r.tag.sim_type == t && r.status.is_ok())
                .map(|r| r.lookup_ms)
                .collect();
            median(&v).unwrap_or(f64::NAN)
        };
        (m(SimType::Esim) / m(SimType::Physical) - 1.0) * 100.0
    };
    println!(
        "\nmedian DNS increases, eSIM over SIM: PAK +{:.0}% (paper +610%), \
              ARE +{:.0}% (paper +517%), DEU +{:.0}% (paper +103%), QAT +{:.0}% (paper +616%)",
        dns_increase(Country::PAK),
        dns_increase(Country::ARE),
        dns_increase(Country::DEU),
        dns_increase(Country::QAT)
    );

    // Resolver placement for IHBO sessions (the 74% same-country figure).
    let ihbo_dns: Vec<&roam_measure::DnsRecord> = run
        .data
        .dns
        .iter()
        .filter(|r| r.tag.arch == RoamingArch::IpxHubBreakout && r.tag.sim_type == SimType::Esim)
        .collect();
    let same_country = ihbo_dns
        .iter()
        .filter(|r| {
            run.esims().any(|e| {
                e.country == r.tag.country
                    && r.resolver_city
                        .is_some_and(|c| e.att.breakout_city.country() == c.country())
            })
        })
        .count();
    println!(
        "\nIHBO queries answered in the PGW's country: {:.0}% (paper: 74%)",
        same_country as f64 / ihbo_dns.len().max(1) as f64 * 100.0
    );
}
