//! Export + analyze throughput: the columnar path against the CSV path,
//! end to end, on one fleet's streamed session table.
//!
//! One in-process fleet run streams its sessions into a columnar sink
//! (`ROAM_FLEET_USERS` sizes it; the CI gate runs 100k users). Both
//! pipelines then start from that same table:
//!
//! - **export** — produce the artifact bytes: the rendered CSV table vs
//!   the sealed `roam-codec` frame (`Table::to_frame`).
//! - **analyze** — answer one query from the artifact: mean RTT of
//!   delivered `rtt` sessions. The CSV side re-parses its text (line
//!   split, field split, float parse — the sessions table never quotes,
//!   so a comma split is a correct parser here); the columnar side
//!   reopens the frame zero-copy (`TableView::parse_frame`) and runs
//!   the streaming query engine over the pages.
//!
//! Both sides must produce the same answer (asserted) — the race is
//! fair by construction. Stderr carries the machine-parseable gate
//! lines `scripts/bench_json.sh` consumes:
//!
//! ```text
//! export_bench_csv_mb_per_sec: …        # CSV bytes rendered / sec
//! export_bench_columnar_mb_per_sec: …   # frame bytes sealed / sec
//! export_bench_export_speedup: …        # csv render time / frame seal time
//! export_bench_analyze_speedup: …       # csv parse+scan time / view+query time
//! export_bench_speedup: …               # end-to-end (export + analyze) ratio
//! ```

use std::hint::black_box;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use roam_columnar::{csv_header, render_csv, Query, TableView};
use roam_fleet::FleetRunner;
use roam_measure::{ColumnarSink, Dataset, SharedSink};

/// `MeasureStatus::is_ok` as status labels.
const DELIVERED: [&str; 2] = ["ok", "failover"];

/// Best wall time of three runs of `f`, with the result of the last.
fn best_of_three<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..3 {
        let started = Instant::now();
        let v = black_box(f());
        best = best.min(started.elapsed().as_secs_f64());
        out = Some(v);
    }
    (best, out.expect("three runs"))
}

fn main() {
    let sink = Arc::new(Mutex::new(ColumnarSink::new()));
    let runner = FleetRunner::from_env(42).sink(sink.clone() as SharedSink);
    let users = runner.population();
    let run = runner.run();
    drop(runner);
    let sessions = Arc::try_unwrap(sink)
        .expect("runner releases its sink handle after run()")
        .into_inner()
        .expect("sink not poisoned")
        .into_table(Dataset::Sessions)
        .expect("fleet runs record sessions");
    println!(
        "export_bench: {} sessions from {} users ({} report-byte run)",
        run.report.sessions,
        users,
        run.report.render().len()
    );

    // ---- export: artifact bytes from the same table ---------------------
    let (csv_export_s, csv) = best_of_three(|| {
        let mut out = csv_header(&sessions);
        render_csv(&sessions, &mut out);
        out
    });
    let (col_export_s, frame) = best_of_three(|| sessions.to_frame());
    let csv_mb = csv.len() as f64 / 1e6;
    let col_mb = frame.len() as f64 / 1e6;
    println!(
        "export: CSV {:.1} MB in {:.3}s, frame {:.1} MB in {:.3}s",
        csv_mb, csv_export_s, col_mb, col_export_s
    );

    // ---- analyze: mean delivered rtt from the artifact ------------------
    let (csv_analyze_s, csv_answer) = best_of_three(|| {
        let mut sum = 0.0;
        let mut n = 0u64;
        for line in csv.lines().skip(1) {
            let mut fields = line.split(',');
            let kind = fields.nth(4).expect("kind column");
            if kind != "rtt" {
                continue;
            }
            let rtt = fields.next().expect("rtt_ms column");
            let status = fields.nth(2).expect("status column");
            if !DELIVERED.contains(&status) || rtt.is_empty() {
                continue;
            }
            sum += rtt.parse::<f64>().expect("well-formed float");
            n += 1;
        }
        (sum / n as f64, n)
    });
    let (col_analyze_s, col_answer) = best_of_three(|| {
        let view = TableView::parse_frame(&frame).expect("sealed frame parses");
        let v = Query::new(&view)
            .eq("kind", "rtt")
            .any_of("status", &DELIVERED)
            .values("rtt_ms");
        (v.iter().sum::<f64>() / v.len() as f64, v.len() as u64)
    });
    assert_eq!(csv_answer.1, col_answer.1, "row counts diverged");
    // CSV rounds every value to the column's 3 decimals; the frame keeps
    // the exact bits. Agreement to the rendered precision is the most the
    // text artifact can promise.
    assert!(
        (csv_answer.0 - col_answer.0).abs() < 5e-4,
        "answers diverged: csv {} vs columnar {}",
        csv_answer.0,
        col_answer.0
    );
    println!(
        "analyze: mean delivered rtt {:.3} ms over {} rows — CSV {:.3}s, columnar {:.3}s",
        col_answer.0, col_answer.1, csv_analyze_s, col_analyze_s
    );

    let export_speedup = csv_export_s / col_export_s;
    let analyze_speedup = csv_analyze_s / col_analyze_s;
    let total_speedup = (csv_export_s + csv_analyze_s) / (col_export_s + col_analyze_s);
    eprintln!("export_bench_csv_mb_per_sec: {:.1}", csv_mb / csv_export_s);
    eprintln!(
        "export_bench_columnar_mb_per_sec: {:.1}",
        col_mb / col_export_s
    );
    eprintln!("export_bench_export_speedup: {export_speedup:.2}");
    eprintln!("export_bench_analyze_speedup: {analyze_speedup:.2}");
    eprintln!("export_bench_speedup: {total_speedup:.2}");
}
