//! Figure 4: the Packet Host (AS54825) sub-map — which of its two PGW
//! sites (Amsterdam vs Ashburn) each b-MNO's eSIMs break out at.
//!
//! Paper shape: Play and Telna eSIMs (incl. Turkey!) land in Amsterdam;
//! Polkomtel's France and Uzbekistan eSIMs land in Virginia despite closer
//! Amsterdam capacity — "the PGW location is decided based on the b-MNO".

use roam_geo::City;
use roam_netsim::registry::well_known;
use roam_world::World;

fn main() {
    let mut world = World::build(2024);
    println!("Figure 4 — eSIMs breaking out via Packet Host (AS54825)\n");
    println!(
        "{:<9} {:<14} {:<14} {:>10} {:>14}",
        "visited", "b-MNO", "PGW site", "tunnel km", "vs AMS km"
    );

    let mut rows = Vec::new();
    for country in world.measured_countries() {
        // Attach repeatedly: countries alternating PH/OVH need a PH sample.
        for _ in 0..8 {
            let ep = world.attach_esim(country);
            if world.breakout_asn(&ep) == Some(well_known::PACKET_HOST) {
                rows.push((country, ep));
                break;
            }
        }
    }
    for (country, ep) in &rows {
        let user = roam_geo::City::sgw_city_for(*country).expect("measured");
        let ams_km = user.location().distance_km(City::Amsterdam.location());
        println!(
            "{:<9} {:<14} {:<14} {:>10.0} {:>14.0}",
            country.alpha3(),
            world.plan(*country).b_mno,
            ep.att.breakout_city.name(),
            ep.att.tunnel_km,
            ams_km
        );
    }

    let virginia: Vec<&str> = rows
        .iter()
        .filter(|(_, ep)| ep.att.breakout_city == City::Ashburn)
        .map(|(c, _)| c.alpha3())
        .collect();
    println!(
        "\neSIMs breaking out in Virginia: {} (paper: FRA, UZB — both Polkomtel)",
        virginia.join(", ")
    );
}
