//! Extension experiment (the paper's §7 future work): jitter, loss and
//! VoIP quality per country and configuration.
//!
//! Expectation from the latency structure: native and most IHBO paths
//! sustain usable calls; HR paths (one-way delay past the E-model's
//! 177.3 ms knee) cannot.

use roam_bench::run_device;
use roam_measure::voip_probe;

fn main() {
    let mut run = run_device(2024, 0.05);

    println!("extension — VoIP quality (E-model MOS) per country/configuration\n");
    println!(
        "{:<12} {:>6} {:>9} {:>10} {:>7} {:>6} {:>6}  verdict",
        "country", "kind", "RTT ms", "jitter ms", "loss%", "R", "MOS"
    );
    // Endpoint node ids live in their own shard's world, so the probes
    // run against each country's shard world.
    for shard in &mut run.shards {
        let world = &mut shard.world;
        let sim = world.attach_physical(shard.country);
        let esim = world.attach_esim(shard.country);
        for (label, ep) in [("SIM", &sim), ("eSIM", &esim)] {
            let flow = format!("voip/{}/{label}", shard.country.alpha3());
            let Some(v) = voip_probe(&mut world.net, ep, &world.internet.targets, 40, &flow) else {
                continue;
            };
            println!(
                "{:<12} {:>6} {:>9.1} {:>10.2} {:>7.2} {:>6.1} {:>6.2}  {} ({})",
                shard.country.alpha3(),
                label,
                v.rtt_ms,
                v.jitter_ms,
                v.loss * 100.0,
                v.r_factor,
                v.mos,
                v.verdict(),
                ep.att.arch.label()
            );
        }
    }
    println!("\nreading: HR's GTP detour pushes one-way delay toward the E-model's");
    println!("interactivity knee — Pakistan's calls degrade outright, the UAE's sit at");
    println!("the edge — while IHBO and native paths stay comfortably usable.");
}
