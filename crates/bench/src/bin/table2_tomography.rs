//! Table 2: b-MNO → PGW provider/country/type for the 21 roaming eSIMs.
//!
//! Paper shape: 6 b-MNOs; Singtel rows are HR in SGP; Play/Telna alternate
//! Packet Host (NLD) and OVH (FRA); Telecom Italia → Wireless Logic (GBR);
//! Orange → Webbing (NLD, USA); Polkomtel → Packet Host (USA).

use roam_bench::CampaignRunner;
use roam_core::TomographyReport;
use roam_ipx::RoamingArch;

fn main() {
    // Several attachments per country so provider alternation is observed.
    // All knobs (ROAM_PARALLEL / ROAM_TRANSPORT / ROAM_TELEMETRY) come from
    // the environment; none of them may change a byte of this output.
    let run = CampaignRunner::from_env(2024).run_survey(6);
    let (world, obs) = (&run.world, &run.observations);
    let report = TomographyReport::build(obs, world.net.registry());

    println!("Table 2 — PGW providers of the roaming eSIMs (measured)\n");
    print!("{}", report.table2());

    let native = report.by_arch(RoamingArch::Native).len();
    let hr = report.by_arch(RoamingArch::HomeRouted).len();
    let ihbo = report.by_arch(RoamingArch::IpxHubBreakout).len();
    let lbo = report.by_arch(RoamingArch::LocalBreakout).len();
    println!("\nclassification: {native} native, {hr} HR, {ihbo} IHBO, {lbo} LBO");
    println!("paper:          3 native, 5 HR, 16 IHBO, 0 LBO");

    let (far, total) = report.suboptimal_breakouts();
    println!("\nIHBO breakouts farther than the b-MNO country: {far}/{total} (paper: 8/16)");

    // Empty string when ROAM_TELEMETRY is off/unset.
    print!("{}", run.telemetry.render());
}
