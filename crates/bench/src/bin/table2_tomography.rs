//! Table 2: b-MNO → PGW provider/country/type for the 21 roaming eSIMs.
//!
//! Paper shape: 6 b-MNOs; Singtel rows are HR in SGP; Play/Telna alternate
//! Packet Host (NLD) and OVH (FRA); Telecom Italia → Wireless Logic (GBR);
//! Orange → Webbing (NLD, USA); Polkomtel → Packet Host (USA).
//!
//! The classification tallies run as streaming queries over a columnar
//! view of the inventory: each Table-2 row flattens to an `(arch,
//! farther-than-home)` pair of enum columns, and every count below is a
//! filtered scan over the chunks.

use roam_bench::CampaignRunner;
use roam_columnar::{field, CellValue, ColKind, Query, Schema, TableBuilder};
use roam_core::TomographyReport;
use roam_ipx::RoamingArch;

fn main() {
    // Several attachments per country so provider alternation is observed.
    // All knobs (ROAM_PARALLEL / ROAM_TRANSPORT / ROAM_TELEMETRY) come from
    // the environment; none of them may change a byte of this output.
    let run = CampaignRunner::from_env(2024).run_survey(6);
    let (world, obs) = (&run.world, &run.observations);
    let report = TomographyReport::build(obs, world.net.registry());

    println!("Table 2 — PGW providers of the roaming eSIMs (measured)\n");
    print!("{}", report.table2());

    let arch_labels = [
        RoamingArch::Native,
        RoamingArch::HomeRouted,
        RoamingArch::LocalBreakout,
        RoamingArch::IpxHubBreakout,
    ]
    .map(|a| a.label());
    let mut b = TableBuilder::new(Schema::new(vec![
        field("arch", ColKind::enumeration(&arch_labels)),
        field("farther", ColKind::enumeration(&["false", "true"])),
    ]));
    for row in &report.rows {
        let code = arch_labels
            .iter()
            .position(|&l| l == row.arch.label())
            .expect("arch label in enum") as u8;
        b.push_row(&[
            CellValue::Code(code),
            CellValue::Code(u8::from(row.breakout_farther_than_home)),
        ]);
    }
    let inventory = b.finish();
    let count = |arch: RoamingArch| Query::new(&inventory).eq("arch", arch.label()).count();

    let native = count(RoamingArch::Native);
    let hr = count(RoamingArch::HomeRouted);
    let ihbo = count(RoamingArch::IpxHubBreakout);
    let lbo = count(RoamingArch::LocalBreakout);
    println!("\nclassification: {native} native, {hr} HR, {ihbo} IHBO, {lbo} LBO");
    println!("paper:          3 native, 5 HR, 16 IHBO, 0 LBO");

    let far = Query::new(&inventory)
        .eq("arch", RoamingArch::IpxHubBreakout.label())
        .eq("farther", "true")
        .count();
    let total = ihbo;
    println!("\nIHBO breakouts farther than the b-MNO country: {far}/{total} (paper: 8/16)");

    // Empty string when ROAM_TELEMETRY is off/unset.
    print!("{}", run.telemetry.render());
}
