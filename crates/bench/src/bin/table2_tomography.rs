//! Table 2: b-MNO → PGW provider/country/type for the 21 roaming eSIMs.
//!
//! Paper shape: 6 b-MNOs; Singtel rows are HR in SGP; Play/Telna alternate
//! Packet Host (NLD) and OVH (FRA); Telecom Italia → Wireless Logic (GBR);
//! Orange → Webbing (NLD, USA); Polkomtel → Packet Host (USA).

use roam_bench::survey_all_esims;
use roam_core::TomographyReport;
use roam_ipx::RoamingArch;

fn main() {
    // Several attachments per country so provider alternation is observed.
    let (world, obs) = survey_all_esims(2024, 6);
    let report = TomographyReport::build(&obs, world.net.registry());

    println!("Table 2 — PGW providers of the roaming eSIMs (measured)\n");
    print!("{}", report.table2());

    let native = report.by_arch(RoamingArch::Native).len();
    let hr = report.by_arch(RoamingArch::HomeRouted).len();
    let ihbo = report.by_arch(RoamingArch::IpxHubBreakout).len();
    let lbo = report.by_arch(RoamingArch::LocalBreakout).len();
    println!("\nclassification: {native} native, {hr} HR, {ihbo} IHBO, {lbo} LBO");
    println!("paper:          3 native, 5 HR, 16 IHBO, 0 LBO");

    let (far, total) = report.suboptimal_breakouts();
    println!("\nIHBO breakouts farther than the b-MNO country: {far}/{total} (paper: 8/16)");
}
