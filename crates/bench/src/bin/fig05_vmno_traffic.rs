//! Figure 5: data/signalling traffic of inferred Airalo users vs ordinary
//! Play roamers vs native subscribers, inside the partner v-MNO's core.
//!
//! Paper shape: Airalo ≈ native on data volume; Play roamers differ; Airalo
//! signalling slightly above native.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use roam_core::{
    infer_class, recover_imsi_ranges, simulate_core_records, CoreRecord, TrafficStats, UserClass,
    VisibilityExperiment,
};

fn main() {
    let exp = VisibilityExperiment::paper_setup();
    let mut rng = SmallRng::seed_from_u64(2024);
    let (records, planted) = simulate_core_records(&exp, &mut rng);
    let ranges = recover_imsi_ranges(&records, &planted);
    assert!(
        !ranges.is_empty(),
        "IMSI recovery must find the leased block"
    );

    println!(
        "Figure 5 — traffic by inferred class (April-scale month, {} user-days)\n",
        records.len()
    );
    println!(
        "{:<22} {:>14} {:>14} {:>16} {:>16}",
        "class", "med MB/day", "mean MB/day", "med sig MB/day", "mean sig MB/day"
    );
    let mut rows = Vec::new();
    for (name, class) in [
        ("native", UserClass::Native),
        ("Play roamer", UserClass::BmnoRoamer),
        ("Airalo (inferred)", UserClass::AggregatorUser),
    ] {
        let rs: Vec<&CoreRecord> = records
            .iter()
            .filter(|r| infer_class(r, exp.bmno_plmn, &ranges) == class)
            .collect();
        let s = TrafficStats::from_records(&rs).expect("populated class");
        println!(
            "{:<22} {:>14.1} {:>14.1} {:>16.2} {:>16.2}",
            name, s.median_data_mb, s.mean_data_mb, s.median_signalling_mb, s.mean_signalling_mb
        );
        rows.push((name, s));
    }

    let native = rows[0].1;
    let roamer = rows[1].1;
    let airalo = rows[2].1;
    println!("\nshape checks:");
    println!(
        "  Airalo/native data ratio: {:.2} (paper: ≈1, 'similar to the v-MNO's native users')",
        airalo.median_data_mb / native.median_data_mb
    );
    println!(
        "  roamer/native data ratio: {:.2} (paper: clearly different)",
        roamer.median_data_mb / native.median_data_mb
    );
    println!(
        "  Airalo vs native signalling: +{:.0}% (paper: 'slightly higher')",
        (airalo.median_signalling_mb / native.median_signalling_mb - 1.0) * 100.0
    );

    let correct = records
        .iter()
        .filter(|r| infer_class(r, exp.bmno_plmn, &ranges) == r.truth)
        .count();
    println!(
        "  IMSI-range recovery accuracy: {:.1}%",
        correct as f64 / records.len() as f64 * 100.0
    );
}
