//! Figure 15: YouTube playback resolution distribution per country and
//! configuration (stats-for-nerds, 4K test video).
//!
//! Paper anchors: 720p is the global mode; best observed 1440p (Korean
//! physical SIM); IHBO eSIMs stream 1080p 20–44% less often than physical
//! SIMs; PAK/ARE pinned at 720p on *both* SIMs (b-MNO YouTube throttling);
//! Georgia's eSIM matches its physical SIM.

use roam_bench::run_device;
use roam_cellular::SimType;
use roam_measure::Resolution;

fn main() {
    let run = run_device(2024, 0.6);

    println!("Figure 15 — YouTube resolution share per country (%)\n");
    println!(
        "{:<12} {:>5} {:>7} {:>7} {:>7} {:>7} {:>7} {:>5}",
        "country", "kind", "480p", "720p", "1080p", "1440p", "2160p", "n"
    );
    for spec in roam_world::World::device_campaign_specs() {
        if spec.spec.video == (0, 0) {
            continue; // Spain/UK excluded, §A.3
        }
        for (label, t) in [("SIM", SimType::Physical), ("eSIM", SimType::Esim)] {
            let sessions: Vec<Resolution> = run
                .data
                .videos
                .iter()
                .filter(|r| r.tag.country == spec.country && r.tag.sim_type == t)
                .filter_map(|r| r.resolution)
                .collect();
            let n = sessions.len().max(1);
            let share = |res: Resolution| {
                sessions.iter().filter(|r| **r == res).count() as f64 / n as f64 * 100.0
            };
            println!(
                "{:<12} {:>5} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>5}",
                spec.country.alpha3(),
                label,
                share(Resolution::P480),
                share(Resolution::P720),
                share(Resolution::P1080),
                share(Resolution::P1440),
                share(Resolution::P2160),
                sessions.len()
            );
        }
    }

    // Global mode + the HR pinning check.
    let all: Vec<Resolution> = run
        .data
        .videos
        .iter()
        .filter_map(|r| r.resolution)
        .collect();
    let mode = Resolution::LADDER
        .iter()
        .max_by_key(|res| all.iter().filter(|r| r == res).count())
        .expect("non-empty ladder");
    println!("\nglobal modal resolution: {mode} (paper: 720p)");

    let hr_1080 = run
        .data
        .videos
        .iter()
        .filter(|r| {
            matches!(
                r.tag.country,
                roam_geo::Country::PAK | roam_geo::Country::ARE
            )
        })
        .filter(|r| r.resolution.is_some_and(|res| res > Resolution::P720))
        .count();
    println!("PAK/ARE sessions above 720p: {hr_1080} (paper: none — b-MNO throttles YouTube)");
}
