//! Figure 2: the MNA taxonomy grid — who runs sales, core and RAN under
//! each operating model. The thick column (MNA + b-MNO core) is the
//! paper's definitional contribution.

use roam_core::taxonomy::taxonomy_table;

fn main() {
    println!("Figure 2 — MNA flavours: who runs which network function\n");
    print!("{}", taxonomy_table());
    println!("\nlight runs only sales << thick adds a limited core function (the");
    println!("internet gateway) << full runs the whole core with direct IPX access.");
}
