//! Figure 12: CDFs of the share of end-to-end latency that is *private*
//! (device → PGW), in three panels: native eSIMs, HR eSIMs, IHBO eSIMs,
//! each against their physical-SIM counterparts.
//!
//! Paper anchors: for 80% of HR traceroutes the private share exceeds 98%
//! (vs <10% of SIM traces); IHBO's private share drops below the public
//! share for ~15% of measurements (vs ~1% for HR).

use roam_bench::run_device;
use roam_cellular::SimType;
use roam_geo::Country;
use roam_ipx::RoamingArch;
use roam_stats::Ecdf;

fn share_cdf(
    run: &roam_bench::DeviceCampaignRun,
    countries: &[Country],
    sim_type: SimType,
) -> Option<Ecdf> {
    let v: Vec<f64> = run
        .data
        .traces
        .iter()
        .filter(|r| countries.contains(&r.tag.country) && r.tag.sim_type == sim_type)
        .filter_map(|r| r.analysis.private_share)
        .collect();
    Ecdf::new(&v).ok()
}

fn print_panel(name: &str, run: &roam_bench::DeviceCampaignRun, countries: &[Country]) {
    println!("--- panel: {name} ---");
    for (label, t) in [("SIM", SimType::Physical), ("eSIM", SimType::Esim)] {
        let Some(cdf) = share_cdf(run, countries, t) else {
            continue;
        };
        let pts: Vec<String> = [0.25, 0.5, 0.75, 0.9]
            .iter()
            .map(|q| format!("p{:.0}={:.2}", q * 100.0, cdf.inverse(*q)))
            .collect();
        println!(
            "  {label:<5} n={:<5} {}  share>0.98: {:>4.0}%  share<0.50: {:>4.0}%",
            cdf.len(),
            pts.join(" "),
            cdf.frac_above(0.98) * 100.0,
            (1.0 - cdf.frac_above(0.50)) * 100.0
        );
    }
    println!();
}

fn main() {
    let run = run_device(2024, 0.4);
    println!("Figure 12 — % of latency incurred before internet breakout\n");
    print_panel(
        "(a) native eSIM countries (KOR, THA)",
        &run,
        &[Country::KOR, Country::THA],
    );
    print_panel(
        "(b) HR eSIM countries (PAK, ARE)",
        &run,
        &[Country::PAK, Country::ARE],
    );
    let ihbo: Vec<Country> = roam_world::World::device_campaign_specs()
        .iter()
        .map(|s| s.country)
        .filter(|c| !matches!(c, Country::KOR | Country::THA | Country::PAK | Country::ARE))
        .collect();
    print_panel(
        "(c) IHBO eSIM countries (GEO, DEU, QAT, SAU, ESP, GBR)",
        &run,
        &ihbo,
    );

    // Aggregate HR vs IHBO "private below public" shares.
    let frac_below_half = |arch: RoamingArch| -> f64 {
        let v: Vec<f64> = run
            .data
            .traces
            .iter()
            .filter(|r| r.tag.arch == arch && r.tag.sim_type == SimType::Esim)
            .filter_map(|r| r.analysis.private_share)
            .collect();
        let below = v.iter().filter(|s| **s < 0.5).count();
        below as f64 / v.len().max(1) as f64 * 100.0
    };
    println!(
        "private < public (share < 0.5): IHBO {:.0}% vs HR {:.0}% (paper: 15% vs 1%)",
        frac_below_half(RoamingArch::IpxHubBreakout),
        frac_below_half(RoamingArch::HomeRouted)
    );
}
