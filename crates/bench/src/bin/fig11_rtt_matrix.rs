//! Figure 11: RTT boxplots to Facebook, Google (final traceroute hop) and
//! the nearest Ookla server, per country and configuration — plus the
//! §5.1 statistics: HR +~620% / IHBO +~64% over native, the >150 ms
//! shares, the Welch t-tests and Levene's variance test.

use roam_bench::{boxplot_row, run_device};
use roam_cellular::SimType;
use roam_geo::Country;
use roam_ipx::RoamingArch;
use roam_measure::Service;
use roam_stats::test::LeveneCenter;
use roam_stats::{levene_test, median, welch_t_test, Ecdf};

fn main() {
    let run = run_device(2024, 0.4);
    let native = [Country::KOR, Country::THA];

    for service in [Service::Facebook, Service::Google] {
        println!("--- (final-hop) RTT to {service:?}, ms ---");
        for spec in roam_world::World::device_campaign_specs() {
            for (label, t) in [("SIM", SimType::Physical), ("eSIM", SimType::Esim)] {
                let v: Vec<f64> = run
                    .data
                    .traces
                    .iter()
                    .filter(|r| {
                        r.tag.country == spec.country && r.tag.sim_type == t && r.service == service
                    })
                    .filter_map(|r| r.analysis.final_rtt_ms)
                    .collect();
                let rat = run
                    .data
                    .traces
                    .iter()
                    .find(|r| r.tag.country == spec.country && r.tag.sim_type == t)
                    .map(|r| r.tag.rat.to_string())
                    .unwrap_or_default();
                println!(
                    "{}",
                    boxplot_row(&format!("{} {label} ({rat})", spec.country.alpha3()), &v)
                );
            }
        }
        println!();
    }

    println!("--- latency to the nearest Ookla server (from the PGW) ---");
    for spec in roam_world::World::device_campaign_specs() {
        for (label, t) in [("SIM", SimType::Physical), ("eSIM", SimType::Esim)] {
            let v: Vec<f64> = run
                .data
                .speedtests
                .iter()
                .filter(|r| r.tag.country == spec.country && r.tag.sim_type == t)
                .filter(|r| r.status.is_ok())
                .map(|r| r.latency_ms)
                .collect();
            println!(
                "{}",
                boxplot_row(&format!("{} {label}", spec.country.alpha3()), &v)
            );
        }
    }

    // --- headline statistics -------------------------------------------
    // The paper's inflation metric ("compared to the native setup, IHBO
    // inflates the latency by 64% … 621% for home routing") compares each
    // roaming eSIM against the same-country physical SIM and averages the
    // per-country increase.
    let country_median = |country: Country, t: SimType| -> Option<f64> {
        let v: Vec<f64> = run
            .data
            .traces
            .iter()
            .filter(|r| r.tag.country == country && r.tag.sim_type == t)
            .filter_map(|r| r.analysis.final_rtt_ms)
            .collect();
        median(&v).ok()
    };
    // Pooled across measurements (the sample mix matters: Germany and
    // Pakistan dominate Table 4, as in the paper's dataset).
    let pooled_increase = |arch: RoamingArch| -> f64 {
        let countries: Vec<Country> = roam_world::World::device_campaign_specs()
            .iter()
            .map(|s| s.country)
            .filter(|c| {
                run.data.traces.iter().any(|r| {
                    r.tag.country == *c && r.tag.sim_type == SimType::Esim && r.tag.arch == arch
                })
            })
            .collect();
        let pool = |t: SimType| -> Vec<f64> {
            run.data
                .traces
                .iter()
                .filter(|r| countries.contains(&r.tag.country) && r.tag.sim_type == t)
                .filter_map(|r| r.analysis.final_rtt_ms)
                .collect()
        };
        let esim = median(&pool(SimType::Esim)).expect("eSIM traces");
        let sim = median(&pool(SimType::Physical)).expect("SIM traces");
        (esim / sim - 1.0) * 100.0
    };
    println!("\nlatency inflation of roaming eSIMs over the native (physical) setup");
    println!("(pooled across measurements in the same countries):");
    println!(
        "  HR:   +{:.0}% (paper: ~+621%)",
        pooled_increase(RoamingArch::HomeRouted)
    );
    println!(
        "  IHBO: +{:.0}% (paper: ~+64%)",
        pooled_increase(RoamingArch::IpxHubBreakout)
    );
    print!("per-country medians:");
    for spec in roam_world::World::device_campaign_specs() {
        if let (Some(e), Some(s)) = (
            country_median(spec.country, SimType::Esim),
            country_median(spec.country, SimType::Physical),
        ) {
            print!(" {}:{:+.0}%", spec.country.alpha3(), (e / s - 1.0) * 100.0);
        }
    }
    println!();

    // All latency measurements: traceroute final-hop RTTs plus the
    // single-shot speedtest pings (which, unlike mtr's best-of-3, do keep
    // transient radio stalls).
    let rtt_of = |t: SimType| -> Vec<f64> {
        run.data
            .traces
            .iter()
            .filter(|r| r.tag.sim_type == t)
            .filter_map(|r| r.analysis.final_rtt_ms)
            .chain(
                run.data
                    .speedtests
                    .iter()
                    .filter(|r| r.tag.sim_type == t && r.status.is_ok())
                    .map(|r| r.latency_ms),
            )
            .collect()
    };
    let all_esim: Vec<f64> = rtt_of(SimType::Esim);
    let all_sim: Vec<f64> = rtt_of(SimType::Physical);
    let e150 = Ecdf::new(&all_esim).expect("non-empty").frac_above(150.0) * 100.0;
    let s150 = Ecdf::new(&all_sim).expect("non-empty").frac_above(150.0) * 100.0;
    println!(
        "\nshare of RTTs above 150 ms: eSIM {e150:.1}% vs SIM {s150:.1}% \
              (paper: 14.5% vs 3%)"
    );

    let roaming_sim: Vec<f64> = run
        .data
        .traces
        .iter()
        .filter(|r| r.tag.sim_type == SimType::Physical && !native.contains(&r.tag.country))
        .filter_map(|r| r.analysis.final_rtt_ms)
        .collect();
    let roaming_esim: Vec<f64> = run
        .data
        .traces
        .iter()
        .filter(|r| r.tag.sim_type == SimType::Esim && !native.contains(&r.tag.country))
        .filter_map(|r| r.analysis.final_rtt_ms)
        .collect();
    let t1 = welch_t_test(&roaming_sim, &roaming_esim).expect("samples");
    println!(
        "\nWelch t-test, SIM vs eSIM RTT (roaming countries): p = {:.2e} \
              (paper: 7.65e-5, significant)",
        t1.p_value
    );

    let nat_sim: Vec<f64> = run
        .data
        .traces
        .iter()
        .filter(|r| r.tag.sim_type == SimType::Physical && native.contains(&r.tag.country))
        .filter_map(|r| r.analysis.final_rtt_ms)
        .collect();
    let nat_esim: Vec<f64> = run
        .data
        .traces
        .iter()
        .filter(|r| r.tag.sim_type == SimType::Esim && native.contains(&r.tag.country))
        .filter_map(|r| r.analysis.final_rtt_ms)
        .collect();
    let t2 = welch_t_test(&nat_sim, &nat_esim).expect("samples");
    println!(
        "Welch t-test, SIM vs eSIM RTT (native countries):  p = {:.3} \
              (paper: 0.152, not significant)",
        t2.p_value
    );

    let lev = levene_test(&[&all_sim, &all_esim], LeveneCenter::Median).expect("groups");
    println!(
        "Levene variance test, SIM vs eSIM: p = {:.3} (paper: 0.025 — eSIMs vary more)",
        lev.p_value
    );
}
