//! Population-scale smoke harness for the fleet generator.
//!
//! Stdout carries *only* the byte-stable [`FleetReport`] render — in
//! every mode, including worker processes (`ROAM_FLEET_WORKERS`, whose
//! children talk to the parent over private pipes) and a resumed run —
//! so CI can diff two invocations directly:
//!
//! ```sh
//! ROAM_FLEET_USERS=100000 ROAM_FLEET_SHARDS=1 fleet_smoke > a.txt
//! ROAM_FLEET_USERS=100000 ROAM_FLEET_SHARDS=8 ROAM_PARALLEL=4 fleet_smoke > b.txt
//! cmp a.txt b.txt
//! ```
//!
//! Throughput and per-shard wall times go to stderr — they are real
//! wall-clock measurements and must stay out of the comparable bytes.
//! The machine-parseable `fleet_smoke_users_per_sec:` gate line is
//! emitted by [`roam_bench::emit_users_per_sec`], the one place its
//! format and stream are defined.
//!
//! With `ROAM_RESUME=1` the harness resumes the checkpoint directory in
//! `ROAM_CHECKPOINT_DIR` instead of starting fresh (the kill-and-resume
//! CI job SIGKILLs a checkpointing run, then re-invokes with this knob).
//! A stale or damaged directory is refused with the typed
//! [`roam_fleet::ResumeError`] on stderr and a nonzero exit — never a
//! silent restart.
//!
//! `ROAM_FLEET_EXPORT=csv:<path>` or `columnar:<path>` attaches a
//! session [`DataSink`](roam_measure::DataSink) to the run and writes
//! the streamed `sessions` dataset to `<path>` — as the CSV table or as
//! a sealed columnar frame. The export rides the in-process backend
//! only (the sink contract), so it refuses `ROAM_FLEET_WORKERS` > 0 and
//! resumed runs. Stdout bytes are unaffected either way.
//!
//! Knobs: `ROAM_FLEET_USERS/SHARDS/DAYS/SAMPLE/MIX`, `ROAM_PARALLEL`,
//! `ROAM_FLEET_WORKERS`, `ROAM_CHECKPOINT_DIR`, `ROAM_CHECKPOINT_EVERY`,
//! `ROAM_RESUME`, `ROAM_TRANSPORT`, `ROAM_CALENDAR`, `ROAM_TELEMETRY`,
//! `ROAM_FAULTS`, `ROAM_SEED`, `ROAM_FLEET_EXPORT`, and the worker
//! chaos/supervision plane: `ROAM_WORKER_FAULTS`, `ROAM_WORKER_RETRIES`,
//! `ROAM_WORKER_DEADLINE_MS` (recovery work is reported on stderr as
//! `fleet_smoke_worker_restarts: N (...)`; stdout bytes never change).
//!
//! [`FleetReport`]: roam_fleet::FleetReport

use roam_fleet::FleetRunner;
use roam_measure::{ColumnarSink, Dataset, MemorySink, SharedSink};
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The parsed `ROAM_FLEET_EXPORT` knob: which rendering, and where.
enum ExportSpec {
    Csv(String),
    Columnar(String),
}

fn export_spec() -> Result<Option<ExportSpec>, String> {
    let Some(raw) = std::env::var("ROAM_FLEET_EXPORT")
        .ok()
        .filter(|s| !s.trim().is_empty())
    else {
        return Ok(None);
    };
    match raw.split_once(':') {
        Some(("csv", path)) if !path.is_empty() => Ok(Some(ExportSpec::Csv(path.to_string()))),
        Some(("columnar", path)) if !path.is_empty() => {
            Ok(Some(ExportSpec::Columnar(path.to_string())))
        }
        _ => Err(format!(
            "ROAM_FLEET_EXPORT={raw:?} — expected csv:<path> or columnar:<path>"
        )),
    }
}

fn resume_requested() -> bool {
    std::env::var("ROAM_RESUME")
        .map(|v| !matches!(v.trim(), "" | "0" | "false"))
        .unwrap_or(false)
}

fn main() -> ExitCode {
    let seed = std::env::var("ROAM_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(42);
    let runner = if resume_requested() {
        let Some(dir) = std::env::var("ROAM_CHECKPOINT_DIR")
            .ok()
            .filter(|s| !s.trim().is_empty())
        else {
            eprintln!("fleet_smoke: ROAM_RESUME is set but ROAM_CHECKPOINT_DIR is not");
            return ExitCode::from(2);
        };
        match FleetRunner::resume(&dir) {
            Ok(runner) => runner,
            Err(err) => {
                eprintln!("fleet_smoke: refusing to resume {dir}: {err}");
                return ExitCode::from(2);
            }
        }
    } else {
        FleetRunner::from_env(seed)
    };
    let users = runner.population();

    let spec = match export_spec() {
        Ok(spec) => spec,
        Err(msg) => {
            eprintln!("fleet_smoke: {msg}");
            return ExitCode::from(2);
        }
    };
    if spec.is_some() && resume_requested() {
        eprintln!("fleet_smoke: ROAM_FLEET_EXPORT cannot ride a resumed run (sink contract)");
        return ExitCode::from(2);
    }
    let csv_sink = Arc::new(Mutex::new(MemorySink::new()));
    let col_sink = Arc::new(Mutex::new(ColumnarSink::new()));
    let runner = match &spec {
        None => runner,
        Some(ExportSpec::Csv(_)) => runner.sink(csv_sink.clone() as SharedSink),
        Some(ExportSpec::Columnar(_)) => runner.sink(col_sink.clone() as SharedSink),
    };

    let started = Instant::now();
    let run = runner.run();
    let wall = started.elapsed().as_secs_f64();

    match &spec {
        None => {}
        Some(ExportSpec::Csv(path)) => {
            let sink = csv_sink.lock().expect("export sink poisoned");
            let table = sink
                .table(Dataset::Sessions)
                .map(str::to_owned)
                .unwrap_or_else(|| Dataset::Sessions.header_csv());
            drop(sink);
            if let Err(err) = std::fs::write(path, table) {
                eprintln!("fleet_smoke: writing {path}: {err}");
                return ExitCode::from(2);
            }
            eprintln!("fleet_smoke: wrote sessions CSV to {path}");
        }
        Some(ExportSpec::Columnar(path)) => {
            let sink = std::mem::take(&mut *col_sink.lock().expect("export sink poisoned"));
            let frame = sink
                .into_table(Dataset::Sessions)
                .map(|t| t.to_frame())
                .unwrap_or_default();
            if let Err(err) = std::fs::write(path, frame) {
                eprintln!("fleet_smoke: writing {path}: {err}");
                return ExitCode::from(2);
            }
            eprintln!("fleet_smoke: wrote sessions frame to {path}");
        }
    }

    print!("{}", run.report.render());

    eprintln!(
        "fleet_smoke: {users} users in {wall:.2}s across {} shard(s)",
        run.timings.len()
    );
    roam_bench::emit_users_per_sec(users, wall);
    // Supervision is invisible in stdout by contract; surface the
    // recovery work on stderr so chaos CI can assert it happened.
    let sup = &run.supervision;
    if sup.respawns + sup.retries + sup.quarantined > 0 || !sup.errors.is_empty() {
        eprintln!(
            "fleet_smoke_worker_restarts: {} (retries {}, quarantined {}, stalls {}, protocol {})",
            sup.respawns, sup.retries, sup.quarantined, sup.stalls, sup.protocol_errors
        );
    }
    for t in &run.timings {
        eprintln!("  {} {:.1} ms", t.key, t.wall_ms);
    }
    let telemetry = run.telemetry.render();
    if !telemetry.is_empty() {
        eprint!("{telemetry}");
    }
    if run.halted {
        eprintln!("fleet_smoke: run halted by checkpoint policy; resume with ROAM_RESUME=1");
        return ExitCode::from(3);
    }
    ExitCode::SUCCESS
}
