//! Population-scale smoke harness for the fleet generator.
//!
//! Stdout carries *only* the byte-stable [`FleetReport`] render, so CI can
//! diff two invocations directly:
//!
//! ```sh
//! ROAM_FLEET_USERS=100000 ROAM_FLEET_SHARDS=1 fleet_smoke > a.txt
//! ROAM_FLEET_USERS=100000 ROAM_FLEET_SHARDS=8 ROAM_PARALLEL=4 fleet_smoke > b.txt
//! cmp a.txt b.txt
//! ```
//!
//! Throughput (users/sec) and per-shard wall times go to stderr — they are
//! real wall-clock measurements and must stay out of the comparable bytes.
//!
//! Knobs: `ROAM_FLEET_USERS/SHARDS/DAYS/SAMPLE/MIX`, `ROAM_PARALLEL`,
//! `ROAM_TRANSPORT`, `ROAM_TELEMETRY`, `ROAM_SEED`.

use roam_fleet::FleetRunner;
use std::time::Instant;

fn main() {
    let seed = std::env::var("ROAM_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(42);
    let runner = FleetRunner::from_env(seed);
    let users = runner.population();

    let started = Instant::now();
    let run = runner.run();
    let wall = started.elapsed().as_secs_f64();

    print!("{}", run.report.render());

    let users_per_sec = users as f64 / wall.max(1e-9);
    eprintln!(
        "fleet_smoke: {users} users in {wall:.2}s = {users_per_sec:.0} users/sec across {} shard(s)",
        run.timings.len()
    );
    // Machine-parseable line for the bench_json.sh / CI throughput floor
    // gate: `sed -n 's/^fleet_smoke_users_per_sec: //p'`.
    eprintln!("fleet_smoke_users_per_sec: {users_per_sec:.0}");
    for t in &run.timings {
        eprintln!("  {} {:.1} ms", t.key, t.wall_ms);
    }
    let telemetry = run.telemetry.render();
    if !telemetry.is_empty() {
        eprint!("{telemetry}");
    }
}
