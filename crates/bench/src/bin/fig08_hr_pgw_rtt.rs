//! Figure 8: CDF of RTT to the Singtel PGWs from the two HR eSIMs
//! (Pakistan and UAE).
//!
//! Paper shape: the UAE eSIM enjoys shorter RTTs than the Pakistani one
//! despite being geographically *farther* from Singapore — peering quality,
//! not distance (§4.3.2); both exceed the 150 ms "less desirable" bar.

use roam_bench::run_device;
use roam_cellular::SimType;
use roam_geo::Country;
use roam_stats::Ecdf;

fn main() {
    let run = run_device(2024, 0.4);

    println!("Figure 8 — CDF of RTT at the Singtel PGW hop (HR eSIMs)\n");
    for country in [Country::PAK, Country::ARE] {
        let rtts: Vec<f64> = run
            .data
            .traces
            .iter()
            .filter(|r| r.tag.country == country && r.tag.sim_type == SimType::Esim)
            .filter_map(|r| r.analysis.pgw_rtt_ms)
            .collect();
        let cdf = Ecdf::new(&rtts).expect("HR traces exist");
        println!("{} eSIM → Singtel PGW (n={}):", country.alpha3(), cdf.len());
        for (x, f) in cdf.points(9) {
            println!("  {:>7.1} ms  F={:.2}", x, f);
        }
        println!(
            "  median {:.0} ms, share >150 ms: {:.0}%\n",
            cdf.inverse(0.5),
            cdf.frac_above(150.0) * 100.0
        );
    }
    println!("paper shape: ARE < PAK everywhere on the CDF despite the longer");
    println!("geodesic; both entirely above 150 ms.");
}
