//! Figure 10: public path length (hops after breakout) per country and
//! configuration, traceroutes to Google and Facebook.
//!
//! Paper shape: native eSIMs ≈ SIMs; roaming eSIMs comparable or slightly
//! longer with larger variance; the variability comes from SP-internal
//! routing rather than inter-domain paths.

use roam_bench::{boxplot_row, run_device};
use roam_cellular::SimType;
use roam_measure::Service;

fn main() {
    let run = run_device(2024, 0.3);

    for service in [Service::Google, Service::Facebook] {
        println!("--- public path length, traceroutes to {service:?} ---");
        for spec in roam_world::World::device_campaign_specs() {
            for (label, t) in [("SIM", SimType::Physical), ("eSIM", SimType::Esim)] {
                let v: Vec<f64> = run
                    .data
                    .traces
                    .iter()
                    .filter(|r| {
                        r.tag.country == spec.country && r.tag.sim_type == t && r.service == service
                    })
                    .map(|r| r.analysis.public_len as f64)
                    .collect();
                println!(
                    "{}",
                    boxplot_row(&format!("{} {label}", spec.country.alpha3()), &v)
                );
            }
        }
        println!();
    }
    println!("paper shape: short public paths everywhere (SP edges sit next to the");
    println!("PGWs); variance driven by SP-internal routing depth.");
}
