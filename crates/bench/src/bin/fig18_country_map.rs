//! Figure 18: median Airalo $/GB per country, coloured by decile of the
//! worldwide distribution.
//!
//! Paper anchors: deciles run from ≤ $4.33 (dark green) to > $12.25 (dark
//! red); the worldwide median is ~$7.9; Central America is uniformly in
//! the expensive tail.

use roam_econ::{decile_thresholds, median_per_gb_by_country, Crawler, Market, Vantage};
use roam_stats::median;

fn main() {
    let market = Market::generate(2024);
    let snap = Crawler::new(Vantage::NewJersey).crawl(&market, 76);
    let medians = median_per_gb_by_country(&snap, market.airalo());
    let values: Vec<f64> = medians.values().copied().collect();
    let cuts = decile_thresholds(&values);

    println!("Figure 18 — Airalo median $/GB per country, decile-coloured\n");
    println!(
        "decile thresholds ($/GB): {}",
        cuts.iter()
            .map(|c| format!("{c:.2}"))
            .collect::<Vec<_>>()
            .join("  ")
    );
    println!("paper thresholds: lowest ≤ 4.33 … highest > 12.25\n");

    let decile_of = |v: f64| cuts.iter().filter(|c| v > **c).count();
    let mut by_decile: Vec<Vec<String>> = vec![Vec::new(); 10];
    for (country, v) in &medians {
        by_decile[decile_of(*v)].push(format!("{}({v:.1})", country.alpha3()));
    }
    for (d, countries) in by_decile.iter().enumerate() {
        if countries.is_empty() {
            continue;
        }
        println!("decile {:>2}: {}", d + 1, countries.join(" "));
    }

    println!(
        "\nworldwide median: ${:.2}/GB (paper: 7.9)",
        median(&values).expect("non-empty")
    );
    let ca: Vec<f64> = medians
        .iter()
        .filter(|(c, _)| c.is_central_america())
        .map(|(_, v)| *v)
        .collect();
    if !ca.is_empty() {
        println!(
            "Central America median: ${:.2}/GB — {} of {} countries above the worldwide \
             median (paper: consistently high)",
            median(&ca).expect("non-empty"),
            ca.iter()
                .filter(|v| **v > median(&values).expect("non-empty"))
                .count(),
            ca.len()
        );
    }
}
