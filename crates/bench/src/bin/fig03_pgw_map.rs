//! Figure 3: the SGW↔PGW map for the 21 roaming eSIMs — each line of the
//! paper's map becomes a row: user location, PGW location, the great-circle
//! tunnel length, and the line style (solid = HR, dashed = IHBO).

use roam_bench::survey_all_esims;
use roam_core::TomographyReport;
use roam_ipx::RoamingArch;

fn main() {
    let (world, obs) = survey_all_esims(2024, 6);
    let report = TomographyReport::build(&obs, world.net.registry());

    println!("Figure 3 — end-user (triangle) to PGW (circle) per roaming eSIM\n");
    println!(
        "{:<9} {:<18} {:<26} {:>10} {:>7} {:>7}",
        "visited", "b-MNO", "PGW provider(s)", "tunnel km", "style", "type"
    );
    let mut total_km = 0.0;
    let mut n = 0;
    for row in report.rows.iter().filter(|r| r.arch.is_roaming()) {
        let provs: Vec<String> = row
            .pgw_providers
            .iter()
            .map(|(org, _, city)| format!("{org}@{}", city.name()))
            .collect();
        println!(
            "{:<9} {:<18} {:<26} {:>10.0} {:>7} {:>7}",
            row.visited.alpha3(),
            format!("{} ({})", row.b_mno.0, row.b_mno.1.alpha3()),
            provs.join(", "),
            row.tunnel_km,
            if row.arch == RoamingArch::HomeRouted {
                "solid"
            } else {
                "dashed"
            },
            row.arch.label()
        );
        total_km += row.tunnel_km;
        n += 1;
    }
    println!(
        "\n{n} roaming eSIMs, mean GTP tunnel length {:.0} km",
        total_km / f64::from(n)
    );
    let (far, total) = report.suboptimal_breakouts();
    println!("IHBO tunnels longer than the b-MNO distance: {far}/{total} (paper: 8/16)");
}
