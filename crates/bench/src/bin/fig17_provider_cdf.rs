//! Figure 17: CDF of median $/GB per country for notable providers on the
//! 2024-05-01 snapshot, plus the volunteer-collected physical-SIM baseline.
//!
//! Paper anchors: Airhub $2.3 … Keepgo $16.2; MobiMatter ~60% cheaper than
//! Airalo with more offers (5% vs 3%); local SIMs have the lowest $/GB but
//! a higher total outlay.

use roam_econ::{local_sim_offers, provider_comparison, Crawler, Market, Vantage};
use roam_stats::median;

fn main() {
    let market = Market::generate(2024);
    let snap = Crawler::new(Vantage::NewJersey).crawl(&market, 76);

    println!("Figure 17 — median $/GB per country, provider comparison (2024-05-01)\n");
    let cmp = provider_comparison(&market, &snap, 60);
    for p in &cmp {
        let pts: Vec<String> = [0.25, 0.5, 0.75]
            .iter()
            .map(|q| format!("p{:.0}={:>5.2}", q * 100.0, p.cdf.inverse(*q)))
            .collect();
        println!(
            "{:<18} ({:>3} countries, {:>4.1}% of offers)  {}",
            p.name,
            p.countries,
            p.offer_share * 100.0,
            pts.join("  ")
        );
    }

    let find = |n: &str| cmp.iter().find(|p| p.name == n).expect("named provider");
    let airalo = find("Airalo");
    let mobi = find("MobiMatter");
    println!(
        "\nanchors: Airhub median ${:.2} (paper 2.3), Keepgo ${:.2} (paper 16.2)",
        find("Airhub").median_per_gb,
        find("Keepgo").median_per_gb
    );
    println!(
        "MobiMatter discount vs Airalo: {:.0}% (paper ~60%), offer share {:.1}% vs {:.1}%",
        (1.0 - mobi.median_per_gb / airalo.median_per_gb) * 100.0,
        mobi.offer_share * 100.0,
        airalo.offer_share * 100.0
    );

    let locals = local_sim_offers();
    let per_gb: Vec<f64> = locals.iter().map(|o| o.per_gb()).collect();
    let totals: Vec<f64> = locals.iter().map(|o| o.total_usd()).collect();
    println!(
        "\nlocal physical SIMs (dashed line): median ${:.2}/GB, median total ${:.2} — \
         cheapest per GB, but the bundles are big (paper: 40 GB Spain / $15.72 UAE SIM fee)",
        median(&per_gb).expect("non-empty"),
        median(&totals).expect("non-empty")
    );
}
