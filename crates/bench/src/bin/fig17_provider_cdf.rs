//! Figure 17: CDF of median $/GB per country for notable providers on the
//! 2024-05-01 snapshot, plus the volunteer-collected physical-SIM baseline.
//!
//! Paper anchors: Airhub $2.3 … Keepgo $16.2; MobiMatter ~60% cheaper than
//! Airalo with more offers (5% vs 3%); local SIMs have the lowest $/GB but
//! a higher total outlay.
//!
//! The comparison runs as streaming queries over a columnar offer table:
//! the crawl snapshot flattens once into `(provider, country, per_gb)`
//! column pages, and each provider's per-country medians come from one
//! filtered `group_values` scan over the chunks (keys ascend in country
//! order, matching the analytics module's `BTreeMap<Country>` walk).

use roam_columnar::{field, CellValue, ColKind, ColumnarSource, Query, Schema, TableBuilder};
use roam_econ::{local_sim_offers, Crawler, Market, Vantage};
use roam_stats::{median, Ecdf};

/// A provider's Fig.-17 row, assembled from the columnar scans (the
/// query-engine counterpart of `roam_econ::ProviderSummary`).
struct ProviderRow {
    name: String,
    countries: usize,
    offer_share: f64,
    median_per_gb: f64,
    cdf: Ecdf,
}

fn main() {
    let market = Market::generate(2024);
    let snap = Crawler::new(Vantage::NewJersey).crawl(&market, 76);

    // Flatten the snapshot into column pages. Countries store as their
    // discriminant, so ascending group keys are ascending `Country` order.
    let mut b = TableBuilder::new(Schema::new(vec![
        field("provider", ColKind::U32),
        field("country", ColKind::U32),
        field("per_gb", ColKind::F64 { prec: 2 }),
    ]));
    for r in &snap.records {
        b.push_row(&[
            CellValue::U32(Some(r.offer.provider.0)),
            CellValue::U32(Some(r.offer.country as u32)),
            CellValue::F64(Some(r.per_gb())),
        ]);
    }
    let offers = b.finish();
    let total = offers.rows() as f64;

    println!("Figure 17 — median $/GB per country, provider comparison (2024-05-01)\n");
    let min_countries = 60;
    let mut cmp: Vec<ProviderRow> = Vec::new();
    for pid in 0..market.provider_count() {
        let q = Query::new(&offers).u32_eq("provider", pid as u32);
        let groups = q.group_values("country", "per_gb");
        if groups.len() < min_countries {
            continue;
        }
        let medians: Vec<f64> = groups
            .iter()
            .map(|g| median(&g.value).expect("non-empty country bucket"))
            .collect();
        cmp.push(ProviderRow {
            name: market
                .provider(roam_econ::ProviderId(pid as u32))
                .name
                .clone(),
            countries: groups.len(),
            offer_share: q.count() as f64 / total,
            median_per_gb: median(&medians).expect("non-empty"),
            cdf: Ecdf::new(&medians).expect("non-empty"),
        });
    }
    cmp.sort_by(|a, b| {
        a.median_per_gb
            .partial_cmp(&b.median_per_gb)
            .expect("no NaN")
    });
    for p in &cmp {
        let pts: Vec<String> = [0.25, 0.5, 0.75]
            .iter()
            .map(|q| format!("p{:.0}={:>5.2}", q * 100.0, p.cdf.inverse(*q)))
            .collect();
        println!(
            "{:<18} ({:>3} countries, {:>4.1}% of offers)  {}",
            p.name,
            p.countries,
            p.offer_share * 100.0,
            pts.join("  ")
        );
    }

    let find = |n: &str| cmp.iter().find(|p| p.name == n).expect("named provider");
    let airalo = find("Airalo");
    let mobi = find("MobiMatter");
    println!(
        "\nanchors: Airhub median ${:.2} (paper 2.3), Keepgo ${:.2} (paper 16.2)",
        find("Airhub").median_per_gb,
        find("Keepgo").median_per_gb
    );
    println!(
        "MobiMatter discount vs Airalo: {:.0}% (paper ~60%), offer share {:.1}% vs {:.1}%",
        (1.0 - mobi.median_per_gb / airalo.median_per_gb) * 100.0,
        mobi.offer_share * 100.0,
        airalo.offer_share * 100.0
    );

    let locals = local_sim_offers();
    let per_gb: Vec<f64> = locals.iter().map(|o| o.per_gb()).collect();
    let totals: Vec<f64> = locals.iter().map(|o| o.total_usd()).collect();
    println!(
        "\nlocal physical SIMs (dashed line): median ${:.2}/GB, median total ${:.2} — \
         cheapest per GB, but the bundles are big (paper: 40 GB Spain / $15.72 UAE SIM fee)",
        median(&per_gb).expect("non-empty"),
        median(&totals).expect("non-empty")
    );
}
