//! Figure 1: the three roaming data paths for a Poland-issued eSIM used in
//! Italy — HR (home country breakout), LBO (visited country), IHBO
//! (third-party hub). Rendered as the measured properties of each path.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use roam_cellular::{BandwidthPolicy, Mno, MnoDirectory, Plmn, Rat};
use roam_geo::{City, Country};
use roam_ipx::{
    attach, AttachParams, DnsMode, IpAssignment, PeeringQuality, PgwProvider, PgwSelection,
    PgwSite, ProviderDirectory, RoamingArch,
};
use roam_netsim::link::LinkClass;
use roam_netsim::{Asn, Ipv4Net, Network, NodeKind};

fn main() {
    println!("Figure 1 — roaming architectures for a POL b-MNO / ITA v-MNO eSIM\n");

    let mut mnos = MnoDirectory::new();
    let policy = BandwidthPolicy::new(30.0, 10.0);
    let bmno = mnos.add(Mno {
        name: "Play".into(),
        country: Country::POL,
        plmn: Plmn::new(260, 6, 2),
        asn: Asn(12912),
        parent: None,
        native_policy: policy,
        roamer_policy: policy,
        youtube_cap_mbps: None,
        access_loss: 0.001,
    });
    let vmno = mnos.add(Mno {
        name: "TIM".into(),
        country: Country::ITA,
        plmn: Plmn::new(222, 1, 2),
        asn: Asn(3269),
        parent: None,
        native_policy: policy,
        roamer_policy: policy,
        youtube_cap_mbps: None,
        access_loss: 0.001,
    });

    let mut providers = ProviderDirectory::new();
    let mk = |name: &str, asn: u32, city: City, prefix: &str| PgwProvider {
        name: name.into(),
        asn: Asn(asn),
        sites: vec![PgwSite::new(
            city,
            Ipv4Net::parse(prefix).expect("static"),
            4,
        )],
        selection: PgwSelection::Fixed(0),
        ip_assignment: IpAssignment::Pooled,
        private_hops: (3, 3),
        cgnat_icmp_responds: true,
    };
    let home = providers.add(mk("Play PGW", 12912, City::Warsaw, "91.200.1.0/24"));
    let local = providers.add(mk("TIM PGW", 3269, City::Rome, "93.40.1.0/24"));
    let hub = providers.add(mk("IPX hub PGW", 54825, City::Amsterdam, "147.75.90.0/24"));

    println!(
        "{:<6} {:>14} {:>12} {:>14} {:>18} {:>14}",
        "arch", "breakout", "tunnel km", "public IP in", "ASN seen online", "RTT→edge ms"
    );
    for (arch, provider) in [
        (RoamingArch::HomeRouted, home),
        (RoamingArch::LocalBreakout, local),
        (RoamingArch::IpxHubBreakout, hub),
    ] {
        let mut net = Network::new(1);
        let mut rng = SmallRng::seed_from_u64(2);
        for (p, prov) in providers.iter() {
            let site = &prov.sites[0];
            net.registry_mut()
                .register(site.prefix, prov.asn, &prov.name, site.city);
            let _ = p;
        }
        let att = attach(
            &mut net,
            &providers,
            &mnos,
            &PeeringQuality::default(),
            &AttachParams {
                session_id: 0,
                ue_city: City::Rome,
                v_mno: vmno,
                b_mno: bmno,
                arch,
                provider,
                dns: DnsMode::OperatorResolver,
                rat: Rat::Lte,
                imsi: roam_cellular::Imsi::new(Plmn::new(260, 6, 2), 77),
            },
            &mut rng,
        );
        // A nearby edge server behind the breakout.
        let edge = net.add_node(
            "edge",
            NodeKind::SpEdge,
            att.breakout_city,
            "142.250.250.1".parse().expect("static"),
        );
        net.link_geo(att.cgnat, edge, LinkClass::Peering);
        let rtt = net.rtt_ms(att.ue, edge).expect("connected");
        let info = net.registry().lookup(att.public_ip).expect("registered");
        println!(
            "{:<6} {:>14} {:>12.0} {:>14} {:>18} {:>14.1}",
            att.arch.label(),
            att.breakout_city.name(),
            att.tunnel_km,
            info.city.country().alpha3(),
            format!("{} ({})", info.org, info.asn),
            rtt
        );
    }
    println!("\npaper shape: HR tunnels home (longest), LBO stays local (shortest),");
    println!("IHBO lands at the hub — in between, decoupled from both operators.");
}
