//! Figure 13: (a) web-campaign downlink per country (fast.com), grouped by
//! configuration/b-MNO; (b) downlink and (c) uplink from the device
//! campaign (Ookla, CQI ≥ 7 filtered).
//!
//! Paper anchors: France ≈ 2× Uzbekistan despite the same Virginia PGW;
//! roaming eSIMs 78.8% slow (≤15 Mbps) / 4.5% fast (≥30) vs physical 31.9%
//! / 48%; eSIM uplink crushed only in Pakistan and Georgia; IHBO ≈ HR on
//! throughput.
//!
//! The device half runs as streaming queries over the campaign's columnar
//! `Speedtests` table: one export walk builds the column pages, and every
//! figure panel is a filter (`country`/`sim`/CQI) + `values` scan over the
//! chunks — no per-panel record re-walks.

use roam_bench::{boxplot_row, run_device, run_web};
use roam_cellular::Cqi;
use roam_columnar::{Query, Table};
use roam_geo::Country;
use roam_measure::{ColumnarSink, Dataset, Exporter};
use roam_stats::{mean_ci95, median};

fn main() {
    // ---- (a) web campaign ------------------------------------------------
    let (web_world, web) = run_web(2024);
    println!("Figure 13a — fast.com downlink per web-campaign country (Mbps)\n");
    println!(
        "{:<8} {:>8} {:>6} {:<22} {:<12}",
        "country", "median", "n", "b-MNO", "breakout"
    );
    for (country, records, ep) in &web {
        let v: Vec<f64> = records.iter().map(|r| r.down_mbps).collect();
        println!(
            "{:<8} {:>8.1} {:>6} {:<22} {:<12}",
            country.alpha3(),
            median(&v).unwrap_or(f64::NAN),
            v.len(),
            web_world.plan(*country).b_mno,
            ep.att.breakout_city.name()
        );
    }
    let med_of = |c: Country| {
        web.iter()
            .find(|(cc, _, _)| *cc == c)
            .map(|(_, r, _)| {
                let v: Vec<f64> = r.iter().map(|x| x.down_mbps).collect();
                median(&v).unwrap_or(f64::NAN)
            })
            .unwrap_or(f64::NAN)
    };
    println!(
        "\nFRA vs UZB (same Virginia PGW): {:.1} vs {:.1} Mbps (paper: 29 vs 15 — \
         proximity to the PGW matters)",
        med_of(Country::FRA),
        med_of(Country::UZB)
    );
    // The §5.1 proximity claim, as a statistic: tunnel length vs downlink
    // across the web campaign's roaming eSIMs.
    let mut dist = Vec::new();
    let mut down = Vec::new();
    for (country, records, ep) in &web {
        if !ep.att.arch.is_roaming() {
            continue;
        }
        let v: Vec<f64> = records.iter().map(|r| r.down_mbps).collect();
        let Ok(med) = median(&v) else {
            continue; // every run failed under the fault schedule
        };
        dist.push(ep.att.tunnel_km);
        down.push(med);
        let _ = country;
    }
    if let Ok(c) = roam_stats::pearson(&dist, &down) {
        println!(
            "distance↔downlink correlation (roaming web eSIMs): r = {:.2}, p = {:.3}, n = {} \
             (paper: closer PGWs → higher speeds, with exceptions like AZE > MDA)",
            c.r, c.p_value, c.n
        );
    }

    // ---- (b)+(c) device campaign ------------------------------------------
    let run = run_device(2024, 0.4);
    let mut sink = ColumnarSink::new();
    run.data.export_rows(Dataset::Speedtests, &mut sink);
    let speed = sink
        .into_table(Dataset::Speedtests)
        .expect("device campaign records speedtests");
    // The paper's quality filter: CQI ≥ 7 (failed runs carry a null CQI
    // and never pass, matching `filtered_speedtests`).
    let filtered = || -> Query<'_, Table> {
        Query::new(&speed).u32_ge("cqi", u32::from(Cqi::QPSK_THRESHOLD.value()))
    };
    println!("\nFigure 13b/c — Ookla down/up by country (CQI ≥ 7 only)\n");
    for spec in roam_world::World::device_campaign_specs() {
        for (label, sim) in [("SIM", "sim"), ("eSIM", "esim")] {
            let of = |metric: &str| {
                filtered()
                    .eq("country", spec.country.alpha3())
                    .eq("sim", sim)
                    .values(metric)
            };
            println!(
                "down {}",
                boxplot_row(
                    &format!("{} {label}", spec.country.alpha3()),
                    &of("down_mbps")
                )
            );
            println!("up   {}", boxplot_row("", &of("up_mbps")));
        }
    }

    // Slow/fast buckets, roaming countries only (§5.1 / SpeedTest index).
    let native = [Country::KOR.alpha3(), Country::THA.alpha3()];
    let bucket = |sim: &str| -> (f64, f64, usize) {
        let v = filtered()
            .eq("sim", sim)
            .none_of("country", &native)
            .values("down_mbps");
        let slow = v.iter().filter(|x| **x <= 15.0).count() as f64 / v.len() as f64;
        let fast = v.iter().filter(|x| **x >= 30.0).count() as f64 / v.len() as f64;
        (slow * 100.0, fast * 100.0, v.len())
    };
    let (es, ef, en) = bucket("esim");
    let (ss, sf, sn) = bucket("sim");
    println!("\nroaming-country downlink buckets:");
    println!(
        "  eSIM: {es:.1}% slow (≤15), {ef:.1}% fast (≥30), n={en} \
              (paper: 78.8% / 4.5%)"
    );
    println!("  SIM:  {ss:.1}% slow, {sf:.1}% fast, n={sn} (paper: 31.9% / 48%)");

    // 5G eSIM means the paper quotes.
    for (c, paper) in [
        (Country::ESP, 11.2),
        (Country::GEO, 31.7),
        (Country::DEU, 22.7),
    ] {
        let v = filtered()
            .eq("country", c.alpha3())
            .eq("sim", "esim")
            .values("down_mbps");
        if let Ok((m, ci)) = mean_ci95(&v) {
            println!(
                "  {} eSIM 5G mean: {m:.1} ± {ci:.2} Mbps (paper: {paper})",
                c.alpha3()
            );
        }
    }
}
