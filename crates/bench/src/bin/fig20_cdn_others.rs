//! Figure 20: jquery.min.js download time from the four remaining CDN
//! providers (Google CDN, Microsoft Ajax, jQuery, jsDelivr) — Cloudflare is
//! Fig. 14a.
//!
//! Paper shape: the same pattern on every provider — native eSIMs ≈
//! physical SIMs, HR eSIMs far slower, IHBO in between.

use roam_bench::{boxplot_row, run_device};
use roam_cellular::SimType;
use roam_ipx::RoamingArch;
use roam_measure::CdnProvider;
use roam_stats::Summary;

fn main() {
    let run = run_device(2024, 0.35);

    for provider in [
        CdnProvider::GoogleCdn,
        CdnProvider::MicrosoftAjax,
        CdnProvider::JQuery,
        CdnProvider::JsDelivr,
    ] {
        println!("--- {} download time (ms) ---", provider.name());
        for spec in roam_world::World::device_campaign_specs() {
            for (label, t) in [("SIM", SimType::Physical), ("eSIM", SimType::Esim)] {
                let v: Vec<f64> = run
                    .data
                    .cdns
                    .iter()
                    .filter(|r| {
                        r.tag.country == spec.country
                            && r.tag.sim_type == t
                            && r.provider == provider
                            && r.status.is_ok()
                    })
                    .map(|r| r.total_ms)
                    .collect();
                println!(
                    "{}",
                    boxplot_row(&format!("{} {label}", spec.country.alpha3()), &v)
                );
            }
        }
        // Per-architecture ordering check.
        let mean_of = |arch: RoamingArch| -> f64 {
            let v: Vec<f64> = run
                .data
                .cdns
                .iter()
                .filter(|r| {
                    r.tag.arch == arch
                        && r.tag.sim_type == SimType::Esim
                        && r.provider == provider
                        && r.status.is_ok()
                })
                .map(|r| r.total_ms)
                .collect();
            Summary::from(&v).map(|s| s.mean).unwrap_or(f64::NAN)
        };
        println!(
            "eSIM means: native {:.0} < IHBO {:.0} < HR {:.0} ms\n",
            mean_of(RoamingArch::Native),
            mean_of(RoamingArch::IpxHubBreakout),
            mean_of(RoamingArch::HomeRouted)
        );
    }
    println!("paper shape: native ≈ SIM << IHBO << HR on all four providers.");
}
