//! Figure 9: CDF of PGW-hop RTT for the Play-provisioned IHBO eSIMs in
//! Georgia, Germany and Spain, split by PGW provider (OVH vs Packet Host).
//!
//! Paper shape: in Germany and Spain, Packet Host breaks out faster than
//! OVH *despite twice the private hops*; in Georgia the order flips, with
//! Packet Host suffering a heavy fourth quartile — peering agreements, not
//! hop counts or distance, set the breakout latency.

use roam_bench::run_device;
use roam_cellular::SimType;
use roam_geo::Country;
use roam_netsim::registry::well_known;
use roam_stats::{quantile, Summary};

fn main() {
    let run = run_device(2024, 0.5);

    println!("Figure 9 — PGW RTT by provider for Play IHBO eSIMs\n");
    println!(
        "{:<6} {:<12} {:>7} {:>9} {:>9} {:>9} {:>6}",
        "ctry", "provider", "n", "median", "p75", "p95", "hops"
    );
    for country in [Country::GEO, Country::DEU, Country::ESP] {
        for (label, asn) in [
            ("OS (OVH)", well_known::OVH),
            ("PH (PacketHost)", well_known::PACKET_HOST),
        ] {
            let rows: Vec<&roam_measure::TraceRecord> = run
                .data
                .traces
                .iter()
                .filter(|r| {
                    r.tag.country == country
                        && r.tag.sim_type == SimType::Esim
                        && r.analysis.pgw_asn == Some(asn)
                })
                .collect();
            let rtts: Vec<f64> = rows.iter().filter_map(|r| r.analysis.pgw_rtt_ms).collect();
            let hops: Vec<f64> = rows.iter().map(|r| r.analysis.private_len as f64).collect();
            if rtts.len() < 3 {
                println!("{:<6} {:<12} {:>7}", country.alpha3(), label, "few");
                continue;
            }
            let s = Summary::from(&rtts).expect("non-empty");
            println!(
                "{:<6} {:<12} {:>7} {:>9.1} {:>9.1} {:>9.1} {:>6.1}",
                country.alpha3(),
                label,
                s.n,
                s.median,
                quantile(&rtts, 0.75).expect("non-empty"),
                quantile(&rtts, 0.95).expect("non-empty"),
                Summary::from(&hops).expect("non-empty").mean
            );
        }
    }
    println!("\npaper shape: PH faster than OVH in DEU/ESP despite ~2x the private");
    println!("hops; in GEO the order flips with a heavy PH tail.");

    // §4.3.2's statistical claim: distance does not decide which provider
    // breaks out faster. For each Play country, compare which provider is
    // geographically nearer against which one measured faster.
    println!();
    let mut misaligned = 0;
    let mut total = 0;
    for country in [Country::GEO, Country::DEU, Country::ESP] {
        let user = roam_geo::City::sgw_city_for(country)
            .expect("measured")
            .location();
        let med = |asn| {
            let v: Vec<f64> = run
                .data
                .traces
                .iter()
                .filter(|r| {
                    r.tag.country == country
                        && r.tag.sim_type == SimType::Esim
                        && r.analysis.pgw_asn == Some(asn)
                })
                .filter_map(|r| r.analysis.pgw_rtt_ms)
                .collect();
            roam_stats::median(&v).ok()
        };
        let (Some(ovh_rtt), Some(ph_rtt)) = (med(well_known::OVH), med(well_known::PACKET_HOST))
        else {
            continue;
        };
        let ovh_km = user.distance_km(roam_geo::City::Lille.location());
        let ph_km = user.distance_km(roam_geo::City::Amsterdam.location());
        let nearer_is_faster = (ovh_km < ph_km) == (ovh_rtt < ph_rtt);
        total += 1;
        if !nearer_is_faster {
            misaligned += 1;
        }
        println!(
            "{}: OVH {:.0} km / {:.1} ms vs PH {:.0} km / {:.1} ms — nearer provider {} faster",
            country.alpha3(),
            ovh_km,
            ovh_rtt,
            ph_km,
            ph_rtt,
            if nearer_is_faster { "IS" } else { "is NOT" }
        );
    }
    println!(
        "\nnearer ≠ faster in {misaligned}/{total} countries (paper: distance did not \
         explain the provider latency differences, p > 0.05)"
    );
}
