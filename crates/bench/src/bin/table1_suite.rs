//! Table 1: the device-campaign measurement suite.

fn main() {
    println!("Table 1 — network measurements of the device-based campaign\n");
    print!("{}", roam_measure::measurement_suite());
}
