//! Criterion micro/meso-benchmarks for the simulator's hot paths.
//!
//! These are performance benchmarks (the figure reproductions live in
//! `src/bin/`): wire codecs, the event-driven traceroute walk, session
//! establishment, routing, the statistics kernels, and the economics
//! pipeline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roam_bench::{run_device_shard, CampaignRunner};
use roam_econ::{median_per_gb_by_country, Crawler, Market, Vantage};
use roam_geo::Country;
use roam_measure::Service;
use roam_netsim::engine::{flow_seed, ClosedFormTransport, EngineSteppedTransport, Transport};
use roam_netsim::wire::{GtpuHeader, IcmpMessage, Ipv4Header};
use roam_netsim::{EventQueue, FaultSpec, SimTime, TracerouteOpts, TransferSpec};
use roam_stats::test::LeveneCenter;
use roam_stats::{levene_test, quantile, welch_t_test, Ecdf};
use roam_world::World;
use std::hint::black_box;

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    let hdr = Ipv4Header {
        dscp_ecn: 0,
        total_len: 84,
        ident: 7,
        ttl: 64,
        proto: roam_netsim::wire::IpProto::Icmp,
        src: "10.0.0.2".parse().expect("static"),
        dst: "8.8.8.8".parse().expect("static"),
    };
    g.bench_function("ipv4_encode_decode", |b| {
        b.iter(|| {
            let mut buf = bytes::BytesMut::with_capacity(20);
            hdr.encode(&mut buf);
            black_box(Ipv4Header::decode(&buf).expect("self-encoded"))
        })
    });
    let mut pkt = {
        let mut buf = bytes::BytesMut::new();
        hdr.encode(&mut buf);
        buf.to_vec()
    };
    g.bench_function("ttl_decrement", |b| {
        b.iter(|| {
            pkt[8] = 64;
            pkt[10] = 0;
            pkt[11] = 0;
            let cksum = roam_netsim::wire::internet_checksum(&pkt[..20]);
            pkt[10..12].copy_from_slice(&cksum.to_be_bytes());
            black_box(Ipv4Header::decrement_ttl(&mut pkt).expect("fresh ttl"))
        })
    });
    let echo = IcmpMessage::EchoRequest {
        ident: 1,
        seq: 2,
        payload: bytes::Bytes::from_static(&[0u8; 32]),
    };
    g.bench_function("icmp_roundtrip", |b| {
        b.iter(|| {
            let enc = echo.encode();
            black_box(IcmpMessage::decode(&enc).expect("self-encoded"))
        })
    });
    g.bench_function("gtpu_encap_decap", |b| {
        b.iter(|| {
            let t = GtpuHeader::encapsulate(0xBEEF, b"payload-of-a-probe");
            black_box(GtpuHeader::decapsulate(&t).expect("self-encapsulated"))
        })
    });
    g.finish();
}

fn bench_world(c: &mut Criterion) {
    let mut g = c.benchmark_group("world");
    g.sample_size(10);
    g.bench_function("build_world", |b| b.iter(|| black_box(World::build(7))));
    g.bench_function("attach_esim", |b| {
        b.iter_batched(
            || World::build(7),
            |mut w| black_box(w.attach_esim(Country::DEU)),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_measure(c: &mut Criterion) {
    let mut g = c.benchmark_group("measure");
    g.sample_size(20);
    let mut world = World::build(7);
    let ep = world.attach_esim(Country::PAK);
    let google = world
        .internet
        .targets
        .nearest(&world.net, Service::Google, ep.att.breakout_city)
        .expect("google edge");
    g.bench_function("ping", |b| {
        b.iter(|| black_box(world.net.ping(ep.att.ue, google)))
    });
    g.bench_function("traceroute", |b| {
        b.iter(|| {
            black_box(
                world
                    .net
                    .traceroute(ep.att.ue, google, TracerouteOpts::default()),
            )
        })
    });
    g.finish();
}

/// The netsim hot paths the allocation-elimination work targets: the
/// cached route lookup (an `Arc` bump, no Vec clone) and the full
/// ping walk (packets built in reusable scratch buffers, TTL mutated
/// in place, no event-queue churn).
fn bench_netsim(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim");
    let mut world = World::build(7);
    let ep = world.attach_esim(Country::PAK);
    let google = world
        .internet
        .targets
        .nearest(&world.net, Service::Google, ep.att.breakout_city)
        .expect("google edge");
    // Prime the cache so the lookup benchmark measures the steady state.
    let _ = world.net.route(ep.att.ue, google);
    g.bench_function("route_lookup", |b| {
        b.iter(|| black_box(world.net.route(ep.att.ue, google)))
    });
    g.bench_function("packet_forward", |b| {
        b.iter(|| black_box(world.net.ping(ep.att.ue, google)))
    });
    g.bench_function("traceroute_walk", |b| {
        b.iter(|| {
            black_box(
                world
                    .net
                    .traceroute(ep.att.ue, google, TracerouteOpts::default()),
            )
        })
    });
    g.finish();
}

/// The fault plane's disabled-path promise, measured: with the schedule
/// off, a packet walk pays one always-false branch — `ping_faults_off`
/// must track `netsim/packet_forward` (same work, same numbers; CI gates
/// the ratio at ≤2%). `ping_faults_heavy` is the same walk consulting a
/// fully materialised heavy calendar set.
fn bench_faults(c: &mut Criterion) {
    let mut g = c.benchmark_group("faults");
    let ping_under = |g: &mut criterion::BenchmarkGroup<'_>, name: &str, spec: FaultSpec| {
        let prev = FaultSpec::override_faults(Some(spec));
        let mut world = World::build(7);
        let ep = world.attach_esim(Country::PAK);
        let google = world
            .internet
            .targets
            .nearest(&world.net, Service::Google, ep.att.breakout_city)
            .expect("google edge");
        let _ = world.net.route(ep.att.ue, google);
        g.bench_function(name, |b| {
            b.iter(|| black_box(world.net.ping(ep.att.ue, google)))
        });
        FaultSpec::override_faults(prev);
    };
    ping_under(&mut g, "ping_faults_off", FaultSpec::off());
    ping_under(&mut g, "ping_faults_heavy", FaultSpec::heavy());
    g.finish();
}

/// Campaign-level benchmarks: one country's full device shard, and the
/// whole Table-4 campaign sequentially vs. on four workers. The two
/// full-campaign runs produce bit-identical data; the ratio of their
/// times is the wall-clock speedup on this host.
fn bench_campaign(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign");
    g.sample_size(10);
    let specs = World::device_campaign_specs();
    g.bench_function("device_country_shard", |b| {
        b.iter(|| black_box(run_device_shard(7, 0.1, &specs[0])))
    });
    g.bench_function("device_campaign_seq", |b| {
        b.iter(|| black_box(CampaignRunner::new(7).scale(0.1).run()))
    });
    g.bench_function("device_campaign_par4", |b| {
        b.iter(|| black_box(CampaignRunner::new(7).scale(0.1).parallel(4).run()))
    });
    g.finish();
}

/// The telemetry plane's two promises, measured: recording off must cost
/// one predictable branch on the ping hot path (compare `ping_recorder_off`
/// with `netsim/packet_forward` — same work, same numbers), and the no-op
/// sink must vanish entirely under static dispatch (compare the two
/// `sink_*` loops). `ping_recorder_summary` shows what turning counters on
/// actually buys/costs.
fn bench_telemetry(c: &mut Criterion) {
    use roam_telemetry::{Counter, Hist, NoopSink, Recorder, Sink, TelemetryMode};
    let mut g = c.benchmark_group("telemetry");
    let mut world = World::build(7);
    let ep = world.attach_esim(Country::PAK);
    let google = world
        .internet
        .targets
        .nearest(&world.net, Service::Google, ep.att.breakout_city)
        .expect("google edge");
    world.net.set_telemetry_mode(TelemetryMode::Off);
    g.bench_function("ping_recorder_off", |b| {
        b.iter(|| black_box(world.net.ping(ep.att.ue, google)))
    });
    world.net.set_telemetry_mode(TelemetryMode::Summary);
    g.bench_function("ping_recorder_summary", |b| {
        b.iter(|| black_box(world.net.ping(ep.att.ue, google)))
    });
    world.net.set_telemetry_mode(TelemetryMode::Off);
    g.bench_function("sink_noop_1k", |b| {
        b.iter(|| {
            let mut s = NoopSink;
            for i in 0..1_000u64 {
                s.add(Counter::PacketsSent, i);
                s.observe(Hist::ProbeRttMs, i as f64);
            }
            black_box(s.active())
        })
    });
    g.bench_function("sink_recorder_off_1k", |b| {
        b.iter(|| {
            let mut s = Recorder::off();
            for i in 0..1_000u64 {
                s.add(Counter::PacketsSent, i);
                s.observe(Hist::ProbeRttMs, i as f64);
            }
            black_box(s.active())
        })
    });
    g.bench_function("sink_recorder_summary_1k", |b| {
        b.iter(|| {
            let mut s = Recorder::new(TelemetryMode::Summary);
            for i in 0..1_000u64 {
                s.add(Counter::PacketsSent, i);
                s.observe(Hist::ProbeRttMs, i as f64);
            }
            black_box(s.take())
        })
    });
    g.finish();
}

/// The flow-engine layer: seed derivation, event-calendar churn, and the
/// two transports timing the same bulk transfer. Closed-form and
/// engine-stepped agree to sub-microsecond on the result; the bench pair
/// shows what stepping the calendar costs over evaluating the formula.
fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.bench_function("flow_seed", |b| {
        b.iter(|| {
            black_box(flow_seed(
                black_box(7),
                black_box("flow/s3/410012345/ookla/0"),
            ))
        })
    });
    g.bench_function("event_queue_1k_churn", |b| {
        b.iter(|| {
            let mut q: EventQueue<u32> = EventQueue::new();
            for i in 0..1_000u32 {
                // Knuth-hash the index so insertion order fights heap order.
                q.schedule(
                    SimTime::from_nanos(u64::from(i.wrapping_mul(2_654_435_761))),
                    i,
                );
            }
            let mut popped = 0;
            while q.pop().is_some() {
                popped += 1;
            }
            black_box(popped)
        })
    });
    let spec = TransferSpec {
        bytes: 50e6,
        rtt_ms: 80.0,
        policy_rate_mbps: 100.0,
        loss: 0.002,
        setup_rtts: 3.0,
        parallel: 8,
    };
    g.bench_function("transfer_closed_form", |b| {
        b.iter(|| black_box(ClosedFormTransport.transfer_ms(black_box(&spec))))
    });
    g.bench_function("transfer_engine_stepped", |b| {
        b.iter(|| black_box(EngineSteppedTransport.transfer_ms(black_box(&spec))))
    });
    g.finish();
}

/// The event calendar under the schedule/pop mixes the simulator actually
/// produces, on both backends (`wheel` is the default hierarchical timing
/// wheel, `heap` the classic binary-heap reference). Each iteration
/// `rewind()`s a long-lived queue — the walk-reuse pattern — so slot and
/// heap capacity persist and the numbers are steady-state schedule+pop
/// cost, not allocator churn. `bench_json.sh` reports the wheel/heap
/// ratio per mix.
fn bench_event_core(c: &mut Criterion) {
    use roam_netsim::CalendarKind;
    let mut g = c.benchmark_group("event_core");
    for (kind, tag) in [(CalendarKind::Wheel, "wheel"), (CalendarKind::Heap, "heap")] {
        // Uniform: timers scattered over ~4 ms (Knuth-hashed so insertion
        // order fights pop order) — the packet-walk steady state.
        let mut q: EventQueue<u32> = EventQueue::with_kind(kind);
        g.bench_function(&format!("uniform_4k_{tag}"), |b| {
            b.iter(|| {
                q.rewind();
                for i in 0..4_000u32 {
                    q.schedule(
                        SimTime::from_nanos(u64::from(i.wrapping_mul(2_654_435_761))),
                        i,
                    );
                }
                let mut popped = 0u32;
                while q.pop().is_some() {
                    popped += 1;
                }
                black_box(popped)
            })
        });
        // Bursty: 64 instants of 64 same-tick events each — the FIFO
        // tie-break path (batched fleet sessions land like this).
        let mut q: EventQueue<u32> = EventQueue::with_kind(kind);
        g.bench_function(&format!("bursty_4k_{tag}"), |b| {
            b.iter(|| {
                q.rewind();
                for i in 0..4_000u32 {
                    q.schedule(SimTime::from_nanos(u64::from(i / 64) * 1_000_000), i);
                }
                let mut popped = 0u32;
                while q.pop().is_some() {
                    popped += 1;
                }
                black_box(popped)
            })
        });
        // Long-tail: exponentially spread timers from 1 ns out to ~9 min,
        // forcing events through the wheel's upper levels (cascades).
        let mut q: EventQueue<u32> = EventQueue::with_kind(kind);
        g.bench_function(&format!("longtail_4k_{tag}"), |b| {
            b.iter(|| {
                q.rewind();
                for i in 0..4_000u32 {
                    let exp = i % 40;
                    q.schedule(SimTime::from_nanos((1u64 << exp) | u64::from(i)), i);
                }
                let mut popped = 0u32;
                while q.pop().is_some() {
                    popped += 1;
                }
                black_box(popped)
            })
        });
    }
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut g = c.benchmark_group("stats");
    let mut rng = SmallRng::seed_from_u64(3);
    let a: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>() * 100.0).collect();
    let b2: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>() * 120.0).collect();
    g.bench_function("quantile_10k", |b| {
        b.iter(|| black_box(quantile(&a, 0.95).expect("non-empty")))
    });
    g.bench_function("ecdf_build_10k", |b| {
        b.iter(|| black_box(Ecdf::new(&a).expect("non-empty")))
    });
    g.bench_function("welch_t_10k", |b| {
        b.iter(|| black_box(welch_t_test(&a, &b2).expect("enough samples")))
    });
    g.bench_function("levene_10k", |b| {
        b.iter(|| black_box(levene_test(&[&a, &b2], LeveneCenter::Median).expect("groups")))
    });
    g.finish();
}

fn bench_econ(c: &mut Criterion) {
    let mut g = c.benchmark_group("econ");
    g.sample_size(10);
    g.bench_function("generate_market", |b| {
        b.iter(|| black_box(Market::generate(5)))
    });
    let market = Market::generate(5);
    let crawler = Crawler::new(Vantage::NewJersey);
    g.bench_function("daily_crawl", |b| {
        b.iter(|| black_box(crawler.crawl(&market, 40)))
    });
    let snap = crawler.crawl(&market, 40);
    g.bench_function("country_medians", |b| {
        b.iter(|| black_box(median_per_gb_by_country(&snap, market.airalo())))
    });
    g.finish();
}

fn bench_fleet(c: &mut Criterion) {
    use roam_fleet::FleetRunner;

    let mut g = c.benchmark_group("fleet");
    g.sample_size(10);
    // 2k users end-to-end; scripts/bench_json.sh divides USERS by the mean
    // run time to report the users/sec headline.
    const USERS: u64 = 2_000;
    g.bench_function("run_2k_users_sequential", |b| {
        b.iter(|| black_box(FleetRunner::new(11).users(USERS).shards(1).run()))
    });
    g.bench_function("run_2k_users_4_shards_parallel", |b| {
        b.iter(|| {
            black_box(
                FleetRunner::new(11)
                    .users(USERS)
                    .shards(4)
                    .parallel(4)
                    .run(),
            )
        })
    });
    let shard = FleetRunner::new(11).users(USERS).shards(4).run();
    g.bench_function("report_merge_and_render", |b| {
        b.iter_batched(
            || shard.report.clone(),
            |mut r| {
                r.merge(&shard.report);
                black_box(r.render())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_checkpoint(c: &mut Criterion) {
    use roam_codec::{Decoder, Frame};
    use roam_fleet::{checkpoint, FleetRunner, ShardState};
    use std::io::Write as _;

    let mut g = c.benchmark_group("checkpoint");
    g.sample_size(10);
    // A halted 2k-user run leaves a real manifest + 4 shard files behind;
    // those frames are exactly the unit a production cadence writes per
    // window and a resume reads back. scripts/bench_json.sh reports the
    // write/restore latencies from this group.
    const USERS: u64 = 2_000;
    let dir = std::env::temp_dir().join(format!("roam-bench-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let halted = FleetRunner::new(11)
        .users(USERS)
        .shards(4)
        .checkpoint_dir(&dir)
        .checkpoint_every(60 * 100) // one write per 100 users per shard
        .halt_after(1)
        .run();
    assert!(halted.halted, "bench fixture must stop at a checkpoint");

    let bytes = std::fs::read(dir.join(checkpoint::shard_file(0))).expect("shard checkpoint");
    let (frame, _) = Frame::parse(&bytes).expect("sealed frame");
    let state = ShardState::decode_fields(&mut Decoder::new(frame.payload)).expect("state");
    g.bench_function("shard_encode_2k", |b| {
        b.iter(|| black_box(state.to_frame()))
    });
    g.bench_function("shard_decode_2k", |b| {
        b.iter(|| {
            let (frame, _) = Frame::parse(black_box(&bytes)).expect("sealed frame");
            black_box(ShardState::decode_fields(&mut Decoder::new(frame.payload)).expect("state"))
        })
    });
    // The durable write, mirroring the runner's torn-write protocol:
    // temp file, fsync, rename. Dominated by the fsync on most hosts.
    g.bench_function("shard_write_2k", |b| {
        let tmp = dir.join("bench.ckpt.tmp");
        let dst = dir.join("bench.ckpt");
        b.iter(|| {
            let mut f = std::fs::File::create(&tmp).expect("create");
            f.write_all(&bytes).expect("write");
            f.sync_all().expect("fsync");
            std::fs::rename(&tmp, &dst).expect("rename");
        })
    });
    // Everything `FleetRunner::resume` pays before the first user runs:
    // manifest decode, fingerprint recompute (a full world + market
    // build), and loading + range-checking all four shard states.
    g.bench_function("resume_validate_2k", |b| {
        b.iter(|| black_box(FleetRunner::resume(&dir).expect("halted dir resumes")))
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_wire,
    bench_world,
    bench_measure,
    bench_netsim,
    bench_faults,
    bench_campaign,
    bench_telemetry,
    bench_engine,
    bench_event_core,
    bench_stats,
    bench_econ,
    bench_fleet,
    bench_checkpoint
);
criterion_main!(benches);
