//! Property tests for cellular identifiers and the radio model.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use roam_cellular::{cqi_efficiency, ChannelSampler, Cqi, Imsi, ImsiRange, Plmn};

fn arb_plmn() -> impl Strategy<Value = Plmn> {
    (100u16..=999, prop_oneof![Just(2u8), Just(3u8)])
        .prop_flat_map(|(mcc, digits)| {
            let max = if digits == 2 { 99u16 } else { 999 };
            (Just(mcc), 0u16..=max, Just(digits))
        })
        .prop_map(|(mcc, mnc, digits)| Plmn::new(mcc, mnc, digits))
}

proptest! {
    #[test]
    fn plmn_display_parse_roundtrip(plmn in arb_plmn()) {
        let s = plmn.to_string();
        prop_assert_eq!(Plmn::parse(&s).unwrap(), plmn);
    }

    #[test]
    fn imsi_display_parse_roundtrip(plmn in arb_plmn(), msin_seed in any::<u64>()) {
        let digits = 15 - 3 - if plmn.to_string().len() == 6 { 2 } else { 3 };
        let msin = msin_seed % 10u64.pow(digits as u32);
        let imsi = Imsi::new(plmn, msin);
        let s = imsi.to_string();
        prop_assert_eq!(s.len(), 15, "IMSIs are always 15 digits");
        let mnc_digits = if plmn.to_string().len() == 6 { 2 } else { 3 };
        let back = Imsi::parse(&s, mnc_digits).unwrap();
        prop_assert_eq!(back, imsi);
    }

    #[test]
    fn imsi_range_nth_contains(plmn in arb_plmn(), start in 0u64..1_000_000,
                               len in 1u64..10_000, probe in any::<u64>()) {
        let range = ImsiRange { plmn, start, len };
        let i = probe % len;
        let imsi = range.nth(i).unwrap();
        prop_assert!(range.contains(imsi));
        prop_assert!(range.nth(len).is_none());
        // The IMSI one past the end is outside.
        let outside = Imsi::new(plmn, start + len);
        prop_assert!(!range.contains(outside));
    }

    #[test]
    fn cqi_efficiency_monotone(a in 1u8..=15, b in 1u8..=15) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(cqi_efficiency(Cqi::new(lo)) <= cqi_efficiency(Cqi::new(hi)));
    }

    #[test]
    fn channel_sampler_always_yields_valid_cqi(mode in 7u8..=15, tail in 0.0f64..1.0,
                                               seed in any::<u64>()) {
        let s = ChannelSampler { mode_cqi: mode, weak_tail: tail };
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..64 {
            let c = s.sample(&mut rng);
            prop_assert!((1..=15).contains(&c.value()));
        }
    }
}
