//! Radio access model: RAT, CQI, access latency and achievable PHY rate.
//!
//! The device campaign records the Radio Access Technology of every test
//! (the hatching of the Fig. 11/13 boxplots) and filters out measurements
//! taken in bad channel conditions: "we excluded any measurements with a CQI
//! below 7, as this threshold corresponds to the QPSK modulation scheme
//! used in weak network conditions" (§5.1, citing 3GPP TS 36.213). This
//! module reproduces the CQI table, the filter threshold, a plausible
//! access-latency model per RAT, and a per-test channel sampler.

use rand::rngs::SmallRng;
use rand::Rng;

/// Radio access technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rat {
    /// 4G / LTE.
    Lte,
    /// 5G NR.
    Nr5g,
}

impl std::fmt::Display for Rat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rat::Lte => write!(f, "4G"),
            Rat::Nr5g => write!(f, "5G"),
        }
    }
}

/// A Channel Quality Indicator, 1–15 (3GPP TS 36.213 Table 7.2.3-1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cqi(u8);

impl Cqi {
    /// The CQI value below which the paper discards measurements (QPSK
    /// region, weak signal).
    pub const QPSK_THRESHOLD: Cqi = Cqi(7);

    /// Construct, panicking outside 1..=15 (CQI 0 means "out of range" and
    /// never reaches the application layer in the AmiGo pipeline).
    #[must_use]
    pub fn new(value: u8) -> Self {
        assert!((1..=15).contains(&value), "CQI must be 1..=15, got {value}");
        Cqi(value)
    }

    /// Raw value.
    #[must_use]
    pub fn value(&self) -> u8 {
        self.0
    }

    /// The paper's measurement filter: keep only CQI ≥ 7.
    #[must_use]
    pub fn passes_quality_filter(&self) -> bool {
        *self >= Self::QPSK_THRESHOLD
    }
}

/// Spectral efficiency (information bits per symbol) for a CQI index, from
/// 3GPP TS 36.213 Table 7.2.3-1.
#[must_use]
pub fn cqi_efficiency(cqi: Cqi) -> f64 {
    const TABLE: [f64; 15] = [
        0.1523, 0.2344, 0.3770, 0.6016, 0.8770, 1.1758, 1.4766, 1.9141, 2.4063, 2.7305, 3.3223,
        3.9023, 4.5234, 5.1152, 5.5547,
    ];
    TABLE[(cqi.value() - 1) as usize]
}

/// One-way radio access latency (air interface + backhaul into the core) in
/// ms: 5G grants are faster than LTE, and a weak channel costs
/// retransmissions.
#[must_use]
pub fn radio_latency_ms(rat: Rat, cqi: Cqi) -> f64 {
    let base = match rat {
        Rat::Lte => 14.0,
        Rat::Nr5g => 7.0,
    };
    // HARQ retransmissions under weak channels: up to ~+12 ms at CQI 1.
    base + (15 - cqi.value()) as f64 * 0.85
}

/// Achievable downlink PHY rate in Mbps for a channel: efficiency × an
/// effective bandwidth factor per RAT (20 MHz LTE carrier vs a wider NR
/// allocation). This caps what any policy can deliver over the air.
#[must_use]
pub fn phy_rate_mbps(rat: Rat, cqi: Cqi) -> f64 {
    let effective_mhz = match rat {
        Rat::Lte => 15.0,
        Rat::Nr5g => 45.0,
    };
    cqi_efficiency(cqi) * effective_mhz
}

/// Samples per-test channel conditions for a measurement endpoint.
///
/// Real campaigns see mostly-good channels with a weak-signal tail (the 20%
/// of measurements the paper's CQI filter dropped). The sampler draws CQI
/// from a triangular-ish distribution whose mode is configurable per
/// country/operator.
#[derive(Debug, Clone, Copy)]
pub struct ChannelSampler {
    /// Most likely CQI (channel quality the volunteer usually had).
    pub mode_cqi: u8,
    /// Probability mass shifted into the weak tail (0..1).
    pub weak_tail: f64,
}

impl Default for ChannelSampler {
    fn default() -> Self {
        ChannelSampler {
            mode_cqi: 11,
            weak_tail: 0.2,
        }
    }
}

impl ChannelSampler {
    /// Draw a CQI for one test.
    #[must_use]
    pub fn sample(&self, rng: &mut SmallRng) -> Cqi {
        debug_assert!((1..=15).contains(&self.mode_cqi));
        if rng.gen_bool(self.weak_tail.clamp(0.0, 1.0)) {
            // Weak tail: uniform over 1..7 (the filtered region).
            Cqi::new(rng.gen_range(1..7))
        } else {
            // Good region: mode ± 2, clamped to 7..=15 so "good" really is
            // above the filter.
            let lo = self.mode_cqi.saturating_sub(2).max(7);
            let hi = (self.mode_cqi + 2).min(15);
            Cqi::new(rng.gen_range(lo..=hi))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn cqi_table_is_monotone() {
        let mut last = 0.0;
        for v in 1..=15 {
            let e = cqi_efficiency(Cqi::new(v));
            assert!(e > last, "efficiency must grow with CQI");
            last = e;
        }
    }

    #[test]
    fn cqi_seven_is_the_first_non_qpsk() {
        assert!(!Cqi::new(6).passes_quality_filter());
        assert!(Cqi::new(7).passes_quality_filter());
        assert!(Cqi::new(15).passes_quality_filter());
    }

    #[test]
    fn spot_check_3gpp_values() {
        assert!((cqi_efficiency(Cqi::new(1)) - 0.1523).abs() < 1e-9);
        assert!((cqi_efficiency(Cqi::new(7)) - 1.4766).abs() < 1e-9);
        assert!((cqi_efficiency(Cqi::new(15)) - 5.5547).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "CQI must be 1..=15")]
    fn cqi_zero_rejected() {
        let _ = Cqi::new(0);
    }

    #[test]
    fn nr_is_faster_than_lte() {
        let cqi = Cqi::new(12);
        assert!(radio_latency_ms(Rat::Nr5g, cqi) < radio_latency_ms(Rat::Lte, cqi));
        assert!(phy_rate_mbps(Rat::Nr5g, cqi) > phy_rate_mbps(Rat::Lte, cqi));
    }

    #[test]
    fn weak_channel_costs_latency() {
        assert!(radio_latency_ms(Rat::Lte, Cqi::new(3)) > radio_latency_ms(Rat::Lte, Cqi::new(13)));
    }

    #[test]
    fn phy_rate_spans_realistic_range() {
        // CQI 7 LTE ≈ 22 Mbps; CQI 15 NR ≈ 250 Mbps: the envelope within
        // which v-MNO policy is the binding constraint.
        let low = phy_rate_mbps(Rat::Lte, Cqi::new(7));
        let high = phy_rate_mbps(Rat::Nr5g, Cqi::new(15));
        assert!((15.0..30.0).contains(&low), "{low}");
        assert!((150.0..300.0).contains(&high), "{high}");
    }

    #[test]
    fn sampler_respects_weak_tail_fraction() {
        let s = ChannelSampler {
            mode_cqi: 11,
            weak_tail: 0.2,
        };
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 10_000;
        let weak = (0..n)
            .filter(|_| !s.sample(&mut rng).passes_quality_filter())
            .count();
        let frac = weak as f64 / n as f64;
        assert!((0.17..0.23).contains(&frac), "weak fraction {frac}");
    }

    #[test]
    fn sampler_good_region_is_near_mode() {
        let s = ChannelSampler {
            mode_cqi: 12,
            weak_tail: 0.0,
        };
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let c = s.sample(&mut rng).value();
            assert!((10..=14).contains(&c), "got CQI {c}");
        }
    }
}
