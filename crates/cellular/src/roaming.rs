//! Bilateral roaming agreements.
//!
//! An eSIM issued by a b-MNO only works in a visited country if the b-MNO
//! has a roaming agreement with some v-MNO there. The thick-MNA trick the
//! paper documents is to lean on a handful of b-MNOs whose agreement
//! portfolios already blanket the planet: "This extensive roaming network
//! allows Airalo to achieve global coverage without lengthy direct
//! agreements with local operators" (§1).

use crate::mno::MnoId;
use roam_geo::Country;
use std::collections::HashMap;

/// One bilateral agreement: subscribers of `home` may attach to `visited`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoamingAgreement {
    /// The operator that issued the subscriber's profile (b-MNO).
    pub home: MnoId,
    /// The operator whose RAN the subscriber attaches to (v-MNO).
    pub visited: MnoId,
    /// Whether data service is included (voice-only agreements exist; the
    /// campaigns only care about data).
    pub data: bool,
}

/// The set of agreements in force, indexed for the two queries the
/// simulation needs: "can this b-MNO's subscriber roam onto this v-MNO?"
/// and "which v-MNO will serve this b-MNO's subscriber in country X?".
#[derive(Debug, Default)]
pub struct RoamingRegistry {
    by_pair: HashMap<(MnoId, MnoId), RoamingAgreement>,
    /// For each (home, country): preferred v-MNOs in priority order
    /// (steering of roaming — operators pin partners per country).
    steering: HashMap<(MnoId, Country), Vec<MnoId>>,
}

impl RoamingRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an agreement and place `visited` at the end of `home`'s
    /// steering list for `visited_country`.
    pub fn add(&mut self, agreement: RoamingAgreement, visited_country: Country) {
        self.by_pair
            .insert((agreement.home, agreement.visited), agreement);
        self.steering
            .entry((agreement.home, visited_country))
            .or_default()
            .push(agreement.visited);
    }

    /// Is there a data-roaming agreement between `home` and `visited`?
    #[must_use]
    pub fn allows_data(&self, home: MnoId, visited: MnoId) -> bool {
        self.by_pair.get(&(home, visited)).is_some_and(|a| a.data)
    }

    /// The v-MNO a subscriber of `home` will be steered to in `country`
    /// (the first data-capable partner in priority order).
    #[must_use]
    pub fn select_vmno(&self, home: MnoId, country: Country) -> Option<MnoId> {
        self.steering
            .get(&(home, country))?
            .iter()
            .copied()
            .find(|v| self.allows_data(home, *v))
    }

    /// Every country where `home` subscribers have data roaming.
    #[must_use]
    pub fn footprint(&self, home: MnoId) -> Vec<Country> {
        let mut countries: Vec<Country> = self
            .steering
            .iter()
            .filter(|((h, _), vs)| *h == home && vs.iter().any(|v| self.allows_data(home, *v)))
            .map(|((_, c), _)| *c)
            .collect();
        countries.sort();
        countries.dedup();
        countries
    }

    /// Total number of agreements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_pair.len()
    }

    /// Is the registry empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_pair.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLAY: MnoId = MnoId(0);
    const VODAFONE_DE: MnoId = MnoId(1);
    const O2_DE: MnoId = MnoId(2);
    const MAGTI_GE: MnoId = MnoId(3);

    fn registry() -> RoamingRegistry {
        let mut r = RoamingRegistry::new();
        r.add(
            RoamingAgreement {
                home: PLAY,
                visited: VODAFONE_DE,
                data: true,
            },
            Country::DEU,
        );
        r.add(
            RoamingAgreement {
                home: PLAY,
                visited: O2_DE,
                data: false,
            },
            Country::DEU,
        );
        r.add(
            RoamingAgreement {
                home: PLAY,
                visited: MAGTI_GE,
                data: true,
            },
            Country::GEO,
        );
        r
    }

    #[test]
    fn data_agreement_lookup() {
        let r = registry();
        assert!(r.allows_data(PLAY, VODAFONE_DE));
        assert!(!r.allows_data(PLAY, O2_DE), "voice-only agreement");
        assert!(
            !r.allows_data(VODAFONE_DE, PLAY),
            "agreements are directional"
        );
    }

    #[test]
    fn steering_picks_first_data_capable_partner() {
        let r = registry();
        assert_eq!(r.select_vmno(PLAY, Country::DEU), Some(VODAFONE_DE));
        assert_eq!(r.select_vmno(PLAY, Country::GEO), Some(MAGTI_GE));
        assert_eq!(r.select_vmno(PLAY, Country::FRA), None);
    }

    #[test]
    fn steering_skips_voice_only_partner() {
        let mut r = RoamingRegistry::new();
        // Voice-only partner listed first; data partner second.
        r.add(
            RoamingAgreement {
                home: PLAY,
                visited: O2_DE,
                data: false,
            },
            Country::DEU,
        );
        r.add(
            RoamingAgreement {
                home: PLAY,
                visited: VODAFONE_DE,
                data: true,
            },
            Country::DEU,
        );
        assert_eq!(r.select_vmno(PLAY, Country::DEU), Some(VODAFONE_DE));
    }

    #[test]
    fn footprint_lists_data_countries_only() {
        let r = registry();
        let fp = r.footprint(PLAY);
        assert!(fp.contains(&Country::DEU));
        assert!(fp.contains(&Country::GEO));
        assert_eq!(fp.len(), 2);
        assert!(r.footprint(MAGTI_GE).is_empty());
    }

    #[test]
    fn len_counts_pairs() {
        assert_eq!(registry().len(), 3);
        assert!(RoamingRegistry::new().is_empty());
    }
}
