//! Mobile Network Operators and their subscriber policies.
//!
//! The paper's throughput takeaway is blunt: "network throughput for roaming
//! eSIMs is largely contingent upon the policies of the v-MNO, rather than
//! the specific roaming topology chosen" (§1). So policy is a first-class
//! object here: every operator carries a [`BandwidthPolicy`] per
//! [`SubscriberClass`], plus an optional per-service cap modelling the
//! YouTube traffic differentiation conjectured in §5.2.

use crate::ident::Plmn;
use roam_geo::Country;
use roam_netsim::Asn;

/// Index of an operator in a [`MnoDirectory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MnoId(pub u32);

/// How an operator treats a class of subscribers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubscriberClass {
    /// The operator's own customers.
    Native,
    /// Inbound roamers (subscribers of a foreign b-MNO).
    InboundRoamer,
}

/// Downlink/uplink policy rates enforced at the packet gateway / RAN
/// scheduler for one subscriber class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthPolicy {
    /// Downlink rate, Mbps.
    pub down_mbps: f64,
    /// Uplink rate, Mbps.
    pub up_mbps: f64,
}

impl BandwidthPolicy {
    /// Convenience constructor.
    #[must_use]
    pub fn new(down_mbps: f64, up_mbps: f64) -> Self {
        assert!(
            down_mbps > 0.0 && up_mbps > 0.0,
            "policy rates must be positive"
        );
        BandwidthPolicy { down_mbps, up_mbps }
    }
}

/// A mobile network operator.
#[derive(Debug, Clone)]
pub struct Mno {
    /// Operator name as it appears on the phone's status bar.
    pub name: String,
    /// Home country.
    pub country: Country,
    /// The operator's PLMN (what MCC-MNC in APN settings reveals, §3.1).
    pub plmn: Plmn,
    /// The AS the operator announces its address space from.
    pub asn: Asn,
    /// For MVNOs: the parent MNO whose RAN/core they ride. The Korean
    /// physical SIM in the paper (U+ UMobile on LG U+) is such a case, and
    /// shows different routing than the parent (§4.3.2).
    pub parent: Option<MnoId>,
    /// Policy for the operator's own subscribers.
    pub native_policy: BandwidthPolicy,
    /// Policy for inbound roamers — usually tighter, and the paper's
    /// explanation for slow roaming eSIMs.
    pub roamer_policy: BandwidthPolicy,
    /// Optional cap applied to video streaming traffic regardless of class
    /// (§5.2: HR eSIMs and local SIMs both pinned at 720p in PAK/ARE,
    /// "their b-MNOs may implement traffic differentiation, constraining
    /// bandwidth for YouTube").
    pub youtube_cap_mbps: Option<f64>,
    /// Characteristic end-to-end loss rate of the operator's access network
    /// (feeds the Mathis cap in the throughput model).
    pub access_loss: f64,
}

impl Mno {
    /// The policy applied to a subscriber class.
    #[must_use]
    pub fn policy(&self, class: SubscriberClass) -> BandwidthPolicy {
        match class {
            SubscriberClass::Native => self.native_policy,
            SubscriberClass::InboundRoamer => self.roamer_policy,
        }
    }

    /// Is this operator an MVNO?
    #[must_use]
    pub fn is_mvno(&self) -> bool {
        self.parent.is_some()
    }
}

/// The directory of operators in a scenario.
#[derive(Debug, Default)]
pub struct MnoDirectory {
    mnos: Vec<Mno>,
}

impl MnoDirectory {
    /// An empty directory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an operator, returning its id.
    pub fn add(&mut self, mno: Mno) -> MnoId {
        assert!(
            self.find_by_plmn(mno.plmn).is_none(),
            "duplicate PLMN {} for {}",
            mno.plmn,
            mno.name
        );
        if let Some(parent) = mno.parent {
            assert!(
                (parent.0 as usize) < self.mnos.len(),
                "MVNO parent must exist first"
            );
        }
        let id = MnoId(self.mnos.len() as u32);
        self.mnos.push(mno);
        id
    }

    /// Operator by id.
    #[must_use]
    pub fn get(&self, id: MnoId) -> &Mno {
        &self.mnos[id.0 as usize]
    }

    /// Find an operator by PLMN — the identification step of the web
    /// campaign ("its b-MNO as the MCC-MNC codes from the Access Point
    /// Name", §3.1).
    #[must_use]
    pub fn find_by_plmn(&self, plmn: Plmn) -> Option<MnoId> {
        self.mnos
            .iter()
            .position(|m| m.plmn == plmn)
            .map(|i| MnoId(i as u32))
    }

    /// Find an operator by name.
    #[must_use]
    pub fn find_by_name(&self, name: &str) -> Option<MnoId> {
        self.mnos
            .iter()
            .position(|m| m.name == name)
            .map(|i| MnoId(i as u32))
    }

    /// Iterate over `(id, operator)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (MnoId, &Mno)> {
        self.mnos
            .iter()
            .enumerate()
            .map(|(i, m)| (MnoId(i as u32), m))
    }

    /// Number of operators.
    #[must_use]
    pub fn len(&self) -> usize {
        self.mnos.len()
    }

    /// Is the directory empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.mnos.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn play() -> Mno {
        Mno {
            name: "Play".into(),
            country: Country::POL,
            plmn: Plmn::new(260, 6, 2),
            asn: Asn(12912),
            parent: None,
            native_policy: BandwidthPolicy::new(80.0, 30.0),
            roamer_policy: BandwidthPolicy::new(12.0, 8.0),
            youtube_cap_mbps: None,
            access_loss: 0.001,
        }
    }

    #[test]
    fn policy_selection_by_class() {
        let m = play();
        assert_eq!(m.policy(SubscriberClass::Native).down_mbps, 80.0);
        assert_eq!(m.policy(SubscriberClass::InboundRoamer).down_mbps, 12.0);
        assert!(!m.is_mvno());
    }

    #[test]
    fn directory_lookup_by_plmn_and_name() {
        let mut dir = MnoDirectory::new();
        let id = dir.add(play());
        assert_eq!(dir.find_by_plmn(Plmn::new(260, 6, 2)), Some(id));
        assert_eq!(dir.find_by_name("Play"), Some(id));
        assert_eq!(dir.find_by_plmn(Plmn::new(260, 1, 2)), None);
        assert_eq!(dir.get(id).country, Country::POL);
        assert_eq!(dir.len(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate PLMN")]
    fn duplicate_plmn_rejected() {
        let mut dir = MnoDirectory::new();
        dir.add(play());
        dir.add(play());
    }

    #[test]
    fn mvno_references_parent() {
        let mut dir = MnoDirectory::new();
        let parent = dir.add(play());
        let mut mvno = play();
        mvno.name = "Virtual-on-Play".into();
        mvno.plmn = Plmn::new(260, 45, 2);
        mvno.parent = Some(parent);
        let id = dir.add(mvno);
        assert!(dir.get(id).is_mvno());
    }

    #[test]
    #[should_panic(expected = "parent must exist")]
    fn mvno_with_dangling_parent_rejected() {
        let mut dir = MnoDirectory::new();
        let mut mvno = play();
        mvno.parent = Some(MnoId(7));
        dir.add(mvno);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_policy_rejected() {
        let _ = BandwidthPolicy::new(0.0, 5.0);
    }
}
