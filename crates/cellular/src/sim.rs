//! SIM profiles and Remote SIM Provisioning.
//!
//! eSIM technology is what makes the thick-MNA model possible (§2): an
//! embedded UICC can hold several downloadable *profiles*, each tying the
//! device to a different operator, switched without physical swapping. We
//! model the three pieces that matter to the campaigns:
//!
//! * [`SimProfile`] — one subscription (physical card or eSIM profile),
//!   with its IMSI, issuing operator and data-roaming flag;
//! * [`Euicc`] — the embedded chip: holds profiles, exactly one of which can
//!   be enabled at a time (the device-campaign phones "switch between
//!   physical SIM and eSIM", §3.2);
//! * [`Smdp`] — the SM-DP+ role from the GSMA RSP architecture: an activation
//!   code is redeemed for a profile download. The marketplace layer
//!   (`roam-core`) sits in front of this, the way Airalo's store front sits
//!   in front of its b-MNOs' provisioning systems.

use crate::ident::{Imsi, ImsiRange, Plmn};
use crate::mno::MnoId;
use std::collections::HashMap;

/// Physical card or downloadable profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimType {
    /// A plastic SIM bought locally.
    Physical,
    /// An eSIM profile delivered via RSP.
    Esim,
}

/// Lifecycle state of a profile on an eUICC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileState {
    /// Downloaded but not active.
    Disabled,
    /// The currently active profile.
    Enabled,
}

/// One subscription.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimProfile {
    /// ICCID-like unique identifier of the profile.
    pub iccid: u64,
    /// Physical or eSIM.
    pub sim_type: SimType,
    /// Subscriber identity (determines the home PLMN).
    pub imsi: Imsi,
    /// The operator that issued the profile — the **b-MNO** in the paper's
    /// terminology.
    pub issuer: MnoId,
    /// Whether data roaming must be enabled for the profile to work outside
    /// the issuer's network ("Data roaming must be enabled for these eSIMs,
    /// hence we refer to them as roaming eSIMs", §4.1).
    pub data_roaming_enabled: bool,
}

impl SimProfile {
    /// Home PLMN of the profile.
    #[must_use]
    pub fn home_plmn(&self) -> Plmn {
        self.imsi.plmn()
    }
}

/// The embedded UICC in a measurement device.
#[derive(Debug, Default)]
pub struct Euicc {
    profiles: Vec<(SimProfile, ProfileState)>,
}

impl Euicc {
    /// An empty eUICC.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a downloaded profile (disabled, per RSP semantics).
    pub fn install(&mut self, profile: SimProfile) {
        assert!(
            !self.profiles.iter().any(|(p, _)| p.iccid == profile.iccid),
            "profile {} already installed",
            profile.iccid
        );
        self.profiles.push((profile, ProfileState::Disabled));
    }

    /// Enable the profile with `iccid`, disabling whichever was active.
    /// Returns false when no such profile is installed.
    pub fn enable(&mut self, iccid: u64) -> bool {
        if !self.profiles.iter().any(|(p, _)| p.iccid == iccid) {
            return false;
        }
        for (p, state) in &mut self.profiles {
            *state = if p.iccid == iccid {
                ProfileState::Enabled
            } else {
                ProfileState::Disabled
            };
        }
        true
    }

    /// The currently enabled profile, if any.
    #[must_use]
    pub fn enabled(&self) -> Option<&SimProfile> {
        self.profiles
            .iter()
            .find(|(_, s)| *s == ProfileState::Enabled)
            .map(|(p, _)| p)
    }

    /// All installed profiles.
    #[must_use]
    pub fn profiles(&self) -> Vec<&SimProfile> {
        self.profiles.iter().map(|(p, _)| p).collect()
    }
}

/// The SM-DP+ (profile preparation/delivery) role: operators deposit IMSI
/// ranges, activation codes are redeemed for concrete profiles.
#[derive(Debug, Default)]
pub struct Smdp {
    /// Deposited inventory per operator: the leased IMSI range and a cursor.
    inventory: HashMap<u32, (ImsiRange, u64, MnoId)>,
    next_iccid: u64,
    next_batch: u32,
}

/// An activation code: redeemable for one profile from a deposited batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActivationCode {
    batch: u32,
}

impl Smdp {
    /// An empty SM-DP+.
    #[must_use]
    pub fn new() -> Self {
        Smdp {
            inventory: HashMap::new(),
            next_iccid: 8_988_000_000_000_000,
            next_batch: 0,
        }
    }

    /// An operator deposits a leased IMSI range, receiving a batch handle
    /// whose activation codes the marketplace can sell.
    pub fn deposit(&mut self, issuer: MnoId, range: ImsiRange) -> ActivationCode {
        let batch = self.next_batch;
        self.next_batch += 1;
        self.inventory.insert(batch, (range, 0, issuer));
        ActivationCode { batch }
    }

    /// Redeem an activation code: downloads the next profile of the batch.
    /// Returns `None` when the leased range is exhausted.
    pub fn redeem(&mut self, code: ActivationCode) -> Option<SimProfile> {
        let (range, cursor, issuer) = self.inventory.get_mut(&code.batch)?;
        let imsi = range.nth(*cursor)?;
        *cursor += 1;
        self.next_iccid += 1;
        Some(SimProfile {
            iccid: self.next_iccid,
            sim_type: SimType::Esim,
            imsi,
            issuer: *issuer,
            data_roaming_enabled: true,
        })
    }

    /// How many profiles remain in a batch.
    #[must_use]
    pub fn remaining(&self, code: ActivationCode) -> u64 {
        self.inventory
            .get(&code.batch)
            .map(|(range, cursor, _)| range.len - cursor)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range() -> ImsiRange {
        ImsiRange {
            plmn: Plmn::new(260, 6, 2),
            start: 7_000_000,
            len: 3,
        }
    }

    fn physical(iccid: u64) -> SimProfile {
        SimProfile {
            iccid,
            sim_type: SimType::Physical,
            imsi: Imsi::new(Plmn::new(410, 1, 2), 123),
            issuer: MnoId(0),
            data_roaming_enabled: false,
        }
    }

    #[test]
    fn euicc_single_enabled_invariant() {
        let mut e = Euicc::new();
        e.install(physical(1));
        e.install(physical(2));
        assert!(e.enabled().is_none(), "profiles install disabled");
        assert!(e.enable(1));
        assert_eq!(e.enabled().unwrap().iccid, 1);
        assert!(e.enable(2));
        assert_eq!(e.enabled().unwrap().iccid, 2);
        let enabled_count = e
            .profiles()
            .iter()
            .filter(|p| e.enabled().map(|q| q.iccid) == Some(p.iccid))
            .count();
        assert_eq!(enabled_count, 1);
    }

    #[test]
    fn enabling_missing_profile_fails() {
        let mut e = Euicc::new();
        e.install(physical(1));
        assert!(!e.enable(99));
        assert!(e.enabled().is_none());
    }

    #[test]
    #[should_panic(expected = "already installed")]
    fn duplicate_install_rejected() {
        let mut e = Euicc::new();
        e.install(physical(1));
        e.install(physical(1));
    }

    #[test]
    fn smdp_redeems_sequential_imsis_until_exhausted() {
        let mut smdp = Smdp::new();
        let code = smdp.deposit(MnoId(4), range());
        assert_eq!(smdp.remaining(code), 3);
        let p1 = smdp.redeem(code).unwrap();
        let p2 = smdp.redeem(code).unwrap();
        let p3 = smdp.redeem(code).unwrap();
        assert_eq!(p1.imsi.msin(), 7_000_000);
        assert_eq!(p3.imsi.msin(), 7_000_002);
        assert_ne!(p1.iccid, p2.iccid);
        assert_eq!(p1.issuer, MnoId(4));
        assert_eq!(p1.sim_type, SimType::Esim);
        assert!(
            p1.data_roaming_enabled,
            "thick-MNA eSIMs ship with roaming on"
        );
        assert!(smdp.redeem(code).is_none(), "range exhausted");
        assert_eq!(smdp.remaining(code), 0);
    }

    #[test]
    fn redeemed_profiles_stay_in_leased_range() {
        let mut smdp = Smdp::new();
        let r = range();
        let code = smdp.deposit(MnoId(0), r);
        while let Some(p) = smdp.redeem(code) {
            assert!(r.contains(p.imsi), "IMSI {} outside leased range", p.imsi);
        }
    }

    #[test]
    fn home_plmn_comes_from_imsi() {
        assert_eq!(physical(1).home_plmn(), Plmn::new(410, 1, 2));
    }
}
