//! Cellular identifiers: PLMN, IMSI, IMEI and IMSI ranges.
//!
//! The v-MNO-visibility experiment of §4.2 works entirely on these: the
//! partner UK operator sees inbound roamers identified by IMSI, and the
//! authors recover "potential IMSI ranges that Play allocates to Airalo" by
//! pattern-matching MCC/MNC prefixes and contiguous MSIN sub-ranges. The
//! types here make that analysis natural: a [`Plmn`] is the MCC/MNC pair, an
//! [`Imsi`] is PLMN + MSIN, and an [`ImsiRange`] is a contiguous MSIN block
//! an operator can lease out.

use std::fmt;

/// A Public Land Mobile Network identity: MCC (3 digits) + MNC (2–3 digits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Plmn {
    mcc: u16,
    mnc: u16,
    mnc_digits: u8,
}

impl Plmn {
    /// Build a PLMN. `mnc_digits` is 2 or 3 (both exist in the wild; Poland
    /// uses 2, the US uses 3).
    #[must_use]
    pub fn new(mcc: u16, mnc: u16, mnc_digits: u8) -> Self {
        assert!(
            (100..=999).contains(&mcc),
            "MCC must be 3 digits, got {mcc}"
        );
        assert!(mnc_digits == 2 || mnc_digits == 3, "MNC is 2 or 3 digits");
        let max = if mnc_digits == 2 { 99 } else { 999 };
        assert!(mnc <= max, "MNC {mnc} does not fit in {mnc_digits} digits");
        Plmn {
            mcc,
            mnc,
            mnc_digits,
        }
    }

    /// Mobile country code.
    #[must_use]
    pub fn mcc(&self) -> u16 {
        self.mcc
    }

    /// Mobile network code.
    #[must_use]
    pub fn mnc(&self) -> u16 {
        self.mnc
    }

    /// Parse from the `"MCC-MNC"` form shown in device APN settings, the
    /// exact string the web campaign asks volunteers to read off (§3.1).
    #[must_use]
    pub fn parse(s: &str) -> Option<Plmn> {
        let (mcc, mnc) = s.split_once('-')?;
        if mcc.len() != 3 || !(mnc.len() == 2 || mnc.len() == 3) {
            return None;
        }
        Some(Plmn::new(
            mcc.parse().ok()?,
            mnc.parse().ok()?,
            mnc.len() as u8,
        ))
    }
}

impl fmt::Display for Plmn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:03}-{:0width$}",
            self.mcc,
            self.mnc,
            width = self.mnc_digits as usize
        )
    }
}

/// An International Mobile Subscriber Identity: PLMN + MSIN, 15 digits total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Imsi {
    plmn: Plmn,
    msin: u64,
}

impl Imsi {
    /// Build an IMSI from a PLMN and an MSIN. The MSIN must fit in the
    /// remaining digits (15 − 3 − mnc_digits).
    #[must_use]
    pub fn new(plmn: Plmn, msin: u64) -> Self {
        let digits = Self::msin_digits(plmn);
        assert!(
            msin < 10u64.pow(digits as u32),
            "MSIN {msin} too long for {plmn}"
        );
        Imsi { plmn, msin }
    }

    fn msin_digits(plmn: Plmn) -> u8 {
        15 - 3 - plmn.mnc_digits
    }

    /// Home PLMN.
    #[must_use]
    pub fn plmn(&self) -> Plmn {
        self.plmn
    }

    /// Subscriber part.
    #[must_use]
    pub fn msin(&self) -> u64 {
        self.msin
    }

    /// Parse a 15-digit IMSI string, given how many digits the MNC has
    /// (the reader must know the operator's numbering plan, as real
    /// analysts do).
    #[must_use]
    pub fn parse(s: &str, mnc_digits: u8) -> Option<Imsi> {
        if s.len() != 15 || !s.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let mcc: u16 = s[..3].parse().ok()?;
        let mnc: u16 = s[3..3 + mnc_digits as usize].parse().ok()?;
        let msin: u64 = s[3 + mnc_digits as usize..].parse().ok()?;
        Some(Imsi::new(Plmn::new(mcc, mnc, mnc_digits), msin))
    }
}

impl fmt::Display for Imsi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:03}{:0mncw$}{:0msinw$}",
            self.plmn.mcc,
            self.plmn.mnc,
            self.msin,
            mncw = self.plmn.mnc_digits as usize,
            msinw = Imsi::msin_digits(self.plmn) as usize
        )
    }
}

/// A contiguous block of MSINs under one PLMN — the unit operators lease to
/// aggregators ("only a limited, pre-determined range of Play IMSIs are
/// 'rented' to Airalo", §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImsiRange {
    /// The PLMN the block belongs to.
    pub plmn: Plmn,
    /// First MSIN in the block (inclusive).
    pub start: u64,
    /// Number of MSINs in the block.
    pub len: u64,
}

impl ImsiRange {
    /// Does this range contain `imsi`?
    #[must_use]
    pub fn contains(&self, imsi: Imsi) -> bool {
        imsi.plmn == self.plmn && (self.start..self.start + self.len).contains(&imsi.msin)
    }

    /// The `i`-th IMSI of the block.
    #[must_use]
    pub fn nth(&self, i: u64) -> Option<Imsi> {
        (i < self.len).then(|| Imsi::new(self.plmn, self.start + i))
    }
}

/// An International Mobile Equipment Identity (device identity). Only the
/// value matters in-sim; the v-MNO core joins IMEIs it observed to IMSIs,
/// which is how the authors located their own devices (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Imei(pub u64);

impl fmt::Display for Imei {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:015}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plmn_formats_with_leading_zeros() {
        assert_eq!(Plmn::new(260, 6, 2).to_string(), "260-06"); // Play Poland
        assert_eq!(Plmn::new(310, 50, 3).to_string(), "310-050");
    }

    #[test]
    fn plmn_parse_round_trip() {
        for s in ["260-06", "310-050", "525-01", "222-88"] {
            assert_eq!(Plmn::parse(s).unwrap().to_string(), s);
        }
        assert!(Plmn::parse("26-06").is_none());
        assert!(Plmn::parse("2600-6").is_none());
        assert!(Plmn::parse("260-0606").is_none());
        assert!(Plmn::parse("garbage").is_none());
    }

    #[test]
    #[should_panic(expected = "MNC 100 does not fit")]
    fn plmn_rejects_overflowing_mnc() {
        let _ = Plmn::new(260, 100, 2);
    }

    #[test]
    fn imsi_display_is_fifteen_digits() {
        let plmn = Plmn::new(260, 6, 2);
        let imsi = Imsi::new(plmn, 42);
        let s = imsi.to_string();
        assert_eq!(s.len(), 15);
        assert_eq!(s, "260060000000042");
    }

    #[test]
    fn imsi_parse_round_trip() {
        let s = "260061234567890";
        let imsi = Imsi::parse(s, 2).unwrap();
        assert_eq!(imsi.plmn(), Plmn::new(260, 6, 2));
        assert_eq!(imsi.msin(), 1_234_567_890);
        assert_eq!(imsi.to_string(), s);
        // Same digits read with a 3-digit MNC plan parse differently.
        let alt = Imsi::parse(s, 3).unwrap();
        assert_eq!(alt.plmn().mnc(), 61);
    }

    #[test]
    fn imsi_parse_rejects_bad_input() {
        assert!(Imsi::parse("26006123456789", 2).is_none()); // 14 digits
        assert!(Imsi::parse("2600612345678901", 2).is_none()); // 16 digits
        assert!(Imsi::parse("26006123456789x", 2).is_none());
    }

    #[test]
    fn range_contains_and_nth() {
        let plmn = Plmn::new(260, 6, 2);
        let range = ImsiRange {
            plmn,
            start: 5_000_000,
            len: 1000,
        };
        assert!(range.contains(Imsi::new(plmn, 5_000_000)));
        assert!(range.contains(Imsi::new(plmn, 5_000_999)));
        assert!(!range.contains(Imsi::new(plmn, 5_001_000)));
        assert!(!range.contains(Imsi::new(Plmn::new(260, 1, 2), 5_000_500)));
        assert_eq!(range.nth(0).unwrap().msin(), 5_000_000);
        assert_eq!(range.nth(999).unwrap().msin(), 5_000_999);
        assert!(range.nth(1000).is_none());
    }

    #[test]
    fn imei_is_fifteen_digits() {
        assert_eq!(Imei(350123450000007).to_string().len(), 15);
    }
}
