//! Cellular ecosystem substrate: identifiers, radio, operators, SIMs.
//!
//! This crate models the parts of the mobile world that exist *below* the
//! roaming architectures of the paper:
//!
//! * [`ident`] — PLMN (MCC/MNC), IMSI and IMEI handling, including the IMSI
//!   *range* allocation that the v-MNO-visibility experiment (§4.2) pattern-
//!   matches against;
//! * [`radio`] — Radio Access Technology (4G/5G), CQI and its 3GPP mapping
//!   to modulation efficiency (the paper filters measurements at CQI ≥ 7,
//!   the QPSK threshold), access latency and achievable PHY rate;
//! * [`mno`] — Mobile Network Operators: PLMN identity, home country,
//!   whether they are an MVNO riding a parent network, and the per-class
//!   **bandwidth policies** that the paper finds dominate roaming
//!   throughput;
//! * [`sim`] — physical SIMs and eSIM profiles, with Remote SIM
//!   Provisioning (RSP) in the role the GSMA architecture gives it:
//!   profiles are *downloaded* onto an eUICC and enabled/disabled without
//!   physical swapping;
//! * [`roaming`] — bilateral roaming agreements between operators, the
//!   prerequisite for a subscriber of one MNO to attach to another.

pub mod ident;
pub mod mno;
pub mod radio;
pub mod roaming;
pub mod sim;

pub use ident::{Imei, Imsi, ImsiRange, Plmn};
pub use mno::{BandwidthPolicy, Mno, MnoDirectory, MnoId, SubscriberClass};
pub use radio::{cqi_efficiency, phy_rate_mbps, radio_latency_ms, ChannelSampler, Cqi, Rat};
pub use roaming::{RoamingAgreement, RoamingRegistry};
pub use sim::{Euicc, ProfileState, SimProfile, SimType, Smdp};
