//! The assembled world: marketplace, attachments and campaign tables.

use crate::gateways::Gateways;
use crate::operators::Operators;
use crate::topology::PublicInternet;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use roam_cellular::{ChannelSampler, ImsiRange, MnoId, Rat, SimProfile, SimType, SubscriberClass};
use roam_core::Aggregator;
use roam_geo::{City, Country};
use roam_ipx::{
    attach, AttachParams, BreakoutConfig, DnsMode, PeeringQuality, PgwProviderId, RoamingArch,
};
use roam_measure::{DeviceCampaignSpec, Endpoint};
use roam_netsim::{Ipv4Net, Network, NodeKind};

/// Which breakout arrangement a country's Airalo eSIM uses — resolved to
/// concrete provider ids once the gateways exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arrangement {
    /// HR through Singtel's home gateway.
    SingtelHr,
    /// IHBO alternating Packet Host / OVH.
    PacketHostOrOvh,
    /// IHBO via Packet Host only (the Saudi eSIM, and Polkomtel's pinned
    /// Ashburn sessions).
    PacketHostOnly,
    /// IHBO via Wireless Logic, London.
    WirelessLogic,
    /// IHBO via Webbing, Amsterdam.
    WebbingEu,
    /// IHBO via Webbing, Dallas.
    WebbingUs,
    /// Native eSIM from a local partner.
    Native,
}

/// Static per-country configuration (Table 2 + §4.1 + Fig. 11 RATs).
#[derive(Debug, Clone)]
pub struct CountryPlan {
    /// The destination country.
    pub country: Country,
    /// v-MNO the eSIM roams on (and the physical SIM's operator in the
    /// device campaign, except Korea).
    pub v_mno: &'static str,
    /// b-MNO issuing the Airalo eSIM.
    pub b_mno: &'static str,
    /// RAT the campaign measured on.
    pub rat: Rat,
    arrangement: Arrangement,
    /// Physical-SIM operator, when the country is in the device campaign.
    pub physical: Option<&'static str>,
    /// Channel conditions in that country.
    pub channel: ChannelSampler,
}

fn ch(mode_cqi: u8, weak_tail: f64) -> ChannelSampler {
    ChannelSampler {
        mode_cqi,
        weak_tail,
    }
}

/// The 24 measured countries' plans.
fn country_plans() -> Vec<CountryPlan> {
    use Arrangement::*;
    use Country::*;
    use Rat::*;
    let p = |country, v_mno, b_mno, rat, arrangement, physical, channel| CountryPlan {
        country,
        v_mno,
        b_mno,
        rat,
        arrangement,
        physical,
        channel,
    };
    vec![
        // --- Singtel HR group (Table 2 row 1) ---
        p(
            ARE,
            "Etisalat",
            "Singtel",
            Lte,
            SingtelHr,
            Some("Etisalat"),
            ch(11, 0.2),
        ),
        p(
            JPN,
            "NTT Docomo",
            "Singtel",
            Nr5g,
            SingtelHr,
            None,
            ch(12, 0.15),
        ),
        p(
            PAK,
            "Jazz",
            "Singtel",
            Lte,
            SingtelHr,
            Some("Jazz"),
            ch(10, 0.25),
        ),
        p(MYS, "Maxis", "Singtel", Lte, SingtelHr, None, ch(11, 0.2)),
        p(
            CHN,
            "China Mobile",
            "Singtel",
            Nr5g,
            SingtelHr,
            None,
            ch(12, 0.15),
        ),
        // --- Play IHBO group ---
        p(
            GBR,
            "UK Partner",
            "Play",
            Lte,
            PacketHostOrOvh,
            Some("UK Partner"),
            ch(11, 0.2),
        ),
        p(
            DEU,
            "Vodafone DE",
            "Play",
            Nr5g,
            PacketHostOrOvh,
            Some("Vodafone DE"),
            ch(12, 0.2),
        ),
        p(
            GEO,
            "Magti",
            "Play",
            Nr5g,
            PacketHostOrOvh,
            Some("Magti"),
            ch(12, 0.2),
        ),
        p(
            ESP,
            "Movistar",
            "Play",
            Nr5g,
            PacketHostOrOvh,
            Some("Movistar"),
            ch(12, 0.2),
        ),
        // --- Telna IHBO group ---
        p(
            QAT,
            "Ooredoo Qatar",
            "Telna Mobile",
            Nr5g,
            PacketHostOrOvh,
            Some("Ooredoo Qatar"),
            ch(12, 0.15),
        ),
        p(
            SAU,
            "STC",
            "Telna Mobile",
            Nr5g,
            PacketHostOnly,
            Some("STC"),
            ch(13, 0.15),
        ),
        p(
            TUR,
            "Turkcell",
            "Telna Mobile",
            Lte,
            PacketHostOrOvh,
            None,
            ch(11, 0.2),
        ),
        p(
            EGY,
            "Vodafone EG",
            "Telna Mobile",
            Lte,
            PacketHostOrOvh,
            None,
            ch(10, 0.25),
        ),
        // --- Telecom Italia IHBO group ---
        p(
            MDA,
            "Moldcell",
            "Telecom Italia",
            Lte,
            WirelessLogic,
            None,
            ch(11, 0.2),
        ),
        p(
            KEN,
            "Safaricom",
            "Telecom Italia",
            Lte,
            WirelessLogic,
            None,
            ch(10, 0.25),
        ),
        p(
            FIN,
            "Elisa",
            "Telecom Italia",
            Nr5g,
            WirelessLogic,
            None,
            ch(13, 0.1),
        ),
        p(
            AZE,
            "Azercell",
            "Telecom Italia",
            Lte,
            WirelessLogic,
            None,
            ch(11, 0.2),
        ),
        // --- Orange IHBO group ---
        p(
            ITA,
            "TIM Italy",
            "Orange",
            Lte,
            WebbingEu,
            None,
            ch(11, 0.2),
        ),
        p(
            USA,
            "T-Mobile US",
            "Orange",
            Nr5g,
            WebbingUs,
            None,
            ch(12, 0.15),
        ),
        // --- Polkomtel IHBO group (pinned to Ashburn) ---
        p(
            FRA,
            "Orange FR Visited",
            "Polkomtel",
            Nr5g,
            PacketHostOnly,
            None,
            ch(12, 0.15),
        ),
        p(
            UZB,
            "Beeline UZ",
            "Polkomtel",
            Lte,
            PacketHostOnly,
            None,
            ch(10, 0.25),
        ),
        // --- native partners (§4.1) ---
        p(
            KOR,
            "LG U+",
            "LG U+",
            Nr5g,
            Native,
            Some("U+ UMobile"),
            ch(13, 0.15),
        ),
        p(
            MDV,
            "Ooredoo Maldives",
            "Ooredoo Maldives",
            Lte,
            Native,
            None,
            ch(10, 0.25),
        ),
        p(THA, "dtac", "dtac", Lte, Native, Some("dtac"), ch(11, 0.2)),
    ]
}

/// One row of Table 4 (device campaign).
#[derive(Debug, Clone, Copy)]
pub struct DeviceCountrySpec {
    /// Campaign country.
    pub country: Country,
    /// Days of data collection.
    pub days: u32,
    /// Per-test sample counts `(physical // eSIM)`.
    pub spec: DeviceCampaignSpec,
}

/// One row of Table 3 (web campaign).
#[derive(Debug, Clone, Copy)]
pub struct WebCountrySpec {
    /// Campaign country.
    pub country: Country,
    /// Volunteers who travelled there.
    pub volunteers: u32,
    /// Days of collection.
    pub days: u32,
    /// Completed measurements (DNS + fast.com pairs).
    pub measurements: u32,
}

/// The fully built world.
#[derive(Debug)]
pub struct World {
    /// The packet network (topology + registry).
    pub net: Network,
    /// Operator census.
    pub ops: Operators,
    /// Gateway providers.
    pub gateways: Gateways,
    /// Peering-quality table.
    pub peering: PeeringQuality,
    /// Public internet + service targets.
    pub internet: PublicInternet,
    /// The Airalo-model marketplace.
    pub airalo: Aggregator,
    plans: Vec<CountryPlan>,
    rng: SmallRng,
    session_counter: u32,
    attach_counts: std::collections::HashMap<Country, u32>,
}

impl World {
    /// Build the calibrated world from a seed.
    #[must_use]
    pub fn build(seed: u64) -> World {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut net = Network::new(seed ^ 0x526f_616d); // "Roam"
        let ops = Operators::build();
        let gateways = Gateways::build(&ops, net.registry_mut());
        let plans = country_plans();

        // Public internet in every SGW city plus every gateway city.
        let mut cities: Vec<City> = plans
            .iter()
            .map(|p| City::sgw_city_for(p.country).expect("measured country"))
            .collect();
        for (_, provider) in gateways.dir.iter() {
            for site in &provider.sites {
                cities.push(site.city);
            }
        }
        let mut internet = PublicInternet::build(&mut net, &cities, &mut rng);

        // Operator DNS resolvers, co-located with each operator's gateway.
        for (id, _mno) in ops.dir.iter() {
            let pid = gateways.own_gateway(id);
            let site = &gateways.dir.get(pid).sites[0];
            let ip = site.prefix.nth(250).expect("a /24 has a 250th address");
            internet.ensure_city(&mut net, site.city, &mut rng);
            let node = net.add_node(
                &format!("dns-{}", gateways.dir.get(pid).name),
                NodeKind::DnsResolver,
                site.city,
                ip,
            );
            let ix = internet.ix(site.city).expect("ensured above");
            net.link_geo(node, ix, roam_netsim::LinkClass::Metro);
            internet.targets.set_operator_dns(id, node);
        }

        // Peering-quality calibration (§4.3.2, §5.1): the spread between a
        // well-peered European IHBO tunnel and the Jazz→Singtel hairpin.
        let mut peering = PeeringQuality::with_default(2.1);
        {
            let singtel_gw = gateways.own_gateway(ops.id("Singtel"));
            let ph = gateways.packet_host;
            let ovh = gateways.ovh;
            let wl = gateways.wireless_logic;
            let mut set = |v: &str, p: PgwProviderId, c: f64| {
                peering.set(ops.id(v), p, c);
            };
            set("Jazz", singtel_gw, 6.5);
            set("Etisalat", singtel_gw, 3.2);
            set("NTT Docomo", singtel_gw, 2.2);
            set("Maxis", singtel_gw, 1.8);
            set("China Mobile", singtel_gw, 3.5);
            set("Vodafone DE", ph, 1.8);
            set("Vodafone DE", ovh, 2.8);
            set("Movistar", ph, 1.7);
            set("Movistar", ovh, 2.9);
            set("UK Partner", ph, 1.6);
            set("UK Partner", ovh, 2.5);
            set("Magti", ph, 3.0);
            set("Magti", ovh, 1.9);
            set("Ooredoo Qatar", ph, 1.35);
            set("Ooredoo Qatar", ovh, 1.45);
            set("STC", ph, 1.35);
            set("Turkcell", ph, 2.0);
            set("Turkcell", ovh, 2.1);
            set("Vodafone EG", ph, 2.2);
            set("Vodafone EG", ovh, 2.3);
            set("Moldcell", wl, 2.2);
            set("Safaricom", wl, 2.4);
            set("Elisa", wl, 1.9);
            set("Azercell", wl, 2.6);
            set("TIM Italy", gateways.webbing_eu, 1.8);
            set("T-Mobile US", gateways.webbing_us, 1.7);
            set("Orange FR Visited", ph, 1.6);
            set("Beeline UZ", ph, 2.4);
        }

        // The marketplace: one offer per measured country, with an IMSI
        // block leased from the b-MNO.
        let mut airalo = Aggregator::new("Airalo");
        for (idx, plan) in plans.iter().enumerate() {
            let b = ops.id(plan.b_mno);
            let b_country = ops.dir.get(b).country;
            let range = ImsiRange {
                plmn: ops.dir.get(b).plmn,
                start: 700_000_000 + idx as u64 * 100_000,
                len: 100_000,
            };
            let config = resolve_config(plan.arrangement, &gateways, b);
            airalo.list_offer(plan.country, b, b_country, range, config);
        }

        World {
            net,
            ops,
            gateways,
            peering,
            internet,
            airalo,
            plans,
            rng,
            session_counter: 0,
            attach_counts: std::collections::HashMap::new(),
        }
    }

    /// Deterministic structural digest of the built world: topology size,
    /// the full country-plan table and the marketplace catalogue, folded
    /// through the roam-codec field encoding into one FNV-1a hash.
    ///
    /// Two processes that call `World::build` with the same seed (on any
    /// build of the same schema) agree on this value; a world built from
    /// a different seed — or a build whose plan tables changed — does
    /// not. The fleet checkpoint layer stamps it into every manifest so a
    /// resume against the wrong world is rejected instead of silently
    /// producing a plausible-but-wrong report.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut e = roam_codec::Encoder::new();
        e.u64(1, self.net.node_count() as u64);
        for p in &self.plans {
            e.section(2, |s| {
                s.str(1, p.country.alpha3());
                s.str(2, p.v_mno);
                s.str(3, p.b_mno);
                s.str(4, &format!("{:?}", p.rat));
                s.str(5, &format!("{:?}", p.arrangement));
                s.str(6, p.physical.unwrap_or(""));
                s.u64(7, u64::from(p.channel.mode_cqi));
                s.f64(8, p.channel.weak_tail);
            });
        }
        for o in self.airalo.offers() {
            e.section(3, |s| {
                s.str(1, o.country.alpha3());
                s.u64(2, u64::from(o.b_mno.0));
                s.str(3, &format!("{:?}", o.config));
                s.u64(4, u64::from(o.native));
            });
        }
        roam_codec::hash64(&e.into_bytes())
    }

    /// The country plan table.
    #[must_use]
    pub fn plan(&self, country: Country) -> &CountryPlan {
        self.plans
            .iter()
            .find(|p| p.country == country)
            .unwrap_or_else(|| panic!("{country} not in the measured set"))
    }

    /// All measured countries, in Table-2 order.
    #[must_use]
    pub fn measured_countries(&self) -> Vec<Country> {
        self.plans.iter().map(|p| p.country).collect()
    }

    /// Buy an Airalo eSIM for `country` and attach it: a fresh session with
    /// the country's arrangement (providers may alternate between calls,
    /// as the campaigns observed).
    pub fn attach_esim(&mut self, country: Country) -> Endpoint {
        let plan = self.plan(country).clone();
        let (profile, offer) = self
            .airalo
            .buy_esim(country)
            .expect("catalogue covers measured countries");
        let v = self.ops.id(plan.v_mno);
        // Providers *iterate* across attachments (§4.1: Play/Telna eSIMs
        // alternated between Packet Host and OVH) — round-robin per country.
        let count = self.attach_counts.entry(country).or_insert(0);
        let provider = offer.config.providers[*count as usize % offer.config.providers.len()];
        *count += 1;
        self.attach_profile(
            &profile,
            &plan,
            v,
            offer.config.arch,
            provider,
            offer.config.dns,
            SimType::Esim,
        )
    }

    /// Attach an Airalo-style eSIM with an *overridden* breakout — the
    /// hook the ablation experiments use to ask "what if this eSIM used
    /// LBO at the v-MNO?" or "what if the nearest hub were selected?".
    pub fn attach_esim_with(
        &mut self,
        country: Country,
        arch: RoamingArch,
        provider: PgwProviderId,
        dns: DnsMode,
    ) -> Endpoint {
        let plan = self.plan(country).clone();
        let (profile, _offer) = self
            .airalo
            .buy_esim(country)
            .expect("catalogue covers measured countries");
        let v = self.ops.id(plan.v_mno);
        self.attach_profile(&profile, &plan, v, arch, provider, dns, SimType::Esim)
    }

    /// Attach the local physical SIM of a device-campaign country.
    pub fn attach_physical(&mut self, country: Country) -> Endpoint {
        let plan = self.plan(country).clone();
        let op_name = plan.physical.expect("country is in the device campaign");
        let op = self.ops.id(op_name);
        let provider = self.gateways.own_gateway(op);
        let profile = SimProfile {
            iccid: 10_000 + u64::from(self.session_counter),
            sim_type: SimType::Physical,
            imsi: roam_cellular::Imsi::new(self.ops.dir.get(op).plmn, 42),
            issuer: op,
            data_roaming_enabled: false,
        };
        let mut plan2 = plan.clone();
        plan2.v_mno = op_name;
        self.attach_profile(
            &profile,
            &plan2,
            op,
            RoamingArch::Native,
            provider,
            DnsMode::OperatorResolver,
            SimType::Physical,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn attach_profile(
        &mut self,
        profile: &SimProfile,
        plan: &CountryPlan,
        v_mno: MnoId,
        arch: RoamingArch,
        provider: PgwProviderId,
        dns: DnsMode,
        sim_type: SimType,
    ) -> Endpoint {
        let session_id = self.session_counter;
        self.session_counter += 1;
        let params = AttachParams {
            session_id,
            ue_city: City::sgw_city_for(plan.country).expect("measured country"),
            v_mno,
            b_mno: profile.issuer,
            arch,
            provider,
            dns,
            rat: plan.rat,
            imsi: profile.imsi,
        };
        let att = attach(
            &mut self.net,
            &self.gateways.dir,
            &self.ops.dir,
            &self.peering,
            &params,
            &mut self.rng,
        );
        let transit: Vec<(String, roam_netsim::Asn)> = self.gateways.transit_of(provider).to_vec();
        self.internet
            .connect_breakout(&mut self.net, &att, &transit, &mut self.rng);

        // Resolve the policy the serving network applies.
        let serving = self.ops.dir.get(v_mno);
        let class = if arch.is_roaming() {
            SubscriberClass::InboundRoamer
        } else {
            SubscriberClass::Native
        };
        let policy = serving.policy(class);
        // Video throttling follows the network that owns the breakout: the
        // b-MNO for HR/native, the v-MNO otherwise (§5.2).
        let youtube_cap = match arch {
            RoamingArch::HomeRouted | RoamingArch::Native => {
                self.ops.dir.get(profile.issuer).youtube_cap_mbps
            }
            _ => serving.youtube_cap_mbps,
        };

        Endpoint {
            att,
            sim_type,
            country: plan.country,
            label: format!(
                "{} {}",
                plan.country.alpha3(),
                if sim_type == SimType::Esim {
                    "eSIM"
                } else {
                    "SIM"
                }
            ),
            policy_down_mbps: policy.down_mbps,
            policy_up_mbps: policy.up_mbps,
            youtube_cap_mbps: youtube_cap,
            loss: serving.access_loss,
            channel: plan.channel,
        }
    }

    /// The device campaign's per-country sample counts (Table 4).
    #[must_use]
    pub fn device_campaign_specs() -> Vec<DeviceCountrySpec> {
        use Country::*;
        let row = |country, days, ookla, mtr, cdn, video| DeviceCountrySpec {
            country,
            days,
            spec: DeviceCampaignSpec {
                ookla,
                mtr_per_target: mtr,
                cdn_per_provider: cdn,
                dns: mtr,
                video,
            },
        };
        vec![
            row(GEO, 2, (11, 8), (12, 12), (12, 10), (7, 7)),
            row(DEU, 25, (154, 136), (331, 319), (322, 305), (5, 10)),
            row(KOR, 2, (18, 10), (32, 18), (32, 16), (10, 9)),
            row(PAK, 9, (49, 121), (213, 205), (210, 200), (98, 101)),
            row(QAT, 1, (3, 7), (14, 10), (14, 12), (7, 4)),
            row(SAU, 3, (10, 17), (49, 44), (170, 165), (79, 74)),
            row(ESP, 4, (15, 31), (171, 164), (166, 158), (0, 0)),
            row(THA, 8, (34, 42), (100, 80), (96, 96), (36, 29)),
            row(ARE, 4, (19, 47), (100, 97), (99, 165), (45, 46)),
            row(GBR, 4, (10, 6), (11, 9), (15, 12), (0, 0)),
        ]
    }

    /// The web campaign's per-country overview (Table 3).
    #[must_use]
    pub fn web_campaign_specs() -> Vec<WebCountrySpec> {
        use Country::*;
        let row = |country, volunteers, days, measurements| WebCountrySpec {
            country,
            volunteers,
            days,
            measurements,
        };
        vec![
            row(ITA, 1, 11, 9),
            row(CHN, 1, 5, 6),
            row(MDA, 1, 10, 11),
            row(FRA, 2, 9, 15),
            row(AZE, 1, 4, 5),
            row(MDV, 1, 3, 5),
            row(MYS, 1, 3, 5),
            row(KEN, 1, 4, 9),
            row(USA, 1, 4, 9),
            row(FIN, 1, 1, 3),
            row(PAK, 1, 11, 16),
            row(EGY, 1, 6, 8),
            row(TUR, 1, 7, 9),
            row(UZB, 1, 3, 6),
        ]
    }

    /// Verify the session's GTP/registry plumbing end to end: the breakout
    /// address must resolve (via the registry, as ipinfo would) to the
    /// provider's ASN.
    #[must_use]
    pub fn breakout_asn(&self, ep: &Endpoint) -> Option<roam_netsim::Asn> {
        self.net.registry().asn_of(ep.att.public_ip)
    }

    /// Prefix helper for tests and reports.
    #[must_use]
    pub fn prefix_of(&self, s: &str) -> Ipv4Net {
        Ipv4Net::parse(s).expect("static prefix")
    }
}

fn resolve_config(arr: Arrangement, gw: &Gateways, b_mno: MnoId) -> BreakoutConfig {
    match arr {
        Arrangement::SingtelHr | Arrangement::Native => {
            let own = gw.own_gateway(b_mno);
            if arr == Arrangement::Native {
                BreakoutConfig {
                    arch: RoamingArch::Native,
                    providers: vec![own],
                    dns: DnsMode::OperatorResolver,
                }
            } else {
                BreakoutConfig::home_routed(own)
            }
        }
        Arrangement::PacketHostOrOvh => BreakoutConfig::ihbo(vec![gw.packet_host, gw.ovh]),
        Arrangement::PacketHostOnly => BreakoutConfig::ihbo(vec![gw.packet_host]),
        Arrangement::WirelessLogic => BreakoutConfig::ihbo(vec![gw.wireless_logic]),
        Arrangement::WebbingEu => BreakoutConfig::ihbo(vec![gw.webbing_eu]),
        Arrangement::WebbingUs => BreakoutConfig::ihbo(vec![gw.webbing_us]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roam_netsim::registry::well_known;

    #[test]
    fn fingerprint_is_seed_stable_and_seed_sensitive() {
        // Same seed, independent builds: identical digest (the property
        // resume depends on — a restarted process re-derives it).
        let a = World::build(42).fingerprint();
        let b = World::build(42).fingerprint();
        assert_eq!(a, b);
        // Different seed: different structural content, different digest.
        let c = World::build(43).fingerprint();
        assert_ne!(a, c);
    }

    #[test]
    fn world_builds_and_serves_24_countries() {
        let w = World::build(1);
        assert_eq!(w.measured_countries().len(), 24);
        assert_eq!(w.airalo.countries_served(), 24);
    }

    #[test]
    fn hr_esim_breaks_out_in_singapore_with_singtel_asn() {
        let mut w = World::build(1);
        let ep = w.attach_esim(Country::PAK);
        assert_eq!(ep.att.arch, RoamingArch::HomeRouted);
        assert_eq!(ep.att.breakout_city, City::Singapore);
        assert_eq!(w.breakout_asn(&ep), Some(well_known::SINGTEL));
        assert_eq!(
            ep.att.private_hops, 8,
            "the stable 8-hop PAK eSIM private path"
        );
    }

    #[test]
    fn physical_sim_is_native_at_home() {
        let mut w = World::build(1);
        let ep = w.attach_physical(Country::PAK);
        assert_eq!(ep.att.arch, RoamingArch::Native);
        assert_eq!(ep.att.breakout_city, City::Karachi);
        assert_eq!(w.breakout_asn(&ep), Some(well_known::PMCL));
        assert_eq!(
            ep.att.private_hops, 4,
            "the stable 4-hop PAK SIM private path"
        );
    }

    #[test]
    fn play_esims_alternate_between_packet_host_and_ovh() {
        let mut w = World::build(3);
        let mut asns = std::collections::HashSet::new();
        for _ in 0..12 {
            let ep = w.attach_esim(Country::DEU);
            assert_eq!(ep.att.arch, RoamingArch::IpxHubBreakout);
            asns.insert(w.breakout_asn(&ep).expect("registered breakout"));
        }
        assert!(asns.contains(&well_known::PACKET_HOST));
        assert!(asns.contains(&well_known::OVH));
    }

    #[test]
    fn saudi_esim_uses_packet_host_only() {
        let mut w = World::build(4);
        for _ in 0..6 {
            let ep = w.attach_esim(Country::SAU);
            assert_eq!(w.breakout_asn(&ep), Some(well_known::PACKET_HOST));
            assert_eq!(ep.att.breakout_city, City::Amsterdam, "Telna → AMS site");
        }
    }

    #[test]
    fn polkomtel_esims_pin_to_ashburn() {
        let mut w = World::build(5);
        let fra = w.attach_esim(Country::FRA);
        let uzb = w.attach_esim(Country::UZB);
        assert_eq!(fra.att.breakout_city, City::Ashburn);
        assert_eq!(uzb.att.breakout_city, City::Ashburn);
    }

    #[test]
    fn orange_esims_split_webbing_sites() {
        let mut w = World::build(6);
        let ita = w.attach_esim(Country::ITA);
        let usa = w.attach_esim(Country::USA);
        assert_eq!(ita.att.breakout_city, City::Amsterdam);
        assert_eq!(usa.att.breakout_city, City::Dallas);
        assert_eq!(w.breakout_asn(&ita), Some(well_known::WEBBING));
        assert_eq!(w.breakout_asn(&usa), Some(well_known::WEBBING));
    }

    #[test]
    fn native_esims_are_native() {
        let mut w = World::build(7);
        for c in [Country::KOR, Country::MDV, Country::THA] {
            let ep = w.attach_esim(c);
            assert_eq!(ep.att.arch, RoamingArch::Native, "{c}");
            assert_eq!(ep.att.dns, DnsMode::OperatorResolver);
            assert!(ep.att.tunnel_km < 100.0, "{c} native tunnel is metro-scale");
        }
    }

    #[test]
    fn ihbo_esims_use_google_doh() {
        let mut w = World::build(8);
        let ep = w.attach_esim(Country::GEO);
        assert_eq!(ep.att.dns, DnsMode::GooglePublic { doh: true });
    }

    #[test]
    fn roamer_policy_binds_esims_native_policy_binds_sims() {
        let mut w = World::build(9);
        let esim = w.attach_esim(Country::SAU);
        let sim = w.attach_physical(Country::SAU);
        assert!(sim.policy_down_mbps > 100.0, "STC natives are fast");
        assert!(esim.policy_down_mbps <= 15.0, "roamers are throttled");
    }

    #[test]
    fn hr_esim_inherits_bmno_video_throttle() {
        let mut w = World::build(10);
        let ep = w.attach_esim(Country::ARE);
        assert_eq!(ep.youtube_cap_mbps, Some(4.5), "Singtel's YouTube cap");
        let deu = w.attach_esim(Country::DEU);
        assert_eq!(deu.youtube_cap_mbps, None);
    }

    #[test]
    fn campaign_tables_match_paper_shapes() {
        let dev = World::device_campaign_specs();
        assert_eq!(dev.len(), 10);
        let total_web: u32 = World::web_campaign_specs()
            .iter()
            .map(|w| w.measurements)
            .sum();
        assert_eq!(
            total_web, 116,
            "Table 3 sums to ~117 completed measurements"
        );
        let deu = dev.iter().find(|d| d.country == Country::DEU).unwrap();
        assert_eq!(deu.spec.ookla, (154, 136));
        let esp = dev.iter().find(|d| d.country == Country::ESP).unwrap();
        assert_eq!(esp.spec.video, (0, 0), "Spain video excluded (§A.3)");
    }
}
