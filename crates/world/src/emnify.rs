//! The §4.3.1 methodology-validation scenario.
//!
//! The authors validated their breakout-geolocation inference against
//! **emnify**, a thick operator "whose internal setup we could confirm":
//! an emnify eSIM in London (O2 UK as v-MNO), 219 traceroutes to Google,
//! YouTube and Facebook, and the methodology's verdict — PGW provider
//! AS16509 (Amazon) geolocated in Dublin — matched the operator's ground
//! truth. This module builds that little world so the same check runs here.

use crate::topology::PublicInternet;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use roam_cellular::{BandwidthPolicy, ChannelSampler, Mno, MnoDirectory, Plmn, Rat, SimType};
use roam_geo::{City, Country};
use roam_ipx::{
    attach, AttachParams, DnsMode, IpAssignment, PeeringQuality, PgwProvider, PgwSelection,
    PgwSite, ProviderDirectory, RoamingArch,
};
use roam_measure::Endpoint;
use roam_netsim::registry::well_known;
use roam_netsim::{Ipv4Net, Network};

/// The built validation scenario.
#[derive(Debug)]
pub struct EmnifyScenario {
    /// The network.
    pub net: Network,
    /// The emnify eSIM endpoint in London.
    pub endpoint: Endpoint,
    /// Service targets for the traceroutes.
    pub internet: PublicInternet,
    /// Ground truth: the ASN the methodology must find.
    pub truth_asn: roam_netsim::Asn,
    /// Ground truth: the breakout city.
    pub truth_city: City,
}

impl EmnifyScenario {
    /// Build the scenario.
    #[must_use]
    pub fn build(seed: u64) -> EmnifyScenario {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut net = Network::new(seed ^ 0x656d_6e69); // "emni"

        let mut mnos = MnoDirectory::new();
        let o2 = mnos.add(Mno {
            name: "O2 UK".into(),
            country: Country::GBR,
            plmn: Plmn::new(234, 10, 2),
            asn: roam_netsim::Asn(5089),
            parent: None,
            native_policy: BandwidthPolicy::new(40.0, 15.0),
            roamer_policy: BandwidthPolicy::new(18.0, 8.0),
            youtube_cap_mbps: None,
            access_loss: 0.001,
        });
        let emnify = mnos.add(Mno {
            name: "emnify".into(),
            country: Country::DEU,
            plmn: Plmn::new(901, 43, 2),
            asn: roam_netsim::Asn(65010),
            parent: None,
            native_policy: BandwidthPolicy::new(20.0, 10.0),
            roamer_policy: BandwidthPolicy::new(20.0, 10.0),
            youtube_cap_mbps: None,
            access_loss: 0.001,
        });

        // emnify's breakout: AWS Dublin, AS16509.
        let aws_prefix = Ipv4Net::parse("54.170.10.0/24").expect("static prefix");
        net.registry_mut().register(
            aws_prefix,
            well_known::AMAZON,
            "Amazon.com, Inc.",
            City::Dublin,
        );
        let mut providers = ProviderDirectory::new();
        let aws = providers.add(PgwProvider {
            name: "Amazon.com, Inc.".into(),
            asn: well_known::AMAZON,
            sites: vec![PgwSite::new(City::Dublin, aws_prefix, 4)],
            selection: PgwSelection::Fixed(0),
            ip_assignment: IpAssignment::Pooled,
            private_hops: (4, 5),
            cgnat_icmp_responds: true,
        });

        let mut internet = PublicInternet::build(&mut net, &[City::London, City::Dublin], &mut rng);

        let params = AttachParams {
            session_id: 0,
            ue_city: City::London,
            v_mno: o2,
            b_mno: emnify,
            arch: RoamingArch::IpxHubBreakout,
            provider: aws,
            dns: DnsMode::GooglePublic { doh: false },
            rat: Rat::Lte,
            imsi: roam_cellular::Imsi::new(Plmn::new(901, 43, 2), 12_345),
        };
        let peering = PeeringQuality::with_default(1.7);
        let att = attach(&mut net, &providers, &mnos, &peering, &params, &mut rng);
        internet.connect_breakout(&mut net, &att, &[], &mut rng);

        let endpoint = Endpoint {
            att,
            sim_type: SimType::Esim,
            country: Country::GBR,
            label: "GBR emnify eSIM".into(),
            policy_down_mbps: 18.0,
            policy_up_mbps: 8.0,
            youtube_cap_mbps: None,
            loss: 0.001,
            channel: ChannelSampler::default(),
        };

        EmnifyScenario {
            net,
            endpoint,
            internet,
            truth_asn: well_known::AMAZON,
            truth_city: City::Dublin,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roam_measure::{mtr, Service};

    #[test]
    fn methodology_recovers_the_ground_truth() {
        let mut s = EmnifyScenario::build(11);
        for svc in [Service::Google, Service::YouTube, Service::Facebook] {
            let out = mtr(&mut s.net, &s.endpoint, &s.internet.targets, svc)
                .expect("edges exist in Dublin");
            assert!(out.analysis.reached, "{svc:?}");
            assert_eq!(out.analysis.pgw_asn, Some(s.truth_asn), "{svc:?}");
            assert_eq!(out.analysis.pgw_city, Some(s.truth_city), "{svc:?}");
        }
    }

    #[test]
    fn breakout_is_in_dublin() {
        let s = EmnifyScenario::build(12);
        assert_eq!(s.endpoint.att.breakout_city, City::Dublin);
        assert!(s.endpoint.att.tunnel_km < 600.0, "London→Dublin is short");
    }
}
