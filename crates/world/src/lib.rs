//! The calibrated world of the paper.
//!
//! Everything the two measurement campaigns ran against, assembled from the
//! substrate crates and calibrated to the paper's published observations:
//!
//! * [`operators`] — the operator census: Airalo's six roaming b-MNOs and
//!   three native partners (Table 2, §4.1), the v-MNOs of all 24 measured
//!   countries, and the local physical-SIM operators of the device
//!   campaign, each with calibrated bandwidth policies;
//! * [`gateways`] — the PGW providers: Singtel's home gateway (HR), Packet
//!   Host, OVH, Wireless Logic and Webbing (IHBO), plus every operator's
//!   own gateway for native/physical breakout, with address pools
//!   registered in the IP registry;
//! * [`topology`] — the public internet: per-city service-provider edges
//!   (Google/Facebook/YouTube/Ookla/fast.com/five CDNs), Google DNS anycast
//!   sites, CDN origins and an IX mesh;
//! * [`world`] — [`world::World`]: buys eSIMs from the Airalo-model
//!   marketplace, attaches SIMs/eSIMs, and exposes the campaign
//!   configuration tables (Tables 3 and 4 sample counts);
//! * [`emnify`] — the §4.3.1 methodology-validation scenario (emnify eSIM
//!   in London, O2 as v-MNO, breakout at AWS Dublin).

pub mod emnify;
pub mod gateways;
pub mod operators;
pub mod topology;
pub mod world;

pub use emnify::EmnifyScenario;
pub use gateways::Gateways;
pub use operators::Operators;
pub use topology::PublicInternet;
pub use world::{CountryPlan, DeviceCountrySpec, WebCountrySpec, World};
