//! The PGW providers of the Airalo ecosystem plus every operator's own
//! gateway, with address pools registered in the IP registry.
//!
//! Structural facts from Table 2 and §4.3.2:
//!
//! * **Singtel** breaks its roamers out at home in Singapore
//!   (`202.166.126.0/24`, 4 addresses, 6 core hops) — the HR configuration;
//! * **Packet Host** (AS54825) runs Amsterdam and Ashburn; Play and Telna
//!   sessions land in Amsterdam, Polkomtel's in Ashburn; its address pool
//!   is shared across b-MNOs and the core shows 6–7 private hops;
//! * **OVH** (AS16276) runs Lille (plus a Wattrelos prefix), partitions
//!   addresses per b-MNO, and exposes only 3 private hops;
//! * **Wireless Logic** (AS51320) breaks Telecom-Italia-provisioned eSIMs
//!   out in London;
//! * **Webbing** (AS393559) serves Orange-provisioned eSIMs from Amsterdam
//!   (the Italy eSIM) and Dallas (the USA eSIM);
//! * every native/physical operator has its **own gateway** at home, with
//!   private-hop depths calibrated to Fig. 7 (Jazz 2, dtac 2–8, LG U+ 5,
//!   U+ UMobile 5–7…).

use crate::operators::Operators;
use roam_cellular::MnoId;
use roam_geo::{City, Country};
use roam_ipx::{
    IpAssignment, PgwProvider, PgwProviderId, PgwSelection, PgwSite, ProviderDirectory,
};
use roam_netsim::registry::well_known;
use roam_netsim::{Asn, IpRegistry, Ipv4Net};
use std::collections::HashMap;

/// The provider directory plus the lookup maps the world needs.
#[derive(Debug)]
pub struct Gateways {
    /// All providers.
    pub dir: ProviderDirectory,
    /// Each operator's own gateway (native/physical/HR breakout).
    own: HashMap<u32, PgwProviderId>,
    /// Packet Host.
    pub packet_host: PgwProviderId,
    /// OVH SAS.
    pub ovh: PgwProviderId,
    /// Wireless Logic.
    pub wireless_logic: PgwProviderId,
    /// Webbing, Amsterdam breakout.
    pub webbing_eu: PgwProviderId,
    /// Webbing, Dallas breakout.
    pub webbing_us: PgwProviderId,
    /// National transit ASes crossed after some operators' own gateways
    /// (Jazz via LINKdotNET/Transworld, Movistar via Telefónica Global —
    /// the 3-ASN traceroutes of §4.3.3).
    transit: HashMap<u32, Vec<(String, Asn)>>,
}

impl Gateways {
    /// The gateway provider owned by `mno`.
    #[must_use]
    pub fn own_gateway(&self, mno: MnoId) -> PgwProviderId {
        *self
            .own
            .get(&mno.0)
            .unwrap_or_else(|| panic!("operator {} has no own gateway", mno.0))
    }

    /// Transit organisations between a provider's CG-NAT and the public
    /// peering fabric (usually empty).
    #[must_use]
    pub fn transit_of(&self, provider: PgwProviderId) -> &[(String, Asn)] {
        self.transit
            .get(&provider.0)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Build the provider directory, registering every breakout prefix in
    /// the registry.
    #[must_use]
    pub fn build(ops: &Operators, registry: &mut IpRegistry) -> Gateways {
        let mut dir = ProviderDirectory::new();
        let mut own = HashMap::new();
        let mut transit: HashMap<u32, Vec<(String, Asn)>> = HashMap::new();

        let play = ops.id("Play");
        let telna = ops.id("Telna Mobile");
        let polkomtel = ops.id("Polkomtel");

        // --- third-party IHBO providers ------------------------------------
        let ph_ams = Ipv4Net::parse("147.75.80.0/24").expect("static prefix");
        let ph_iad = Ipv4Net::parse("147.28.128.0/24").expect("static prefix");
        registry.register(
            ph_ams,
            well_known::PACKET_HOST,
            "Packet Host",
            City::Amsterdam,
        );
        registry.register(
            ph_iad,
            well_known::PACKET_HOST,
            "Packet Host",
            City::Ashburn,
        );
        let packet_host = dir.add(PgwProvider {
            name: "Packet Host".into(),
            asn: well_known::PACKET_HOST,
            sites: vec![
                PgwSite::new(City::Amsterdam, ph_ams, 4),
                PgwSite::new(City::Ashburn, ph_iad, 4),
            ],
            selection: PgwSelection::ByBmno(vec![(play, 0), (telna, 0), (polkomtel, 1)]),
            ip_assignment: IpAssignment::Pooled,
            private_hops: (6, 7),
            cgnat_icmp_responds: true,
        });

        let ovh_lille = Ipv4Net::parse("141.95.10.0/24").expect("static prefix");
        let ovh_wattrelos = Ipv4Net::parse("141.94.20.0/24").expect("static prefix");
        registry.register(ovh_lille, well_known::OVH, "OVH SAS", City::Lille);
        registry.register(ovh_wattrelos, well_known::OVH, "OVH SAS", City::Wattrelos);
        let ovh = dir.add(PgwProvider {
            name: "OVH SAS".into(),
            asn: well_known::OVH,
            sites: vec![
                PgwSite::new(City::Lille, ovh_lille, 6),
                PgwSite::new(City::Wattrelos, ovh_wattrelos, 1),
            ],
            // Mostly Lille; the Wattrelos PGW exists but no measured b-MNO
            // is steered there (§4.3.2 saw it once).
            selection: PgwSelection::ByBmno(vec![(play, 0), (telna, 0)]),
            ip_assignment: IpAssignment::ByBmno,
            private_hops: (3, 3),
            cgnat_icmp_responds: true,
        });

        let wl_lon = Ipv4Net::parse("45.86.162.0/24").expect("static prefix");
        registry.register(
            wl_lon,
            well_known::WIRELESS_LOGIC,
            "Wireless Logic",
            City::London,
        );
        let wireless_logic = dir.add(PgwProvider {
            name: "Wireless Logic".into(),
            asn: well_known::WIRELESS_LOGIC,
            sites: vec![PgwSite::new(City::London, wl_lon, 4)],
            selection: PgwSelection::Fixed(0),
            ip_assignment: IpAssignment::Pooled,
            private_hops: (4, 5),
            cgnat_icmp_responds: true,
        });

        let web_ams = Ipv4Net::parse("185.175.50.0/24").expect("static prefix");
        let web_dal = Ipv4Net::parse("12.54.30.0/24").expect("static prefix");
        registry.register(web_ams, well_known::WEBBING, "Webbing USA", City::Amsterdam);
        registry.register(web_dal, well_known::WEBBING, "Webbing USA", City::Dallas);
        let webbing_eu = dir.add(PgwProvider {
            name: "Webbing USA".into(),
            asn: well_known::WEBBING,
            sites: vec![PgwSite::new(City::Amsterdam, web_ams, 3)],
            selection: PgwSelection::Fixed(0),
            ip_assignment: IpAssignment::Pooled,
            private_hops: (4, 5),
            cgnat_icmp_responds: true,
        });
        let webbing_us = dir.add(PgwProvider {
            name: "Webbing USA".into(),
            asn: well_known::WEBBING,
            sites: vec![PgwSite::new(City::Dallas, web_dal, 3)],
            selection: PgwSelection::Fixed(0),
            ip_assignment: IpAssignment::Pooled,
            private_hops: (4, 5),
            cgnat_icmp_responds: true,
        });

        // --- own gateways for every operator --------------------------------
        // (operator, prefix third octet is assigned sequentially)
        let mut next_block: u8 = 1;
        for (id, mno) in ops.dir.iter() {
            let city = home_city(mno.country);
            let prefix =
                Ipv4Net::parse(&format!("198.18.{next_block}.0/24")).expect("generated prefix");
            next_block = next_block.checked_add(1).expect("fewer than 255 operators");
            registry.register(prefix, mno.asn, &mno.name, city);
            let (hops, pool) = own_gateway_shape(&mno.name);
            let silent = mno.name == "Ooredoo Qatar"; // §4.3.3's silent hops
            let pid = dir.add(PgwProvider {
                name: mno.name.clone(),
                asn: mno.asn,
                sites: vec![PgwSite::new(city, prefix, pool)],
                selection: PgwSelection::Fixed(0),
                ip_assignment: IpAssignment::Pooled,
                private_hops: hops,
                cgnat_icmp_responds: !silent,
            });
            own.insert(id.0, pid);
            match mno.name.as_str() {
                "Jazz" => {
                    transit.insert(
                        pid.0,
                        vec![
                            ("LINKdotNET".into(), well_known::LINKDOTNET),
                            ("Transworld".into(), well_known::TRANSWORLD),
                        ],
                    );
                }
                "Movistar" => {
                    transit.insert(
                        pid.0,
                        vec![("Telefonica Global".into(), well_known::TELEFONICA_GLOBAL)],
                    );
                }
                _ => {}
            }
        }

        // Singtel's own gateway uses its real prefix: replace the generated
        // one so HR classification sees AS45143 at 202.166.126.0/24.
        let singtel = ops.id("Singtel");
        let singtel_prefix = Ipv4Net::parse("202.166.126.0/24").expect("static prefix");
        registry.register(
            singtel_prefix,
            well_known::SINGTEL,
            "Singtel",
            City::Singapore,
        );
        let singtel_gw = dir.add(PgwProvider {
            name: "Singtel".into(),
            asn: well_known::SINGTEL,
            sites: vec![PgwSite::new(City::Singapore, singtel_prefix, 4)],
            selection: PgwSelection::Fixed(0),
            ip_assignment: IpAssignment::Pooled,
            private_hops: (6, 6),
            cgnat_icmp_responds: true,
        });
        own.insert(singtel.0, singtel_gw);

        Gateways {
            dir,
            own,
            packet_host,
            ovh,
            wireless_logic,
            webbing_eu,
            webbing_us,
            transit,
        }
    }
}

/// Private-core depth and address-pool size of an operator's own gateway,
/// calibrated to §4.3.2 where the paper reports them.
fn own_gateway_shape(name: &str) -> ((u8, u8), u64) {
    match name {
        "Jazz" => ((2, 2), 6),        // PAK SIM: stable 4 private hops total
        "dtac" => ((2, 8), 15),       // THA: 4–10 hops, 15 PGW IPs
        "LG U+" => ((5, 5), 16),      // KOR eSIM: constant 7 hops, 16 IPs
        "U+ UMobile" => ((5, 7), 35), // KOR SIM: 7–9 hops, 35 IPs
        "Singtel" => ((6, 6), 4),     // HR: 8 total, 4 IPs
        _ => ((2, 4), 8),
    }
}

/// Where an operator's home gateway sits.
fn home_city(country: Country) -> City {
    match country {
        Country::SGP => City::Singapore,
        Country::POL => City::Warsaw,
        other => City::sgw_city_for(other).unwrap_or_else(|| panic!("no gateway city for {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn build() -> (Operators, Gateways, IpRegistry) {
        let ops = Operators::build();
        let mut reg = IpRegistry::new();
        let gw = Gateways::build(&ops, &mut reg);
        (ops, gw, reg)
    }

    #[test]
    fn every_operator_has_an_own_gateway() {
        let (ops, gw, _) = build();
        for (id, mno) in ops.dir.iter() {
            let pid = gw.own_gateway(id);
            assert_eq!(gw.dir.get(pid).name, mno.name);
        }
    }

    #[test]
    fn singtel_gateway_uses_the_real_prefix() {
        let (ops, gw, reg) = build();
        let pid = gw.own_gateway(ops.id("Singtel"));
        let site = &gw.dir.get(pid).sites[0];
        assert!(site.prefix.contains("202.166.126.200".parse().unwrap()));
        assert_eq!(site.city, City::Singapore);
        let info = reg.lookup("202.166.126.5".parse().unwrap()).unwrap();
        assert_eq!(info.asn, well_known::SINGTEL);
    }

    #[test]
    fn packet_host_steering_matches_table2() {
        let (ops, gw, _) = build();
        let ph = gw.dir.get(gw.packet_host);
        let mut rng = SmallRng::seed_from_u64(1);
        // Play and Telna → Amsterdam; Polkomtel → Ashburn.
        assert_eq!(
            ph.sites[ph.select_site(ops.id("Play"), &mut rng)].city,
            City::Amsterdam
        );
        assert_eq!(
            ph.sites[ph.select_site(ops.id("Telna Mobile"), &mut rng)].city,
            City::Amsterdam
        );
        assert_eq!(
            ph.sites[ph.select_site(ops.id("Polkomtel"), &mut rng)].city,
            City::Ashburn
        );
    }

    #[test]
    fn ovh_is_shallow_and_packet_host_deep() {
        let (_, gw, _) = build();
        assert_eq!(gw.dir.get(gw.ovh).private_hops, (3, 3));
        assert_eq!(gw.dir.get(gw.packet_host).private_hops, (6, 7));
        assert_eq!(gw.dir.get(gw.ovh).ip_assignment, IpAssignment::ByBmno);
        assert_eq!(
            gw.dir.get(gw.packet_host).ip_assignment,
            IpAssignment::Pooled
        );
    }

    #[test]
    fn webbing_has_two_breakouts() {
        let (_, gw, _) = build();
        assert_eq!(gw.dir.get(gw.webbing_eu).sites[0].city, City::Amsterdam);
        assert_eq!(gw.dir.get(gw.webbing_us).sites[0].city, City::Dallas);
        assert_eq!(gw.dir.get(gw.webbing_eu).asn, gw.dir.get(gw.webbing_us).asn);
    }

    #[test]
    fn national_transit_chains() {
        let (ops, gw, _) = build();
        let jazz_gw = gw.own_gateway(ops.id("Jazz"));
        let chain = gw.transit_of(jazz_gw);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].1, well_known::LINKDOTNET);
        assert_eq!(chain[1].1, well_known::TRANSWORLD);
        let movistar_gw = gw.own_gateway(ops.id("Movistar"));
        assert_eq!(gw.transit_of(movistar_gw).len(), 1);
        let magti_gw = gw.own_gateway(ops.id("Magti"));
        assert!(gw.transit_of(magti_gw).is_empty());
    }

    #[test]
    fn qatari_gateway_is_icmp_silent() {
        let (ops, gw, _) = build();
        let pid = gw.own_gateway(ops.id("Ooredoo Qatar"));
        assert!(!gw.dir.get(pid).cgnat_icmp_responds);
    }

    #[test]
    fn calibrated_core_depths() {
        let (ops, gw, _) = build();
        assert_eq!(
            gw.dir.get(gw.own_gateway(ops.id("Jazz"))).private_hops,
            (2, 2)
        );
        assert_eq!(
            gw.dir.get(gw.own_gateway(ops.id("dtac"))).private_hops,
            (2, 8)
        );
        assert_eq!(
            gw.dir.get(gw.own_gateway(ops.id("LG U+"))).private_hops,
            (5, 5)
        );
        assert_eq!(
            gw.dir
                .get(gw.own_gateway(ops.id("U+ UMobile")))
                .private_hops,
            (5, 7)
        );
        assert_eq!(
            gw.dir.get(gw.own_gateway(ops.id("U+ UMobile"))).sites[0].pool,
            35
        );
    }
}
