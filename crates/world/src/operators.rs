//! The operator census.
//!
//! Policies are calibrated to §5.1's numbers where the paper gives them
//! (physical-SIM averages of 7.9 Mbps in Pakistan, 8.3 in the UAE, 13.6 in
//! Germany, 137.2 in Saudi Arabia; eSIM 5G means of 11.2 in Spain, 31.7 in
//! Georgia, 22.7 in Germany) and to plausible values elsewhere. The
//! structural facts come from Table 2 and §4.1: six b-MNOs provision the
//! 21 roaming eSIMs, three local operators provide native eSIMs, and the
//! Korean physical SIM is an MVNO riding LG U+.

use roam_cellular::{BandwidthPolicy, Mno, MnoDirectory, MnoId, Plmn};
use roam_geo::Country;
use roam_netsim::registry::well_known;
use roam_netsim::Asn;
use std::collections::HashMap;

/// The built operator directory with name-based lookup.
#[derive(Debug)]
pub struct Operators {
    /// The directory proper.
    pub dir: MnoDirectory,
    ids: HashMap<String, MnoId>,
}

impl Operators {
    /// Operator id by name. Panics on unknown names: the scenario tables
    /// are static, so a miss is a construction bug.
    #[must_use]
    pub fn id(&self, name: &str) -> MnoId {
        *self
            .ids
            .get(name)
            .unwrap_or_else(|| panic!("unknown operator {name}"))
    }

    /// Does the census contain `name`?
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.ids.contains_key(name)
    }

    /// Build the full census.
    #[must_use]
    pub fn build() -> Operators {
        let mut ops = Operators {
            dir: MnoDirectory::new(),
            ids: HashMap::new(),
        };

        // --- Airalo's six roaming b-MNOs (Table 2) ------------------------
        // (name, country, plmn, asn, native (d,u), roamer (d,u), yt cap, loss)
        ops.add(
            "Singtel",
            Country::SGP,
            (525, 1),
            well_known::SINGTEL.0,
            (100.0, 50.0),
            (12.0, 6.0),
            Some(4.5),
            0.002,
            None,
        );
        ops.add(
            "Play",
            Country::POL,
            (260, 6),
            12912,
            (80.0, 30.0),
            (15.0, 8.0),
            None,
            0.001,
            None,
        );
        ops.add(
            "Telna Mobile",
            Country::USA,
            (310, 240),
            395354,
            (60.0, 25.0),
            (15.0, 8.0),
            None,
            0.001,
            None,
        );
        ops.add(
            "Telecom Italia",
            Country::ITA,
            (222, 1),
            3269,
            (70.0, 30.0),
            (14.0, 7.0),
            None,
            0.001,
            None,
        );
        ops.add(
            "Orange",
            Country::FRA,
            (208, 1),
            3215,
            (90.0, 40.0),
            (16.0, 8.0),
            None,
            0.001,
            None,
        );
        ops.add(
            "Polkomtel",
            Country::POL,
            (260, 1),
            8374,
            (70.0, 25.0),
            (14.0, 7.0),
            None,
            0.001,
            None,
        );

        // --- native eSIM partners (§4.1) ----------------------------------
        ops.add(
            "LG U+",
            Country::KOR,
            (450, 6),
            well_known::LG_UPLUS.0,
            (60.0, 25.0),
            (20.0, 10.0),
            None,
            0.0005,
            None,
        );
        ops.add(
            "Ooredoo Maldives",
            Country::MDV,
            (472, 1),
            7642,
            (28.0, 10.0),
            (10.0, 5.0),
            None,
            0.002,
            None,
        );
        ops.add(
            "dtac",
            Country::THA,
            (520, 5),
            well_known::DTAC.0,
            (25.0, 10.0),
            (12.0, 6.0),
            None,
            0.002,
            None,
        );

        // --- device-campaign v-MNOs / physical-SIM operators --------------
        ops.add(
            "Etisalat",
            Country::ARE,
            (424, 2),
            8966,
            (9.0, 6.0),
            (7.5, 5.0),
            Some(4.5),
            0.002,
            None,
        );
        ops.add(
            "Jazz",
            Country::PAK,
            (410, 1),
            well_known::PMCL.0,
            (8.0, 4.0),
            (6.5, 2.0),
            Some(4.5),
            0.004,
            None,
        );
        ops.add(
            "Magti",
            Country::GEO,
            (282, 2),
            16010,
            (45.0, 12.0),
            (33.0, 3.0),
            None,
            0.001,
            None,
        );
        ops.add(
            "Vodafone DE",
            Country::DEU,
            (262, 2),
            3209,
            (25.0, 10.0),
            (24.0, 10.0),
            None,
            0.001,
            None,
        );
        ops.add(
            "Movistar",
            Country::ESP,
            (214, 7),
            well_known::TELEFONICA.0,
            (30.0, 15.0),
            (11.5, 9.0),
            None,
            0.001,
            None,
        );
        ops.add(
            "Ooredoo Qatar",
            Country::QAT,
            (427, 1),
            8781,
            (70.0, 25.0),
            (18.0, 8.0),
            None,
            0.001,
            None,
        );
        ops.add(
            "STC",
            Country::SAU,
            (420, 1),
            25019,
            (140.0, 30.0),
            (15.0, 8.0),
            None,
            0.001,
            None,
        );
        ops.add(
            "UK Partner",
            Country::GBR,
            (234, 30),
            12576,
            (35.0, 12.0),
            (20.0, 8.0),
            None,
            0.001,
            None,
        );
        // The Korean physical SIM: an MVNO riding LG U+, subject to the
        // parent's traffic differentiation (§4.3.2, §5.1).
        let parent = ops.id("LG U+");
        ops.add(
            "U+ UMobile",
            Country::KOR,
            (450, 11),
            well_known::LG_UPLUS.0,
            (35.0, 15.0),
            (15.0, 8.0),
            None,
            0.001,
            Some(parent),
        );

        // --- v-MNOs for the web-only countries -----------------------------
        for (name, country, plmn, asn) in [
            ("TIM Italy", Country::ITA, (222, 88), 1267u32),
            ("China Mobile", Country::CHN, (460, 0), 9808),
            ("Moldcell", Country::MDA, (259, 2), 31252),
            ("Orange FR Visited", Country::FRA, (208, 2), 5511),
            ("Azercell", Country::AZE, (400, 1), 28787),
            ("Maxis", Country::MYS, (502, 12), 9534),
            ("Safaricom", Country::KEN, (639, 2), 33771),
            ("T-Mobile US", Country::USA, (310, 260), 21928),
            ("Elisa", Country::FIN, (244, 5), 719),
            ("Vodafone EG", Country::EGY, (602, 2), 24863),
            ("Turkcell", Country::TUR, (286, 1), 16135),
            ("Beeline UZ", Country::UZB, (434, 4), 41202),
            ("NTT Docomo", Country::JPN, (440, 10), 9605),
        ] {
            ops.add(
                name,
                country,
                plmn,
                asn,
                (45.0, 15.0),
                (32.0, 12.0),
                None,
                0.002,
                None,
            );
        }

        ops
    }

    #[allow(clippy::too_many_arguments)]
    fn add(
        &mut self,
        name: &str,
        country: Country,
        plmn: (u16, u16),
        asn: u32,
        native: (f64, f64),
        roamer: (f64, f64),
        youtube_cap: Option<f64>,
        loss: f64,
        parent: Option<MnoId>,
    ) {
        let mnc_digits = if plmn.1 >= 100 { 3 } else { 2 };
        let id = self.dir.add(Mno {
            name: name.to_string(),
            country,
            plmn: Plmn::new(plmn.0, plmn.1, mnc_digits),
            asn: Asn(asn),
            parent,
            native_policy: BandwidthPolicy::new(native.0, native.1),
            roamer_policy: BandwidthPolicy::new(roamer.0, roamer.1),
            youtube_cap_mbps: youtube_cap,
            access_loss: loss,
        });
        self.ids.insert(name.to_string(), id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roam_cellular::SubscriberClass;

    #[test]
    fn census_contains_the_table2_bmnos() {
        let ops = Operators::build();
        for name in [
            "Singtel",
            "Play",
            "Telna Mobile",
            "Telecom Italia",
            "Orange",
            "Polkomtel",
        ] {
            assert!(ops.contains(name), "missing b-MNO {name}");
        }
    }

    #[test]
    fn native_partners_are_local() {
        let ops = Operators::build();
        assert_eq!(ops.dir.get(ops.id("LG U+")).country, Country::KOR);
        assert_eq!(
            ops.dir.get(ops.id("Ooredoo Maldives")).country,
            Country::MDV
        );
        assert_eq!(ops.dir.get(ops.id("dtac")).country, Country::THA);
    }

    #[test]
    fn korean_physical_sim_is_an_mvno_on_lg_uplus() {
        let ops = Operators::build();
        let mvno = ops.dir.get(ops.id("U+ UMobile"));
        assert_eq!(mvno.parent, Some(ops.id("LG U+")));
        assert!(mvno.is_mvno());
    }

    #[test]
    fn paper_calibrated_policies() {
        let ops = Operators::build();
        // Saudi natives are fast, Pakistani natives slow (§5.1).
        let stc = ops.dir.get(ops.id("STC"));
        let jazz = ops.dir.get(ops.id("Jazz"));
        assert!(stc.policy(SubscriberClass::Native).down_mbps > 100.0);
        assert!(jazz.policy(SubscriberClass::Native).down_mbps < 10.0);
        // Roamer uplink crushed only in PAK and GEO.
        let magti = ops.dir.get(ops.id("Magti"));
        assert!(jazz.policy(SubscriberClass::InboundRoamer).up_mbps <= 2.0);
        assert!(magti.policy(SubscriberClass::InboundRoamer).up_mbps <= 3.0);
        let vodafone = ops.dir.get(ops.id("Vodafone DE"));
        assert!(
            vodafone.policy(SubscriberClass::InboundRoamer).up_mbps
                >= vodafone.policy(SubscriberClass::Native).up_mbps * 0.9
        );
        // Singtel throttles YouTube (the §5.2 conjecture).
        assert!(ops.dir.get(ops.id("Singtel")).youtube_cap_mbps.is_some());
    }

    #[test]
    #[should_panic(expected = "unknown operator")]
    fn unknown_name_panics() {
        let _ = Operators::build().id("Nonexistent Telecom");
    }

    #[test]
    fn all_plmns_are_unique() {
        // MnoDirectory::add asserts this; building is the test.
        let ops = Operators::build();
        assert!(ops.dir.len() >= 30);
    }
}
