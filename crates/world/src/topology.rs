//! The public internet: per-city service edges, DNS anycast, CDN origins
//! and an IX mesh.
//!
//! §4.3.3's takeaway drives the shape: "PGW providers generally have direct
//! peering arrangements with global SPs" and "popular providers like Google
//! and Facebook place edge nodes close to PGWs". So every city that can
//! host a breakout gets a full set of SP edges, and
//! [`PublicInternet::connect_breakout`] peers a session's CG-NAT straight
//! into them (via a national transit chain for the operators whose
//! traceroutes show extra ASes). An IX mesh carries everything else —
//! distant DNS resolvers, CDN origin fetches, cross-city paths.

use rand::rngs::SmallRng;
use rand::Rng;
use roam_geo::City;
use roam_ipx::Attachment;
use roam_measure::{CdnProvider, Service, ServiceTargets};
use roam_netsim::link::{LatencyModel, LinkClass};
use roam_netsim::registry::well_known;
use roam_netsim::{Asn, Ipv4Net, Network, NodeId, NodeKind};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Cities hosting a Google Public DNS anycast site in the simulation —
/// chosen so each breakout region has a same-country resolver except the
/// Dallas PGW, whose nearest sites are Fort Worth and Tulsa (§5.1).
const GOOGLE_DNS_CITIES: [City; 10] = [
    City::Amsterdam,
    City::Paris,
    City::London,
    City::Ashburn,
    City::FortWorth,
    City::Tulsa,
    City::Frankfurt,
    City::Singapore,
    City::Seoul,
    City::Bangkok,
];

/// The built public internet.
#[derive(Debug)]
pub struct PublicInternet {
    /// Service-node registry handed to the measurement clients.
    pub targets: ServiceTargets,
    ix: HashMap<City, NodeId>,
    city_index: HashMap<City, u8>,
}

impl PublicInternet {
    /// Build infrastructure in each listed city (idempotent per city).
    pub fn build(net: &mut Network, cities: &[City], rng: &mut SmallRng) -> PublicInternet {
        let mut pi = PublicInternet {
            targets: ServiceTargets::new(),
            ix: HashMap::new(),
            city_index: HashMap::new(),
        };
        for &c in cities {
            pi.ensure_city(net, c, rng);
        }
        for &c in GOOGLE_DNS_CITIES.iter() {
            pi.ensure_city(net, c, rng);
        }
        pi
    }

    /// The IX node of a city, if built.
    #[must_use]
    pub fn ix(&self, city: City) -> Option<NodeId> {
        self.ix.get(&city).copied()
    }

    /// Number of cities with infrastructure.
    #[must_use]
    pub fn city_count(&self) -> usize {
        self.ix.len()
    }

    /// Create a city's infrastructure if missing: IX (meshed with all
    /// existing IXs), SP edges, speedtest servers, CDN edges, and — where
    /// designated — a Google DNS site. Ashburn additionally hosts the CDN
    /// origins.
    pub fn ensure_city(&mut self, net: &mut Network, city: City, rng: &mut SmallRng) {
        if self.ix.contains_key(&city) {
            return;
        }
        let i = u8::try_from(self.city_index.len()).expect("fewer than 256 infra cities");
        self.city_index.insert(city, i);

        // --- IX, meshed to every existing IX -------------------------------
        let ix = net.add_node(
            &format!("ix-{city}"),
            NodeKind::Router,
            city,
            Ipv4Addr::new(80, 81, i, 1),
        );
        net.registry_mut().register(
            Ipv4Net::new(Ipv4Addr::new(80, 81, i, 0), 24),
            Asn(1299),
            "Arelion transit",
            city,
        );
        // Mesh in node-id order: link indices must not depend on HashMap
        // iteration order, or the index-keyed fault calendars would pick
        // different links to flap from one process to the next.
        let mut peers: Vec<NodeId> = self.ix.values().copied().collect();
        peers.sort_unstable_by_key(|n| n.0);
        for peer in peers {
            let model = LatencyModel::from_geo(
                net.node(ix).city.location(),
                net.node(peer).city.location(),
                LinkClass::Backbone,
            )
            .with_spikes(0.05, 50.0);
            net.link_with(ix, peer, LinkClass::Backbone, model, 0.0005);
        }
        self.ix.insert(city, ix);

        // --- traceroute-able SPs: border → internals → front ---------------
        let sps: [(Service, [u8; 2], Asn, &str); 3] = [
            (Service::Google, [142, 250], well_known::GOOGLE, "Google"),
            (
                Service::Facebook,
                [157, 240],
                well_known::FACEBOOK,
                "Facebook",
            ),
            (
                Service::YouTube,
                [208, 65],
                well_known::GOOGLE,
                "Google (YouTube)",
            ),
        ];
        for (service, octets, asn, org) in sps {
            let prefix = Ipv4Net::new(Ipv4Addr::new(octets[0], octets[1], i, 0), 24);
            net.registry_mut().register(prefix, asn, org, city);
            let border = net.add_node(
                &format!("{org}-border-{city}"),
                NodeKind::Router,
                city,
                Ipv4Addr::new(octets[0], octets[1], i, 1),
            );
            net.link_with(
                border,
                ix,
                LinkClass::Metro,
                LatencyModel::fixed(0.5, 0.2).with_spikes(0.015, 180.0),
                0.0,
            );
            // SP-internal routing depth varies per (city, SP): the source
            // of the public-path-length variance of Fig. 10.
            let depth = rng.gen_range(0..=2u8);
            let mut prev = border;
            for d in 0..depth {
                let r = net.add_node(
                    &format!("{org}-core{d}-{city}"),
                    NodeKind::Router,
                    city,
                    Ipv4Addr::new(octets[0], octets[1], i, 2 + d),
                );
                net.link_with(
                    prev,
                    r,
                    LinkClass::Metro,
                    LatencyModel::fixed(0.4, 0.2).with_spikes(0.01, 120.0),
                    0.0,
                );
                prev = r;
            }
            let front = net.add_node(
                &format!("{org}-front-{city}"),
                NodeKind::SpEdge,
                city,
                Ipv4Addr::new(octets[0], octets[1], i, 100),
            );
            net.link_with(
                prev,
                front,
                LinkClass::Metro,
                LatencyModel::fixed(0.4, 0.2).with_spikes(0.01, 120.0),
                0.0,
            );
            self.targets.add(service, front);
        }

        // --- single-node services ------------------------------------------
        let singles: [(Service, [u8; 2], Asn, &str); 7] = [
            (Service::Ookla, [151, 101], Asn(21837), "Ookla host"),
            (Service::FastCom, [45, 57], Asn(2906), "Netflix"),
            (
                Service::Cdn(CdnProvider::Cloudflare),
                [104, 16],
                well_known::CLOUDFLARE,
                "Cloudflare",
            ),
            (
                Service::Cdn(CdnProvider::GoogleCdn),
                [172, 217],
                well_known::GOOGLE,
                "Google CDN",
            ),
            (
                Service::Cdn(CdnProvider::JsDelivr),
                [151, 102],
                well_known::FASTLY,
                "Fastly",
            ),
            (
                Service::Cdn(CdnProvider::JQuery),
                [69, 16],
                Asn(12989),
                "StackPath",
            ),
            (
                Service::Cdn(CdnProvider::MicrosoftAjax),
                [13, 107],
                well_known::MICROSOFT,
                "Microsoft",
            ),
        ];
        for (service, octets, asn, org) in singles {
            let prefix = Ipv4Net::new(Ipv4Addr::new(octets[0], octets[1], i, 0), 24);
            net.registry_mut().register(prefix, asn, org, city);
            let node = net.add_node(
                &format!("{org}-{city}"),
                NodeKind::SpEdge,
                city,
                Ipv4Addr::new(octets[0], octets[1], i, 10),
            );
            net.link_with(
                node,
                ix,
                LinkClass::Metro,
                LatencyModel::fixed(0.6, 0.3).with_spikes(0.015, 180.0),
                0.0,
            );
            self.targets.add(service, node);
        }

        // --- Google DNS anycast sites --------------------------------------
        if GOOGLE_DNS_CITIES.contains(&city) {
            let prefix = Ipv4Net::new(Ipv4Addr::new(74, 125, i, 0), 24);
            net.registry_mut()
                .register(prefix, well_known::GOOGLE, "Google DNS", city);
            let dns = net.add_node(
                &format!("gdns-{city}"),
                NodeKind::DnsResolver,
                city,
                Ipv4Addr::new(74, 125, i, 10),
            );
            net.link_with(
                dns,
                ix,
                LinkClass::Metro,
                LatencyModel::fixed(0.5, 0.2),
                0.0,
            );
            self.targets.add_google_dns(dns);
        }

        // --- CDN origins live in Ashburn ------------------------------------
        if city == City::Ashburn {
            for (k, provider) in CdnProvider::ALL.iter().enumerate() {
                let origin = net.add_node(
                    &format!("{provider}-origin"),
                    NodeKind::SpEdge,
                    city,
                    Ipv4Addr::new(198, 41, 200, 10 + k as u8),
                );
                net.link_with(
                    origin,
                    ix,
                    LinkClass::Metro,
                    LatencyModel::fixed(0.8, 0.3),
                    0.0,
                );
                self.targets.set_origin(*provider, origin);
            }
            net.registry_mut().register(
                Ipv4Net::parse("198.41.200.0/24").expect("static prefix"),
                Asn(13335),
                "CDN origins",
                city,
            );
        }
    }

    /// Wire a fresh attachment's CG-NAT into the public internet of its
    /// breakout city: direct peering to the SP borders (through the
    /// operator's national transit chain, when it has one) plus an IX
    /// uplink for everything else. Also registers the session's operator
    /// DNS resolver location if one is supplied.
    pub fn connect_breakout(
        &mut self,
        net: &mut Network,
        att: &Attachment,
        transit: &[(String, Asn)],
        rng: &mut SmallRng,
    ) {
        self.ensure_city(net, att.breakout_city, rng);
        let city = att.breakout_city;
        let ix = self.ix[&city];

        // Optional national transit chain between the CG-NAT and the fabric.
        let mut exit = att.cgnat;
        for (j, (org, asn)) in transit.iter().enumerate() {
            let i = self.city_index[&city];
            let ip = Ipv4Addr::new(62, 40, i, 10 + j as u8 + (att.teid % 40) as u8);
            net.registry_mut()
                .register(Ipv4Net::new(ip, 32), *asn, org, city);
            let node = net.add_node(
                &format!("{org}-transit-{}", att.teid),
                NodeKind::Router,
                city,
                ip,
            );
            net.link_with(
                exit,
                node,
                LinkClass::Metro,
                LatencyModel::fixed(0.7, 0.4),
                0.0,
            );
            exit = node;
        }

        // Direct peering with the SP borders in this city: Dijkstra then
        // prefers these two-AS paths for the traceroute targets, giving the
        // Fig. 6 "two unique ASNs" shape.
        for border in self.borders_of(net, city) {
            net.link_with(
                exit,
                border,
                LinkClass::Peering,
                LatencyModel::fixed(0.9, 0.4).with_spikes(0.02, 220.0),
                0.0,
            );
        }
        // IX uplink for everything else (DNS, distant services, origins).
        net.link_with(
            exit,
            ix,
            LinkClass::Metro,
            LatencyModel::fixed(0.8, 0.4).with_spikes(0.02, 180.0),
            0.0,
        );
    }

    /// The SP border routers of a city (addresses `x.y.i.1` of the three
    /// traceroute-able SPs).
    fn borders_of(&self, net: &Network, city: City) -> Vec<NodeId> {
        let i = self.city_index[&city];
        let expected: [Ipv4Addr; 3] = [
            Ipv4Addr::new(142, 250, i, 1),
            Ipv4Addr::new(157, 240, i, 1),
            Ipv4Addr::new(208, 65, i, 1),
        ];
        (0..net.node_count() as u32)
            .map(NodeId)
            .filter(|&n| expected.contains(&net.node(n).ip))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn cities_get_full_service_sets() {
        let mut net = Network::new(7);
        let mut rng = SmallRng::seed_from_u64(7);
        let pi = PublicInternet::build(&mut net, &[City::Amsterdam, City::Singapore], &mut rng);
        for svc in [
            Service::Google,
            Service::Facebook,
            Service::YouTube,
            Service::Ookla,
            Service::FastCom,
        ] {
            assert!(
                pi.targets.nearest(&net, svc, City::Amsterdam).is_some(),
                "{svc:?}"
            );
        }
        for p in CdnProvider::ALL {
            assert!(pi
                .targets
                .nearest(&net, Service::Cdn(p), City::Singapore)
                .is_some());
            assert!(
                pi.targets.origin(p).is_some(),
                "origins built with GOOGLE_DNS_CITIES"
            );
        }
        assert!(pi.ix(City::Amsterdam).is_some());
        assert!(pi.ix(City::Berlin).is_none());
    }

    #[test]
    fn ensure_city_is_idempotent() {
        let mut net = Network::new(7);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut pi = PublicInternet::build(&mut net, &[City::London], &mut rng);
        let n = net.node_count();
        pi.ensure_city(&mut net, City::London, &mut rng);
        assert_eq!(net.node_count(), n);
    }

    #[test]
    fn ix_mesh_routes_between_cities() {
        let mut net = Network::new(7);
        let mut rng = SmallRng::seed_from_u64(7);
        let pi = PublicInternet::build(&mut net, &[City::Amsterdam, City::Singapore], &mut rng);
        let a = pi.ix(City::Amsterdam).unwrap();
        let s = pi.ix(City::Singapore).unwrap();
        let rtt = net.rtt_ms(a, s).expect("meshed");
        // Amsterdam–Singapore ~10,500 km × 1.35 circuitousness ≈ 70 ms
        // one-way.
        assert!((120.0..220.0).contains(&rtt), "AMS–SIN RTT {rtt}");
    }

    #[test]
    fn dns_sites_only_in_designated_cities() {
        let mut net = Network::new(7);
        let mut rng = SmallRng::seed_from_u64(7);
        let pi = PublicInternet::build(&mut net, &[City::Berlin], &mut rng);
        let ordered = pi.targets.google_dns_by_distance(&net, City::Dallas);
        assert!(!ordered.is_empty());
        // Nearest two to a Dallas breakout are Fort Worth and Tulsa.
        let first = net.node(ordered[0]).city;
        let second = net.node(ordered[1]).city;
        assert_eq!(first, City::FortWorth);
        assert_eq!(second, City::Tulsa);
    }

    #[test]
    fn registry_knows_sp_prefixes() {
        let mut net = Network::new(7);
        let mut rng = SmallRng::seed_from_u64(7);
        let pi = PublicInternet::build(&mut net, &[City::Amsterdam], &mut rng);
        let google = pi
            .targets
            .nearest(&net, Service::Google, City::Amsterdam)
            .unwrap();
        let ip = net.node(google).ip;
        let info = net.registry().lookup(ip).expect("registered");
        assert_eq!(info.asn, well_known::GOOGLE);
        assert_eq!(info.city, City::Amsterdam);
    }
}
