//! roam-codec: the wire layer for distributed fleet execution.
//!
//! A dependency-free, versioned, **self-describing** binary codec. Worker
//! processes stream partial fleet state back to the planner over pipes,
//! and shards checkpoint the same state to disk; both sides of both
//! channels speak this format. Three properties drive the design:
//!
//! * **Self-describing fields.** Every value carries a `(tag, wire type)`
//!   header, so a decoder can skip fields it does not know — new fields
//!   can be added without breaking old readers, and a reader always knows
//!   how many bytes to skip without understanding the payload.
//! * **Length-prefixed sections.** Aggregates nest as sections (a tagged,
//!   length-prefixed run of fields), so a whole sub-object can be skipped,
//!   sliced or handed to a sub-decoder without a schema.
//! * **Integrity-hashed frames.** Everything that crosses a process or
//!   filesystem boundary travels inside a [`Frame`]: magic, format
//!   version, a caller-chosen kind, the payload length and an FNV-1a
//!   integrity hash. A truncated pipe or a torn checkpoint file fails
//!   loudly as [`CodecError::BadHash`]/[`CodecError::Truncated`], never as
//!   silently-wrong state.
//!
//! Scalars are varints (LEB128), floats are IEEE-754 bit patterns (so
//! NaN payloads and signed zeros round-trip exactly — a hard requirement
//! for byte-identical resumed reports), and `i128` rides zigzag varints
//! (the fleet's exact fixed-point sums).
//!
//! The encoding intentionally has no reflection, no derive and no
//! external dependencies: every aggregate writes itself with
//! [`Encoder`] and reads itself with [`Decoder`], field by tagged field.

use std::fmt;

/// Wire-format version stamped into every [`Frame`]. Bump when the field
/// encoding itself (not a payload schema) changes shape.
pub const WIRE_VERSION: u16 = 1;

/// Frame magic: `RMCD` (RoaM CoDec).
pub const MAGIC: [u8; 4] = *b"RMCD";

/// Everything that can go wrong while decoding. Typed so callers can
/// distinguish a stale artifact (version) from a torn one (hash,
/// truncation) from a schema drift (missing/unknown).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended mid-value.
    Truncated,
    /// The frame does not start with [`MAGIC`].
    BadMagic,
    /// The frame's integrity hash does not match its contents.
    BadHash {
        /// Hash stored in the frame.
        stored: u64,
        /// Hash recomputed over the received bytes.
        computed: u64,
    },
    /// The frame's wire version is not one this build understands.
    UnsupportedVersion {
        /// Version found in the frame.
        found: u16,
        /// Version this build speaks.
        supported: u16,
    },
    /// A field header named a wire type this build does not know.
    UnknownWireType(u8),
    /// A field held a different wire type than the schema expects.
    WrongType {
        /// The field's tag.
        tag: u32,
        /// What the caller expected (`"u64"`, `"f64"`, `"bytes"`…).
        expected: &'static str,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A required field was absent from its section.
    MissingField(&'static str),
    /// An enum discriminant (or similar constrained value) was out of
    /// range for the named schema element.
    BadValue(&'static str),
    /// A varint ran longer than its widest legal encoding.
    Overlong,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated mid-value"),
            CodecError::BadMagic => write!(f, "bad frame magic (not a roam-codec frame)"),
            CodecError::BadHash { stored, computed } => write!(
                f,
                "integrity hash mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            CodecError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported wire version {found} (this build speaks {supported})"
            ),
            CodecError::UnknownWireType(w) => write!(f, "unknown wire type {w}"),
            CodecError::WrongType { tag, expected } => {
                write!(f, "field {tag}: expected {expected}")
            }
            CodecError::BadUtf8 => write!(f, "string field held invalid UTF-8"),
            CodecError::MissingField(name) => write!(f, "required field missing: {name}"),
            CodecError::BadValue(what) => write!(f, "value out of range for {what}"),
            CodecError::Overlong => write!(f, "overlong varint"),
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a 64-bit over `bytes` — the frame integrity hash and the seed of
/// every content fingerprint in the workspace. Stable, dependency-free,
/// and byte-order independent by construction.
#[must_use]
pub fn hash64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fold `v` into an FNV-1a state `h` (little-endian bytes) — the
/// incremental flavour of [`hash64`] for fingerprints built from parts.
#[must_use]
pub fn hash64_fold(h: u64, v: u64) -> u64 {
    let mut h = h;
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wire types, 3 bits of every field header.
const WIRE_VARINT: u8 = 0;
const WIRE_F64: u8 = 1;
const WIRE_BYTES: u8 = 2;
const WIRE_SECTION: u8 = 3;
const WIRE_I128: u8 = 4;

fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn write_varint128(buf: &mut Vec<u8>, mut v: u128) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Zigzag: interleave negatives so small magnitudes stay short.
fn zigzag128(v: i128) -> u128 {
    ((v << 1) ^ (v >> 127)) as u128
}

fn unzigzag128(v: u128) -> i128 {
    ((v >> 1) as i128) ^ -((v & 1) as i128)
}

/// Append-only field writer. Tags are caller-chosen small integers; the
/// same tag may repeat (repeated fields decode in writing order).
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// An empty encoder with a pre-sized buffer.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    fn header(&mut self, tag: u32, wire: u8) {
        write_varint(&mut self.buf, (u64::from(tag) << 3) | u64::from(wire));
    }

    /// Write an unsigned integer field.
    pub fn u64(&mut self, tag: u32, v: u64) {
        self.header(tag, WIRE_VARINT);
        write_varint(&mut self.buf, v);
    }

    /// Write a signed 128-bit integer field (zigzag varint) — the fleet's
    /// exact fixed-point sums.
    pub fn i128(&mut self, tag: u32, v: i128) {
        self.header(tag, WIRE_I128);
        write_varint128(&mut self.buf, zigzag128(v));
    }

    /// Write a float field as its exact IEEE-754 bit pattern. NaN
    /// payloads, infinities and signed zeros round-trip bit-for-bit.
    pub fn f64(&mut self, tag: u32, v: f64) {
        self.header(tag, WIRE_F64);
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Write a raw bytes field (length-prefixed).
    pub fn bytes(&mut self, tag: u32, b: &[u8]) {
        self.header(tag, WIRE_BYTES);
        write_varint(&mut self.buf, b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Write a string field (UTF-8 bytes, length-prefixed).
    pub fn str(&mut self, tag: u32, s: &str) {
        self.bytes(tag, s.as_bytes());
    }

    /// Write a nested section: a tagged, length-prefixed run of fields
    /// produced by `f` into a fresh encoder.
    pub fn section(&mut self, tag: u32, f: impl FnOnce(&mut Encoder)) {
        let mut inner = Encoder::new();
        f(&mut inner);
        self.header(tag, WIRE_SECTION);
        write_varint(&mut self.buf, inner.buf.len() as u64);
        self.buf.extend_from_slice(&inner.buf);
    }

    /// The encoded fields, without any frame around them.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Wrap the encoded fields in an integrity-hashed [`Frame`] of the
    /// given kind and payload version.
    #[must_use]
    pub fn into_frame(self, kind: u16, version: u16) -> Vec<u8> {
        Frame::seal(kind, version, &self.buf)
    }
}

/// A decoded field value. Sections decode lazily — [`Value::Section`]
/// hands back a sub-decoder over the section's bytes.
#[derive(Debug)]
pub enum Value<'a> {
    /// An unsigned varint field.
    U64(u64),
    /// A zigzag 128-bit integer field.
    I128(i128),
    /// A float field (exact bit pattern).
    F64(f64),
    /// A raw bytes field.
    Bytes(&'a [u8]),
    /// A nested section.
    Section(Decoder<'a>),
}

impl<'a> Value<'a> {
    /// The value as `u64`, or [`CodecError::WrongType`].
    pub fn as_u64(&self, tag: u32) -> Result<u64, CodecError> {
        match self {
            Value::U64(v) => Ok(*v),
            _ => Err(CodecError::WrongType {
                tag,
                expected: "u64",
            }),
        }
    }

    /// The value as `i128`, or [`CodecError::WrongType`].
    pub fn as_i128(&self, tag: u32) -> Result<i128, CodecError> {
        match self {
            Value::I128(v) => Ok(*v),
            _ => Err(CodecError::WrongType {
                tag,
                expected: "i128",
            }),
        }
    }

    /// The value as `f64`, or [`CodecError::WrongType`].
    pub fn as_f64(&self, tag: u32) -> Result<f64, CodecError> {
        match self {
            Value::F64(v) => Ok(*v),
            _ => Err(CodecError::WrongType {
                tag,
                expected: "f64",
            }),
        }
    }

    /// The value as raw bytes, or [`CodecError::WrongType`].
    pub fn as_bytes(&self, tag: u32) -> Result<&'a [u8], CodecError> {
        match self {
            Value::Bytes(b) => Ok(b),
            _ => Err(CodecError::WrongType {
                tag,
                expected: "bytes",
            }),
        }
    }

    /// The value as UTF-8 text, or a type/encoding error.
    pub fn as_str(&self, tag: u32) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.as_bytes(tag)?).map_err(|_| CodecError::BadUtf8)
    }

    /// The value as a sub-decoder, or [`CodecError::WrongType`].
    pub fn as_section(self, tag: u32) -> Result<Decoder<'a>, CodecError> {
        match self {
            Value::Section(d) => Ok(d),
            _ => Err(CodecError::WrongType {
                tag,
                expected: "section",
            }),
        }
    }
}

/// Forward-only field reader over an encoded byte run.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over raw (frameless) field bytes.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Have all fields been read?
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn read_varint(&mut self) -> Result<u64, CodecError> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = *self.buf.get(self.pos).ok_or(CodecError::Truncated)?;
            self.pos += 1;
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(CodecError::Overlong)
    }

    fn read_varint128(&mut self) -> Result<u128, CodecError> {
        let mut v = 0u128;
        for shift in (0..133).step_by(7) {
            let byte = *self.buf.get(self.pos).ok_or(CodecError::Truncated)?;
            self.pos += 1;
            v |= u128::from(byte & 0x7f) << shift.min(127);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(CodecError::Overlong)
    }

    fn read_slice(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(len).ok_or(CodecError::Truncated)?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// The next `(tag, value)` pair, or `None` at the end of the run.
    /// Unknown tags are the *caller's* business (skip them to stay
    /// forward-compatible); unknown wire types are an error because the
    /// decoder cannot know their size.
    pub fn next_field(&mut self) -> Result<Option<(u32, Value<'a>)>, CodecError> {
        if self.is_done() {
            return Ok(None);
        }
        let header = self.read_varint()?;
        let tag = u32::try_from(header >> 3).map_err(|_| CodecError::BadValue("field tag"))?;
        let value = match (header & 0x7) as u8 {
            WIRE_VARINT => Value::U64(self.read_varint()?),
            WIRE_I128 => Value::I128(unzigzag128(self.read_varint128()?)),
            WIRE_F64 => {
                let raw = self.read_slice(8)?;
                let mut bits = [0u8; 8];
                bits.copy_from_slice(raw);
                Value::F64(f64::from_bits(u64::from_le_bytes(bits)))
            }
            WIRE_BYTES => {
                let len = self.read_varint()? as usize;
                Value::Bytes(self.read_slice(len)?)
            }
            WIRE_SECTION => {
                let len = self.read_varint()? as usize;
                Value::Section(Decoder::new(self.read_slice(len)?))
            }
            other => return Err(CodecError::UnknownWireType(other)),
        };
        Ok(Some((tag, value)))
    }
}

/// The boundary-crossing envelope: magic, wire version, caller kind,
/// payload version, payload length, payload, FNV-1a hash of everything
/// before the hash.
///
/// Layout (all little-endian):
///
/// ```text
/// [0..4)   magic  "RMCD"
/// [4..6)   wire version (u16)
/// [6..8)   frame kind (u16, caller-defined: job, shard state, manifest…)
/// [8..10)  payload version (u16, caller-defined schema rev)
/// [10..18) payload length (u64)
/// [18..n)  payload (tagged fields)
/// [n..n+8) integrity hash (FNV-1a 64 over bytes [0..n))
/// ```
#[derive(Debug)]
pub struct Frame<'a> {
    /// Caller-defined frame kind.
    pub kind: u16,
    /// Caller-defined payload schema version.
    pub version: u16,
    /// The payload bytes (decode with [`Decoder::new`]).
    pub payload: &'a [u8],
}

impl<'a> Frame<'a> {
    /// Header bytes before the payload.
    pub const HEADER_LEN: usize = 18;

    /// Seal `payload` into a framed byte vector.
    #[must_use]
    pub fn seal(kind: u16, version: u16, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::HEADER_LEN + payload.len() + 8);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        out.extend_from_slice(&kind.to_le_bytes());
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(payload);
        let h = hash64(&out);
        out.extend_from_slice(&h.to_le_bytes());
        out
    }

    /// Parse and verify one frame at the start of `bytes`. Returns the
    /// frame and the total bytes it consumed (so streams of frames can be
    /// walked).
    pub fn parse(bytes: &'a [u8]) -> Result<(Frame<'a>, usize), CodecError> {
        if bytes.len() < Self::HEADER_LEN {
            return Err(CodecError::Truncated);
        }
        if bytes[0..4] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let u16_at = |i: usize| u16::from_le_bytes([bytes[i], bytes[i + 1]]);
        let wire = u16_at(4);
        if wire != WIRE_VERSION {
            return Err(CodecError::UnsupportedVersion {
                found: wire,
                supported: WIRE_VERSION,
            });
        }
        let kind = u16_at(6);
        let version = u16_at(8);
        let mut len8 = [0u8; 8];
        len8.copy_from_slice(&bytes[10..18]);
        let len = usize::try_from(u64::from_le_bytes(len8))
            .map_err(|_| CodecError::BadValue("frame length"))?;
        let total = Self::HEADER_LEN
            .checked_add(len)
            .and_then(|n| n.checked_add(8))
            .ok_or(CodecError::BadValue("frame length"))?;
        if bytes.len() < total {
            return Err(CodecError::Truncated);
        }
        let hashed = &bytes[..Self::HEADER_LEN + len];
        let mut h8 = [0u8; 8];
        h8.copy_from_slice(&bytes[Self::HEADER_LEN + len..total]);
        let stored = u64::from_le_bytes(h8);
        let computed = hash64(hashed);
        if stored != computed {
            return Err(CodecError::BadHash { stored, computed });
        }
        Ok((
            Frame {
                kind,
                version,
                payload: &bytes[Self::HEADER_LEN..Self::HEADER_LEN + len],
            },
            total,
        ))
    }

    /// Read one whole frame from a byte stream (header first, then
    /// exactly the advertised payload+hash), verifying as in
    /// [`Frame::parse`]. Returns the owned frame bytes; `None` on a clean
    /// EOF before any header byte.
    pub fn read_from(r: &mut impl std::io::Read) -> std::io::Result<Option<Vec<u8>>> {
        let mut header = [0u8; Self::HEADER_LEN];
        let mut got = 0;
        while got < header.len() {
            let n = r.read(&mut header[got..])?;
            if n == 0 {
                if got == 0 {
                    return Ok(None);
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "frame header truncated",
                ));
            }
            got += n;
        }
        let mut len8 = [0u8; 8];
        len8.copy_from_slice(&header[10..18]);
        let len = usize::try_from(u64::from_le_bytes(len8))
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "frame length"))?;
        let mut out = Vec::with_capacity(Self::HEADER_LEN + len + 8);
        out.extend_from_slice(&header);
        let mut rest = vec![0u8; len + 8];
        r.read_exact(&mut rest)?;
        out.extend_from_slice(&rest);
        Ok(Some(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut e = Encoder::new();
        e.u64(1, 0);
        e.u64(2, u64::MAX);
        e.i128(3, -1);
        e.i128(4, i128::MIN);
        e.i128(5, i128::MAX);
        e.f64(6, -0.0);
        e.f64(7, f64::NAN);
        e.f64(8, f64::NEG_INFINITY);
        e.str(9, "fleet/007");
        e.bytes(10, &[0xde, 0xad]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let mut seen = Vec::new();
        while let Some((tag, v)) = d.next_field().expect("clean input") {
            seen.push(match (tag, v) {
                (1..=2, v) => v.as_u64(tag).unwrap().to_string(),
                (3..=5, v) => v.as_i128(tag).unwrap().to_string(),
                (6..=8, v) => format!("{:#x}", v.as_f64(tag).unwrap().to_bits()),
                (9, v) => v.as_str(tag).unwrap().to_string(),
                (10, v) => format!("{:?}", v.as_bytes(tag).unwrap()),
                other => panic!("unexpected field {other:?}"),
            });
        }
        assert_eq!(
            seen,
            vec![
                "0".to_string(),
                u64::MAX.to_string(),
                "-1".to_string(),
                i128::MIN.to_string(),
                i128::MAX.to_string(),
                format!("{:#x}", (-0.0f64).to_bits()),
                format!("{:#x}", f64::NAN.to_bits()),
                format!("{:#x}", f64::NEG_INFINITY.to_bits()),
                "fleet/007".to_string(),
                "[222, 173]".to_string(),
            ]
        );
    }

    #[test]
    fn sections_nest_and_skip() {
        let mut e = Encoder::new();
        e.u64(1, 7);
        e.section(2, |s| {
            s.str(1, "inner");
            s.section(2, |ss| ss.u64(1, 99));
        });
        e.u64(3, 8);
        let bytes = e.into_bytes();
        // A reader that ignores the section still sees fields 1 and 3.
        let mut d = Decoder::new(&bytes);
        let mut plain = Vec::new();
        while let Some((tag, v)) = d.next_field().expect("clean input") {
            if let Value::U64(n) = v {
                plain.push((tag, n));
            }
        }
        assert_eq!(plain, vec![(1, 7), (3, 8)]);
        // A reader that descends finds the nested value.
        let mut d = Decoder::new(&bytes);
        d.next_field().unwrap();
        let (_, sec) = d.next_field().unwrap().expect("section present");
        let mut sec = sec.as_section(2).unwrap();
        let (_, s) = sec.next_field().unwrap().expect("inner str");
        assert_eq!(s.as_str(1).unwrap(), "inner");
        let (_, inner) = sec.next_field().unwrap().expect("inner section");
        let mut inner = inner.as_section(2).unwrap();
        let (_, n) = inner.next_field().unwrap().expect("deep u64");
        assert_eq!(n.as_u64(1).unwrap(), 99);
    }

    #[test]
    fn unknown_tags_are_skippable_by_construction() {
        // A "v2" writer adds field 50; a "v1" reader loops and ignores it.
        let mut e = Encoder::new();
        e.u64(1, 1);
        e.f64(50, 3.5);
        e.section(51, |s| s.str(1, "future"));
        e.u64(2, 2);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let mut known = Vec::new();
        while let Some((tag, v)) = d.next_field().expect("clean input") {
            match tag {
                1 | 2 => known.push(v.as_u64(tag).unwrap()),
                _ => {} // unknown: already fully consumed
            }
        }
        assert_eq!(known, vec![1, 2]);
    }

    #[test]
    fn frames_verify_and_reject_corruption() {
        let mut e = Encoder::new();
        e.str(1, "payload");
        let framed = e.into_frame(3, 9);
        let (frame, used) = Frame::parse(&framed).expect("intact frame");
        assert_eq!(used, framed.len());
        assert_eq!((frame.kind, frame.version), (3, 9));
        let mut d = Decoder::new(frame.payload);
        let (_, v) = d.next_field().unwrap().expect("field");
        assert_eq!(v.as_str(1).unwrap(), "payload");

        // Flip one payload byte: hash must catch it.
        let mut torn = framed.clone();
        torn[Frame::HEADER_LEN] ^= 0x40;
        assert!(matches!(
            Frame::parse(&torn),
            Err(CodecError::BadHash { .. })
        ));
        // Truncate: loud failure.
        assert_eq!(
            Frame::parse(&framed[..framed.len() - 3]).unwrap_err(),
            CodecError::Truncated
        );
        // Wrong magic.
        let mut alien = framed.clone();
        alien[0] = b'X';
        assert_eq!(Frame::parse(&alien).unwrap_err(), CodecError::BadMagic);
        // Future wire version.
        let mut future = framed;
        future[4] = 0xff;
        // Re-seal the hash so only the version check can fire.
        let n = future.len() - 8;
        let h = hash64(&future[..n]);
        future[n..].copy_from_slice(&h.to_le_bytes());
        assert!(matches!(
            Frame::parse(&future),
            Err(CodecError::UnsupportedVersion { found: 0x00ff, .. })
        ));
    }

    #[test]
    fn frame_streams_read_back_one_by_one() {
        let mut stream = Vec::new();
        for i in 0..3u64 {
            let mut e = Encoder::new();
            e.u64(1, i);
            stream.extend_from_slice(&e.into_frame(1, 1));
        }
        let mut cursor = std::io::Cursor::new(stream);
        for i in 0..3u64 {
            let bytes = Frame::read_from(&mut cursor)
                .expect("io ok")
                .expect("frame present");
            let (frame, _) = Frame::parse(&bytes).expect("intact");
            let mut d = Decoder::new(frame.payload);
            let (_, v) = d.next_field().unwrap().expect("field");
            assert_eq!(v.as_u64(1).unwrap(), i);
        }
        assert!(Frame::read_from(&mut cursor).expect("io ok").is_none());
    }

    #[test]
    fn truncated_stream_is_an_io_error_not_a_hang() {
        let mut e = Encoder::new();
        e.str(1, "partial");
        let framed = e.into_frame(1, 1);
        let mut cursor = std::io::Cursor::new(framed[..framed.len() - 2].to_vec());
        let err = Frame::read_from(&mut cursor).expect_err("truncated");
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn hash64_matches_known_fnv_vectors() {
        assert_eq!(hash64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash64_fold(hash64(b""), 0), hash64(&[0u8; 8]));
    }
}
