//! The worker-process backend contract: shards executed in child
//! processes, streaming partial state back over pipes in sealed codec
//! frames, must render byte-identically to the in-process backend — on
//! their own, under heavy faults, and through a halt-and-resume cycle.
//!
//! Cargo points `CARGO_BIN_EXE_fleet_worker` at the freshly built
//! worker for these tests, so discovery is exact and the tests never
//! depend on `PATH` or the environment.

use roam_fleet::FleetRunner;
use roam_netsim::{FaultSpec, TransportKind};
use roam_telemetry::TelemetryMode;
use std::path::PathBuf;

const SEED: u64 = 31;
const USERS: u64 = 1_000;
const DAYS: u32 = 10;

fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_fleet_worker")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "roam-worker-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn base() -> FleetRunner {
    FleetRunner::new(SEED)
        .users(USERS)
        .shards(4)
        .days(DAYS)
        .telemetry(TelemetryMode::Summary)
}

#[test]
fn worker_processes_render_the_in_process_bytes() {
    let in_process = base().run();
    for workers in [1usize, 2, 4] {
        let distributed = base().workers(workers).worker_bin(worker_bin()).run();
        assert_eq!(
            distributed.report.render(),
            in_process.report.render(),
            "{workers} worker processes must not change the report"
        );
        assert_eq!(
            distributed.telemetry.render(),
            in_process.telemetry.render(),
            "telemetry crosses the pipe bit-identically"
        );
        assert_eq!(distributed.timings.len(), 4, "one timing row per shard");
    }
}

#[test]
fn worker_processes_agree_under_faults_and_engine_transport() {
    let in_process = base()
        .faults(FaultSpec::heavy())
        .transport(TransportKind::Engine)
        .run();
    let distributed = base()
        .faults(FaultSpec::heavy())
        .transport(TransportKind::Engine)
        .workers(3)
        .worker_bin(worker_bin())
        .run();
    assert_eq!(distributed.report.render(), in_process.report.render());
    assert_eq!(
        distributed.report.degraded, in_process.report.degraded,
        "fault-plane tallies agree across backends"
    );
}

#[test]
fn workers_checkpoint_and_resume_byte_identically() {
    let straight = base().faults(FaultSpec::heavy()).run();
    let dir = temp_dir("resume");
    let halted = base()
        .faults(FaultSpec::heavy())
        .workers(2)
        .worker_bin(worker_bin())
        .checkpoint_dir(&dir)
        .checkpoint_every(u64::from(DAYS) * 10)
        .halt_after(1)
        .run();
    assert!(halted.halted, "workers honour halt_after");
    assert!(halted.report.users < straight.report.users);
    // Resume in worker mode as well — states ship to the children
    // inside their job frames.
    let resumed = FleetRunner::resume(&dir)
        .expect("worker-written checkpoints resume")
        .workers(2)
        .worker_bin(worker_bin())
        .run();
    assert!(!resumed.halted);
    assert_eq!(
        resumed.report.render(),
        straight.report.render(),
        "kill in worker mode, resume in worker mode, bytes unchanged"
    );
    assert_eq!(resumed.telemetry.render(), straight.telemetry.render());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn worker_checkpoints_resume_in_process_too() {
    let straight = base().run();
    let dir = temp_dir("cross");
    let halted = base()
        .workers(2)
        .worker_bin(worker_bin())
        .checkpoint_dir(&dir)
        .checkpoint_every(u64::from(DAYS) * 10)
        .halt_after(1)
        .run();
    assert!(halted.halted);
    // The checkpoint format is backend-neutral: files written by worker
    // processes resume on the in-process backend.
    let resumed = FleetRunner::resume(&dir)
        .expect("cross-backend resume")
        .run();
    assert_eq!(resumed.report.render(), straight.report.render());
    std::fs::remove_dir_all(&dir).ok();
}
