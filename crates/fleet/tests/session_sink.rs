//! The fleet session sink: per-session `Dataset::Sessions` rows
//! streamed through the redesigned export surface.
//!
//! Pins the contract of `FleetRunner::sink`:
//!
//! * the row stream is byte-identical across shard counts and thread
//!   counts (shards own contiguous ascending user ranges and stream in
//!   shard-index order, so the merged stream is user order);
//! * a columnar sink builds the same table the CSV sink renders;
//! * the sink refuses execution shapes that cannot carry records
//!   (worker processes, checkpointing).

use roam_fleet::{FleetConfigError, FleetRunner};
use roam_measure::{ColumnarSink, Dataset, MemorySink, SharedSink};
use std::sync::{Arc, Mutex};

const USERS: u64 = 150;
const DAYS: u32 = 5;

fn runner(shards: usize, parallel: usize) -> FleetRunner {
    FleetRunner::new(42)
        .users(USERS)
        .days(DAYS)
        .shards(shards)
        .parallel(parallel)
}

/// Run the fleet with a `MemorySink` and return the sessions CSV.
fn sessions_csv(shards: usize, parallel: usize) -> String {
    let sink = Arc::new(Mutex::new(MemorySink::with_datasets(&[Dataset::Sessions])));
    let shared: SharedSink = sink.clone();
    let run = runner(shards, parallel).sink(shared).run();
    assert!(!run.halted);
    assert!(run.report.sessions > 0, "fixture must produce sessions");
    let sink = Arc::try_unwrap(sink)
        .expect("runner dropped its sink handle")
        .into_inner()
        .expect("sink lock");
    sink.table(Dataset::Sessions)
        .expect("sessions table registered")
        .to_string()
}

#[test]
fn session_stream_is_invariant_across_shards_and_threads() {
    let baseline = sessions_csv(1, 1);
    assert!(baseline.lines().count() > 1, "rows expected: {baseline}");
    for (shards, parallel) in [(4, 1), (4, 4), (3, 2)] {
        assert_eq!(
            sessions_csv(shards, parallel),
            baseline,
            "shards={shards} parallel={parallel}"
        );
    }
}

#[test]
fn every_session_lands_in_the_stream() {
    let csv = sessions_csv(2, 2);
    let run = runner(2, 2).run();
    let rows = csv.lines().count() - 1;
    // Delivered + failed sessions stream; `NoTarget` scenario gaps are
    // the only sessions that stay out, and this fixture has none (every
    // measured country resolves a Google target).
    assert_eq!(rows as u64, run.report.sessions);
}

#[test]
fn columnar_and_csv_sinks_render_identical_tables() {
    let columnar = Arc::new(Mutex::new(ColumnarSink::new()));
    let shared: SharedSink = columnar.clone();
    let run = runner(3, 2).sink(shared).run();
    assert!(!run.halted);
    let table = Arc::try_unwrap(columnar)
        .expect("runner dropped its sink handle")
        .into_inner()
        .expect("sink lock")
        .into_table(Dataset::Sessions)
        .expect("sessions table");
    let mut rendered = Dataset::Sessions.header_csv();
    roam_columnar::render_csv(&table, &mut rendered);
    assert_eq!(rendered, sessions_csv(1, 1));

    // And the frame round-trips into a queryable zero-copy view.
    let frame = table.to_frame();
    let view = roam_columnar::TableView::parse_frame(&frame).expect("frame parses");
    let mut reread = Dataset::Sessions.header_csv();
    roam_columnar::render_csv(&view, &mut reread);
    assert_eq!(reread, rendered);
}

#[test]
#[should_panic(expected = "session sink requires the in-process backend")]
fn sink_refuses_worker_processes() {
    let sink: SharedSink = Arc::new(Mutex::new(MemorySink::new()));
    let _ = runner(2, 1).workers(2).sink(sink).run();
}

#[test]
#[should_panic(expected = "session sink is incompatible with checkpointing")]
fn sink_refuses_checkpointing() {
    let sink: SharedSink = Arc::new(Mutex::new(MemorySink::new()));
    let _ = runner(2, 1)
        .checkpoint_dir("/tmp/roam-sink-refuses-checkpointing")
        .sink(sink)
        .run();
}

#[test]
fn try_run_returns_typed_config_errors() {
    // The same contradictions `run()` panics on come back as typed,
    // matchable values from `try_run()`, before anything executes.
    let sink: SharedSink = Arc::new(Mutex::new(MemorySink::new()));
    let err = runner(2, 1)
        .workers(3)
        .sink(sink)
        .try_run()
        .err()
        .expect("sink + workers must refuse");
    assert!(
        matches!(
            err,
            roam_fleet::FleetError::Config(FleetConfigError::SinkWithWorkers { workers: 3 })
        ),
        "{err:?}"
    );
    assert!(err.to_string().contains("workers == 3"), "{err}");

    let sink: SharedSink = Arc::new(Mutex::new(MemorySink::new()));
    let err = runner(2, 1)
        .checkpoint_dir("/tmp/roam-sink-try-run-checkpointing")
        .sink(sink)
        .try_run()
        .err()
        .expect("sink + checkpointing must refuse");
    assert!(
        matches!(
            err,
            roam_fleet::FleetError::Config(FleetConfigError::SinkWithCheckpoint)
        ),
        "{err:?}"
    );
    // Nothing ran and nothing was written: the refusal is pre-flight.
    assert!(!std::path::Path::new("/tmp/roam-sink-try-run-checkpointing").exists());
}

#[test]
fn validate_accepts_compatible_shapes() {
    let sink: SharedSink = Arc::new(Mutex::new(MemorySink::new()));
    assert_eq!(runner(2, 2).sink(sink).validate(), Ok(()));
    // Workers + checkpointing without a sink is the supported
    // kill-tolerant shape.
    assert_eq!(
        runner(2, 1).workers(2).checkpoint_dir("/tmp/x").validate(),
        Ok(())
    );
}
