//! The checkpoint/resume contract: a fleet run halted mid-flight and
//! resumed from its checkpoint directory renders a `FleetReport`
//! byte-identical to the uninterrupted run — healthy and under heavy
//! faults, in-process and in worker processes — and a stale or damaged
//! checkpoint directory is refused with a typed error, never silently
//! restarted.
//!
//! The halt is `halt_after(n)`: each shard stops right after its `n`-th
//! checkpoint write, which is the deterministic in-process stand-in for
//! the CI harness's real SIGKILL (`ci/kill_and_resume.sh`).

use roam_codec::Encoder;
use roam_fleet::checkpoint::{self, KIND_MANIFEST};
use roam_fleet::{FleetRunner, Manifest, ResumeError, ShardState, CKPT_VERSION};
use roam_netsim::FaultSpec;
use roam_telemetry::TelemetryMode;
use std::path::PathBuf;

const SEED: u64 = 23;
const USERS: u64 = 1_200;
const DAYS: u32 = 12;
/// One checkpoint per ten users per shard (cadence accumulates
/// `days` sim-days per user).
const EVERY: u64 = DAYS as u64 * 10;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "roam-ckpt-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn runner(faults: Option<FaultSpec>) -> FleetRunner {
    let r = FleetRunner::new(SEED)
        .users(USERS)
        .shards(3)
        .days(DAYS)
        .telemetry(TelemetryMode::Summary);
    match faults {
        Some(spec) => r.faults(spec),
        None => r,
    }
}

/// Halt a checkpointed run mid-flight, resume it, and demand both the
/// report and the telemetry render the uninterrupted run's exact bytes.
fn halt_and_resume_matches_straight(tag: &str, faults: Option<FaultSpec>, parallel: usize) {
    let straight = runner(faults).parallel(parallel).run();
    assert!(!straight.halted);

    let dir = temp_dir(tag);
    let halted = runner(faults)
        .parallel(parallel)
        .checkpoint_dir(&dir)
        .checkpoint_every(EVERY)
        .halt_after(2)
        .run();
    assert!(halted.halted, "halt_after must stop the run early");
    assert!(
        halted.report.users < straight.report.users,
        "the halted run must be genuinely partial"
    );

    let resumed = FleetRunner::resume(&dir)
        .expect("a freshly halted directory resumes")
        .run_mode(roam_measure::RunMode::Sequential)
        .run();
    assert!(!resumed.halted);
    assert_eq!(
        resumed.report.render(),
        straight.report.render(),
        "resumed report bytes must match the uninterrupted run"
    );
    assert_eq!(
        resumed.telemetry.render(),
        straight.telemetry.render(),
        "resumed telemetry must match too (restored snapshots continue \
         the original accumulation order)"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_is_byte_identical_healthy() {
    halt_and_resume_matches_straight("healthy", None, 1);
}

#[test]
fn resume_is_byte_identical_under_heavy_faults() {
    halt_and_resume_matches_straight("heavy", Some(FaultSpec::heavy()), 1);
}

#[test]
fn resume_is_byte_identical_with_thread_parallelism() {
    halt_and_resume_matches_straight("parallel", None, 4);
}

#[test]
fn resuming_a_finished_run_renders_the_same_bytes_again() {
    let dir = temp_dir("finished");
    let straight = runner(None)
        .checkpoint_dir(&dir)
        .checkpoint_every(EVERY)
        .run();
    assert!(!straight.halted);
    // All users already done: every shard resumes into an empty or
    // short remainder and the merge still lands on the same bytes.
    let resumed = FleetRunner::resume(&dir)
        .expect("finished dir resumes")
        .run();
    assert_eq!(resumed.report.render(), straight.report.render());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_manifest_is_a_typed_refusal() {
    let dir = temp_dir("missing");
    std::fs::create_dir_all(&dir).expect("mkdir");
    match FleetRunner::resume(&dir) {
        Err(ResumeError::MissingManifest(d)) => assert_eq!(d, dir),
        other => panic!("expected MissingManifest, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_fingerprint_is_a_typed_refusal() {
    let dir = temp_dir("stale-fp");
    std::fs::create_dir_all(&dir).expect("mkdir");
    // A manifest whose knobs are self-consistent but whose fingerprint
    // claims a different world — exactly what a binary with drifted
    // world/market generation would compute.
    let config = roam_fleet::FleetConfig::default();
    let honest = checkpoint::run_fingerprint(SEED, &config, TelemetryMode::Off, &FaultSpec::off());
    let manifest = Manifest {
        seed: SEED,
        fingerprint: honest ^ 0xDEAD_BEEF,
        shards: 4,
        every: EVERY,
        config,
        telemetry: TelemetryMode::Off,
        faults: FaultSpec::off(),
    };
    std::fs::write(dir.join(checkpoint::MANIFEST_FILE), manifest.to_frame()).expect("write");
    match FleetRunner::resume(&dir) {
        Err(ResumeError::FingerprintMismatch { stored, computed }) => {
            assert_eq!(stored, honest ^ 0xDEAD_BEEF);
            assert_eq!(computed, honest);
        }
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn future_codec_version_is_a_typed_refusal() {
    let dir = temp_dir("stale-version");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let frame = Encoder::new().into_frame(KIND_MANIFEST, CKPT_VERSION + 1);
    std::fs::write(dir.join(checkpoint::MANIFEST_FILE), frame).expect("write");
    match FleetRunner::resume(&dir) {
        Err(ResumeError::VersionMismatch { found, supported }) => {
            assert_eq!(found, CKPT_VERSION + 1);
            assert_eq!(supported, CKPT_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_or_corrupt_files_are_typed_refusals() {
    let dir = temp_dir("corrupt");
    let halted = runner(None)
        .checkpoint_dir(&dir)
        .checkpoint_every(EVERY)
        .halt_after(1)
        .run();
    assert!(halted.halted);
    // Truncate one shard checkpoint mid-frame, as a kill without the
    // atomic rename would have.
    let shard0 = dir.join(checkpoint::shard_file(0));
    let bytes = std::fs::read(&shard0).expect("shard file exists");
    std::fs::write(&shard0, &bytes[..bytes.len() / 2]).expect("truncate");
    match FleetRunner::resume(&dir) {
        Err(ResumeError::Corrupt(path, _)) => assert_eq!(path, shard0),
        other => panic!("expected Corrupt, got {other:?}"),
    }
    // Restore the intact frame: the directory resumes again.
    std::fs::write(&shard0, &bytes).expect("restore");
    assert!(FleetRunner::resume(&dir).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_files_carry_a_clean_prefix_state() {
    let dir = temp_dir("prefix");
    let halted = runner(None)
        .checkpoint_dir(&dir)
        .checkpoint_every(EVERY)
        .halt_after(1)
        .run();
    assert!(halted.halted);
    // With `halt_after(1)` every shard stops exactly at its first
    // checkpoint write, so the merged halted report must equal the sum
    // of what the shard files carry — each file is a clean
    // per-user-boundary prefix aggregate.
    let mut from_files = 0u64;
    for i in 0..3 {
        let bytes = std::fs::read(dir.join(checkpoint::shard_file(i)))
            .expect("every shard checkpointed once");
        let (frame, _) = roam_codec::Frame::parse(&bytes).expect("sealed frame parses");
        let state = ShardState::decode_fields(&mut roam_codec::Decoder::new(frame.payload))
            .expect("shard state decodes");
        assert_eq!(state.index, i);
        assert!(state.next_uid > 0);
        from_files += state.report.users;
    }
    assert_eq!(from_files, halted.report.users);
    let class_total: u64 = halted.report.class_counts.iter().sum();
    assert_eq!(class_total, halted.report.users);
    std::fs::remove_dir_all(&dir).ok();
}
