//! The worker-fault chaos plane contract: a supervised fleet run under
//! injected worker faults — crashes, stalls, torn result frames,
//! spurious nonzero exits — and under *external* SIGKILLs must end in
//! exactly the bytes of a clean run. Recovery is real work (respawns,
//! retries, quarantines, all visible in [`SupervisionStats`]) but never
//! observable in the report: shards are pure functions of
//! `(seed, spec)`, so a re-run shard is the shard.
//!
//! [`SupervisionStats`]: roam_fleet::SupervisionStats

use roam_fleet::{FleetRunner, WorkerFaultSpec};
use roam_netsim::{FaultSpec, TransportKind};
use roam_telemetry::TelemetryMode;

const SEED: u64 = 47;
const USERS: u64 = 600;
const DAYS: u32 = 8;
const SHARDS: usize = 6;

fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_fleet_worker")
}

fn base() -> FleetRunner {
    FleetRunner::new(SEED)
        .users(USERS)
        .shards(SHARDS)
        .days(DAYS)
        .telemetry(TelemetryMode::Summary)
}

/// Heavy injected chaos across both transport backends and an active
/// netsim fault plane: every recovery path may fire (crash, stall,
/// torn frame, nonzero exit, retry, quarantine) and the report must
/// still be byte-identical to the clean in-process run.
#[test]
fn heavy_chaos_is_byte_identical_to_a_clean_run() {
    for (transport, faults) in [
        (TransportKind::ClosedForm, None),
        (TransportKind::Engine, Some(FaultSpec::heavy())),
    ] {
        let mut clean = base().transport(transport);
        let mut chaotic = base()
            .transport(transport)
            .workers(3)
            .worker_bin(worker_bin())
            .worker_faults(WorkerFaultSpec::heavy())
            .worker_deadline_ms(1_500);
        if let Some(spec) = faults {
            clean = clean.faults(spec);
            chaotic = chaotic.faults(spec);
        }
        let clean = clean.run();
        let chaotic = chaotic.run();
        assert_eq!(
            chaotic.report.render(),
            clean.report.render(),
            "heavy worker chaos ({transport:?}) must not change a byte of the report"
        );
        assert_eq!(
            chaotic.report.degraded, clean.report.degraded,
            "fault-plane tallies survive worker recovery"
        );
        assert!(
            chaotic.supervision.recovered(),
            "heavy chaos exercised at least one recovery path: {:?}",
            chaotic.supervision
        );
        assert!(clean.supervision.errors.is_empty());
    }
}

/// `crash = 1.0`: every dispatch of every shard dies. The retry budget
/// drains, every shard lands in quarantine, and the in-process fallback
/// still produces the clean bytes — `supervise` is infallible.
#[test]
fn total_crash_chaos_quarantines_every_shard_and_still_finishes() {
    let clean = base().run();
    let doomed = base()
        .workers(2)
        .worker_bin(worker_bin())
        .worker_faults(WorkerFaultSpec {
            crash: 1.0,
            stall: 0.0,
            torn: 0.0,
            exit: 0.0,
        })
        .worker_retries(1)
        .run();
    assert_eq!(doomed.report.render(), clean.report.render());
    assert_eq!(
        doomed.supervision.quarantined, SHARDS as u64,
        "every shard fell through to the in-process fallback: {:?}",
        doomed.supervision
    );
    assert!(
        doomed.supervision.errors.len() as u64 >= doomed.supervision.quarantined,
        "each quarantine is backed by typed errors"
    );
}

/// Torn frames only: children complete their shards, then corrupt the
/// result frame on the way out (truncation or bit-flip) and exit 0 —
/// the "clean exit, dirty pipe" case. The parent must detect every
/// corruption by hash/length, retry, and converge on the clean bytes.
#[test]
fn torn_frames_are_detected_and_retried() {
    let clean = base().run();
    let torn = base()
        .workers(2)
        .worker_bin(worker_bin())
        .worker_faults(WorkerFaultSpec {
            crash: 0.0,
            stall: 0.0,
            torn: 0.6,
            exit: 0.0,
        })
        .run();
    assert_eq!(torn.report.render(), clean.report.render());
    assert!(
        torn.supervision.protocol_errors > 0,
        "a 60% torn rate over {SHARDS} shards fires at least once: {:?}",
        torn.supervision
    );
}

/// External violence: a sibling thread SIGKILLs live `fleet_worker`
/// children while the run is in flight. Whatever the kills land on —
/// mid-shard, between shards, before the job frame ships — the
/// supervisor respawns or quarantines and the bytes never change.
#[test]
#[cfg(unix)]
fn external_sigkills_are_byte_identical() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let clean = base().run();

    // /proc scan for our direct children running the worker binary.
    fn child_workers() -> Vec<u32> {
        let me = std::process::id().to_string();
        let mut pids = Vec::new();
        let Ok(entries) = std::fs::read_dir("/proc") else {
            return pids;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(pid) = name.to_str().and_then(|s| s.parse::<u32>().ok()) else {
                continue;
            };
            let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
                continue;
            };
            // stat: "pid (comm) state ppid ..." — comm may hold spaces
            // and parens, so split on the *last* closing paren.
            let Some((head, tail)) = stat.rsplit_once(')') else {
                continue;
            };
            let comm_is_worker = head.contains("(fleet_worker");
            let ppid = tail.split_whitespace().nth(1);
            if comm_is_worker && ppid == Some(me.as_str()) {
                pids.push(pid);
            }
        }
        pids
    }

    let stop = Arc::new(AtomicBool::new(false));
    let killer_stop = stop.clone();
    let killer = std::thread::spawn(move || {
        let mut kills = 0u32;
        while !killer_stop.load(Ordering::Relaxed) && kills < 6 {
            for pid in child_workers() {
                let _ = std::process::Command::new("kill")
                    .args(["-9", &pid.to_string()])
                    .status();
                kills += 1;
            }
            std::thread::sleep(std::time::Duration::from_millis(60));
        }
        kills
    });

    let brutal = base().workers(2).worker_bin(worker_bin()).run();
    stop.store(true, Ordering::Relaxed);
    let kills = killer.join().expect("killer thread");

    assert_eq!(
        brutal.report.render(),
        clean.report.render(),
        "{kills} external SIGKILLs must not change a byte"
    );
    if kills > 0 {
        assert!(
            brutal.supervision.respawns > 0 || brutal.supervision.quarantined > 0,
            "kills landed, so recovery ran: {:?}",
            brutal.supervision
        );
    }
}
