//! Cohort batches: the service-facing slice of the fleet plane.
//!
//! A long-running agent (roam-service) does not run one big population
//! once — it ticks *cohorts*: named groups of users, each owning a
//! contiguous uid range inside the shared per-seed uid namespace, each
//! ticked repeatedly as sim-time advances. [`run_user_batch`] is the
//! hook that makes one such tick a first-class fleet operation: it
//! drives an arbitrary `[lo, hi)` uid range through the exact same
//! plan/exec/merge pipeline `FleetRunner` uses, splitting the range
//! into sub-shards for thread-level parallelism and folding the
//! outcomes in sub-shard order.
//!
//! Determinism is inherited wholesale from the shard contract: every
//! per-user observable derives from `flow_seed(seed, "fleet/…/<uid>")`,
//! so a batch's report and session stream depend only on
//! `(seed, config, lo, hi)` — not on the sub-shard count, the thread
//! count, the transport backend, or which other cohorts tick in the
//! same process. Two cohorts with disjoint uid ranges draw from
//! disjoint stream families by construction.

use crate::config::FleetConfig;
use crate::exec::{run_fleet_shard, ShardSpec};
use crate::report::FleetReport;
use crate::sink::SessionRecord;
use roam_measure::{run_shards, RunMode};
use roam_telemetry::{merge_shards, TelemetryMode, TelemetryReport};

/// One cohort tick's work order: drive users `[lo, hi)` of `seed`'s
/// population through a full calendar window.
#[derive(Debug, Clone)]
pub struct UserBatch {
    /// Master seed — must be shared by every batch in a run so all
    /// cohorts see the same world, market and endpoint pool.
    pub seed: u64,
    /// Sizing knobs. `users`/`shards` are ignored (the range and
    /// sub-shard split come from this struct); `days`, `mix` and
    /// `sample` apply per user.
    pub config: FleetConfig,
    /// First uid (inclusive).
    pub lo: u64,
    /// One past the last uid.
    pub hi: u64,
    /// Sub-shards to split the range into (clamped to the range size).
    pub shards: usize,
    /// Thread-level execution mode for the sub-shards.
    pub mode: RunMode,
    /// What the telemetry plane records.
    pub telemetry: TelemetryMode,
    /// Record per-session [`SessionRecord`]s (the service's export
    /// stream) in addition to the aggregates.
    pub record_sessions: bool,
}

/// What one batch hands back: the merged aggregates plus the per-session
/// records in uid order (empty unless requested).
pub struct BatchRun {
    /// Exactly-merged aggregates for the range.
    pub report: FleetReport,
    /// Telemetry merged in sub-shard order.
    pub telemetry: TelemetryReport,
    /// Per-session records, in uid order (sessions within a user keep
    /// session order) — invariant across `shards`/`mode`.
    pub sessions: Vec<SessionRecord>,
}

impl UserBatch {
    /// A sequential, telemetry-off batch of users `[lo, hi)`.
    #[must_use]
    pub fn new(seed: u64, config: FleetConfig, lo: u64, hi: u64) -> Self {
        UserBatch {
            seed,
            config,
            lo,
            hi,
            shards: 1,
            mode: RunMode::Sequential,
            telemetry: TelemetryMode::Off,
            record_sessions: false,
        }
    }

    /// The contiguous uid range of sub-shard `i` of `n` — the same
    /// proportional split `FleetRunner` uses, offset into the batch.
    fn sub_range(&self, i: usize, n: usize) -> (u64, u64) {
        let span = self.hi - self.lo;
        (
            self.lo + span * i as u64 / n as u64,
            self.lo + span * (i as u64 + 1) / n as u64,
        )
    }

    /// Execute the batch: split the range, run the sub-shards on `mode`,
    /// fold reports / telemetry / sessions in sub-shard order.
    ///
    /// An empty range (`lo >= hi`) is a no-op batch: empty report, empty
    /// stream — the expired-cohort case in the service.
    #[must_use]
    pub fn run(&self) -> BatchRun {
        let span = self.hi.saturating_sub(self.lo);
        if span == 0 {
            return BatchRun {
                report: FleetReport::new(self.config.sample),
                telemetry: TelemetryReport::new(self.telemetry),
                sessions: Vec::new(),
            };
        }
        let n = (self.shards.max(1) as u64).min(span) as usize;
        let mut outcomes = run_shards(self.mode, n, |i| {
            let (lo, hi) = self.sub_range(i, n);
            run_fleet_shard(
                self.seed,
                &self.config,
                ShardSpec {
                    index: i,
                    lo,
                    hi,
                    resume: None,
                    attempt: 0,
                },
                self.telemetry,
                None,
                self.record_sessions,
            )
        });
        outcomes.sort_by_key(|o| o.index);
        let mut report = FleetReport::new(self.config.sample);
        let mut snaps = Vec::with_capacity(outcomes.len());
        let mut sessions = Vec::new();
        for outcome in outcomes {
            report.merge(&outcome.report);
            snaps.push((format!("batch/{:03}", outcome.index), outcome.snap));
            sessions.extend(outcome.sessions);
        }
        BatchRun {
            report,
            telemetry: merge_shards(self.telemetry, snaps),
            sessions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(lo: u64, hi: u64, shards: usize, parallel: usize) -> UserBatch {
        let config = FleetConfig {
            days: 3,
            ..FleetConfig::default()
        };
        UserBatch {
            shards,
            mode: if parallel <= 1 {
                RunMode::Sequential
            } else {
                RunMode::Parallel(parallel)
            },
            record_sessions: true,
            ..UserBatch::new(99, config, lo, hi)
        }
    }

    #[test]
    fn batch_bytes_are_invariant_across_subshards_and_threads() {
        let base = batch(40, 120, 1, 1).run();
        assert_eq!(base.report.users, 80);
        assert!(!base.sessions.is_empty());
        for (shards, parallel) in [(4, 1), (4, 4), (3, 2)] {
            let other = batch(40, 120, shards, parallel).run();
            assert_eq!(
                other.report.render(),
                base.report.render(),
                "shards={shards} parallel={parallel}"
            );
            assert_eq!(other.sessions, base.sessions);
        }
    }

    #[test]
    fn disjoint_batches_tile_like_one_run() {
        // Users [0, 60) in one batch vs two disjoint batches: the merged
        // aggregates and concatenated streams must be identical — the
        // cohort property the service leans on.
        let whole = batch(0, 60, 2, 2).run();
        let left = batch(0, 25, 1, 1).run();
        let right = batch(25, 60, 3, 2).run();
        let mut merged = FleetReport::new(FleetConfig::default().sample);
        merged.merge(&left.report);
        merged.merge(&right.report);
        assert_eq!(merged.render(), whole.report.render());
        let mut stream = left.sessions.clone();
        stream.extend(right.sessions.clone());
        assert_eq!(stream, whole.sessions);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let run = batch(10, 10, 4, 4).run();
        assert_eq!(run.report.users, 0);
        assert!(run.sessions.is_empty());
    }
}
