//! The fleet run's aggregate output: counters, sketches, and a
//! deterministic journey sample.
//!
//! Everything in here merges exactly — integer counters, fixed-point
//! spend, [`QuantileSketch`]es with integral state, and a bottom-k
//! [`KeyedReservoir`] — so a report assembled from any number of shards,
//! in any merge order, renders the same bytes. That property is the
//! second half of the fleet determinism contract (the first is per-user
//! RNG streams) and is pinned by `tests/fleet_determinism.rs`.

use crate::population::TravelerClass;
use roam_codec::{CodecError, Decoder, Encoder};
use roam_geo::Country;
use roam_measure::DegradationSummary;
use roam_stats::{KeyedReservoir, QuantileSketch};
use std::fmt::Write as _;

/// One sampled subscriber journey, kept by the report's deterministic
/// reservoir for spot-checking a run without buffering the population.
#[derive(Debug, Clone, PartialEq)]
pub struct JourneySample {
    /// The subscriber.
    pub uid: u64,
    /// Archetype label (`"tourist"`…).
    pub class: &'static str,
    /// Itinerary length.
    pub legs: u32,
    /// First destination (alpha-3).
    pub first: &'static str,
    /// Total marketplace spend, micro-USD.
    pub spend_micro_usd: u128,
}

/// Format micro-USD exactly, without going through floats.
fn usd(micro: u128) -> String {
    format!("{}.{:06}", micro / 1_000_000, micro % 1_000_000)
}

/// Field tags for [`JourneySample`] sections (inside the journey
/// reservoir's item payload).
mod journey_tag {
    pub const UID: u32 = 1;
    pub const CLASS: u32 = 2;
    pub const LEGS: u32 = 3;
    pub const FIRST: u32 = 4;
    pub const SPEND: u32 = 5;
}

/// Field tags for the [`FleetReport`] wire form (checkpoint shard files
/// and worker result frames). Tags are append-only: decoders skip unknown
/// tags, so new fields extend the format without breaking old readers.
mod report_tag {
    pub const USERS: u32 = 1;
    pub const CLASS_COUNT: u32 = 2;
    pub const PURCHASES: u32 = 3;
    pub const SPEND: u32 = 4;
    pub const SESSIONS: u32 = 5;
    pub const RTT_PROBES: u32 = 6;
    pub const DNS_LOOKUPS: u32 = 7;
    pub const TRANSFERS: u32 = 8;
    pub const LOST: u32 = 9;
    pub const DEGRADED: u32 = 10;
    pub const RTT_MS: u32 = 11;
    pub const DNS_MS: u32 = 12;
    pub const PRICE_PER_GB: u32 = 13;
    pub const SESSION_MB: u32 = 14;
    pub const JOURNEYS: u32 = 15;
}

/// Encode a `u128` as a 16-byte little-endian bytes field — varints top
/// out at `u64`, and spend sums are exact fixed-point values that must
/// not be truncated.
fn encode_u128(e: &mut Encoder, tag: u32, v: u128) {
    e.bytes(tag, &v.to_le_bytes());
}

fn decode_u128(raw: &[u8]) -> Result<u128, CodecError> {
    let bytes: [u8; 16] = raw
        .try_into()
        .map_err(|_| CodecError::BadValue("u128 width"))?;
    Ok(u128::from_le_bytes(bytes))
}

/// Intern a traveler-class label back to its `&'static str`.
fn intern_class(s: &str) -> Result<&'static str, CodecError> {
    for class in [
        TravelerClass::Tourist,
        TravelerClass::Business,
        TravelerClass::IotDevice,
    ] {
        if class.label() == s {
            return Ok(class.label());
        }
    }
    Err(CodecError::BadValue("traveler class"))
}

/// Intern an alpha-3 country code back to the measured set's
/// `&'static str`.
fn intern_country(s: &str) -> Result<&'static str, CodecError> {
    Country::MEASURED
        .iter()
        .map(|c| c.alpha3())
        .find(|a3| *a3 == s)
        .ok_or(CodecError::BadValue("country code"))
}

impl JourneySample {
    /// Encode this sample's fields into `e` (one reservoir item payload).
    pub fn encode_fields(&self, e: &mut Encoder) {
        e.u64(journey_tag::UID, self.uid);
        e.str(journey_tag::CLASS, self.class);
        e.u64(journey_tag::LEGS, u64::from(self.legs));
        e.str(journey_tag::FIRST, self.first);
        encode_u128(e, journey_tag::SPEND, self.spend_micro_usd);
    }

    /// Decode one sample from `d`, validating that the class and country
    /// labels belong to the known static sets (the in-memory type holds
    /// `&'static str`, so foreign labels cannot be represented).
    pub fn decode_fields(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let (mut uid, mut class, mut legs, mut first, mut spend) = (None, None, None, None, None);
        while let Some((tag, v)) = d.next_field()? {
            match tag {
                journey_tag::UID => uid = Some(v.as_u64(tag)?),
                journey_tag::CLASS => class = Some(intern_class(v.as_str(tag)?)?),
                journey_tag::LEGS => {
                    let raw = v.as_u64(tag)?;
                    legs = Some(u32::try_from(raw).map_err(|_| CodecError::BadValue("legs"))?);
                }
                journey_tag::FIRST => first = Some(intern_country(v.as_str(tag)?)?),
                journey_tag::SPEND => spend = Some(decode_u128(v.as_bytes(tag)?)?),
                _ => {}
            }
        }
        Ok(JourneySample {
            uid: uid.ok_or(CodecError::MissingField("journey uid"))?,
            class: class.ok_or(CodecError::MissingField("journey class"))?,
            legs: legs.ok_or(CodecError::MissingField("journey legs"))?,
            first: first.ok_or(CodecError::MissingField("journey first"))?,
            spend_micro_usd: spend.ok_or(CodecError::MissingField("journey spend"))?,
        })
    }
}

/// Aggregates for one fleet run (or one shard of it — the type is its own
/// merge unit). Memory is O(sketch + sample), independent of population.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Users simulated.
    pub users: u64,
    /// Users per archetype, in [`TravelerClass`] order (tourist,
    /// business, iot).
    pub class_counts: [u64; 3],
    /// Marketplace purchases.
    pub purchases: u64,
    /// Total spend across all purchases, micro-USD (exact).
    pub spend_micro_usd: u128,
    /// Data sessions churned through.
    pub sessions: u64,
    /// RTT probe sessions that delivered a sample.
    pub rtt_probes: u64,
    /// DNS lookup sessions that resolved.
    pub dns_lookups: u64,
    /// Bulk-transfer sessions completed.
    pub transfers: u64,
    /// Sessions whose probe died on a lossy path.
    pub lost_sessions: u64,
    /// Fault-plane outcome tally, populated only when a fault schedule is
    /// active. All-zero (and absent from the render) in undisturbed runs,
    /// so the off-mode report bytes are unchanged.
    pub degraded: DegradationSummary,
    /// Probe round-trip times, ms.
    pub rtt_ms: QuantileSketch,
    /// DNS lookup times, ms.
    pub dns_ms: QuantileSketch,
    /// Purchased plan prices per GB, USD.
    pub price_per_gb: QuantileSketch,
    /// Per-session transfer sizes, MB (the drawn workload, not the
    /// transport-timed duration — durations are transport-dependent and
    /// never enter the report).
    pub session_mb: QuantileSketch,
    /// Deterministic journey sample, keyed by user id.
    pub journeys: KeyedReservoir<JourneySample>,
}

impl FleetReport {
    /// An empty report whose journey reservoir holds `sample` entries.
    #[must_use]
    pub fn new(sample: usize) -> Self {
        FleetReport {
            users: 0,
            class_counts: [0; 3],
            purchases: 0,
            spend_micro_usd: 0,
            sessions: 0,
            rtt_probes: 0,
            dns_lookups: 0,
            transfers: 0,
            lost_sessions: 0,
            degraded: DegradationSummary::default(),
            rtt_ms: QuantileSketch::log_spaced(0.5, 2_000.0, 10),
            dns_ms: QuantileSketch::log_spaced(0.5, 2_000.0, 10),
            price_per_gb: QuantileSketch::log_spaced(0.05, 500.0, 10),
            session_mb: QuantileSketch::log_spaced(0.01, 10_000.0, 10),
            journeys: KeyedReservoir::new(sample),
        }
    }

    /// Count one user of `class`.
    pub fn count_user(&mut self, class: TravelerClass) {
        self.users += 1;
        self.class_counts[match class {
            TravelerClass::Tourist => 0,
            TravelerClass::Business => 1,
            TravelerClass::IotDevice => 2,
        }] += 1;
    }

    /// Fold another report in. Exact and order-free: every piece of state
    /// merges associatively.
    pub fn merge(&mut self, other: &FleetReport) {
        self.users += other.users;
        for (a, b) in self.class_counts.iter_mut().zip(&other.class_counts) {
            *a += b;
        }
        self.purchases += other.purchases;
        self.spend_micro_usd += other.spend_micro_usd;
        self.sessions += other.sessions;
        self.rtt_probes += other.rtt_probes;
        self.dns_lookups += other.dns_lookups;
        self.transfers += other.transfers;
        self.lost_sessions += other.lost_sessions;
        self.degraded.merge(other.degraded);
        self.rtt_ms.merge(&other.rtt_ms);
        self.dns_ms.merge(&other.dns_ms);
        self.price_per_gb.merge(&other.price_per_gb);
        self.session_mb.merge(&other.session_mb);
        self.journeys.merge(&other.journeys);
    }

    /// Encode the full report state into `e`. Together with
    /// [`FleetReport::decode_fields`] this is lossless: every counter,
    /// the exact spend sum, all four sketches and the journey reservoir
    /// survive the round trip field-for-field, so a decoded shard report
    /// merges exactly like the in-memory original.
    pub fn encode_fields(&self, e: &mut Encoder) {
        e.u64(report_tag::USERS, self.users);
        for &n in &self.class_counts {
            e.u64(report_tag::CLASS_COUNT, n);
        }
        e.u64(report_tag::PURCHASES, self.purchases);
        encode_u128(e, report_tag::SPEND, self.spend_micro_usd);
        e.u64(report_tag::SESSIONS, self.sessions);
        e.u64(report_tag::RTT_PROBES, self.rtt_probes);
        e.u64(report_tag::DNS_LOOKUPS, self.dns_lookups);
        e.u64(report_tag::TRANSFERS, self.transfers);
        e.u64(report_tag::LOST, self.lost_sessions);
        e.section(report_tag::DEGRADED, |se| self.degraded.encode_fields(se));
        e.section(report_tag::RTT_MS, |se| self.rtt_ms.encode_fields(se));
        e.section(report_tag::DNS_MS, |se| self.dns_ms.encode_fields(se));
        e.section(report_tag::PRICE_PER_GB, |se| {
            self.price_per_gb.encode_fields(se)
        });
        e.section(report_tag::SESSION_MB, |se| {
            self.session_mb.encode_fields(se)
        });
        e.section(report_tag::JOURNEYS, |se| {
            self.journeys
                .encode_fields_with(se, |ie, j| j.encode_fields(ie));
        });
    }

    /// Decode a report from `d`. The sketches and the reservoir are
    /// required (their bucket layout is part of the state); counters
    /// default to zero when absent so an all-zero report stays compact.
    pub fn decode_fields(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let mut users = 0;
        let mut class_counts = [0u64; 3];
        let mut classes_seen = 0usize;
        let mut purchases = 0;
        let mut spend = 0u128;
        let mut sessions = 0;
        let mut rtt_probes = 0;
        let mut dns_lookups = 0;
        let mut transfers = 0;
        let mut lost = 0;
        let mut degraded = DegradationSummary::default();
        let (mut rtt_ms, mut dns_ms, mut price_per_gb, mut session_mb) = (None, None, None, None);
        let mut journeys = None;
        while let Some((tag, v)) = d.next_field()? {
            match tag {
                report_tag::USERS => users = v.as_u64(tag)?,
                report_tag::CLASS_COUNT => {
                    if classes_seen >= class_counts.len() {
                        return Err(CodecError::BadValue("class cardinality"));
                    }
                    class_counts[classes_seen] = v.as_u64(tag)?;
                    classes_seen += 1;
                }
                report_tag::PURCHASES => purchases = v.as_u64(tag)?,
                report_tag::SPEND => spend = decode_u128(v.as_bytes(tag)?)?,
                report_tag::SESSIONS => sessions = v.as_u64(tag)?,
                report_tag::RTT_PROBES => rtt_probes = v.as_u64(tag)?,
                report_tag::DNS_LOOKUPS => dns_lookups = v.as_u64(tag)?,
                report_tag::TRANSFERS => transfers = v.as_u64(tag)?,
                report_tag::LOST => lost = v.as_u64(tag)?,
                report_tag::DEGRADED => {
                    degraded = DegradationSummary::decode_fields(&mut v.as_section(tag)?)?;
                }
                report_tag::RTT_MS => {
                    rtt_ms = Some(QuantileSketch::decode_fields(&mut v.as_section(tag)?)?);
                }
                report_tag::DNS_MS => {
                    dns_ms = Some(QuantileSketch::decode_fields(&mut v.as_section(tag)?)?);
                }
                report_tag::PRICE_PER_GB => {
                    price_per_gb = Some(QuantileSketch::decode_fields(&mut v.as_section(tag)?)?);
                }
                report_tag::SESSION_MB => {
                    session_mb = Some(QuantileSketch::decode_fields(&mut v.as_section(tag)?)?);
                }
                report_tag::JOURNEYS => {
                    journeys = Some(KeyedReservoir::decode_fields_with(
                        &mut v.as_section(tag)?,
                        JourneySample::decode_fields,
                    )?);
                }
                _ => {}
            }
        }
        Ok(FleetReport {
            users,
            class_counts,
            purchases,
            spend_micro_usd: spend,
            sessions,
            rtt_probes,
            dns_lookups,
            transfers,
            lost_sessions: lost,
            degraded,
            rtt_ms: rtt_ms.ok_or(CodecError::MissingField("rtt_ms"))?,
            dns_ms: dns_ms.ok_or(CodecError::MissingField("dns_ms"))?,
            price_per_gb: price_per_gb.ok_or(CodecError::MissingField("price_per_gb"))?,
            session_mb: session_mb.ok_or(CodecError::MissingField("session_mb"))?,
            journeys: journeys.ok_or(CodecError::MissingField("journeys"))?,
        })
    }

    /// The fixed-layout textual report. Shard count, worker count,
    /// transport backend and wall time are deliberately absent — this
    /// render is the byte-identity boundary the determinism tests compare.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== roam-fleet report ==");
        let _ = writeln!(out, "users                {}", self.users);
        for (i, label) in ["tourist", "business", "iot"].iter().enumerate() {
            let _ = writeln!(out, "  {:<18} {}", label, self.class_counts[i]);
        }
        let _ = writeln!(out, "purchases            {}", self.purchases);
        let _ = writeln!(out, "spend_usd            {}", usd(self.spend_micro_usd));
        let _ = writeln!(out, "sessions             {}", self.sessions);
        let _ = writeln!(out, "  rtt_probes         {}", self.rtt_probes);
        let _ = writeln!(out, "  dns_lookups        {}", self.dns_lookups);
        let _ = writeln!(out, "  transfers          {}", self.transfers);
        let _ = writeln!(out, "  lost               {}", self.lost_sessions);
        if self.degraded != DegradationSummary::default() {
            let d = &self.degraded;
            let _ = writeln!(out, "degradation:");
            let _ = writeln!(out, "  ok                 {}", d.ok);
            let _ = writeln!(out, "  failover           {}", d.failover);
            let _ = writeln!(out, "  timeout            {}", d.timeout);
            let _ = writeln!(out, "  unreachable        {}", d.unreachable);
        }
        let _ = writeln!(out, "metrics:");
        for (name, s) in [
            ("rtt_ms", &self.rtt_ms),
            ("dns_ms", &self.dns_ms),
            ("price_per_gb", &self.price_per_gb),
            ("session_mb", &self.session_mb),
        ] {
            let q = |p: f64| s.quantile(p).unwrap_or(0.0);
            let _ = writeln!(
                out,
                "  {:<18} count={} mean={:.3} p50={:.3} p90={:.3} p99={:.3} \
                 min={:.3} max={:.3} dropped={}",
                name,
                s.count(),
                s.mean(),
                q(0.5),
                q(0.9),
                q(0.99),
                if s.count() > 0 { s.min() } else { 0.0 },
                if s.count() > 0 { s.max() } else { 0.0 },
                s.dropped()
            );
        }
        let _ = writeln!(
            out,
            "journeys (sample of {} by stable priority):",
            self.journeys.cap()
        );
        for j in self.journeys.items() {
            let _ = writeln!(
                out,
                "  u{:<10} {:<8} legs={} first={} spend_usd={}",
                j.uid,
                j.class,
                j.legs,
                j.first,
                usd(j.spend_micro_usd)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(range: std::ops::Range<u64>) -> FleetReport {
        let mut r = FleetReport::new(4);
        for uid in range {
            r.count_user(TravelerClass::Tourist);
            r.sessions += 2;
            r.rtt_probes += 1;
            r.purchases += 1;
            r.spend_micro_usd += u128::from(uid) * 1_250_000;
            r.rtt_ms.observe(20.0 + uid as f64);
            r.price_per_gb.observe(2.0 + (uid % 7) as f64);
            r.journeys.offer(
                uid.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                uid,
                JourneySample {
                    uid,
                    class: "tourist",
                    legs: 1,
                    first: "PAK",
                    spend_micro_usd: 1_250_000,
                },
            );
        }
        r
    }

    #[test]
    fn merge_is_partition_invariant_and_render_is_stable() {
        let whole = filled(0..100);
        let mut split = filled(0..37);
        split.merge(&filled(37..100));
        assert_eq!(whole, split);
        assert_eq!(whole.render(), split.render());
        // Merging the shards the other way round renders the same bytes.
        let mut reversed = filled(37..100);
        reversed.merge(&filled(0..37));
        assert_eq!(whole.render(), reversed.render());
    }

    #[test]
    fn spend_formats_exactly() {
        assert_eq!(usd(0), "0.000000");
        assert_eq!(usd(1_250_000), "1.250000");
        assert_eq!(usd(12_345_678_901), "12345.678901");
    }

    fn round_trip(r: &FleetReport) -> FleetReport {
        let mut e = Encoder::new();
        r.encode_fields(&mut e);
        let bytes = e.into_bytes();
        FleetReport::decode_fields(&mut Decoder::new(&bytes)).expect("clean round trip")
    }

    #[test]
    fn report_codec_round_trip_is_identity() {
        let filled = filled(0..100);
        assert_eq!(round_trip(&filled), filled);
        let empty = FleetReport::new(8);
        assert_eq!(round_trip(&empty), empty);
    }

    #[test]
    fn decoded_reports_merge_like_in_memory_ones() {
        let mut mem = filled(0..37);
        mem.merge(&filled(37..100));
        let mut wire = round_trip(&filled(0..37));
        wire.merge(&round_trip(&filled(37..100)));
        assert_eq!(wire, mem);
        assert_eq!(wire.render(), mem.render());
    }

    #[test]
    fn foreign_labels_are_rejected() {
        let mut e = Encoder::new();
        JourneySample {
            uid: 1,
            class: "tourist",
            legs: 1,
            first: "PAK",
            spend_micro_usd: 0,
        }
        .encode_fields(&mut e);
        let good = e.into_bytes();
        assert!(JourneySample::decode_fields(&mut Decoder::new(&good)).is_ok());
        let mut e = Encoder::new();
        e.u64(1, 1);
        e.str(2, "astronaut");
        e.u64(3, 1);
        e.str(4, "PAK");
        e.bytes(5, &0u128.to_le_bytes());
        let bad = e.into_bytes();
        assert!(matches!(
            JourneySample::decode_fields(&mut Decoder::new(&bad)),
            Err(CodecError::BadValue("traveler class"))
        ));
    }

    #[test]
    fn render_layout_survives_an_empty_run() {
        let r = FleetReport::new(8);
        let s = r.render();
        assert!(s.contains("users                0"));
        assert!(s.contains("rtt_ms"));
        assert!(s.contains("mean=0.000"));
        assert!(s.ends_with("priority):\n"));
    }
}
