//! The fleet run's aggregate output: counters, sketches, and a
//! deterministic journey sample.
//!
//! Everything in here merges exactly — integer counters, fixed-point
//! spend, [`QuantileSketch`]es with integral state, and a bottom-k
//! [`KeyedReservoir`] — so a report assembled from any number of shards,
//! in any merge order, renders the same bytes. That property is the
//! second half of the fleet determinism contract (the first is per-user
//! RNG streams) and is pinned by `tests/fleet_determinism.rs`.

use crate::population::TravelerClass;
use roam_measure::DegradationSummary;
use roam_stats::{KeyedReservoir, QuantileSketch};
use std::fmt::Write as _;

/// One sampled subscriber journey, kept by the report's deterministic
/// reservoir for spot-checking a run without buffering the population.
#[derive(Debug, Clone, PartialEq)]
pub struct JourneySample {
    /// The subscriber.
    pub uid: u64,
    /// Archetype label (`"tourist"`…).
    pub class: &'static str,
    /// Itinerary length.
    pub legs: u32,
    /// First destination (alpha-3).
    pub first: &'static str,
    /// Total marketplace spend, micro-USD.
    pub spend_micro_usd: u128,
}

/// Format micro-USD exactly, without going through floats.
fn usd(micro: u128) -> String {
    format!("{}.{:06}", micro / 1_000_000, micro % 1_000_000)
}

/// Aggregates for one fleet run (or one shard of it — the type is its own
/// merge unit). Memory is O(sketch + sample), independent of population.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Users simulated.
    pub users: u64,
    /// Users per archetype, in [`TravelerClass`] order (tourist,
    /// business, iot).
    pub class_counts: [u64; 3],
    /// Marketplace purchases.
    pub purchases: u64,
    /// Total spend across all purchases, micro-USD (exact).
    pub spend_micro_usd: u128,
    /// Data sessions churned through.
    pub sessions: u64,
    /// RTT probe sessions that delivered a sample.
    pub rtt_probes: u64,
    /// DNS lookup sessions that resolved.
    pub dns_lookups: u64,
    /// Bulk-transfer sessions completed.
    pub transfers: u64,
    /// Sessions whose probe died on a lossy path.
    pub lost_sessions: u64,
    /// Fault-plane outcome tally, populated only when a fault schedule is
    /// active. All-zero (and absent from the render) in undisturbed runs,
    /// so the off-mode report bytes are unchanged.
    pub degraded: DegradationSummary,
    /// Probe round-trip times, ms.
    pub rtt_ms: QuantileSketch,
    /// DNS lookup times, ms.
    pub dns_ms: QuantileSketch,
    /// Purchased plan prices per GB, USD.
    pub price_per_gb: QuantileSketch,
    /// Per-session transfer sizes, MB (the drawn workload, not the
    /// transport-timed duration — durations are transport-dependent and
    /// never enter the report).
    pub session_mb: QuantileSketch,
    /// Deterministic journey sample, keyed by user id.
    pub journeys: KeyedReservoir<JourneySample>,
}

impl FleetReport {
    /// An empty report whose journey reservoir holds `sample` entries.
    #[must_use]
    pub fn new(sample: usize) -> Self {
        FleetReport {
            users: 0,
            class_counts: [0; 3],
            purchases: 0,
            spend_micro_usd: 0,
            sessions: 0,
            rtt_probes: 0,
            dns_lookups: 0,
            transfers: 0,
            lost_sessions: 0,
            degraded: DegradationSummary::default(),
            rtt_ms: QuantileSketch::log_spaced(0.5, 2_000.0, 10),
            dns_ms: QuantileSketch::log_spaced(0.5, 2_000.0, 10),
            price_per_gb: QuantileSketch::log_spaced(0.05, 500.0, 10),
            session_mb: QuantileSketch::log_spaced(0.01, 10_000.0, 10),
            journeys: KeyedReservoir::new(sample),
        }
    }

    /// Count one user of `class`.
    pub fn count_user(&mut self, class: TravelerClass) {
        self.users += 1;
        self.class_counts[match class {
            TravelerClass::Tourist => 0,
            TravelerClass::Business => 1,
            TravelerClass::IotDevice => 2,
        }] += 1;
    }

    /// Fold another report in. Exact and order-free: every piece of state
    /// merges associatively.
    pub fn merge(&mut self, other: &FleetReport) {
        self.users += other.users;
        for (a, b) in self.class_counts.iter_mut().zip(&other.class_counts) {
            *a += b;
        }
        self.purchases += other.purchases;
        self.spend_micro_usd += other.spend_micro_usd;
        self.sessions += other.sessions;
        self.rtt_probes += other.rtt_probes;
        self.dns_lookups += other.dns_lookups;
        self.transfers += other.transfers;
        self.lost_sessions += other.lost_sessions;
        self.degraded.merge(other.degraded);
        self.rtt_ms.merge(&other.rtt_ms);
        self.dns_ms.merge(&other.dns_ms);
        self.price_per_gb.merge(&other.price_per_gb);
        self.session_mb.merge(&other.session_mb);
        self.journeys.merge(&other.journeys);
    }

    /// The fixed-layout textual report. Shard count, worker count,
    /// transport backend and wall time are deliberately absent — this
    /// render is the byte-identity boundary the determinism tests compare.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== roam-fleet report ==");
        let _ = writeln!(out, "users                {}", self.users);
        for (i, label) in ["tourist", "business", "iot"].iter().enumerate() {
            let _ = writeln!(out, "  {:<18} {}", label, self.class_counts[i]);
        }
        let _ = writeln!(out, "purchases            {}", self.purchases);
        let _ = writeln!(out, "spend_usd            {}", usd(self.spend_micro_usd));
        let _ = writeln!(out, "sessions             {}", self.sessions);
        let _ = writeln!(out, "  rtt_probes         {}", self.rtt_probes);
        let _ = writeln!(out, "  dns_lookups        {}", self.dns_lookups);
        let _ = writeln!(out, "  transfers          {}", self.transfers);
        let _ = writeln!(out, "  lost               {}", self.lost_sessions);
        if self.degraded != DegradationSummary::default() {
            let d = &self.degraded;
            let _ = writeln!(out, "degradation:");
            let _ = writeln!(out, "  ok                 {}", d.ok);
            let _ = writeln!(out, "  failover           {}", d.failover);
            let _ = writeln!(out, "  timeout            {}", d.timeout);
            let _ = writeln!(out, "  unreachable        {}", d.unreachable);
        }
        let _ = writeln!(out, "metrics:");
        for (name, s) in [
            ("rtt_ms", &self.rtt_ms),
            ("dns_ms", &self.dns_ms),
            ("price_per_gb", &self.price_per_gb),
            ("session_mb", &self.session_mb),
        ] {
            let q = |p: f64| s.quantile(p).unwrap_or(0.0);
            let _ = writeln!(
                out,
                "  {:<18} count={} mean={:.3} p50={:.3} p90={:.3} p99={:.3} \
                 min={:.3} max={:.3} dropped={}",
                name,
                s.count(),
                s.mean(),
                q(0.5),
                q(0.9),
                q(0.99),
                if s.count() > 0 { s.min() } else { 0.0 },
                if s.count() > 0 { s.max() } else { 0.0 },
                s.dropped()
            );
        }
        let _ = writeln!(
            out,
            "journeys (sample of {} by stable priority):",
            self.journeys.cap()
        );
        for j in self.journeys.items() {
            let _ = writeln!(
                out,
                "  u{:<10} {:<8} legs={} first={} spend_usd={}",
                j.uid,
                j.class,
                j.legs,
                j.first,
                usd(j.spend_micro_usd)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(range: std::ops::Range<u64>) -> FleetReport {
        let mut r = FleetReport::new(4);
        for uid in range {
            r.count_user(TravelerClass::Tourist);
            r.sessions += 2;
            r.rtt_probes += 1;
            r.purchases += 1;
            r.spend_micro_usd += u128::from(uid) * 1_250_000;
            r.rtt_ms.observe(20.0 + uid as f64);
            r.price_per_gb.observe(2.0 + (uid % 7) as f64);
            r.journeys.offer(
                uid.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                uid,
                JourneySample {
                    uid,
                    class: "tourist",
                    legs: 1,
                    first: "PAK",
                    spend_micro_usd: 1_250_000,
                },
            );
        }
        r
    }

    #[test]
    fn merge_is_partition_invariant_and_render_is_stable() {
        let whole = filled(0..100);
        let mut split = filled(0..37);
        split.merge(&filled(37..100));
        assert_eq!(whole, split);
        assert_eq!(whole.render(), split.render());
        // Merging the shards the other way round renders the same bytes.
        let mut reversed = filled(37..100);
        reversed.merge(&filled(0..37));
        assert_eq!(whole.render(), reversed.render());
    }

    #[test]
    fn spend_formats_exactly() {
        assert_eq!(usd(0), "0.000000");
        assert_eq!(usd(1_250_000), "1.250000");
        assert_eq!(usd(12_345_678_901), "12345.678901");
    }

    #[test]
    fn render_layout_survives_an_empty_run() {
        let r = FleetReport::new(8);
        let s = r.render();
        assert!(s.contains("users                0"));
        assert!(s.contains("rtt_ms"));
        assert!(s.contains("mean=0.000"));
        assert!(s.ends_with("priority):\n"));
    }
}
