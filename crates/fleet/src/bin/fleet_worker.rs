//! Fleet worker process: one job frame in on stdin, one result frame per
//! shard out on stdout. Spawned by `FleetRunner` in worker mode — not
//! meant to be run by hand. Stdout is protocol-only; diagnostics go to
//! stderr.

use std::io::{stdin, stdout, Write as _};

fn main() {
    let mut input = stdin().lock();
    let mut output = stdout().lock();
    if let Err(msg) = roam_fleet::worker::serve(&mut input, &mut output) {
        let _ = output.flush();
        eprintln!("fleet_worker: {msg}");
        std::process::exit(1);
    }
}
