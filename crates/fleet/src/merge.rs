//! The merger: fold shard outcomes into one [`FleetRun`].
//!
//! Order discipline lives here, in one place: outcomes are folded in
//! shard-index order no matter which backend produced them or how their
//! executions interleaved, so the in-process runner, the worker-process
//! runner and a resumed run all merge identically. (The report itself is
//! order-free — [`FleetReport::merge`] is associative and commutative —
//! but telemetry's shard keys and the timing rows keep merge order, so
//! the fold pins it.)

use crate::exec::ShardOutcome;
use crate::report::FleetReport;
use crate::runner::{FleetRun, FleetShardTiming};
use roam_telemetry::{merge_shards, TelemetryMode};

/// Fold `outcomes` (any order) into a run: sort by shard index, merge
/// reports, telemetry, timings and degradation rows in that order.
pub(crate) fn merge_outcomes(
    sample: usize,
    telemetry: TelemetryMode,
    mut outcomes: Vec<ShardOutcome>,
) -> FleetRun {
    outcomes.sort_by_key(|o| o.index);
    let mut report = FleetReport::new(sample);
    let mut snaps = Vec::with_capacity(outcomes.len());
    let mut timings = Vec::with_capacity(outcomes.len());
    let mut degraded = Vec::with_capacity(outcomes.len());
    let mut halted = false;
    for outcome in outcomes {
        let key = format!("fleet/{:03}", outcome.index);
        report.merge(&outcome.report);
        snaps.push((key.clone(), outcome.snap));
        degraded.push((key.clone(), outcome.report.degraded));
        timings.push(FleetShardTiming {
            key,
            wall_ms: outcome.wall_ms,
        });
        halted |= !outcome.completed;
    }
    FleetRun {
        report,
        telemetry: merge_shards(telemetry, snaps),
        timings,
        degraded,
        halted,
        // The merger never sees recovery work; the runner fills this in
        // for supervised worker runs.
        supervision: crate::supervisor::SupervisionStats::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roam_telemetry::TelemetrySnapshot;

    fn outcome(index: usize, users: u64, completed: bool) -> ShardOutcome {
        let mut report = FleetReport::new(4);
        report.users = users;
        ShardOutcome {
            index,
            report,
            snap: TelemetrySnapshot::default(),
            wall_ms: 1.0,
            completed,
            sessions: Vec::new(),
        }
    }

    #[test]
    fn outcomes_merge_in_index_order_regardless_of_arrival() {
        let run = merge_outcomes(
            4,
            TelemetryMode::Off,
            vec![
                outcome(2, 30, true),
                outcome(0, 10, true),
                outcome(1, 20, true),
            ],
        );
        assert_eq!(run.report.users, 60);
        assert!(!run.halted);
        let keys: Vec<&str> = run.timings.iter().map(|t| t.key.as_str()).collect();
        assert_eq!(keys, ["fleet/000", "fleet/001", "fleet/002"]);
    }

    #[test]
    fn any_incomplete_shard_marks_the_run_halted() {
        let run = merge_outcomes(
            4,
            TelemetryMode::Off,
            vec![outcome(0, 10, true), outcome(1, 5, false)],
        );
        assert!(run.halted);
    }
}
